"""Shim so legacy editable installs work on environments without the
``wheel`` package (``pip install -e . --no-build-isolation --no-use-pep517``).
All metadata lives in pyproject.toml."""

from setuptools import setup

setup()
