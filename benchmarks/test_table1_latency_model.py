"""E-T1 — Table 1: the latency model, asserted verbatim.

Not a measurement — a verification that the simulator's latency inputs are
exactly the paper's Table 1, plus a microbenchmark of the protocol engine's
throughput on the four miss paths.
"""

from repro.analysis import render_table1
from repro.core.config import LatencyModel, MachineConfig
from repro.memory.allocation import PageAllocator
from repro.memory.coherence import CoherentMemorySystem


def test_table1(benchmark, emit):
    lm = LatencyModel()
    assert lm.hit_cycles(1) == 1
    assert lm.hit_cycles(2) == 2
    assert lm.hit_cycles(4) == lm.hit_cycles(8) == 3
    assert lm.miss_cycles(0, 0, None) == 30
    assert lm.miss_cycles(0, 0, 1) == 100
    assert lm.miss_cycles(0, 1, None) == 100
    assert lm.miss_cycles(0, 1, 1) == 100
    assert lm.miss_cycles(0, 1, 2) == 150

    # protocol-engine throughput on a mixed read/write stream
    cfg = MachineConfig(n_processors=8, cluster_size=2,
                        cache_kb_per_processor=4)

    def protocol_churn():
        al = PageAllocator(cfg.n_clusters, cfg.page_size, cfg.line_size)
        mem = CoherentMemorySystem(cfg, al)
        t = 0
        for i in range(20000):
            t += 200
            proc = (i * 7) % 8
            line = (i * 13) % 512
            if i % 3:
                mem.read(proc, line, t)
            else:
                mem.write(proc, line, t)
        return mem

    benchmark(protocol_churn)
    emit("table1_latency_model", render_table1(lm))
