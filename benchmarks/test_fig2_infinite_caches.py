"""E-F2 — Figure 2: the benefits of clustering with infinite caches.

Regenerates the paper's Figure 2: for each of the nine applications, the
normalized execution-time breakdown at 1/2/4/8 processors per cluster with
infinite cluster caches (inherent communication + cold misses only).

Paper shape (what to look for in the output):

* LU, FFT ≈ flat (≥ ~97% at 8-way in the paper);
* Ocean's load stall halves with every cluster-size doubling;
* Barnes/FMM nearly flat; Raytrace/Volrend ≤ ~10% gains;
* Radix shows merge time appearing as load time falls (late prefetches);
* MP3D gains the most (~15% at 8-way) because communication dominates.
"""

import pytest

from repro.analysis import (figure_from_cluster_sweep, miss_breakdown,
                            render_miss_breakdown, render_rows)
from repro.apps.registry import APP_NAMES

from _support import study as make_study

CLUSTERS = (1, 2, 4, 8)


@pytest.mark.parametrize("app", APP_NAMES)
def test_fig2(benchmark, emit, app):
    study = make_study(app)

    def run():
        return study.cluster_sweep(None, CLUSTERS)

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)
    fig = figure_from_cluster_sweep(
        f"Figure 2 ({app}): infinite caches, clusters of 1/2/4/8", sweep)
    text = render_rows(fig) + "\n\n" + render_miss_breakdown(
        miss_breakdown(sweep), f"{app}: miss decomposition")
    emit(f"fig2_{app}", text)
    benchmark.extra_info["totals"] = {
        str(c): round(fig.groups[0].bars[i].total, 1)
        for i, c in enumerate(CLUSTERS)}
    # baseline sanity: the 1p bar is the normalization anchor
    assert fig.groups[0].bars[0].total == pytest.approx(100.0)
