"""E-WS — Table 3 support: working-set characterization.

Measures miss rate vs per-processor cache size at cluster size 1 for every
application and reports the knee (the paper's "working set"), plus the
working-set *overlap* ratio — capacity misses at 8-way clustering relative
to unclustered — which is the quantity Figures 4-8 turn on.

Paper Table 3 qualitative expectations: Barnes/FMM/Volrend/LU/FFT small
working sets; Ocean = partition-sized; Raytrace and MP3D large; overlap
high for the read-shared unstructured codes, ≈ none for LU/Ocean.
"""

import pytest

from repro.apps.registry import APP_NAMES
from repro.core.workingset import knee_of, overlap_benefit, working_set_curve

from _support import app_kwargs, current_scale, machine

SIZES = (0.5, 1, 2, 4, 8, 16, 32, None)
QUICK_SIZES = (1, 4, 16, None)


@pytest.mark.parametrize("app", APP_NAMES)
def test_workingset(benchmark, emit, app):
    sizes = QUICK_SIZES if current_scale() == "quick" else SIZES
    config = machine()
    kwargs = app_kwargs(app)

    def run():
        return working_set_curve(app, sizes, cluster_size=1,
                                 base_config=config, app_kwargs=kwargs)

    curve = benchmark.pedantic(run, rounds=1, iterations=1)
    knee = knee_of(curve)
    overlap = overlap_benefit(app, cache_kb=sizes[1], cluster_sizes=(1, 8),
                              base_config=config, app_kwargs=kwargs)
    lines = [f"Working set of {app} (cluster size 1)"]
    for label, rate, cap in curve.rows():
        lines.append(f"  {label:>8}  miss rate {rate:8.4f}  "
                     f"capacity misses {cap:>10,}")
    lines.append(f"  knee: "
                 f"{'beyond probed sizes' if knee is None else f'{knee:g} KB'}")
    lines.append(f"  capacity misses at 8-way / 1-way "
                 f"(per-proc {sizes[1]:g} KB): {overlap[8]:.2f}")
    emit(f"workingset_{app}", "\n".join(lines))
    # near-monotone non-increasing miss rate is the defining invariant
    # (small tolerance: the dynamic tile queues of raytrace/volrend make
    # tile->processor assignment timing-dependent, which perturbs the
    # coherence-miss composition by a percent or two between cache sizes)
    rates = [p.miss_rate for p in curve.points]
    for a, b in zip(rates, rates[1:]):
        assert b <= a * 1.05 + 1e-9
