"""E-X2 — ablation: shared-cache vs shared-main-memory clusters (paper §2).

The paper's evaluation clusters at the cache; its §2 describes the
alternative — per-processor caches snooping a shared cluster memory, where
working sets stay duplicated but cache-to-cache transfers recover part of
the benefit.  This ablation runs both organisations on the same workloads
and reports execution time plus the c2c-transfer count.
"""

from repro.core.study import ClusteringStudy
from repro.memory.snoopy import SnoopyClusterMemorySystem
from repro.sim.engine import Engine

from _support import app_kwargs, current_scale, machine

APPS = ("mp3d", "ocean")


def _run_snoopy(app, config, kwargs):
    from repro.apps.registry import build_app
    application = build_app(app, config, **kwargs)
    application.ensure_setup()
    mem = SnoopyClusterMemorySystem(config, application.allocator)
    result = Engine(config, mem).run(application.program)
    return result, mem


def test_ablation_snoopy_cluster(benchmark, emit):
    base = machine()
    cache_kb = 2 if current_scale() == "quick" else 4
    kwargs = {app: app_kwargs(app) for app in APPS}
    if current_scale() == "default":
        # trim the heavyweight default mp3d for a 4-point ablation
        kwargs["mp3d"] = {"n_particles": 20000, "n_steps": 3}

    def run():
        out = {}
        for app in APPS:
            cfg = base.with_clusters(4).with_cache_kb(cache_kb)
            shared = ClusteringStudy(app, base, kwargs[app]).run_point(
                4, cache_kb)
            snoopy_res, snoopy_mem = _run_snoopy(app, cfg, kwargs[app])
            out[app] = (shared.result.execution_time,
                        snoopy_res.execution_time,
                        snoopy_mem.c2c_transfers)
        return out

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"Ablation: shared-cache vs snoopy shared-memory clusters "
             f"(4-way, {cache_kb} KB/proc)",
             f"{'app':>8} {'shared-cache T':>15} {'snoopy T':>12} "
             f"{'c2c transfers':>14}"]
    for app, (tc, ts, c2c) in res.items():
        lines.append(f"{app:>8} {tc:>15,} {ts:>12,} {c2c:>14,}")
    emit("ablation_snoopy_cluster", "\n".join(lines))
    for app, (tc, ts, c2c) in res.items():
        assert c2c > 0  # cache-to-cache sharing opportunities exist
