"""E-F7 — Figure 7: finite capacity effects for fmm.

See the paper's Figure 7 and benchmarks/_capacity.py for the grid.
The key shape: clustering's benefit is largest when the per-processor
cache is smaller than the (overlapping) working set, and shrinks back
toward the infinite-cache benefit once the working set fits.
"""

from _capacity import run_capacity_figure


def test_fig7_fmm(benchmark, emit):
    run_capacity_figure(benchmark, emit, 7, "fmm")
