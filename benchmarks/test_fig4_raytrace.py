"""E-F4 — Figure 4: finite capacity effects for raytrace.

See the paper's Figure 4 and benchmarks/_capacity.py for the grid.
The key shape: clustering's benefit is largest when the per-processor
cache is smaller than the (overlapping) working set, and shrinks back
toward the infinite-cache benefit once the working set fits.
"""

from _capacity import run_capacity_figure


def test_fig4_raytrace(benchmark, emit):
    run_capacity_figure(benchmark, emit, 4, "raytrace")
