"""E-F6 — Figure 6: finite capacity effects for barnes.

See the paper's Figure 6 and benchmarks/_capacity.py for the grid.
The key shape: clustering's benefit is largest when the per-processor
cache is smaller than the (overlapping) working set, and shrinks back
toward the infinite-cache benefit once the working set fits.
"""

from _capacity import run_capacity_figure


def test_fig6_barnes(benchmark, emit):
    run_capacity_figure(benchmark, emit, 6, "barnes")
