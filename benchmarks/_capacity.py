"""Shared driver for the finite-capacity figures (paper Figures 4-8).

Each of the five unstructured applications gets a full cache-size ×
cluster-size grid, normalized per cache size exactly as in the paper.
The figure-specific benchmark files are thin wrappers over
:func:`run_capacity_figure`.
"""

from __future__ import annotations

from repro.analysis import figure_from_capacity_sweep, render_rows

from _support import current_scale, study as make_study

CLUSTERS = (1, 2, 4, 8)
CACHE_SIZES = (4, 16, 32, None)
QUICK_CACHE_SIZES = (1, 4, None)


def run_capacity_figure(benchmark, emit, fignum: int, app: str):
    """Run one finite-capacity figure and emit the paper-format rows."""
    caches = QUICK_CACHE_SIZES if current_scale() == "quick" else CACHE_SIZES
    study = make_study(app)

    def run():
        return study.capacity_sweep(caches, CLUSTERS)

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)
    fig = figure_from_capacity_sweep(
        f"Figure {fignum}: finite capacity effects for {app} "
        f"(per-processor caches {', '.join(str(c) for c in caches)} KB)",
        sweep)
    emit(f"fig{fignum}_{app}", render_rows(fig))
    for group in fig.groups:
        # each cache-size group is normalized to its own 1p bar
        assert abs(group.bars[0].total - 100.0) < 1e-6
    benchmark.extra_info["totals"] = {
        g.label: [round(b.total, 1) for b in g.bars] for g in fig.groups}
    return fig
