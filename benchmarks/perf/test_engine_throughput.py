"""Engine-throughput micro-harness: the perf trajectory's first datapoint.

Unlike the paper-artifact benchmarks one directory up, these measure the
*simulator itself*: simulated operations per second along the legacy
(fast-path-off), generator (fast path on) and compiled-replay engine
paths, exactly as ``repro-clustering bench`` does.  The replay numbers
are held to the checked-in floor in ``floor.json`` — the same file the
CI bench smoke step uses — with a wide tolerance so the check trips on
structural regressions (an accidentally disabled fast path, a hot-path
allocation creeping back in), not on machine noise.

Run directly::

    PYTHONPATH=src python -m pytest benchmarks/perf/ -q

``REPRO_BENCH_SCALE=quick`` (the default here) keeps problems small;
``default`` benches the library defaults at 64 processors.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.apps.registry import APP_NAMES, QUICK_PROBLEM_SIZES
from repro.core.bench import bench_engine, check_floor
from repro.core.config import MachineConfig

FLOOR_PATH = Path(__file__).parent / "floor.json"
SCALE = os.environ.get("REPRO_BENCH_SCALE", "quick")

if SCALE == "quick":
    CONFIG = MachineConfig(n_processors=64)
    KWARGS_OF = {a: dict(QUICK_PROBLEM_SIZES.get(a, {})) for a in APP_NAMES}
else:
    CONFIG = MachineConfig(n_processors=64)
    KWARGS_OF = {a: {} for a in APP_NAMES}


@pytest.fixture(scope="module")
def floor() -> dict[str, float]:
    return json.loads(FLOOR_PATH.read_text(encoding="utf-8"))


@pytest.mark.parametrize("app", APP_NAMES)
def test_replay_throughput_floor(app, floor):
    """Compiled replay stays above the checked-in ops/s floor."""
    result = bench_engine(app, CONFIG, KWARGS_OF[app], repeats=2)
    failures = check_floor([result], floor)
    assert not failures, failures[0]


@pytest.mark.parametrize("app", ["lu", "raytrace"])
def test_replay_not_slower_than_legacy(app):
    """Replay must never lose to driving the generators fast-path-off.

    One stream-invariant app and one recorded app; a generous margin
    absorbs timer noise on tiny runs while still catching the compiled
    path regressing below the interpreter it exists to beat.
    """
    result = bench_engine(app, CONFIG, KWARGS_OF[app], repeats=3)
    assert result.replay_s <= result.legacy_s * 1.25


def test_floor_covers_every_app(floor):
    """A new application must ship with a floor entry."""
    apps = {k for k in floor if ":" not in k}  # "x:y" keys are sections
    assert apps == set(APP_NAMES)


def test_floor_covers_memory_streams(floor):
    """The coherence-layer microbench streams are floored too."""
    from repro.core.bench import bench_memory, check_floor

    streams = {k for k in floor if k.startswith("memory:")}
    assert streams == {"memory:hit", "memory:capacity", "memory:sharing"}
    results = bench_memory(n_ops=50_000, repeats=2)
    failures = check_floor([], floor, memory=results)
    assert not failures, failures[0]


def test_floor_covers_kernel_sections(floor):
    """The batched-replay and native-kernel A/B floors are pinned."""
    sections = {k for k in floor if ":" in k and not k.startswith("memory:")}
    assert sections == {"batch:points_per_s", "batch:speedup",
                        "native:points_per_s", "native:batch_speedup",
                        "native:warm_speedup"}
