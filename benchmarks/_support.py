"""Shared helpers for the benchmark harness (scale + machine selection).

See ``benchmarks/conftest.py`` for the fixtures and the description of the
``REPRO_BENCH_SCALE`` knob.  Two more environment knobs control execution:

* ``REPRO_BENCH_JOBS``  — worker processes per sweep (default 1 = serial);
  results are byte-identical either way, only wall-clock changes;
* ``REPRO_BENCH_CACHE`` — set to ``1`` to serve finished points from the
  persistent result cache.  **Off by default**: benchmarks exist to measure
  simulation time, and a cache hit would report the cache's speed instead.
"""

from __future__ import annotations

import os

from repro.core.config import MachineConfig
from repro.core.executor import SweepExecutor
from repro.core.resultcache import ResultCache
from repro.core.study import ClusteringStudy

#: problem-size overrides per scale; "PAPER" = registry PAPER_PROBLEM_SIZES
SCALE_OVERRIDES: dict[str, dict | str] = {
    "quick": {
        "barnes": {"n_particles": 512, "n_steps": 1},
        "fft": {"n_points": 16384},
        "fmm": {"n_particles": 512, "levels": 3, "n_steps": 1},
        "lu": {"n": 128, "block": 16},
        "mp3d": {"n_particles": 8000, "n_steps": 2},
        "ocean": {"n": 64, "n_vcycles": 2},
        "radix": {"n_keys": 32768, "radix": 128},
        "raytrace": {"width": 32, "height": 32, "n_spheres": 32},
        "volrend": {"volume_side": 32, "width": 64, "height": 64},
    },
    "default": {},
    "paper": "PAPER",
}


def current_scale() -> str:
    scale = os.environ.get("REPRO_BENCH_SCALE", "default")
    if scale not in SCALE_OVERRIDES:
        raise ValueError(f"REPRO_BENCH_SCALE must be one of "
                         f"{sorted(SCALE_OVERRIDES)}, got {scale!r}")
    return scale


def app_kwargs(app: str) -> dict:
    table = SCALE_OVERRIDES[current_scale()]
    if table == "PAPER":
        from repro.apps.registry import PAPER_PROBLEM_SIZES
        return dict(PAPER_PROBLEM_SIZES.get(app, {}))
    return dict(table.get(app, {}))


def machine() -> MachineConfig:
    n = 16 if current_scale() == "quick" else 64
    return MachineConfig(n_processors=n)


def executor() -> SweepExecutor:
    """Sweep executor configured from the environment knobs above."""
    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
    use_cache = os.environ.get("REPRO_BENCH_CACHE", "0").lower() \
        not in ("", "0", "false", "no")
    return SweepExecutor(
        backend="process" if jobs > 1 else "serial",
        max_workers=jobs if jobs > 1 else None,
        cache=ResultCache() if use_cache else None)


def study(app: str) -> ClusteringStudy:
    """The standard benchmark study: current scale, machine, and executor."""
    return ClusteringStudy(app, machine(), app_kwargs(app),
                           executor=executor())
