"""E-T7 — Table 7: relative execution time with infinite caches, including
the §6 shared-cache costs.

Paper values: ocean 1.00/0.99/1.04/0.99; lu 1.00/1.03/1.06/1.05.

Shape to reproduce: with infinite caches there is no working-set benefit
left, so the hit-time/bank-conflict costs make clustering a wash (Ocean,
whose communication capture fights the costs) or a loss (LU).
"""

from repro.analysis import render_comparison, render_cost_table
from repro.core.contention import SharedCacheCostModel

from _support import app_kwargs, machine

CLUSTERS = (1, 2, 4, 8)
PAPER = {
    "ocean": (1.0, 0.99, 1.04, 0.99),
    "lu": (1.0, 1.03, 1.06, 1.05),
}


def test_table7(benchmark, emit):
    model = SharedCacheCostModel()
    config = machine()

    def run():
        return [model.evaluate(app, None, config, CLUSTERS,
                               app_kwargs=app_kwargs(app))
                for app in ("ocean", "lu")]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    measured = {r.app: [r.relative_time[c] for c in CLUSTERS] for r in rows}
    text = (render_cost_table(rows, "Table 7: Relative Execution Time of "
                              "Clustering with Infinite Caches")
            + "\n\n"
            + render_comparison("Paper vs measured",
                                [f"{c}-way" for c in CLUSTERS],
                                PAPER, measured))
    emit("table7_clustered_inf", text)
    lu = next(r for r in rows if r.app == "lu")
    # LU must not profit once shared-cache costs are charged
    assert lu.relative_time[2] > 0.97
    assert lu.cost_factor[8] > lu.cost_factor[2] > 1.0
