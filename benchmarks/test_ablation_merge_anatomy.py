"""E-X3 — ablation: prefetch/merge anatomy for LU and Radix (paper §4).

The paper's LU discussion: at 2-way clustering "load stall time is reduced
by more than a factor of two.  However, most of this time is replaced by
merge stall time" — prefetches from cluster mates arrive, but too late.
This ablation decomposes load vs merge stall per cluster size for the two
applications where the effect is visible (LU's diagonal blocks, Radix's
shared histograms).
"""

from repro.analysis import merge_anatomy
from repro.core.study import ClusteringStudy

from _support import app_kwargs, machine

APPS = ("lu", "radix")
CLUSTERS = (1, 2, 4, 8)


def test_ablation_merge_anatomy(benchmark, emit):
    config = machine()

    def run():
        out = {}
        for app in APPS:
            study = ClusteringStudy(app, config, app_kwargs(app))
            out[app] = merge_anatomy(study.cluster_sweep(None, CLUSTERS))
        return out

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Ablation: load vs merge stall per cluster size (inf caches)",
             f"{'app':>6} {'cluster':>8} {'load':>12} {'merge':>12} "
             f"{'load+merge':>12}"]
    for app in APPS:
        for c in CLUSTERS:
            row = res[app][c]
            lines.append(f"{app:>6} {c:>7}p {row['load']:>12,.0f} "
                         f"{row['merge']:>12,.0f} "
                         f"{row['load_plus_merge']:>12,.0f}")
    emit("ablation_merge_anatomy", "\n".join(lines))
    for app in APPS:
        # clustering converts some load stall into merge stall
        assert res[app][2]["merge"] > res[app][1]["merge"]
        assert res[app][2]["load"] < res[app][1]["load"]
