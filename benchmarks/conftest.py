"""Benchmark-harness fixtures: result capture for reproduced artifacts.

Every benchmark regenerates one of the paper's tables or figures and writes
the paper-format text into ``benchmarks/results/<name>.txt`` (also attached
to the pytest-benchmark ``extra_info``), so a full
``pytest benchmarks/ --benchmark-only`` run leaves the complete set of
reproduced artifacts on disk for EXPERIMENTS.md.

Scale control — set ``REPRO_BENCH_SCALE``:

* ``quick``   — minutes-scale smoke numbers (small problems, 16 processors);
* ``default`` — the library's default problem sizes on the paper's
  64-processor machine (the EXPERIMENTS.md numbers; ~45-60 min total);
* ``paper``   — the paper's Table 2 problem sizes where feasible (slow).
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))  # make _support importable

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def emit(results_dir, capsys):
    """Write a reproduced artifact to disk and echo it to the terminal."""

    def _emit(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        with capsys.disabled():
            print(f"\n{text}\n[written to {path}]")

    return _emit
