"""E-F3 — Figure 3: Ocean with the small (66×66-class) problem.

The paper shrinks Ocean's grid so communication matters more: clustering
then helps substantially (paper bars 100 / 88.2 / 74.7 / 64.0) and an
additional "inf" bar clusters all 64 processors around one cache.  The
trade-off the paper highlights: load-imbalance sync time grows as the
problem shrinks.
"""

import pytest

from repro.analysis import figure_from_cluster_sweep, render_rows
from repro.core.study import ClusteringStudy

from _support import app_kwargs, current_scale, executor, machine


def test_fig3_ocean_small(benchmark, emit):
    config = machine()
    kwargs = app_kwargs("ocean")
    kwargs["n"] = 32 if current_scale() == "quick" else 64  # "66x66" grid
    clusters = list((1, 2, 4, 8)) + [config.n_processors]  # + 'inf' bar
    study = ClusteringStudy("ocean", config, kwargs, executor=executor())

    def run():
        return study.cluster_sweep(None, clusters)

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)
    fig = figure_from_cluster_sweep(
        "Figure 3: Ocean, infinite cache, small problem "
        f"(clusters 1/2/4/8/{config.n_processors}='inf')", sweep)
    emit("fig3_ocean_small", render_rows(fig))
    bars = fig.groups[0].bars
    # clustering must help monotonically through 8-way on the small grid
    assert bars[0].total == pytest.approx(100.0)
    assert bars[3].total < bars[0].total
