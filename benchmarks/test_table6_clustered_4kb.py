"""E-T6 — Table 6: relative execution time with 4 KB caches, including the
§6 shared-cache costs.

Paper values (for reference in the emitted artifact):

===========  =====  =====  =====  =====
application  1-way  2-way  4-way  8-way
===========  =====  =====  =====  =====
barnes        1.00   0.99   0.95   0.88
radix-sort    1.00   1.01   1.02   0.96
volrend       1.00   0.93   0.86   0.79
mp3d          1.00   0.96   0.93   0.86
===========  =====  =====  =====  =====

Shape to reproduce: with small caches, working-set overlap offsets the
shared-cache hit-time costs for the working-set applications, so most
entries dip below 1.0 by 8-way.
"""

from repro.analysis import render_comparison, render_cost_table
from repro.core.contention import SharedCacheCostModel

from _support import app_kwargs, machine

APPS = ("barnes", "radix", "volrend", "mp3d")
CLUSTERS = (1, 2, 4, 8)
PAPER = {
    "barnes": (1.0, 0.99, 0.95, 0.88),
    "radix": (1.0, 1.01, 1.02, 0.96),
    "volrend": (1.0, 0.93, 0.86, 0.79),
    "mp3d": (1.0, 0.96, 0.93, 0.86),
}


def test_table6(benchmark, emit):
    model = SharedCacheCostModel()
    config = machine()

    def run():
        return [model.evaluate(app, 4.0, config, CLUSTERS,
                               app_kwargs=app_kwargs(app)) for app in APPS]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    measured = {r.app: [r.relative_time[c] for c in CLUSTERS] for r in rows}
    text = (render_cost_table(rows, "Table 6: Relative Execution Time of "
                              "Clustering with 4KB Caches")
            + "\n\n"
            + render_comparison("Paper vs measured",
                                [f"{c}-way" for c in CLUSTERS],
                                PAPER, measured))
    emit("table6_clustered_4kb", text)
    for r in rows:
        assert r.relative_time[1] == 1.0
        # working-set benefit offsets the shared-cache cost by 8-way
        assert r.relative_time[8] < 1.05
