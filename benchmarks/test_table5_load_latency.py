"""E-T5 — Table 5: load-latency execution-time expansion factors.

Two artifacts:

1. the paper's Pixie-measured factors (adopted as calibrated inputs for the
   §6 cost model — we cannot re-run MIPS basic-block scheduling), and
2. the same measurement performed on *our* engine: each application re-run
   against a perfect memory with reads charged 1-4 cycles.  The engine
   folds private/stack loads into WORK cycles, so its shared-read density
   (and hence the expansion) is generally *below* Pixie's whole-program
   load density; the paper's values therefore remain the calibrated cost-
   model inputs, and this artifact documents the engine-native analog.
"""

import pytest

from repro.analysis import render_table5
from repro.core.contention import (PAPER_TABLE5, ExpansionTable,
                                   LoadLatencyProfiler)

from _support import app_kwargs, machine

APPS = ("barnes", "lu", "ocean", "radix", "volrend", "mp3d")


def test_table5(benchmark, emit):
    profiler = LoadLatencyProfiler(machine())

    def measure_all():
        out = {}
        for app in APPS:
            profiler.app_kwargs = app_kwargs(app)
            out[app] = profiler.measure(app)
        return out

    measured = benchmark.pedantic(measure_all, rounds=1, iterations=1)
    paper = {app: ExpansionTable(f) for app, f in PAPER_TABLE5.items()}
    text = (render_table5(paper, "Table 5 (paper, Pixie-measured inputs)")
            + "\n\n"
            + render_table5(measured,
                            "Table 5 (measured on this engine; "
                            "engine-native analog, see docstring)"))
    emit("table5_load_latency", text)
    for app in APPS:
        m = measured[app].factors
        assert m[0] == pytest.approx(1.0)
        # extra load latency can only slow a run down, monotonically
        assert m[3] >= m[2] >= m[1] >= 1.0
