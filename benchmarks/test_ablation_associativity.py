"""E-X1 — ablation: destructive interference under limited associativity.

The paper simulates fully associative caches to exclude conflict misses and
names limited associativity as the follow-on question (§7): shared caches
suffer *destructive interference* when cluster-mates' reference streams
conflict-map onto the same sets.  This ablation runs the same
clustered-cache experiment at direct-mapped / 4-way / fully associative and
reports how much of the clustering benefit survives.
"""

from repro.core.study import ClusteringStudy

from _support import app_kwargs, current_scale, machine

ASSOCS = (1, 4, None)  # direct-mapped, 4-way, fully associative
APPS = ("barnes", "ocean", "lu")


def test_ablation_associativity(benchmark, emit):
    config = machine()
    cache_kb = 2 if current_scale() == "quick" else 4

    def run():
        out = {}
        for app in APPS:
            for assoc in ASSOCS:
                cfg = config.with_associativity(assoc)
                study = ClusteringStudy(app, cfg, app_kwargs(app))
                sweep = study.cluster_sweep(cache_kb, (1, 8))
                out[(app, assoc)] = {c: p.execution_time
                                     for c, p in sweep.items()}
        return out

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"Ablation: associativity vs clustering benefit "
             f"({cache_kb} KB/processor)",
             f"{'app':>8} {'assoc':>8} {'T(1p)':>12} {'T(8p)':>12} "
             f"{'8p/1p':>7}"]
    for app in APPS:
        for assoc in ASSOCS:
            t = res[(app, assoc)]
            label = "full" if assoc is None else f"{assoc}-way"
            lines.append(f"{app:>8} {label:>8} {t[1]:>12,} {t[8]:>12,} "
                         f"{t[8] / t[1]:7.3f}")
    emit("ablation_associativity", "\n".join(lines))
    for app in APPS:
        # limited associativity can only add misses (never remove them)
        assert res[(app, 1)][8] >= res[(app, None)][8] * 0.98
