"""E-F5 — Figure 5: finite capacity effects for mp3d.

See the paper's Figure 5 and benchmarks/_capacity.py for the grid.
The key shape: clustering's benefit is largest when the per-processor
cache is smaller than the (overlapping) working set, and shrinks back
toward the infinite-cache benefit once the working set fits.
"""

from _capacity import run_capacity_figure


def test_fig5_mp3d(benchmark, emit):
    run_capacity_figure(benchmark, emit, 5, "mp3d")
