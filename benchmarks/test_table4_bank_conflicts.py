"""E-T4 — Table 4: probabilities of bank conflict.

Reproduces the closed form C = 1 − ((m−1)/m)^(n−1) with 4 banks per
processor, and cross-checks it against a Monte-Carlo simulation of random
per-cycle bank choices (the physical process the paper assumes).
"""

import numpy as np
import pytest

from repro.analysis import render_table4
from repro.core.contention import (bank_conflict_probability,
                                   banks_for_cluster, conflict_table)


def _monte_carlo(n_procs: int, n_banks: int, trials: int,
                 rng: np.random.Generator) -> float:
    """Empirical probability that processor 0's reference collides."""
    picks = rng.integers(0, n_banks, size=(trials, n_procs))
    collide = (picks[:, 1:] == picks[:, :1]).any(axis=1)
    return float(collide.mean())


def test_table4(benchmark, emit):
    rows = benchmark(conflict_table)
    expected = {1: 0.0, 2: 0.125, 4: 0.176, 8: 0.199}
    for n, m, c in rows:
        assert c == pytest.approx(expected[n], abs=5e-4)

    rng = np.random.default_rng(7)
    lines = [render_table4(), "", "Monte-Carlo cross-check (200k trials):"]
    for n in (2, 4, 8):
        m = banks_for_cluster(n)
        emp = _monte_carlo(n, m, 200_000, rng)
        analytic = bank_conflict_probability(n, m)
        assert emp == pytest.approx(analytic, abs=0.01)
        lines.append(f"  n={n} m={m}: analytic {analytic:.4f} "
                     f"empirical {emp:.4f}")
    emit("table4_bank_conflicts", "\n".join(lines))
