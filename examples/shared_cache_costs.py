#!/usr/bin/env python
"""Shared first-level-cache costs — the paper's §6 (Tables 4-7).

Sharing a first-level cache is not free: it needs multiple banks (conflict
stalls, Table 4) and has a longer hit time (Table 1), whose execution-time
impact the paper measured with Pixie (Table 5).  This example walks the
whole §6 pipeline:

1. prints the bank-conflict probabilities,
2. prints the load-latency expansion factors (paper inputs + measured on
   this engine),
3. combines them into the per-cluster-size cost factor, and
4. applies the factors to simulated cluster sweeps, reproducing the
   Table 6/7 verdicts: small caches → overlap can pay for the costs;
   infinite caches → clustering is a wash or a loss.

Run:  python examples/shared_cache_costs.py
"""

from repro.analysis import render_cost_table, render_table4, render_table5
from repro.core import MachineConfig
from repro.core.contention import (PAPER_TABLE5, ExpansionTable,
                                   LoadLatencyProfiler, SharedCacheCostModel)

CONFIG = MachineConfig(n_processors=32)
CLUSTERS = (1, 2, 4, 8)


def main() -> None:
    print(render_table4(), "\n")

    paper_tables = {app: ExpansionTable(f) for app, f in PAPER_TABLE5.items()}
    print(render_table5(paper_tables, "Load-latency factors (paper inputs)"))

    profiler = LoadLatencyProfiler(CONFIG, {"n_keys": 8192, "radix": 64})
    measured = {"radix": profiler.measure("radix")}
    print()
    print(render_table5(measured, "Measured on this engine (radix)"))
    print()

    model = SharedCacheCostModel()
    print("Cost factor per cluster size (hit time x bank conflicts):")
    for app in ("lu", "mp3d"):
        factors = "  ".join(f"{c}-way {model.cost_factor(app, c):.3f}"
                            for c in CLUSTERS)
        print(f"  {app:>6}: {factors}")
    print()

    small = [model.evaluate("barnes", 2.0, CONFIG, CLUSTERS,
                            app_kwargs={"n_particles": 1024, "n_steps": 1})]
    print(render_cost_table(
        small, "Table 6 regime: 2KB caches (working-set overlap territory)"))
    print()
    inf = [model.evaluate("lu", None, CONFIG, CLUSTERS,
                          app_kwargs={"n": 128, "block": 16})]
    print(render_cost_table(
        inf, "Table 7 regime: infinite caches (costs with no overlap)"))


if __name__ == "__main__":
    main()
