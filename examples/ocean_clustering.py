#!/usr/bin/env python
"""Ocean clustering study — the paper's Figures 2 and 3 in miniature.

Sweeps processors-per-cluster (1/2/4/8) with infinite caches for two Ocean
problem sizes.  The large grid shows the paper's signature: load-stall time
halves with every cluster-size doubling (row-adjacent processors share a
cluster, so their boundary exchanges stay inside it), but the total barely
moves because communication is a perimeter-to-area ratio.  The small grid
(Figure 3) makes communication matter, so clustering visibly helps — at
the cost of growing load-imbalance sync time.

Run:  python examples/ocean_clustering.py
"""

from repro.analysis import (figure_from_cluster_sweep, render_ascii,
                            render_rows)
from repro.core import ClusteringStudy, MachineConfig


def main() -> None:
    config = MachineConfig(n_processors=64)

    for label, n in (("large grid (Figure 2 regime)", 128),
                     ("small grid (Figure 3 regime)", 64)):
        study = ClusteringStudy("ocean", config, {"n": n, "n_vcycles": 2})
        sweep = study.cluster_sweep(cache_kb=None, cluster_sizes=(1, 2, 4, 8))
        fig = figure_from_cluster_sweep(
            f"Ocean {n}x{n}, infinite caches — {label}", sweep)
        print(render_rows(fig))
        print()
        print(render_ascii(fig))
        print()


if __name__ == "__main__":
    main()
