#!/usr/bin/env python
"""Does clustering push out usable parallelism?  (paper §4's closing claim)

The paper argues that while clustering barely moves Ocean's execution time
at comfortable problem sizes, "it pushes out the number of processors that
can be used effectively on a problem".  This example quantifies that claim
with `repro.core.scaling`: a fixed small Ocean problem is run at growing
processor counts, unclustered and 4-way clustered, and the speedup curves
and effective processor counts are compared.

Run:  python examples/scaling_pushout.py
"""

from repro.core.scaling import pushout

PROCESSORS = (4, 8, 16, 32)
APP_KWARGS = {"n": 32, "n_vcycles": 1}


def main() -> None:
    result = pushout("ocean", PROCESSORS, cluster_size=4,
                     app_kwargs=APP_KWARGS, marginal_threshold=1.10)

    print(f"Ocean 32x32 (fixed problem), P = {PROCESSORS}")
    print(f"{'P':>5} {'speedup (1/cluster)':>20} {'speedup (4/cluster)':>20}")
    flat = result["speedups_unclustered"]
    clus = result["speedups_clustered"]
    for p in PROCESSORS:
        print(f"{p:>5} {flat[p]:>20.2f} {clus[p]:>20.2f}")
    print()
    print(f"effective processors, unclustered: "
          f"{result['effective_unclustered']}")
    print(f"effective processors, 4-way clustered: "
          f"{result['effective_clustered']}")
    print()
    print("When the clustered curve keeps climbing after the flat one")
    print("rolls over, clustering has bought extra usable parallelism —")
    print("the paper's best argument for clustering in structured codes.")


if __name__ == "__main__":
    main()
