#!/usr/bin/env python
"""Quickstart: simulate one application on two machine organisations.

Runs the Ocean multigrid solver on a 64-processor machine, first with one
processor per cluster, then with 4-way shared-cache clusters, and prints
the execution-time breakdown and miss statistics for both — the basic
measurement the whole paper is built from.

Run:  python examples/quickstart.py
"""

from repro import MachineConfig, run_app, summarize


def main() -> None:
    base = MachineConfig(n_processors=64, cache_kb_per_processor=16)

    for cluster_size in (1, 4):
        config = base.with_clusters(cluster_size)
        print(f"=== ocean on {config.describe()} ===")
        result = run_app("ocean", config, n=64, n_vcycles=2)
        print(summarize(result).format())
        print()

    print("Clustering captured part of Ocean's nearest-neighbour")
    print("communication: compare the load-stall shares above.")


if __name__ == "__main__":
    main()
