#!/usr/bin/env python
"""Writing your own workload against the public API.

The nine bundled applications are ordinary subclasses of
:class:`repro.apps.Application`; anything that can emit WORK / READ / WRITE
/ BARRIER / LOCK operations can be studied on the clustered machine.  This
example implements a fresh workload — a producer/consumer pipeline over a
shared ring buffer — and runs the standard clustering sweep on it.

The pattern is deliberately clustering-friendly: each consumer reads what
its neighbouring producer just wrote, so pairing producer and consumer in
one cluster converts coherence misses into cluster-cache hits.

Run:  python examples/custom_application.py
"""

from typing import Iterator

from repro.analysis import figure_from_cluster_sweep, render_rows
from repro.apps.base import Application, PhaseBarriers
from repro.core import ClusteringStudy, MachineConfig
from repro.sim.program import Barrier, Op, Read, Work, Write


class PipelineApp(Application):
    """Producer/consumer pairs over per-pair shared ring buffers.

    Even processors produce into a ring; the next-higher odd processor
    consumes from it.  Rounds are barrier-separated (a batch pipeline, not
    fine-grained flags, so the reference stream is deterministic).
    """

    name = "pipeline"

    def __init__(self, config: MachineConfig, items_per_round: int = 128,
                 rounds: int = 8, seed: int = 12345) -> None:
        super().__init__(config, seed)
        if config.n_processors % 2:
            raise ValueError("needs an even processor count")
        self.items = items_per_round
        self.rounds = rounds

    def setup(self) -> None:
        n_pairs = self.config.n_processors // 2
        self.ring = self.space.allocate("pipeline.ring",
                                        n_pairs * self.items)
        # each pair's ring lives at the producer's cluster
        self.place_partitions(self.ring, n_partitions=n_pairs)

    def program(self, pid: int) -> Iterator[Op]:
        bar = PhaseBarriers()
        pair = pid // 2
        base = pair * self.items
        producing = pid % 2 == 0
        yield Barrier(bar())
        for _ in range(self.rounds):
            if producing:
                for i in range(self.items):
                    yield Work(12)                        # make an item
                    yield Write(self.ring.element(base + i))
            yield Barrier(bar())                          # batch handoff
            if not producing:
                for i in range(self.items):
                    yield Read(self.ring.element(base + i))
                    yield Work(20)                        # consume it
            yield Barrier(bar())


def main() -> None:
    config = MachineConfig(n_processors=16)
    # ClusteringStudy drives registry apps by name; for a custom class,
    # run the sweep directly and wrap each run in a SweepPoint:
    from repro.core.study import SweepPoint
    results = {}
    for cluster in (1, 2, 4):
        cfg = config.with_clusters(cluster)
        app = PipelineApp(cfg)
        results[cluster] = SweepPoint("pipeline", cluster, None, app.run())
    fig = figure_from_cluster_sweep(
        "Producer/consumer pipeline, infinite caches", results)
    print(render_rows(fig))
    print()
    print("2-way clustering pairs each producer with its consumer, so the")
    print("handoff becomes a cluster-cache hit instead of a dirty-remote")
    print("miss — the load column collapses at cluster size 2.")


if __name__ == "__main__":
    main()
