#!/usr/bin/env python
"""Working-set overlap — the mechanism behind the paper's Figures 4-8.

Barnes-Hut processors all traverse the same upper octree, so their working
sets overlap heavily.  A shared cluster cache holds ONE copy of that shared
data instead of one per processor, which makes the overlapped working set
fit caches that the individual working sets did not.

This example:

1. measures Barnes' miss-rate-vs-cache-size curve (the working set knee),
2. runs the finite-capacity grid (cache sizes × cluster sizes) and prints
   the Figure-6-style normalized bars,
3. prints the capacity-miss overlap ratio — the smoking gun.

Run:  python examples/workingset_overlap.py
"""

from repro.analysis import figure_from_capacity_sweep, render_rows
from repro.core import ClusteringStudy, MachineConfig
from repro.core.workingset import knee_of, overlap_benefit, working_set_curve

APP_KWARGS = {"n_particles": 1024, "n_steps": 1}


def main() -> None:
    config = MachineConfig(n_processors=32)

    print("1. Working-set curve (cluster size 1)")
    curve = working_set_curve("barnes", sizes_kb=(1, 2, 4, 8, 16, None),
                              base_config=config, app_kwargs=APP_KWARGS)
    for label, rate, capacity in curve.rows():
        print(f"   {label:>6}: miss rate {rate:7.4f}  "
              f"capacity misses {capacity:,}")
    knee = knee_of(curve)
    print(f"   knee (the paper's 'working set'): "
          f"{'beyond probes' if knee is None else f'{knee:g} KB'}\n")

    print("2. Finite-capacity clustering grid (Figure 6 shape)")
    study = ClusteringStudy("barnes", config, dict(APP_KWARGS))
    sweep = study.capacity_sweep(cache_sizes=(2, 8, None),
                                 cluster_sizes=(1, 2, 4, 8))
    fig = figure_from_capacity_sweep("Barnes, finite capacity", sweep)
    print(render_rows(fig))
    print()

    print("3. Capacity misses at 8-way clustering vs unclustered")
    ratios = overlap_benefit("barnes", cache_kb=2, cluster_sizes=(1, 2, 4, 8),
                             base_config=config, app_kwargs=APP_KWARGS)
    for c, ratio in ratios.items():
        print(f"   {c}-way: {ratio:5.2f}x the 1-way capacity misses")
    print("\nA ratio well below 1.0 is working-set overlap: the shared")
    print("cache keeps one copy of the tree that every processor reads.")


if __name__ == "__main__":
    main()
