#!/usr/bin/env python
"""Shared-cache clusters vs shared-main-memory (snoopy) clusters.

The paper's §2 describes both organisations and evaluates the first; the
library implements both.  This example runs MP3D — the communication
stress test — on each, at the same cluster size and cache budget, and
reports where the time goes plus the cache-to-cache transfer count that is
the snoopy organisation's distinctive benefit.

Run:  python examples/snoopy_vs_shared_cache.py
"""

from repro.apps.registry import build_app
from repro.core import MachineConfig
from repro.memory.snoopy import SnoopyClusterMemorySystem
from repro.sim.engine import Engine
from repro.sim.stats import summarize

APP_KWARGS = {"n_particles": 8000, "n_steps": 2}


def main() -> None:
    config = MachineConfig(n_processors=16, cluster_size=4,
                           cache_kb_per_processor=4)

    print(f"=== shared-cache cluster: {config.describe()} ===")
    app = build_app("mp3d", config, **APP_KWARGS)
    shared = app.run()
    print(summarize(shared).format())
    print()

    print("=== snoopy shared-memory cluster (same budget) ===")
    app = build_app("mp3d", config, **APP_KWARGS)
    app.ensure_setup()
    mem = SnoopyClusterMemorySystem(config, app.allocator)
    snoopy = Engine(config, mem).run(app.program)
    print(summarize(snoopy).format())
    print(f"cache-to-cache transfers: {mem.c2c_transfers:,}")
    print()

    ratio = snoopy.execution_time / shared.execution_time
    print(f"snoopy / shared-cache execution time: {ratio:.2f}")
    print("Shared caches pool capacity and kill intra-cluster invalidations;")
    print("snoopy clusters keep private hit times but duplicate working sets")
    print("and pay the bus penalty — the trade-off of the paper's Section 2.")


if __name__ == "__main__":
    main()
