"""Pluggable miss-latency providers: flat Table 1 or hop-based mesh.

Both memory systems (:mod:`repro.memory.coherence`,
:mod:`repro.memory.snoopy`) price directory transactions through a
:class:`LatencyProvider` built by :func:`make_latency_provider`:

* :class:`TableLatency` wraps the paper's :class:`~repro.core.config.
  LatencyModel` verbatim — the default, bit-identical to charging
  ``config.latency.miss_cycles(...)`` directly;
* :class:`MeshLatency` prices the same four transaction shapes over a real
  topology: per-hop wire + router cycles along the routed legs, directory
  occupancy at the home node, and (optionally) M/D/1 queueing delay from
  the :class:`~repro.network.contention.ContentionModel`.

Table-1 calibration
-------------------
The mesh provider is *calibrated to Table 1 by construction*.  The base
cost of a transaction is ``table_value - hop_cycles * expected_hops``,
where the expectation is taken over the participant the shape leaves
free once requester and home are fixed:

* the two-leg shapes (remote clean, local home with a dirty remote
  owner) have their whole route determined by the two endpoints, so the
  expectation is exact and their zero-load latency *is* the Table 1
  value for every pair of clusters;
* the three-leg dirty shape keeps the forwarded owner's geography: the
  ``home -> owner -> requester`` legs are priced by their actual hops,
  calibrated so the mean over uniformly distributed third-party owners
  equals Table 1 for every (requester, home) pair.

Pinning the fully-determined shapes matters because execution time is a
*max* over barrier-synchronised processors: a model that only matched
per-requester means would still run hub-heavy phases (coarse multigrid
levels, global reductions) at the speed of the farthest corner node and
drift several percent above the flat table at 64 clusters.  With this
calibration an unloaded mesh tracks flat-table execution times well
inside the contention sweep's 2% acceptance band, while hop counts and
link occupancy still vary per transaction — which is what the contention
model feeds on.

Transaction shapes (paper Table 1, §3.1):

==========================  =============================  ==============
shape                       legs routed                    Table 1 cycles
==========================  =============================  ==============
local clean                 none (stays at home = self)    30
local, dirty remote         req->owner, owner->req         100
remote clean                req->home, home->req           100
remote, dirty third party   req->home, home->owner,        150
                            owner->req
==========================  =============================  ==============

A line dirty in the *home's own* cache is served by home, i.e. priced as
remote-clean — the same equivalence :class:`LatencyModel` applies.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from ..core.config import LatencyModel, MachineConfig
from ..core.metrics import NetworkStats
from .contention import ContentionModel
from .topology import make_topology

__all__ = ["LatencyProvider", "MeshLatency", "TableLatency",
           "make_latency_provider"]


@runtime_checkable
class LatencyProvider(Protocol):
    """What the memory systems need from a latency model."""

    def hit_cycles(self, cluster_size: int) -> int:
        """Shared-cache hit time (Table 1 rows 1-3; used by the §6 model)."""

    def miss_cycles(self, requester: int, home: int,
                    dirty_owner: int | None, now: int = 0) -> int:
        """Stall cycles of a miss issued at simulated time ``now``."""

    def stats(self) -> NetworkStats | None:
        """Accumulated interconnect counters (``None`` if not modelled)."""


class TableLatency:
    """The paper's flat Table 1 latencies (delegates to ``LatencyModel``).

    Bit-identical to the historical direct calls — same values, same
    ``ValueError`` on a requester that owns the line it misses on.
    """

    def __init__(self, model: LatencyModel) -> None:
        self.model = model

    def hit_cycles(self, cluster_size: int) -> int:
        return self.model.hit_cycles(cluster_size)

    def miss_cycles(self, requester: int, home: int,
                    dirty_owner: int | None, now: int = 0) -> int:
        return self.model.miss_cycles(requester, home, dirty_owner)

    def stats(self) -> NetworkStats | None:
        return None


class MeshLatency:
    """Hop-based miss latency over a routed topology, Table-1 calibrated.

    One instance per memory system: it owns the run's contention state and
    :class:`~repro.core.metrics.NetworkStats`, so every simulation starts
    on a cold network.
    """

    def __init__(self, config: MachineConfig) -> None:
        net = config.network
        table = config.latency
        self.table = table
        self.hop_cycles = net.hop_cycles
        self.topology = make_topology(net.topology, config.n_clusters)
        self._stats = NetworkStats()
        self.contention = (ContentionModel(
            self.topology.n_links, config.n_clusters,
            link_service=net.hop_cycles,
            directory_service=net.directory_cycles,
            background_load=net.background_load,
            stats=self._stats) if net.contention else None)
        self._calibrate(config.n_clusters)

    # ------------------------------------------------------------ calibration
    def _calibrate(self, n: int) -> None:
        """Base costs making every shape's zero-load latency match Table 1.

        Requester and home are fixed when a miss is priced, so the two-leg
        round trips are pinned exactly; only the three-leg dirty shape has
        a free participant (the owner) and its base is the per-(r, h) mean
        ``E_o[hops(h,o) + hops(o,r)]`` over owners distinct from both
        (closed form from row sums of the symmetric hop matrix,
        brute-forced in tests/test_network.py).
        """
        topo = self.topology
        self._n = n
        self._rowsum = [sum(topo.hops(r, x) for x in range(n))
                        for r in range(n)]

    def _mean_forward_hops(self, requester: int, home: int) -> float:
        """``E_o[hops(home,o) + hops(o,requester)]`` over ``o`` not in
        ``{requester, home}`` (uniform)."""
        n = self._n
        if n <= 2:
            return 0.0  # the shape needs three distinct clusters
        rs = self._rowsum
        direct = self.topology.hops(requester, home)
        return (rs[home] + rs[requester] - 2.0 * direct) / (n - 2)

    # ------------------------------------------------------------------- API
    def hit_cycles(self, cluster_size: int) -> int:
        return self.table.hit_cycles(cluster_size)

    def miss_cycles(self, requester: int, home: int,
                    dirty_owner: int | None, now: int = 0) -> int:
        if dirty_owner == requester and dirty_owner is not None:
            raise ValueError(
                "requesting cluster cannot be the dirty owner on a miss")
        table = self.table
        hop = self.hop_cycles
        route = self.topology.route
        if dirty_owner is None or dirty_owner == home:
            if requester == home:
                base = float(table.local_clean)
                links: tuple[int, ...] = ()
            else:
                links = route(requester, home) + route(home, requester)
                base = table.remote_clean - hop * len(links)
        elif requester == home:
            links = (route(requester, dirty_owner)
                     + route(dirty_owner, requester))
            base = table.local_dirty_remote - hop * len(links)
        else:
            links = (route(requester, home) + route(home, dirty_owner)
                     + route(dirty_owner, requester))
            base = (table.remote_dirty_third_party
                    - hop * (self.topology.hops(requester, home)
                             + self._mean_forward_hops(requester, home)))
        hops = len(links)
        latency = base + self.hop_cycles * hops
        stats = self._stats
        stats.messages += 1
        stats.hops += hops
        cycles = round(latency)
        if self.contention is not None:
            delayed = round(latency + self.contention.transaction_delay(
                links, home, now))
            stats.queue_delay_cycles += delayed - cycles
            cycles = delayed
        return cycles if cycles >= 1 else 1

    def stats(self) -> NetworkStats | None:
        return self._stats


def make_latency_provider(config: MachineConfig) -> LatencyProvider:
    """Build the provider selected by ``config.network.provider``."""
    if config.network.provider == "mesh":
        return MeshLatency(config)
    return TableLatency(config.latency)
