"""Queueing contention over links and directories (M/D/1 approximation).

The simulated miss stream is the arrival process: every directory
transaction occupies each link on its route for the link service time
(one hop's wire + router cycles) and the home directory for the directory
occupancy.  Utilization of a resource at simulated time ``t`` is::

    rho = busy_cycles_so_far / max(t, WARMUP_CYCLES) + background_load

capped just below saturation, and the queueing delay charged for passing
through it is the M/D/1 mean wait::

    Wq(rho, S) = rho * S / (2 * (1 - rho))

(deterministic service of length ``S``, Poisson-approximated arrivals).

Assumptions, deliberately simple and stated:

* arrivals are treated as memoryless even though the miss stream is
  bursty — M/D/1 underestimates burst queueing but keeps the model
  closed-form and deterministic;
* utilization uses the run-so-far average, not a sliding window, so early
  transactions see a cold (empty) network.  The denominator is floored at
  :data:`WARMUP_CYCLES`: without the floor the startup burst (large
  ``busy``, tiny ``now``) reads as near-saturation and charges phantom
  queueing that the long-run average — a couple of percent utilization on
  typical runs — never justifies;
* ``background_load`` models traffic from everything this simulation does
  not capture (other jobs, DMA, coherence overhead) as a uniform additive
  utilization on every link and directory;
* utilization is capped at :data:`UTILIZATION_CAP` — the open-loop miss
  stream cannot throttle itself, so an uncapped queue would diverge.

Everything is integer-or-float arithmetic in a fixed order, so runs are
deterministic and serial/process/cached results stay byte-identical.
"""

from __future__ import annotations

from ..core.metrics import NetworkStats

__all__ = ["ContentionModel", "UTILIZATION_CAP", "WARMUP_CYCLES"]

#: utilization ceiling for the queueing formula (keeps delays finite)
UTILIZATION_CAP = 0.95

#: floor of the utilization estimate's time denominator — damps the
#: startup transient where busy/now spikes on a handful of transactions
WARMUP_CYCLES = 5_000


def _md1_wait(rho: float, service: float) -> float:
    """M/D/1 mean queueing delay at utilization ``rho``, service ``service``."""
    return rho * service / (2.0 * (1.0 - rho))


class ContentionModel:
    """Tracks per-link and per-directory occupancy; prices queueing delay.

    Parameters
    ----------
    n_links:
        Number of links in the topology (see ``Topology.n_links``).
    n_directories:
        Number of directory/memory nodes (= clusters).
    link_service:
        Cycles one transaction occupies one link (one hop's cost).
    directory_service:
        Cycles one transaction occupies the home directory.
    background_load:
        Synthetic utilization in ``[0, 1)`` added to every resource.
    stats:
        :class:`NetworkStats` to accumulate busy/delay counters into.
    """

    def __init__(self, n_links: int, n_directories: int, link_service: int,
                 directory_service: int, background_load: float,
                 stats: NetworkStats) -> None:
        self.link_busy = [0] * n_links
        self.directory_busy = [0] * n_directories
        self.link_service = link_service
        self.directory_service = directory_service
        self.background_load = background_load
        self.stats = stats

    def _utilization(self, busy: int, now: int) -> float:
        rho = busy / now + self.background_load
        return rho if rho < UTILIZATION_CAP else UTILIZATION_CAP

    def transaction_delay(self, links: tuple[int, ...], home: int,
                          now: int) -> float:
        """Queueing delay for one transaction routed at time ``now``.

        Records the transaction's own occupancy on every resource it
        crosses, so later traffic queues behind it.
        """
        elapsed = now if now > WARMUP_CYCLES else WARMUP_CYCLES
        stats = self.stats
        delay = 0.0
        link_service = self.link_service
        for link in links:
            rho = self._utilization(self.link_busy[link], elapsed)
            delay += _md1_wait(rho, link_service)
            self.link_busy[link] += link_service
            stats.link_busy_cycles += link_service
            if rho > stats.peak_link_utilization:
                stats.peak_link_utilization = rho
        rho = self._utilization(self.directory_busy[home], elapsed)
        delay += _md1_wait(rho, self.directory_service)
        self.directory_busy[home] += self.directory_service
        stats.directory_busy_cycles += self.directory_service
        return delay
