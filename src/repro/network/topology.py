"""Interconnect topologies: cluster nodes, coordinates, hops, and routes.

The paper's Table 1 charges every miss a flat latency, which is equivalent
to assuming an unloaded crossbar whose port-to-port delay has been folded
into the protocol numbers.  To study what happens when distance and load
matter, this module maps cluster ids onto physical nodes and answers two
questions the latency layer asks:

* ``hops(a, b)`` — how many hops a message from node ``a`` to node ``b``
  traverses (0 when ``a == b``);
* ``route(a, b)`` — which *links* it occupies on the way, as a tuple of
  stable integer link ids, so the contention model can track per-link
  utilization.

Two concrete topologies:

* :class:`MeshTopology` — a near-square 2D mesh with dimension-order (X
  then Y) routing, the canonical DASH/Origin-era fabric.  Links are the
  four directed ports of each node.
* :class:`CrossbarTopology` — the idealised network implied by Table 1:
  every distinct pair is one hop apart and the only shared resource is the
  destination's input port (one link per node).
"""

from __future__ import annotations

__all__ = ["CrossbarTopology", "MeshTopology", "make_topology"]


def mesh_dims(n_nodes: int) -> tuple[int, int]:
    """Near-square (width, height) factorization with ``width <= height``."""
    if n_nodes <= 0:
        raise ValueError("n_nodes must be positive")
    width = int(n_nodes ** 0.5)
    while n_nodes % width:
        width -= 1
    return width, n_nodes // width


class MeshTopology:
    """2D mesh of cluster nodes with dimension-order routing.

    Node ``k`` sits at ``(k % width, k // width)``; a message from ``a``
    to ``b`` first walks the X dimension, then Y.  Each traversed link is
    one of the four directed ports (+x, -x, +y, -y) of the node it leaves.
    """

    name = "mesh"

    #: directed port indices (order matters only for link-id stability)
    _PORT_XP, _PORT_XN, _PORT_YP, _PORT_YN = 0, 1, 2, 3

    def __init__(self, n_nodes: int) -> None:
        self.n_nodes = n_nodes
        self.width, self.height = mesh_dims(n_nodes)
        #: one link id per (node, directed port)
        self.n_links = 4 * n_nodes

    def coords(self, node: int) -> tuple[int, int]:
        """(x, y) position of a node."""
        if not (0 <= node < self.n_nodes):
            raise ValueError(f"node {node} out of range")
        return node % self.width, node // self.width

    def node_at(self, x: int, y: int) -> int:
        """Node id at position (x, y)."""
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise ValueError(f"({x}, {y}) outside {self.width}x{self.height}")
        return y * self.width + x

    def hops(self, a: int, b: int) -> int:
        """Manhattan distance between two nodes."""
        ax, ay = self.coords(a)
        bx, by = self.coords(b)
        return abs(ax - bx) + abs(ay - by)

    def route(self, a: int, b: int) -> tuple[int, ...]:
        """Link ids occupied by a message from ``a`` to ``b`` (X then Y)."""
        ax, ay = self.coords(a)
        bx, by = self.coords(b)
        links = []
        x, y = ax, ay
        while x != bx:
            port = self._PORT_XP if bx > x else self._PORT_XN
            links.append(4 * self.node_at(x, y) + port)
            x += 1 if bx > x else -1
        while y != by:
            port = self._PORT_YP if by > y else self._PORT_YN
            links.append(4 * self.node_at(x, y) + port)
            y += 1 if by > y else -1
        return tuple(links)


class CrossbarTopology:
    """Ideal single-stage crossbar: one hop between any two distinct nodes.

    The only contended resource is the destination's input port, so
    ``route(a, b)`` occupies exactly one link — link ``b``.
    """

    name = "crossbar"

    def __init__(self, n_nodes: int) -> None:
        if n_nodes <= 0:
            raise ValueError("n_nodes must be positive")
        self.n_nodes = n_nodes
        self.n_links = n_nodes

    def hops(self, a: int, b: int) -> int:
        for node in (a, b):
            if not (0 <= node < self.n_nodes):
                raise ValueError(f"node {node} out of range")
        return 0 if a == b else 1

    def route(self, a: int, b: int) -> tuple[int, ...]:
        return () if a == b else (b,)


def make_topology(name: str, n_nodes: int):
    """Build a topology by its :class:`~repro.core.config.NetworkConfig` name."""
    if name == "mesh":
        return MeshTopology(n_nodes)
    if name == "crossbar":
        return CrossbarTopology(n_nodes)
    raise ValueError(f"unknown topology {name!r}")
