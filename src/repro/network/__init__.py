"""Interconnect subsystem: topology, hop-based latency, and contention.

The paper's §3.1 methodology charges every miss a flat Table 1 latency and
explicitly does not model network or directory contention.  This package
turns that flat table into one provider among several:

* :mod:`repro.network.topology` — 2D mesh and ideal crossbar geometries:
  cluster id -> coordinates, hop counts, and routed links;
* :mod:`repro.network.latency` — the :class:`LatencyProvider` protocol
  with :class:`TableLatency` (bit-identical Table 1) and
  :class:`MeshLatency` (per-hop wire + router cycles, directory occupancy,
  Table-1-calibrated base costs);
* :mod:`repro.network.contention` — per-link and per-directory M/D/1
  queueing driven by the simulated miss stream plus a synthetic
  background load.

Select a model via :class:`repro.core.config.NetworkConfig` (the
``network`` field of :class:`~repro.core.config.MachineConfig`); run the
contention-sensitivity sweep with
:meth:`repro.core.study.ClusteringStudy.contention_sweep` or the
``repro-clustering network`` CLI subcommand.
"""

from .contention import ContentionModel
from .latency import (LatencyProvider, MeshLatency, TableLatency,
                      make_latency_provider)
from .topology import CrossbarTopology, MeshTopology, make_topology

__all__ = [
    "ContentionModel",
    "CrossbarTopology", "MeshTopology", "make_topology",
    "LatencyProvider", "TableLatency", "MeshLatency",
    "make_latency_provider",
]
