"""Ocean — regular-grid nearest-neighbour multigrid solver (SPLASH-2 Ocean
analog).

Paper characterization (Tables 2-3): 130×130 grids (128×128 interior), ~25
grids; nearest-neighbour communication with a multigrid solver; working set
= a processor's partition of a grid, partitions disjoint.  Figure 2: Ocean
is the one application whose *inherent communication* clustering captures —
processors are assigned adjacent subgrids along rows of the processor grid,
so doubling the cluster size halves inter-cluster boundary traffic.
Figure 3 repeats the experiment with a small (66×66) grid where
communication matters more: clustering helps more, but load-imbalance sync
time grows.

We solve the Poisson problem −∇²u = f, u|∂Ω = 0 with a cell-centred
multigrid V-cycle: damped-Jacobi smoothing (double-buffered, so the
numerics are deterministic under any interleaving), residual restriction by
2×2 averaging, piecewise-constant prolongation.  Each level is partitioned
into square per-processor subgrids stored contiguously (the SPLASH-2 4-D
array layout) and placed at the owner's cluster.  Boundary stencil reads at
subgrid edges are the nearest-neighbour communication.

Like its SPLASH counterpart, the heavy data structures are one u (double
buffered), f, and r array per level — 5 levels × 4 arrays at the default
size, the structural analog of the paper's "25 grids".
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..core.config import MachineConfig
from ..memory.address import Region
from ..sim.program import Barrier, Op, Read, Work
from .base import Application, PhaseBarriers, proc_grid_shape

__all__ = ["OceanApp"]


def _padded(u: np.ndarray, i0: int, j0: int, sr: int, sc: int,
            n: int) -> np.ndarray:
    """Subgrid with halo: neighbour values inside the domain, reflective
    ghosts (−edge) at domain walls so the Dirichlet boundary sits exactly
    on the cell faces at every multigrid level."""
    pad = np.empty((sr + 2, sc + 2))
    pad[1:-1, 1:-1] = u[i0:i0 + sr, j0:j0 + sc]
    pad[0, 1:-1] = u[i0 - 1, j0:j0 + sc] if i0 > 0 else -u[i0, j0:j0 + sc]
    pad[-1, 1:-1] = (u[i0 + sr, j0:j0 + sc] if i0 + sr < n
                     else -u[i0 + sr - 1, j0:j0 + sc])
    pad[1:-1, 0] = u[i0:i0 + sr, j0 - 1] if j0 > 0 else -u[i0:i0 + sr, j0]
    pad[1:-1, -1] = (u[i0:i0 + sr, j0 + sc] if j0 + sc < n
                     else -u[i0:i0 + sr, j0 + sc - 1])
    pad[0, 0] = pad[0, -1] = pad[-1, 0] = pad[-1, -1] = 0.0
    return pad


class _Level:
    """Geometry plus numpy state for one multigrid level."""

    __slots__ = ("n", "h2", "sr", "sc", "u", "f", "r", "ru", "rf", "rr")

    def __init__(self, n: int, h2: float, sr: int, sc: int) -> None:
        self.n = n          #: interior points per side
        self.h2 = h2        #: grid spacing squared
        self.sr = sr        #: subgrid rows per processor
        self.sc = sc        #: subgrid cols per processor
        self.u = [np.zeros((n, n)), np.zeros((n, n))]  # double buffer
        self.f = np.zeros((n, n))
        self.r = np.zeros((n, n))
        self.ru: list[Region] = []  # the two u regions
        self.rf: Region | None = None
        self.rr: Region | None = None


class OceanApp(Application):
    """Multigrid Poisson solver on an ``n × n`` interior grid.

    Parameters
    ----------
    n:
        Interior grid points per side (default 128, the paper's "130×130
        grid"; Figure 3 uses 64, the paper's "66×66").  Must be divisible
        by the processor-grid rows and columns times ``2**(levels-1)``.
    n_vcycles:
        Number of multigrid V-cycles (default 2).
    nu1, nu2:
        Pre-/post-smoothing sweeps (defaults 2 and 1).
    """

    name = "ocean"

    def __init__(self, config: MachineConfig, n: int = 128,
                 n_vcycles: int = 3, nu1: int = 2, nu2: int = 1,
                 coarse_sweeps: int = 8, seed: int = 12345) -> None:
        super().__init__(config, seed)
        self.pr, self.pc = proc_grid_shape(config.n_processors)
        self.n = n
        self.n_vcycles = n_vcycles
        self.nu1, self.nu2 = nu1, nu2
        self.coarse_sweeps = coarse_sweeps
        # Build as many levels as divisibility allows (at least 1).
        self.levels: list[_Level] = []
        size, h2 = n, (1.0 / n) ** 2  # cell-centred spacing
        while size % self.pr == 0 and size % self.pc == 0 and size >= self.pr:
            self.levels.append(_Level(size, h2, size // self.pr, size // self.pc))
            if size % 2:
                break
            size //= 2
            h2 *= 4.0
        if not self.levels:
            raise ValueError(
                f"grid {n} not partitionable over a {self.pr}x{self.pc} "
                f"processor grid")

    # ------------------------------------------------------------- geometry
    def proc_at(self, pi: int, pj: int) -> int:
        return pi * self.pc + pj

    def proc_coords(self, pid: int) -> tuple[int, int]:
        return divmod(pid, self.pc)

    def _elem(self, lvl: _Level, i: int, j: int) -> int:
        """Element index of interior point (i, j) in subgrid-major layout."""
        pi, li = divmod(i, lvl.sr)
        pj, lj = divmod(j, lvl.sc)
        return ((pi * self.pc + pj) * lvl.sr + li) * lvl.sc + lj

    # ---------------------------------------------------------------- setup
    def setup(self) -> None:
        rng = self.rng(0)
        fine = self.levels[0]
        fine.f[:] = rng.uniform(-1.0, 1.0, size=(fine.n, fine.n))
        for li, lvl in enumerate(self.levels):
            n2 = lvl.n * lvl.n
            lvl.ru = [self.space.allocate(f"ocean.u{b}.L{li}", n2) for b in (0, 1)]
            lvl.rf = self.space.allocate(f"ocean.f.L{li}", n2)
            lvl.rr = self.space.allocate(f"ocean.r.L{li}", n2)
            for region in (*lvl.ru, lvl.rf, lvl.rr):
                self.place_partitions(region)

    # ------------------------------------------------------------ emission
    def _row_ops(self, lvl: _Level, region: Region, i: int, j0: int,
                 count: int, write: bool) -> Iterator[Op]:
        """Span over a contiguous run of row ``i`` (stays inside one subgrid
        because callers never cross a subgrid column boundary)."""
        start = self._elem(lvl, i, j0)
        if write:
            yield from self.write_span(region, start, count)
        else:
            yield from self.read_span(region, start, count)

    def _sweep_ops(self, pid: int, lvl: _Level, src: int) -> Iterator[Op]:
        """One damped-Jacobi sweep over my subgrid: read buffer ``src`` +
        f, write buffer ``1-src``.  Numerics happen first (src is stable
        within the phase)."""
        pi, pj = self.proc_coords(pid)
        n, sr, sc = lvl.n, lvl.sr, lvl.sc
        i0, j0 = pi * sr, pj * sc
        uo, un = lvl.u[src], lvl.u[1 - src]
        # --- real computation (vectorized, Dirichlet wall at cell faces:
        # ghost cell = -edge cell, consistent across multigrid levels) ----
        pad = _padded(uo, i0, j0, sr, sc, n)
        omega = 0.8  # weighted Jacobi: plain Jacobi does not smooth in 2-D
        jac = 0.25 * (
            pad[:-2, 1:-1] + pad[2:, 1:-1] + pad[1:-1, :-2] + pad[1:-1, 2:]
            + lvl.h2 * lvl.f[i0:i0 + sr, j0:j0 + sc])
        un[i0:i0 + sr, j0:j0 + sc] = ((1.0 - omega) * uo[i0:i0 + sr, j0:j0 + sc]
                                      + omega * jac)
        # --- reference stream ---------------------------------------------
        rsrc, rdst, rf = lvl.ru[src], lvl.ru[1 - src], lvl.rf
        for li in range(sr):
            i = i0 + li
            # north neighbour row (remote subgrid when li == 0)
            if i > 0:
                yield from self._row_ops(lvl, rsrc, i - 1, j0, sc, write=False)
            # own row (west/east interior neighbours + centre share lines)
            yield from self._row_ops(lvl, rsrc, i, j0, sc, write=False)
            # south neighbour row
            if i + 1 < n:
                yield from self._row_ops(lvl, rsrc, i + 1, j0, sc, write=False)
            # west/east halo elements from side neighbours
            if j0 > 0:
                yield Read(rsrc.element(self._elem(lvl, i, j0 - 1)))
            if j0 + sc < n:
                yield Read(rsrc.element(self._elem(lvl, i, j0 + sc)))
            yield from self._row_ops(lvl, rf, i, j0, sc, write=False)
            # the real Ocean updates several coupled fields per point;
            # ~60 cycles/point of arithmetic is representative
            yield Work(60 * sc)
            yield from self._row_ops(lvl, rdst, i, j0, sc, write=True)

    def _residual_ops(self, pid: int, lvl: _Level, src: int) -> Iterator[Op]:
        """r = f − A·u(src) over my subgrid (same halo pattern as a sweep)."""
        pi, pj = self.proc_coords(pid)
        n, sr, sc = lvl.n, lvl.sr, lvl.sc
        i0, j0 = pi * sr, pj * sc
        u = lvl.u[src]
        pad = _padded(u, i0, j0, sr, sc, n)
        lap = (4.0 * pad[1:-1, 1:-1] - pad[:-2, 1:-1] - pad[2:, 1:-1]
               - pad[1:-1, :-2] - pad[1:-1, 2:]) / lvl.h2
        lvl.r[i0:i0 + sr, j0:j0 + sc] = lvl.f[i0:i0 + sr, j0:j0 + sc] - lap
        rsrc, rf, rr = lvl.ru[src], lvl.rf, lvl.rr
        for li in range(sr):
            i = i0 + li
            if i > 0:
                yield from self._row_ops(lvl, rsrc, i - 1, j0, sc, write=False)
            yield from self._row_ops(lvl, rsrc, i, j0, sc, write=False)
            if i + 1 < n:
                yield from self._row_ops(lvl, rsrc, i + 1, j0, sc, write=False)
            if j0 > 0:
                yield Read(rsrc.element(self._elem(lvl, i, j0 - 1)))
            if j0 + sc < n:
                yield Read(rsrc.element(self._elem(lvl, i, j0 + sc)))
            yield from self._row_ops(lvl, rf, i, j0, sc, write=False)
            yield Work(62 * sc)
            yield from self._row_ops(lvl, rr, i, j0, sc, write=True)

    def _restrict_ops(self, pid: int, fine: _Level, coarse: _Level) -> Iterator[Op]:
        """coarse.f = 2×2 average of fine.r; coarse.u(0) zeroed.

        Both levels are partitioned over the same processor grid, so the
        2×2 block feeding my coarse point lies in my own fine subgrid —
        restriction is communication-free, as in real multigrid codes.
        """
        pi, pj = self.proc_coords(pid)
        ci0, cj0 = pi * coarse.sr, pj * coarse.sc
        blk = fine.r[2 * ci0:2 * (ci0 + coarse.sr), 2 * cj0:2 * (cj0 + coarse.sc)]
        coarse.f[ci0:ci0 + coarse.sr, cj0:cj0 + coarse.sc] = 0.25 * (
            blk[0::2, 0::2] + blk[1::2, 0::2] + blk[0::2, 1::2] + blk[1::2, 1::2])
        coarse.u[0][ci0:ci0 + coarse.sr, cj0:cj0 + coarse.sc] = 0.0
        coarse.u[1][ci0:ci0 + coarse.sr, cj0:cj0 + coarse.sc] = 0.0
        for li in range(coarse.sr):
            fi = 2 * (ci0 + li)
            yield from self._row_ops(fine, fine.rr, fi, 2 * cj0, 2 * coarse.sc, False)
            yield from self._row_ops(fine, fine.rr, fi + 1, 2 * cj0, 2 * coarse.sc, False)
            yield Work(8 * coarse.sc)
            yield from self._row_ops(coarse, coarse.rf, ci0 + li, cj0, coarse.sc, True)
            yield from self._row_ops(coarse, coarse.ru[0], ci0 + li, cj0, coarse.sc, True)
            yield from self._row_ops(coarse, coarse.ru[1], ci0 + li, cj0, coarse.sc, True)

    def _prolong_ops(self, pid: int, fine: _Level, coarse: _Level,
                     fine_buf: int, coarse_buf: int) -> Iterator[Op]:
        """fine.u(fine_buf) += piecewise-constant expansion of coarse.u."""
        pi, pj = self.proc_coords(pid)
        ci0, cj0 = pi * coarse.sr, pj * coarse.sc
        cu = coarse.u[coarse_buf][ci0:ci0 + coarse.sr, cj0:cj0 + coarse.sc]
        expanded = np.repeat(np.repeat(cu, 2, axis=0), 2, axis=1)
        fi0, fj0 = 2 * ci0, 2 * cj0
        for b in (0, 1):
            fine.u[b][fi0:fi0 + 2 * coarse.sr, fj0:fj0 + 2 * coarse.sc] += expanded
        # correcting both fine buffers keeps them coherent for the next sweep
        for li in range(coarse.sr):
            yield from self._row_ops(coarse, coarse.ru[coarse_buf],
                                     ci0 + li, cj0, coarse.sc, False)
            yield Work(4 * coarse.sc)
            for b in (0, 1):
                yield from self._row_ops(fine, fine.ru[b], 2 * (ci0 + li),
                                         fj0, 2 * coarse.sc, True)
                yield from self._row_ops(fine, fine.ru[b], 2 * (ci0 + li) + 1,
                                         fj0, 2 * coarse.sc, True)

    # -------------------------------------------------------------- program
    def _vcycle_ops(self, pid: int, bar: PhaseBarriers, depth: int,
                    buf: list[int]) -> Iterator[Op]:
        """Recursive V-cycle.  ``buf[depth]`` tracks the current u buffer of
        each level (identical across processors — same control flow)."""
        lvl = self.levels[depth]
        if depth == len(self.levels) - 1:
            for _ in range(self.coarse_sweeps):
                yield from self._sweep_ops(pid, lvl, buf[depth])
                buf[depth] ^= 1
                yield Barrier(bar())
            return
        for _ in range(self.nu1):
            yield from self._sweep_ops(pid, lvl, buf[depth])
            buf[depth] ^= 1
            yield Barrier(bar())
        yield from self._residual_ops(pid, lvl, buf[depth])
        yield Barrier(bar())
        yield from self._restrict_ops(pid, lvl, self.levels[depth + 1])
        buf[depth + 1] = 0
        yield Barrier(bar())
        yield from self._vcycle_ops(pid, bar, depth + 1, buf)
        yield from self._prolong_ops(pid, lvl, self.levels[depth + 1],
                                     buf[depth], buf[depth + 1])
        yield Barrier(bar())
        for _ in range(self.nu2):
            yield from self._sweep_ops(pid, lvl, buf[depth])
            buf[depth] ^= 1
            yield Barrier(bar())

    def program(self, pid: int) -> Iterator[Op]:
        bar = PhaseBarriers()
        buf = [0] * len(self.levels)
        yield Barrier(bar())
        for _ in range(self.n_vcycles):
            yield from self._vcycle_ops(pid, bar, 0, buf)
        self._final_buf = buf[0]

    # ------------------------------------------------------------- checking
    def solution(self) -> np.ndarray:
        """Current fine-grid iterate."""
        return self.levels[0].u[getattr(self, "_final_buf", 0)].copy()

    def residual_norm(self, buf: int | None = None) -> float:
        """‖f − A·u‖₂ on the fine grid (independent numpy evaluation)."""
        lvl = self.levels[0]
        u = lvl.u[self._final_buf if buf is None else buf]
        pad = _padded(u, 0, 0, lvl.n, lvl.n, lvl.n)
        lap = (4 * pad[1:-1, 1:-1] - pad[:-2, 1:-1] - pad[2:, 1:-1]
               - pad[1:-1, :-2] - pad[1:-1, 2:]) / lvl.h2
        return float(np.linalg.norm(lvl.f - lap))
