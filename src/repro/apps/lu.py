"""LU — blocked dense LU factorization (SPLASH-2 LU analog).

Paper characterization (Tables 2-3): 512×512 matrix in 16×16 blocks; low
communication volume along rows and columns of the processor grid; working
set ≈ one block (2 KB), disjoint between processors.  Figure 2 shows ≥98%
of the 1-per-cluster execution time at 8-way clustering (clustering barely
helps); Table 7 shows clustering *hurting* once shared-cache hit-time costs
are added.

Structure (per elimination step ``k``):

1. the owner of diagonal block (k,k) factorizes it in place (no pivoting —
   the generated matrix is diagonally dominant, as in SPLASH-2);
2. *barrier*; owners of perimeter blocks (k,J) and (I,k) update them
   against the diagonal block (this is where processors in the same grid
   row/column read the same remote block — the prefetching opportunity the
   paper discusses);
3. *barrier*; owners of interior blocks (I,J) update them against their
   row and column perimeter blocks;
4. *barrier*.

Blocks are assigned to processors by 2-D scatter over an 8×8 processor
grid and stored block-major so each block is contiguous (one 2 KB working
set per processor); each block's pages are placed at its owner's cluster.

The numerics are real: the shared matrix is factored block-by-block with
numpy, and ``L @ U`` reconstructs the input (checked by the unit tests).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..core.config import MachineConfig
from ..sim.program import Barrier, Op, Work
from .base import Application, PhaseBarriers, proc_grid_shape

__all__ = ["LUApp"]


class LUApp(Application):
    """Blocked LU factorization without pivoting.

    Parameters
    ----------
    n:
        Matrix dimension (default 384; the paper used 512).
    block:
        Block dimension (default 16, the paper's size — 16×16×8 B = 2 KB,
        the working set of Table 3).
    """

    name = "lu"

    def __init__(self, config: MachineConfig, n: int = 384, block: int = 16,
                 seed: int = 12345) -> None:
        super().__init__(config, seed)
        if n % block != 0:
            raise ValueError(f"block {block} must divide n {n}")
        self.n = n
        self.block = block
        self.nb = n // block
        self.proc_rows, self.proc_cols = proc_grid_shape(config.n_processors)
        #: the live matrix, factored in place as the simulation progresses
        self.A = np.empty((n, n), dtype=np.float64)
        self.A_input = np.empty((n, n), dtype=np.float64)

    # ------------------------------------------------------------ ownership
    def owner_of(self, bi: int, bj: int) -> int:
        """Processor owning block (bi, bj): 2-D scatter decomposition."""
        return (bi % self.proc_rows) * self.proc_cols + (bj % self.proc_cols)

    def _block_elem(self, bi: int, bj: int) -> int:
        """First element index of block (bi, bj) in block-major layout."""
        return (bi * self.nb + bj) * self.block * self.block

    # ---------------------------------------------------------------- setup
    def setup(self) -> None:
        rng = self.rng(0)
        n = self.n
        self.A_input[:] = rng.uniform(-1.0, 1.0, size=(n, n))
        # Diagonal dominance keeps no-pivot LU numerically safe.
        self.A_input[np.arange(n), np.arange(n)] += n
        self.A[:] = self.A_input
        self.matrix = self.space.allocate("lu.matrix", n * n, element_size=8)
        # Each block's storage is contiguous; place it at its owner's cluster.
        bsz = self.block * self.block
        for bi in range(self.nb):
            for bj in range(self.nb):
                start = self.matrix.element(self._block_elem(bi, bj))
                self.allocator.place_range(
                    start, bsz * 8, self.config.cluster_of(self.owner_of(bi, bj)))

    # ----------------------------------------------------------- numerics
    def _view(self, bi: int, bj: int) -> np.ndarray:
        """Writable (block, block) view of block (bi, bj)."""
        b = self.block
        return self.A[bi * b:(bi + 1) * b, bj * b:(bj + 1) * b]

    @staticmethod
    def _factor_diag(d: np.ndarray) -> None:
        """Unblocked in-place LU (unit lower) of one diagonal block."""
        m = d.shape[0]
        for k in range(m):
            d[k + 1:, k] /= d[k, k]
            d[k + 1:, k + 1:] -= np.outer(d[k + 1:, k], d[k, k + 1:])

    @staticmethod
    def _solve_row(d: np.ndarray, u: np.ndarray) -> None:
        """u := L(d)^{-1} u  (forward substitution with unit lower L)."""
        m = d.shape[0]
        for k in range(m):
            u[k + 1:, :] -= np.outer(d[k + 1:, k], u[k, :])

    @staticmethod
    def _solve_col(d: np.ndarray, l_: np.ndarray) -> None:
        """l := l U(d)^{-1} (back substitution against upper U)."""
        m = d.shape[0]
        for k in range(m):
            l_[:, k] /= d[k, k]
            l_[:, k + 1:] -= np.outer(l_[:, k], d[k, k + 1:])

    # ----------------------------------------------------------- emission
    def _touch_block(self, bi: int, bj: int, write: bool) -> Iterator[Op]:
        start = self._block_elem(bi, bj)
        count = self.block * self.block
        if write:
            yield from self.write_span(self.matrix, start, count)
        else:
            yield from self.read_span(self.matrix, start, count)

    def program(self, pid: int) -> Iterator[Op]:
        bar = PhaseBarriers()
        b = self.block
        nb = self.nb
        # flop costs charged as Work, ~2 cycles/flop (FP multiply-add
        # chains plus block addressing on early-90s RISC pipelines)
        diag_flops = (4 * b * b * b) // 3
        solve_flops = 2 * b * b * b
        update_flops = 4 * b * b * b

        for k in range(nb):
            # Phase 1: diagonal factorization by its owner.
            if self.owner_of(k, k) == pid:
                self._factor_diag(self._view(k, k))
                yield from self._touch_block(k, k, write=False)
                yield Work(diag_flops)
                yield from self._touch_block(k, k, write=True)
            yield Barrier(bar())

            # Phase 2: perimeter row and column updates.
            for bj in range(k + 1, nb):
                if self.owner_of(k, bj) == pid:
                    self._solve_row(self._view(k, k), self._view(k, bj))
                    yield from self._touch_block(k, k, write=False)
                    yield from self._touch_block(k, bj, write=False)
                    yield Work(solve_flops)
                    yield from self._touch_block(k, bj, write=True)
            for bi in range(k + 1, nb):
                if self.owner_of(bi, k) == pid:
                    self._solve_col(self._view(k, k), self._view(bi, k))
                    yield from self._touch_block(k, k, write=False)
                    yield from self._touch_block(bi, k, write=False)
                    yield Work(solve_flops)
                    yield from self._touch_block(bi, k, write=True)
            yield Barrier(bar())

            # Phase 3: interior updates A[I,J] -= A[I,k] @ A[k,J].
            for bi in range(k + 1, nb):
                for bj in range(k + 1, nb):
                    if self.owner_of(bi, bj) != pid:
                        continue
                    self._view(bi, bj)[...] -= self._view(bi, k) @ self._view(k, bj)
                    yield from self._touch_block(bi, k, write=False)
                    yield from self._touch_block(k, bj, write=False)
                    yield from self._touch_block(bi, bj, write=False)
                    yield Work(update_flops)
                    yield from self._touch_block(bi, bj, write=True)
            yield Barrier(bar())

    # ------------------------------------------------------------- checking
    def reconstruct(self) -> np.ndarray:
        """``L @ U`` from the factored matrix (for correctness tests)."""
        L = np.tril(self.A, -1) + np.eye(self.n)
        U = np.triu(self.A)
        return L @ U
