"""FMM — adaptive fast multipole N-body method (SPLASH-2 FMM analog).

Paper characterization (Tables 2-3): 8 192 particles; communication like
Barnes (low-volume, unstructured, hierarchical) with an even *smaller*,
constant-size working set — the table of box multipole moments.  Figure 2:
no benefit from clustering with infinite caches; Figure 7: working-set
overlap benefits appear already at the 4 KB cache size (the FMM working set
sits near 4 KB at the paper's problem size).

We implement a uniform-tree 2-D FMM with monopole moments:

1. **upward pass** — leaf-box moments from resident particles, then level
   by level (barrier-separated) parents aggregate their four children
   (hierarchical communication);
2. **far field** — for every owned particle, walk its ancestor chain; at
   each level accumulate the moments of the standard *interaction list*
   (children of the parent's neighbours that are not neighbours) evaluated
   at the particle (reads of the shared, read-only moment table);
3. **near field** — exact particle-particle interactions with the 3×3
   neighbourhood of leaf boxes (reads of other processors' particle lines);
4. **update** — leapfrog integration of owned bodies, reflecting at the
   unit-square walls.

Together the interaction lists and the near field tile space exactly once,
so the computed acceleration approximates the direct O(n²) sum — the unit
tests check this quantitatively (monopole-only well-separated expansions
give a few percent error).

Substitution note (DESIGN.md): SPLASH-2 FMM is adaptive 2-D with high-order
multipoles; the uniform tree with monopole moments preserves the paper's
relevant properties — the hierarchical communication pattern, the tiny
read-shared moment working set, and real, testable physics.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..core.config import MachineConfig
from ..sim.program import Barrier, Op, Read, Work, Write
from .base import Application, PhaseBarriers

__all__ = ["FMMApp"]

_BODY_DOUBLES = 8   # pos(2) + vel(2) + mass + pad = one line
_BOX_DOUBLES = 8    # com(2) + mass + pad = one line


class FMMApp(Application):
    """Uniform-tree fast multipole method on the unit square.

    Parameters
    ----------
    n_particles:
        Body count (default 2 048; the paper used 8 192).
    levels:
        Leaf level of the tree; the leaf grid is ``2**levels`` per side
        (default 4 → 16×16 leaf boxes).
    n_steps:
        Time steps (default 2).
    """

    name = "fmm"

    def __init__(self, config: MachineConfig, n_particles: int = 2048,
                 levels: int = 4, n_steps: int = 2, dt: float = 0.01,
                 softening: float = 0.02, seed: int = 12345) -> None:
        super().__init__(config, seed)
        if levels < 2:
            raise ValueError("levels must be >= 2 (interaction lists start "
                             "at level 2)")
        self.n = n_particles
        self.levels = levels
        self.n_steps = n_steps
        self.dt = dt
        self.eps2 = softening * softening
        self.pos = np.empty((n_particles, 2))
        self.vel = np.empty((n_particles, 2))
        self.mass = np.empty(n_particles)
        self.acc = np.zeros((n_particles, 2))
        # level ℓ grid is 2^ℓ × 2^ℓ; linear box ids with per-level offsets
        self._level_off = [0]
        for lv in range(levels + 1):
            self._level_off.append(self._level_off[-1] + (1 << lv) ** 2)
        self.n_boxes = self._level_off[-1]
        # moments[box] = (com_x, com_y, mass)
        self.moments = np.zeros((self.n_boxes, 3))
        self._bins_step = -1
        self.box_particles: list[list[int]] = []

    # ------------------------------------------------------------- geometry
    def box_id(self, level: int, i: int, j: int) -> int:
        return self._level_off[level] + i * (1 << level) + j

    def leaf_of(self, p: int) -> tuple[int, int]:
        g = 1 << self.levels
        i = min(int(self.pos[p, 0] * g), g - 1)
        j = min(int(self.pos[p, 1] * g), g - 1)
        return i, j

    def leaf_owner(self, i: int, j: int) -> int:
        """Leaf boxes are dealt to processors in contiguous row-major runs."""
        g = 1 << self.levels
        linear = i * g + j
        return linear * self.config.n_processors // (g * g)

    def box_owner(self, level: int, i: int, j: int) -> int:
        """Internal boxes belong to the owner of their first leaf descendant."""
        shift = self.levels - level
        return self.leaf_owner(i << shift, j << shift)

    def interaction_list(self, level: int, i: int, j: int) -> list[tuple[int, int]]:
        """Children of the parent's neighbours that are not my neighbours."""
        if level < 2:
            return []
        g = 1 << level
        pi, pj = i // 2, j // 2
        pg = g // 2
        out = []
        for di in (-1, 0, 1):
            for dj in (-1, 0, 1):
                ni, nj = pi + di, pj + dj
                if not (0 <= ni < pg and 0 <= nj < pg):
                    continue
                for a in (0, 1):
                    for b in (0, 1):
                        ci, cj = 2 * ni + a, 2 * nj + b
                        if abs(ci - i) <= 1 and abs(cj - j) <= 1:
                            continue  # adjacent: handled further down / near
                        out.append((ci, cj))
        return out

    # ---------------------------------------------------------------- setup
    def setup(self) -> None:
        rng = self.rng(0)
        raw = rng.uniform(0.02, 0.98, size=(self.n, 2))
        # sort by leaf box so contiguous particle ranges are spatially local
        g = 1 << self.levels
        keys = (np.minimum((raw[:, 0] * g).astype(int), g - 1) * g
                + np.minimum((raw[:, 1] * g).astype(int), g - 1))
        order = np.argsort(keys, kind="stable")
        self.pos[:] = raw[order]
        self.vel[:] = rng.normal(0.0, 0.01, size=(self.n, 2))
        self.mass[:] = rng.uniform(0.5, 1.5, self.n) / self.n
        self.rbodies = self.space.allocate("fmm.bodies", self.n * _BODY_DOUBLES)
        self.rboxes = self.space.allocate("fmm.boxes",
                                          self.n_boxes * _BOX_DOUBLES)
        self.place_partitions(self.rbodies)

    # ----------------------------------------------------------- numerics
    def _ensure_bins(self, step: int) -> None:
        if self._bins_step == step:
            return
        g = 1 << self.levels
        self.box_particles = [[] for _ in range(g * g)]
        for p in range(self.n):
            i, j = self.leaf_of(p)
            self.box_particles[i * g + j].append(p)
        self._bins_step = step

    def _leaf_moment(self, i: int, j: int) -> None:
        g = 1 << self.levels
        bid = self.box_id(self.levels, i, j)
        plist = self.box_particles[i * g + j]
        if not plist:
            self.moments[bid] = 0.0
            return
        ms = self.mass[plist]
        m = float(ms.sum())
        com = (ms[:, None] * self.pos[plist]).sum(axis=0) / m
        self.moments[bid] = (com[0], com[1], m)

    def _internal_moment(self, level: int, i: int, j: int) -> None:
        bid = self.box_id(level, i, j)
        m = 0.0
        com = np.zeros(2)
        for a in (0, 1):
            for b in (0, 1):
                cid = self.box_id(level + 1, 2 * i + a, 2 * j + b)
                cm = self.moments[cid, 2]
                m += cm
                com += cm * self.moments[cid, :2]
        if m > 0.0:
            self.moments[bid] = (com[0] / m, com[1] / m, m)
        else:
            self.moments[bid] = 0.0

    def _far_field(self, p: int) -> tuple[np.ndarray, list[int]]:
        """Monopole far-field acceleration + list of box ids read."""
        acc = np.zeros(2)
        boxes: list[int] = []
        i, j = self.leaf_of(p)
        pp = self.pos[p]
        for level in range(self.levels, 1, -1):
            for (ci, cj) in self.interaction_list(level, i, j):
                bid = self.box_id(level, ci, cj)
                m = self.moments[bid, 2]
                boxes.append(bid)
                if m <= 0.0:
                    continue
                d = self.moments[bid, :2] - pp
                r2 = float(d @ d) + self.eps2
                acc += m * d / (r2 * np.sqrt(r2))
            i //= 2
            j //= 2
        return acc, boxes

    def _near_field(self, p: int) -> tuple[np.ndarray, list[int]]:
        """Exact neighbourhood interactions + list of partner bodies read."""
        g = 1 << self.levels
        i, j = self.leaf_of(p)
        acc = np.zeros(2)
        partners: list[int] = []
        pp = self.pos[p]
        for di in (-1, 0, 1):
            for dj in (-1, 0, 1):
                ni, nj = i + di, j + dj
                if not (0 <= ni < g and 0 <= nj < g):
                    continue
                for q in self.box_particles[ni * g + nj]:
                    if q == p:
                        continue
                    partners.append(q)
                    d = self.pos[q] - pp
                    r2 = float(d @ d) + self.eps2
                    acc += self.mass[q] * d / (r2 * np.sqrt(r2))
        return acc, partners

    def direct_acceleration(self, body: int) -> np.ndarray:
        """O(n) reference acceleration for tests."""
        d = self.pos - self.pos[body]
        r2 = np.einsum("ij,ij->i", d, d) + self.eps2
        r2[body] = 1.0
        w = self.mass / (r2 * np.sqrt(r2))
        w[body] = 0.0
        return (w[:, None] * d).sum(axis=0)

    # ------------------------------------------------------------- program
    def _box_addr(self, bid: int) -> int:
        return self.rboxes.element(bid * _BOX_DOUBLES)

    def _body_addr(self, b: int) -> int:
        return self.rbodies.element(b * _BODY_DOUBLES)

    def program(self, pid: int) -> Iterator[Op]:
        bar = PhaseBarriers()
        mine = self.partition_slice(self.n, pid)
        g = 1 << self.levels
        yield Barrier(bar())

        for step in range(self.n_steps):
            self._ensure_bins(step)
            # ---- upward: leaf moments -------------------------------
            for i in range(g):
                for j in range(g):
                    if self.leaf_owner(i, j) != pid:
                        continue
                    self._leaf_moment(i, j)
                    for q in self.box_particles[i * g + j]:
                        yield Read(self._body_addr(q))
                    yield Work(4 * max(len(self.box_particles[i * g + j]), 1))
                    yield Write(self._box_addr(self.box_id(self.levels, i, j)))
            yield Barrier(bar())
            # ---- upward: internal levels, children before parents ----
            for level in range(self.levels - 1, -1, -1):
                lg = 1 << level
                for i in range(lg):
                    for j in range(lg):
                        if self.box_owner(level, i, j) != pid:
                            continue
                        self._internal_moment(level, i, j)
                        for a in (0, 1):
                            for b in (0, 1):
                                yield Read(self._box_addr(
                                    self.box_id(level + 1, 2 * i + a, 2 * j + b)))
                        yield Work(12)
                        yield Write(self._box_addr(self.box_id(level, i, j)))
                yield Barrier(bar())

            # ---- far field + near field ------------------------------
            for p in mine:
                yield Read(self._body_addr(p))
                far, boxes = self._far_field(p)
                near, partners = self._near_field(p)
                self.acc[p] = far + near
                for bid in boxes:
                    yield Read(self._box_addr(bid))
                yield Work(30 * len(boxes))
                for q in partners:
                    yield Read(self._body_addr(q))
                yield Work(30 * len(partners))
            yield Barrier(bar())

            # ---- update ----------------------------------------------
            for p in mine:
                self.vel[p] += self.dt * self.acc[p]
                self.pos[p] += self.dt * self.vel[p]
                for ax in range(2):
                    if self.pos[p, ax] < 0.0:
                        self.pos[p, ax] = -self.pos[p, ax]
                        self.vel[p, ax] = -self.vel[p, ax]
                    elif self.pos[p, ax] > 1.0:
                        self.pos[p, ax] = 2.0 - self.pos[p, ax]
                        self.vel[p, ax] = -self.vel[p, ax]
                yield Read(self._body_addr(p))
                yield Work(20)
                yield Write(self._body_addr(p))
            yield Barrier(bar())
