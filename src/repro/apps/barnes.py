"""Barnes — hierarchical N-body simulation (SPLASH-2 BARNES analog).

Paper characterization (Tables 2-3): 8 192 particles, θ = 1.0; low-volume
unstructured-but-hierarchical communication; a small O(log n) working set
(the top of the octree) that *overlaps heavily* between processors because
everyone traverses the same upper tree levels.  Figure 2: essentially no
communication benefit from clustering with infinite caches; Figure 6: large
benefit from working-set overlap once per-processor caches are smaller than
the (shared) traversal working set.

Each time step:

1. **tree build** — processors insert their own bodies into a shared
   octree.  Numerically each insertion is atomic (the final region octree
   is unique for a given body set, so insertion interleaving does not
   change the result); the reference stream records the descent-path reads,
   the per-leaf lock, the modified-cell writes, and the lock-protected cell
   pool bump — SPLASH-2's locking structure.
2. *barrier*; **centres of mass** — an upward pass computes every cell's
   mass and COM; cells are dealt round-robin across processors.
3. *barrier*; **forces** — every processor walks the octree once per owned
   body with the θ opening criterion, reading cell COM lines (the shared,
   read-only working set) and body lines for direct interactions.
4. *barrier*; **update** — leapfrog integration of owned bodies.

The physics is real: the unit tests compare Barnes-Hut accelerations
against an O(n²) direct sum.

Layout: body records are one 64 B line each, partitioned and placed at
their owner's cluster; cell records are two lines (COM+mass line, children
line) in a shared pool, round-robin placed (the top of the tree has no
natural owner).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..core.config import MachineConfig
from ..sim.program import Barrier, Lock, Op, Read, Unlock, Work, Write
from .base import Application, PhaseBarriers

__all__ = ["BarnesApp"]

_BODY_DOUBLES = 8    # pos(3) + vel(3) + mass + pad = one line
_CELL_DOUBLES = 16   # line 0: com(3)+mass(+pad); line 1: 8 child slots

_POOL_LOCK = 0
_CELL_LOCK_BASE = 1


class _Cell:
    """One octree internal cell (children: None | ('b', body) | ('c', cell))."""

    __slots__ = ("center", "half", "children", "mass", "com")

    def __init__(self, center: np.ndarray, half: float) -> None:
        self.center = center
        self.half = half
        self.children: list = [None] * 8
        self.mass = 0.0
        self.com = np.zeros(3)


class BarnesApp(Application):
    """Barnes-Hut galaxy simulation.

    Parameters
    ----------
    n_particles:
        Body count (default 2 048; the paper used 8 192).
    theta:
        Opening criterion (default 1.0, the paper's value).
    n_steps:
        Time steps (default 2).
    """

    name = "barnes"
    # dynamic task queue: streams depend on simulated lock order
    stream_invariant = False

    def __init__(self, config: MachineConfig, n_particles: int = 2048,
                 theta: float = 1.0, n_steps: int = 2, dt: float = 0.01,
                 softening: float = 0.05, seed: int = 12345) -> None:
        super().__init__(config, seed)
        self.n = n_particles
        self.theta = theta
        self.n_steps = n_steps
        self.dt = dt
        self.eps2 = softening * softening
        self.pos = np.empty((n_particles, 3))
        self.vel = np.empty((n_particles, 3))
        self.mass = np.empty(n_particles)
        self.acc = np.zeros((n_particles, 3))
        self.cells: list[_Cell] = []
        self._root: _Cell | None = None
        self._tree_step = -1
        self._coms_step = -1
        self.max_cells = max(4 * n_particles, 64)

    # ---------------------------------------------------------------- setup
    def setup(self) -> None:
        rng = self.rng(0)
        # uniform ball of bodies with small random velocities
        v = rng.normal(size=(self.n, 3))
        v /= np.linalg.norm(v, axis=1)[:, None]
        radii = rng.uniform(0.05, 1.0, self.n) ** (1 / 3)
        pos = 0.5 + 0.4 * v * radii[:, None]
        # Sort bodies in Morton (octree) order so contiguous index ranges
        # are spatially local — the role SPLASH-2's costzones partitioning
        # plays.  Without it every processor's traversal covers the whole
        # tree and communication is wildly overstated.
        grid = np.minimum((pos * 16).astype(int), 15)
        morton = np.zeros(self.n, dtype=np.int64)
        for bit in range(4):
            for ax in range(3):
                morton |= ((grid[:, ax] >> bit) & 1).astype(np.int64) \
                    << (3 * bit + ax)
        order = np.argsort(morton, kind="stable")
        self.pos[:] = pos[order]
        self.vel[:] = rng.normal(0.0, 0.01, size=(self.n, 3))
        self.mass[:] = rng.uniform(0.5, 1.5, self.n) / self.n
        self.rbodies = self.space.allocate("barnes.bodies",
                                           self.n * _BODY_DOUBLES)
        self.rcells = self.space.allocate("barnes.cells",
                                          self.max_cells * _CELL_DOUBLES)
        self.place_partitions(self.rbodies)

    # ---------------------------------------------------------- tree builds
    def _new_cell(self, center: np.ndarray, half: float) -> int:
        if len(self.cells) >= self.max_cells:
            raise RuntimeError("barnes cell pool exhausted; raise max_cells")
        self.cells.append(_Cell(center, half))
        return len(self.cells) - 1

    def _reset_tree(self) -> None:
        self.cells.clear()
        lo = self.pos.min(axis=0) - 1e-9
        hi = self.pos.max(axis=0) + 1e-9
        center = (lo + hi) / 2
        half = float((hi - lo).max() / 2) or 1.0
        self._new_cell(center.copy(), half)

    @staticmethod
    def _octant(cell: _Cell, p: np.ndarray) -> int:
        return ((p[0] > cell.center[0]) * 4 + (p[1] > cell.center[1]) * 2
                + (p[2] > cell.center[2]) * 1)

    def _child_center(self, cell: _Cell, o: int) -> np.ndarray:
        off = np.array([1 if o & 4 else -1, 1 if o & 2 else -1,
                        1 if o & 1 else -1], dtype=float)
        return cell.center + off * (cell.half / 2)

    def _insert(self, body: int) -> tuple[list[int], list[int], int]:
        """Atomically insert ``body``; return (path cells, new cells, locked
        cell) for the reference stream."""
        path: list[int] = []
        created: list[int] = []
        ci = 0
        p = self.pos[body]
        while True:
            path.append(ci)
            cell = self.cells[ci]
            o = self._octant(cell, p)
            slot = cell.children[o]
            if slot is None:
                cell.children[o] = ("b", body)
                return path, created, ci
            if slot[0] == "c":
                ci = slot[1]
                continue
            # occupied by a body: split this octant until they separate
            other = slot[1]
            nci = self._new_cell(self._child_center(cell, o), cell.half / 2)
            created.append(nci)
            cell.children[o] = ("c", nci)
            # reinsert the displaced body into the fresh cell, then loop
            sub = self.cells[nci]
            so = self._octant(sub, self.pos[other])
            sub.children[so] = ("b", other)
            ci = nci

    def _ensure_tree(self, step: int) -> None:
        """Reset the pool for a new step's build (idempotent per step)."""
        if self._tree_step != step:
            self._reset_tree()
            self._tree_step = step
            self._coms_step = -1

    def _ensure_coms(self, step: int) -> None:
        """Upward mass/COM pass over the finished tree (idempotent)."""
        if self._coms_step == step:
            return
        for cell in reversed(self.cells):  # children always after parents
            m = 0.0
            com = np.zeros(3)
            for slot in cell.children:
                if slot is None:
                    continue
                if slot[0] == "b":
                    bm = self.mass[slot[1]]
                    m += bm
                    com += bm * self.pos[slot[1]]
                else:
                    sub = self.cells[slot[1]]
                    m += sub.mass
                    com += sub.mass * sub.com
            cell.mass = m
            if m > 0.0:
                cell.com = com / m
        self._coms_step = step

    # ------------------------------------------------------------- force
    def _force_on(self, body: int) -> tuple[np.ndarray, list[tuple[str, int]]]:
        """Barnes-Hut acceleration on ``body`` + the visit trace.

        The trace lists ('com', cell) for accepted cells, ('open', cell)
        for opened ones, and ('body', b) for direct interactions.
        """
        p = self.pos[body]
        acc = np.zeros(3)
        trace: list[tuple[str, int]] = []
        stack = [0]
        theta2 = self.theta * self.theta
        while stack:
            ci = stack.pop()
            cell = self.cells[ci]
            if cell.mass <= 0.0:
                continue
            d = cell.com - p
            r2 = float(d @ d) + self.eps2
            size = 2.0 * cell.half
            if size * size < theta2 * r2:
                trace.append(("com", ci))
                acc += cell.mass * d / (r2 * np.sqrt(r2))
                continue
            trace.append(("open", ci))
            for slot in cell.children:
                if slot is None:
                    continue
                if slot[0] == "c":
                    stack.append(slot[1])
                else:
                    b = slot[1]
                    if b == body:
                        continue
                    trace.append(("body", b))
                    db = self.pos[b] - p
                    rb2 = float(db @ db) + self.eps2
                    acc += self.mass[b] * db / (rb2 * np.sqrt(rb2))
        return acc, trace

    def direct_acceleration(self, body: int) -> np.ndarray:
        """O(n) reference acceleration for tests."""
        d = self.pos - self.pos[body]
        r2 = np.einsum("ij,ij->i", d, d) + self.eps2
        r2[body] = 1.0
        w = self.mass / (r2 * np.sqrt(r2))
        w[body] = 0.0
        return (w[:, None] * d).sum(axis=0)

    # ------------------------------------------------------------- program
    def _cell_line0(self, ci: int) -> int:
        return self.rcells.element(ci * _CELL_DOUBLES)

    def _cell_line1(self, ci: int) -> int:
        return self.rcells.element(ci * _CELL_DOUBLES + 8)

    def _body_addr(self, b: int) -> int:
        return self.rbodies.element(b * _BODY_DOUBLES)

    def program(self, pid: int) -> Iterator[Op]:
        bar = PhaseBarriers()
        mine = self.partition_slice(self.n, pid)
        yield Barrier(bar())

        for step in range(self.n_steps):
            # ---- phase 1: tree build --------------------------------
            self._ensure_tree(step)
            for b in mine:
                yield Read(self._body_addr(b))
                path, created, locked = self._insert(b)
                for ci in path:
                    yield Read(self._cell_line1(ci))
                if created:
                    yield Lock(_POOL_LOCK)
                    yield Work(2 * len(created))
                    yield Unlock(_POOL_LOCK)
                yield Lock(_CELL_LOCK_BASE + locked)
                for ci in created:
                    yield Write(self._cell_line1(ci))
                yield Write(self._cell_line1(locked))
                yield Unlock(_CELL_LOCK_BASE + locked)
            yield Barrier(bar())

            # ---- phase 2: centres of mass ---------------------------
            self._ensure_coms(step)
            n_cells = len(self.cells)
            for ci in range(pid, n_cells, self.config.n_processors):
                yield Read(self._cell_line1(ci))
                for slot in self.cells[ci].children:
                    if slot is None:
                        continue
                    if slot[0] == "c":
                        yield Read(self._cell_line0(slot[1]))
                    else:
                        yield Read(self._body_addr(slot[1]))
                yield Work(40)
                yield Write(self._cell_line0(ci))
            yield Barrier(bar())

            # ---- phase 3: forces ------------------------------------
            for b in mine:
                yield Read(self._body_addr(b))
                acc, trace = self._force_on(b)
                self.acc[b] = acc
                for kind, idx in trace:
                    if kind == "com":
                        yield Read(self._cell_line0(idx))
                        yield Work(60)
                    elif kind == "open":
                        yield Read(self._cell_line0(idx))
                        yield Read(self._cell_line1(idx))
                        yield Work(16)
                    else:
                        yield Read(self._body_addr(idx))
                        yield Work(60)
            yield Barrier(bar())

            # ---- phase 4: update ------------------------------------
            for b in mine:
                self.vel[b] += self.dt * self.acc[b]
                self.pos[b] += self.dt * self.vel[b]
                yield Read(self._body_addr(b))
                yield Work(40)
                yield Write(self._body_addr(b))
            yield Barrier(bar())
