"""Application framework: SPMD programs that really compute and emit
shared-memory reference streams.

Each application in :mod:`repro.apps` mirrors its SPLASH counterpart at the
level the paper's results depend on: the partitioning of shared data, the
phase/barrier structure, the communication topology, and the shape and size
of the per-process working sets.  The numerics are real — LU factorizes,
FFT transforms, Radix sorts, rays intersect spheres — so unit tests can
check each code against an independent reference, and the reference streams
are the streams of the actual algorithm, not a synthetic trace.

Conventions shared by all applications:

* **SPMD with global barriers.**  Every processor runs
  :meth:`Application.program` with its own id; barrier ids are drawn from a
  per-program :class:`PhaseBarriers` counter, which is safe because all
  processes pass the same barrier sequence.
* **Shared data lives in named regions** of one :class:`AddressSpace`;
  element-granularity ``Read``/``Write`` operations are emitted for shared
  accesses.  Private computation (including stack traffic, which the paper
  allocates locally so it always hits) is folded into ``Work`` cycles.
* **Placement**: applications that place data (paper §3.1) call
  :meth:`Application.place_partitions`, which assigns each processor's
  partition to that processor's *cluster* — so co-clustered processors'
  partitions share a home, exactly as on the simulated machine.
* **Determinism**: all randomness flows from ``numpy.random.default_rng``
  seeded with ``(app seed, processor id)``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.compiled import CompiledProgram

import numpy as np

from ..core.config import MachineConfig
from ..core.metrics import RunResult
from ..memory import make_memory_system
from ..memory.address import AddressSpace, Region
from ..memory.allocation import PageAllocator
from ..sim.engine import execute_program
from ..sim.program import Op

__all__ = ["Application", "PhaseBarriers", "proc_grid_shape"]


class PhaseBarriers:
    """Sequential barrier-id source for one process.

    All processes of an SPMD program create their own instance and call it
    at the same program points, so matching calls produce matching ids.
    """

    __slots__ = ("_next",)

    def __init__(self) -> None:
        self._next = 0

    def __call__(self) -> int:
        bid = self._next
        self._next += 1
        return bid


def proc_grid_shape(n_processors: int) -> tuple[int, int]:
    """Near-square (rows, cols) factorization of the processor count.

    Ocean/Raytrace/Volrend partition a 2-D plane over a processor grid; for
    the paper's 64 processors this is 8×8.  Columns ≥ rows so that
    consecutive processor ids sweep along a row (the adjacency clustering
    exploits).
    """
    rows = int(np.sqrt(n_processors))
    while n_processors % rows:
        rows -= 1
    return rows, n_processors // rows


class Application(ABC):
    """Base class for the nine workloads.

    Subclasses implement :meth:`setup` (allocate + place regions, build the
    numerical problem) and :meth:`program` (the per-processor operation
    stream).  ``run()`` wires everything into the engine.

    Parameters
    ----------
    config:
        Machine organisation the run will use.
    seed:
        Master seed for all application randomness.
    """

    #: short registry name, set by subclasses
    name: str = "base"

    #: whether the reference streams depend only on the machine's
    #: :meth:`~repro.core.config.MachineConfig.trace_signature` (processor
    #: count, line/page size).  The dynamic task-queue codes (Barnes,
    #: Raytrace, Volrend) set this False: a lock-protected Python-side
    #: counter decides which task each processor grabs, so their streams
    #: depend on simulated timing — capture requires
    #: :meth:`run_recorded`, and a capture is only valid for the exact
    #: machine configuration that produced it.
    stream_invariant: bool = True

    def __init__(self, config: MachineConfig, seed: int = 12345) -> None:
        self.config = config
        self.seed = seed
        self.space = AddressSpace(page_size=config.page_size,
                                  line_size=config.line_size)
        self.allocator = PageAllocator(config.n_clusters, config.page_size,
                                       config.line_size)
        self._setup_done = False

    # ------------------------------------------------------------ lifecycle
    @abstractmethod
    def setup(self) -> None:
        """Allocate shared regions, place data, build the input problem."""

    @abstractmethod
    def program(self, pid: int) -> Iterator[Op]:
        """The operation stream of processor ``pid``."""

    def ensure_setup(self) -> None:
        if not self._setup_done:
            self.setup()
            self._setup_done = True

    def compiled_program(self, fuse_work: bool = True) -> "CompiledProgram":
        """Capture this application's operation streams once, for replay.

        Drains :meth:`program` for every processor into a
        :class:`~repro.sim.compiled.CompiledProgram` (flat arrays, line
        numbers pre-divided, consecutive WORK ops fused).  The capture is
        valid for any machine sharing this config's
        :meth:`~repro.core.config.MachineConfig.trace_signature` — cluster
        size, cache sizing, and the network model may all differ.

        Only available when :attr:`stream_invariant` holds; the dynamic
        task-queue applications must capture with :meth:`run_recorded`
        instead (their streams depend on simulated timing, which a static
        drain cannot know).
        """
        from ..sim.compiled import compile_program

        if not self.stream_invariant:
            raise ValueError(
                f"{self.name} streams depend on simulated timing "
                f"(stream_invariant=False); capture with run_recorded()")
        self.ensure_setup()
        return compile_program(self.program, self.config.n_processors,
                               self.config.line_size, fuse_work=fuse_work)

    def run_recorded(self, read_hit_cycles: int = 1,
                     max_cycles: int | None = None,
                     fuse_work: bool = True,
                     ) -> "tuple[RunResult, CompiledProgram]":
        """Generator-path run that also captures the executed streams.

        Works for every application — including the dynamic task-queue
        codes — because the capture *is* the executed interleaving.
        Replaying the returned program on an identically-configured
        machine is bit-identical to the returned result; for
        :attr:`stream_invariant` apps the capture is additionally valid
        across cluster/cache/network variations, like
        :meth:`compiled_program`'s.
        """
        from ..sim.compiled import ProgramRecorder

        self.ensure_setup()
        memory = make_memory_system(self.config, self.allocator)
        recorder = ProgramRecorder(self.program, self.config.n_processors,
                                   self.config.line_size,
                                   fuse_work=fuse_work)
        result = execute_program(self.config, memory, recorder.factory,
                                 read_hit_cycles=read_hit_cycles,
                                 max_cycles=max_cycles)
        return result, recorder.finish()

    def run(self, read_hit_cycles: int = 1,
            max_cycles: int | None = None,
            program: "CompiledProgram | None" = None) -> RunResult:
        """Simulate this application on ``self.config`` and return the result.

        With ``program`` (a :class:`~repro.sim.compiled.CompiledProgram`,
        typically from :meth:`compiled_program` or a trace cache), the
        engine replays the capture instead of re-driving the generators —
        bit-identical, much faster.  Setup still runs either way: data
        *placement* depends on cluster geometry even though the operation
        streams do not.
        """
        self.ensure_setup()
        memory = make_memory_system(self.config, self.allocator)
        return execute_program(self.config, memory,
                               program if program is not None
                               else self.program,
                               compiled=program is not None,
                               read_hit_cycles=read_hit_cycles,
                               max_cycles=max_cycles)

    # ---------------------------------------------------------- rng helpers
    def rng(self, *stream: int) -> np.random.Generator:
        """Deterministic generator for a named stream (e.g. a processor id)."""
        return np.random.default_rng([self.seed, *stream])

    # ------------------------------------------------------ placement helpers
    def place_partitions(self, region: Region, n_partitions: int | None = None) -> None:
        """Place partition ``i`` of ``region`` at processor ``i``'s cluster.

        This is the SPLASH "my partition in my local memory" idiom under
        clustering: partitions of co-clustered processors share a home.
        With ``n_partitions=None`` the region splits over all processors.
        """
        n = self.config.n_processors if n_partitions is None else n_partitions
        if n <= 0:
            raise ValueError("n_partitions must be positive")
        chunk = region.size // n
        if chunk == 0:
            self.allocator.place_region(region, 0)
            return
        for i in range(n):
            start = region.base + i * chunk
            size = chunk if i < n - 1 else region.end - start
            cluster = self.config.cluster_of(i % self.config.n_processors)
            self.allocator.place_range(start, size, cluster)

    # ------------------------------------------------------ emission helpers
    def read_span(self, region: Region, start: int, count: int) -> Iterator[Op]:
        """Emit reads covering elements ``[start, start+count)`` of a region.

        One ``Read`` is emitted per cache line touched plus ``Work`` cycles
        for the remaining loads in the line: once the first load of a line
        completes the rest are guaranteed single-cycle hits (fully
        associative LRU, just touched), so this is timing- and
        coherence-equivalent to per-element emission while costing ~8×
        fewer engine events for dense sweeps.
        """
        if count <= 0:
            return
        line_size = self.config.line_size
        esz = region.element_size
        addr = region.element(start)
        end = addr + count * esz
        line = addr // line_size
        last_line = (end - 1) // line_size
        while line <= last_line:
            lo = max(addr, line * line_size)
            hi = min(end, (line + 1) * line_size)
            n_elems = (hi - lo) // esz
            yield (1, lo)  # OP_READ
            if n_elems > 1:
                yield (0, n_elems - 1)  # OP_WORK for the guaranteed hits
            line += 1

    def write_span(self, region: Region, start: int, count: int) -> Iterator[Op]:
        """Emit writes covering elements ``[start, start+count)``; one
        ``Write`` per line plus ``Work`` for the rest (same argument as
        :meth:`read_span`; writes never stall)."""
        if count <= 0:
            return
        line_size = self.config.line_size
        esz = region.element_size
        addr = region.element(start)
        end = addr + count * esz
        line = addr // line_size
        last_line = (end - 1) // line_size
        while line <= last_line:
            lo = max(addr, line * line_size)
            hi = min(end, (line + 1) * line_size)
            n_elems = (hi - lo) // esz
            yield (2, lo)  # OP_WRITE
            if n_elems > 1:
                yield (0, n_elems - 1)
            line += 1

    def place_interleaved(self, region: Region) -> None:
        """Place a region's pages round-robin across clusters.

        This is the paper's "distributed randomly among processors" for the
        read-only scene/volume data of Raytrace and Volrend: no owner, pages
        spread evenly so no home cluster becomes a hot spot.
        """
        page = self.config.page_size
        first = region.base // page
        last = (region.end - 1) // page
        for k, pg in enumerate(range(first, last + 1)):
            if self.allocator.bound_home(pg) is None:
                self.allocator.place_page(pg, k % self.config.n_clusters)

    def partition_slice(self, total: int, pid: int) -> range:
        """Contiguous share of ``total`` items owned by processor ``pid``."""
        n = self.config.n_processors
        per = total // n
        extra = total % n
        lo = pid * per + min(pid, extra)
        hi = lo + per + (1 if pid < extra else 0)
        return range(lo, hi)

    # ------------------------------------------------------------- describe
    def describe(self) -> str:
        """One-line description used by the CLI and experiment logs."""
        return f"{self.name} on {self.config.describe()}"
