"""Application registry: names → factories, plus the paper's problem sizes.

``build_app`` is the single entry point the study driver, CLI, examples and
benchmarks use.  Default problem sizes are scaled so a full cluster sweep
finishes in minutes on a laptop; ``paper_scale=True`` selects the sizes of
the paper's Table 2 where the simulation cost allows it (noted per app).
"""

from __future__ import annotations

from typing import Any, Callable

from ..core.config import MachineConfig
from .barnes import BarnesApp
from .base import Application
from .fft import FFTApp
from .fmm import FMMApp
from .lu import LUApp
from .mp3d import MP3DApp
from .ocean import OceanApp
from .radix import RadixApp
from .raytrace import RaytraceApp
from .volrend import VolrendApp

__all__ = ["APP_NAMES", "PAPER_PROBLEM_SIZES", "QUICK_PROBLEM_SIZES",
           "build_app", "app_class"]

_CLASSES: dict[str, type[Application]] = {
    "barnes": BarnesApp,
    "fft": FFTApp,
    "fmm": FMMApp,
    "lu": LUApp,
    "mp3d": MP3DApp,
    "ocean": OceanApp,
    "radix": RadixApp,
    "raytrace": RaytraceApp,
    "volrend": VolrendApp,
}

#: canonical application order used throughout the paper's figures
APP_NAMES = ("lu", "fft", "ocean", "barnes", "fmm", "radix", "raytrace",
             "volrend", "mp3d")

#: the paper's Table 2 problem sizes, expressed as constructor overrides.
#: Where the paper's size is impractical for a pure-Python cycle-level
#: simulation the override is the closest feasible size and EXPERIMENTS.md
#: records the substitution.
PAPER_PROBLEM_SIZES: dict[str, dict[str, Any]] = {
    "barnes": {"n_particles": 8192, "theta": 1.0},
    "fft": {"n_points": 65536},
    "fmm": {"n_particles": 8192, "levels": 5},
    "lu": {"n": 512, "block": 16},
    "mp3d": {"n_particles": 50000},
    "ocean": {"n": 128},
    "radix": {"n_keys": 262144, "radix": 256},
    "raytrace": {"width": 64, "height": 64, "n_spheres": 64},
    "volrend": {"volume_side": 64, "width": 64, "height": 64},
}

#: reduced problem sizes for ``--quick`` runs and the bench harness
#: (~10× fewer cycles than the defaults; shared by the CLI, benchmarks,
#: and the perf smoke tests so they all measure the same workloads)
QUICK_PROBLEM_SIZES: dict[str, dict[str, Any]] = {
    "barnes": {"n_particles": 512, "n_steps": 1},
    "fft": {"n_points": 16384},
    "fmm": {"n_particles": 512, "levels": 3, "n_steps": 1},
    "lu": {"n": 128, "block": 16},
    "mp3d": {"n_particles": 8000, "n_steps": 2},
    "ocean": {"n": 64, "n_vcycles": 1},
    "radix": {"n_keys": 32768, "radix": 128},
    "raytrace": {"width": 32, "height": 32, "n_spheres": 32},
    "volrend": {"volume_side": 32, "width": 32, "height": 32},
}


def app_class(name: str) -> type[Application]:
    """Class implementing application ``name`` (KeyError with guidance)."""
    try:
        return _CLASSES[name]
    except KeyError:
        raise KeyError(
            f"unknown application {name!r}; choose from {sorted(_CLASSES)}"
        ) from None


def build_app(name: str, config: MachineConfig, *,
              paper_scale: bool = False, **overrides: Any) -> Application:
    """Instantiate application ``name`` for ``config``.

    ``paper_scale=True`` starts from the paper's Table 2 problem size;
    explicit ``overrides`` win over both defaults and paper sizes.
    """
    cls = app_class(name)
    kwargs: dict[str, Any] = {}
    if paper_scale:
        kwargs.update(PAPER_PROBLEM_SIZES.get(name, {}))
    kwargs.update(overrides)
    return cls(config, **kwargs)


Factory = Callable[[MachineConfig], Application]
