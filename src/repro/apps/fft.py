"""FFT — 1-D radix-√n six-step Fast Fourier Transform (SPLASH-2 FFT analog).

Paper characterization (Tables 2-3): 64 K complex points organised as a
√n × √n matrix, each processor assigned a contiguous set of rows; all-to-all
structured communication in the blocked matrix transposes; small working set
(one partition row block, ~4 KB).  Figure 2: clustering reduces the all-to-all
communication only by the factor (C−1)/(P−1), so the benefit is tiny.

The six-step algorithm for N = M² (all FFT work happens along rows, so each
processor only ever computes on the rows it owns):

1. transpose A → B                       (all-to-all communication)
2. M-point FFT on each row of B
3. twiddle multiply B[i,j] *= W_N^{ij}   (folded into phase 2's sweep)
4. transpose B → A                       (all-to-all communication)
5. M-point FFT on each row of A
6. transpose A → B                       (all-to-all; gives natural order)

The result equals ``numpy.fft.fft`` of the input (checked in tests).
Matrices are double-buffered in two shared regions so transposes are
deterministic under any interleaving; each processor's rows are placed at
its cluster.  Transpose reads are emitted per element (the strided side has
no spatial locality — that is what makes the communication all-to-all at
line granularity); row-local sweeps use span emission.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..core.config import MachineConfig
from ..sim.program import Barrier, Op, Read, Work
from .base import Application, PhaseBarriers

__all__ = ["FFTApp"]

#: complex128 — two doubles per point
_ELEM = 16


class FFTApp(Application):
    """Six-step 1-D FFT of ``n_points`` complex points.

    Parameters
    ----------
    n_points:
        Transform size; must be a perfect square whose root is a multiple
        of the processor count.  Default 65 536 — the paper's size.
    """

    name = "fft"

    def __init__(self, config: MachineConfig, n_points: int = 65536,
                 seed: int = 12345) -> None:
        super().__init__(config, seed)
        m = int(round(np.sqrt(n_points)))
        if m * m != n_points:
            raise ValueError(f"n_points {n_points} is not a perfect square")
        if m % config.n_processors != 0:
            raise ValueError(
                f"sqrt(n_points)={m} must be a multiple of "
                f"{config.n_processors} processors")
        self.n_points = n_points
        self.m = m
        self.rows_per_proc = m // config.n_processors
        self.A = np.empty((m, m), dtype=np.complex128)
        self.B = np.empty((m, m), dtype=np.complex128)
        self.x_input = np.empty(n_points, dtype=np.complex128)

    # ---------------------------------------------------------------- setup
    def setup(self) -> None:
        rng = self.rng(0)
        self.x_input[:] = (rng.standard_normal(self.n_points)
                           + 1j * rng.standard_normal(self.n_points))
        self.A[:] = self.x_input.reshape(self.m, self.m)
        self.ra = self.space.allocate("fft.A", self.n_points, element_size=_ELEM)
        self.rb = self.space.allocate("fft.B", self.n_points, element_size=_ELEM)
        # Contiguous row blocks of both buffers live at their owner's cluster.
        self.place_partitions(self.ra)
        self.place_partitions(self.rb)

    def my_rows(self, pid: int) -> range:
        lo = pid * self.rows_per_proc
        return range(lo, lo + self.rows_per_proc)

    # ----------------------------------------------------------- emission
    def _transpose_ops(self, pid: int, src, src_mat: np.ndarray,
                       dst, dst_mat: np.ndarray) -> Iterator[Op]:
        """dst[i, :] = src[:, i] for my rows i, patch-blocked by source owner.

        Reads walk the source *rows within one owner's block* first (the
        SPLASH blocked transpose), giving each fetched line its best chance
        of reuse across my destination rows before moving to the next
        source processor's rows.
        """
        m = self.m
        rp = self.rows_per_proc
        mine = self.my_rows(pid)
        # numerics first (deterministic: src is stable in this phase)
        dst_mat[mine.start:mine.stop, :] = src_mat[:, mine.start:mine.stop].T
        for src_proc in range(self.config.n_processors):
            jlo = src_proc * rp
            # SPLASH's blocked transpose reads the rp×rp patch in *source
            # row-major* order: elements src[j, mine] are contiguous, so
            # each fetched line is fully consumed before moving on.
            for j in range(jlo, jlo + rp):
                yield from self.read_span(src, j * m + mine.start, rp)
                yield Work(2 * rp)  # copy/address arithmetic
            # destination writes for this patch: columns jlo..jlo+rp of my rows
            for i in mine:
                yield from self.write_span(dst, i * m + jlo, rp)

    def _row_fft_ops(self, pid: int, buf, mat: np.ndarray,
                     twiddle: bool) -> Iterator[Op]:
        """In-place M-point FFT (+ optional twiddle) on my rows of ``buf``."""
        m = self.m
        # 5·M·log2(M) complex-arithmetic flops per row, ≈2.5 cycles each
        # (multiply-add pairs, index arithmetic, load/store of scratch)
        flops_per_row = int(12.5 * m * np.log2(m))
        for i in self.my_rows(pid):
            mat[i, :] = np.fft.fft(mat[i, :])
            if twiddle:
                mat[i, :] *= np.exp(-2j * np.pi * i * np.arange(m) / self.n_points)
            yield from self.read_span(buf, i * m, m)
            yield Work(flops_per_row + (6 * m if twiddle else 0))
            yield from self.write_span(buf, i * m, m)

    def program(self, pid: int) -> Iterator[Op]:
        bar = PhaseBarriers()
        yield Barrier(bar())  # all start together (matches SPLASH init barrier)
        # Step 1: transpose A -> B    (B[n2, n1] = A[n1, n2] viewed as x)
        yield from self._transpose_ops(pid, self.ra, self.A, self.rb, self.B)
        yield Barrier(bar())
        # Steps 2-3: row FFT over n1 + twiddle on B
        yield from self._row_fft_ops(pid, self.rb, self.B, twiddle=True)
        yield Barrier(bar())
        # Step 4: transpose B -> A    (A[k1, n2])
        yield from self._transpose_ops(pid, self.rb, self.B, self.ra, self.A)
        yield Barrier(bar())
        # Step 5: row FFT over n2 on A
        yield from self._row_fft_ops(pid, self.ra, self.A, twiddle=False)
        yield Barrier(bar())
        # Step 6: transpose A -> B    (natural-order result in B)
        yield from self._transpose_ops(pid, self.ra, self.A, self.rb, self.B)
        yield Barrier(bar())

    # ------------------------------------------------------------- checking
    def result(self) -> np.ndarray:
        """The transform output (row-major flatten of the final buffer)."""
        return self.B.reshape(-1).copy()

    def reference(self) -> np.ndarray:
        """Independent reference: ``numpy.fft.fft`` of the input."""
        return np.fft.fft(self.x_input)
