"""Volrend — ray-cast volume rendering (SPLASH-2 VOLREND analog; the paper
rendered a human head from a CT scan).

Paper characterization (Tables 2-3): read-only, quite unstructured
communication; a *quite small* O(∛n) working set — unlike Raytrace, rays do
not reflect, so each processor's rays stay inside the slab of volume behind
its pixel tile.  Figure 2: benefits from clustering slightly larger than
Barnes/FMM but under 10%; Figure 8: strong working-set overlap benefit
around the 16 KB cache size.

Implementation: a synthetic "head" — nested ellipsoidal shells (skin,
skull, brain) — voxelized onto an n³ density grid.  A min/max octree is
imposed on the volume ("both applications impose an octree ... for
efficiency which is shared"): rays march front-to-back with early ray
termination, skipping blocks whose octree node reports only transparent
voxels.  Each processor renders its own pixel tile (tiled like Ocean's
grid) and writes only its own pixels; the volume and octree pages are
interleaved across clusters.

The tests check the render against a brute-force march (octree skipping
must not change the image) and basic anatomy (head opaque, corners empty).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..core.config import MachineConfig
from ..sim.program import Barrier, Lock, Op, Read, Unlock, Work, Write
from .base import Application, PhaseBarriers, proc_grid_shape

__all__ = ["VolrendApp"]

_NODE_DOUBLES = 8  # (min, max, child info) — one line per octree node


class VolrendApp(Application):
    """Front-to-back volume ray caster with min/max octree skipping.

    Parameters
    ----------
    volume_side:
        Voxels per side of the cubic volume (default 128; the paper's CT
        head is 256-class).  Must be a multiple of ``block``.
    width, height:
        Image size (default 64×64, tiled over the processor grid).
    block:
        Leaf block size of the min/max octree (default 4 voxels).
    """

    name = "volrend"
    # dynamic task queue: streams depend on simulated lock order
    stream_invariant = False

    def __init__(self, config: MachineConfig, volume_side: int = 128,
                 width: int = 64, height: int = 64, block: int = 4,
                 density_threshold: float = 0.05,
                 opacity_cutoff: float = 0.95, queue_tile: int = 4,
                 seed: int = 12345) -> None:
        super().__init__(config, seed)
        self.pr, self.pc = proc_grid_shape(config.n_processors)
        if height % self.pr or width % self.pc:
            raise ValueError("image must tile over the processor grid")
        if volume_side % block:
            raise ValueError("block must divide volume_side")
        if height % queue_tile or width % queue_tile:
            raise ValueError("queue_tile must divide the image dimensions")
        self.queue_tile = queue_tile
        self._next_tile = 0
        self.nv = volume_side
        self.width, self.height = width, height
        self.tile_h, self.tile_w = height // self.pr, width // self.pc
        self.block = block
        self.threshold = density_threshold
        self.cutoff = opacity_cutoff
        self.volume = np.zeros((self.nv, self.nv, self.nv))
        self.image = np.zeros((height, width))
        # min/max octree levels: level 0 = leaf blocks, upwards by 2×
        self.minmax: list[np.ndarray] = []

    # ---------------------------------------------------------------- setup
    def setup(self) -> None:
        n = self.nv
        idx = (np.indices((n, n, n)) + 0.5) / n  # voxel centres in [0,1]
        x, y, z = idx[0], idx[1], idx[2]
        # nested ellipsoids: brain core, skull shell, skin shell
        r = np.sqrt(((x - 0.5) / 0.38) ** 2 + ((y - 0.5) / 0.30) ** 2
                    + ((z - 0.5) / 0.34) ** 2)
        self.volume[:] = 0.0
        self.volume[r < 1.00] = 0.15          # skin
        self.volume[r < 0.92] = 0.02          # subcutaneous gap (mostly clear)
        shell = (r < 0.85) & (r >= 0.72)
        self.volume[shell] = 0.80             # skull
        self.volume[r < 0.72] = 0.35          # brain
        self._build_minmax()
        self.rvolume = self.space.allocate("volrend.volume", n ** 3)
        n_nodes = sum(a.size for a in self.minmax)
        self.rnodes = self.space.allocate("volrend.nodes", n_nodes * _NODE_DOUBLES)
        self.rpixels = self.space.allocate("volrend.pixels",
                                           self.width * self.height)
        self.rqueue = self.space.allocate("volrend.queue", 8)
        self.place_interleaved(self.rvolume)
        self.place_interleaved(self.rnodes)
        # tile ownership is dynamic, so pixel pages have no natural owner
        self.place_interleaved(self.rpixels)
        self._node_level_off = np.cumsum(
            [0] + [a.size for a in self.minmax]).tolist()

    def _build_minmax(self) -> None:
        nb = self.nv // self.block
        b = self.block
        leaf = self.volume.reshape(nb, b, nb, b, nb, b).max(axis=(1, 3, 5))
        self.minmax = [leaf]
        while self.minmax[-1].shape[0] > 1:
            cur = self.minmax[-1]
            m = cur.shape[0] // 2
            nxt = cur.reshape(m, 2, m, 2, m, 2).max(axis=(1, 3, 5))
            self.minmax.append(nxt)

    # ----------------------------------------------------------- numerics
    def _voxel_index(self, x: float, y: float, z: float) -> tuple[int, int, int]:
        n = self.nv
        return (min(int(x * n), n - 1), min(int(y * n), n - 1),
                min(int(z * n), n - 1))

    def march(self, px: int, py: int, use_octree: bool = True
              ) -> tuple[float, list[tuple[str, int]]]:
        """March one orthographic ray (+z) through the volume.

        Returns the composited intensity and the visit trace:
        ('node', node_id) for octree tests, ('voxel', linear_index) for
        density samples.
        """
        x = (px + 0.5) / self.width
        y = (py + 0.5) / self.height
        n = self.nv
        b = self.block
        nb = n // b
        step = 1.0 / n
        opacity = 0.0
        intensity = 0.0
        trace: list[tuple[str, int]] = []
        z = step / 2
        # trilinear lattice coordinates for (x, y): fixed along a +z ray
        fx = x * n - 0.5
        fy = y * n - 0.5
        i0 = min(max(int(fx), 0), n - 2)
        j0 = min(max(int(fy), 0), n - 2)
        wx = min(max(fx - i0, 0.0), 1.0)
        wy = min(max(fy - j0, 0.0), 1.0)
        vol = self.volume
        while z < 1.0 and opacity < self.cutoff:
            i, j, k = self._voxel_index(x, y, z)
            if use_octree:
                bi, bj, bk = i // b, j // b, k // b
                node_id = (bi * nb + bj) * nb + bk
                trace.append(("node", node_id))
                if self.minmax[0][bi, bj, bk] <= self.threshold:
                    # skip to the far face of this transparent block
                    z = (bk + 1) * b * step + step / 2
                    continue
            # Trilinear sample over the 8 surrounding voxels — what real
            # volume renderers do, and what gives adjacent rays their
            # *shared* working set (the 2×2 voxel columns straddle rays).
            fz = z * n - 0.5
            k0 = min(max(int(fz), 0), n - 2)
            wz = min(max(fz - k0, 0.0), 1.0)
            c00 = vol[i0, j0, k0] * (1 - wz) + vol[i0, j0, k0 + 1] * wz
            c01 = vol[i0, j0 + 1, k0] * (1 - wz) + vol[i0, j0 + 1, k0 + 1] * wz
            c10 = vol[i0 + 1, j0, k0] * (1 - wz) + vol[i0 + 1, j0, k0 + 1] * wz
            c11 = (vol[i0 + 1, j0 + 1, k0] * (1 - wz)
                   + vol[i0 + 1, j0 + 1, k0 + 1] * wz)
            d = ((c00 * (1 - wy) + c01 * wy) * (1 - wx)
                 + (c10 * (1 - wy) + c11 * wy) * wx)
            # one read per distinct cache line: the 4 (i, j) voxel columns
            trace.append(("voxel", (i0 * n + j0) * n + k0))
            trace.append(("voxel", (i0 * n + j0 + 1) * n + k0))
            trace.append(("voxel", ((i0 + 1) * n + j0) * n + k0))
            trace.append(("voxel", ((i0 + 1) * n + j0 + 1) * n + k0))
            if d > self.threshold:
                alpha = min(d * 0.5, 1.0)
                intensity += (1.0 - opacity) * alpha * d
                opacity += (1.0 - opacity) * alpha
            z += step
        return intensity, trace

    # ------------------------------------------------------------- program
    def _pixel_elem(self, py: int, px: int) -> int:
        pi, li = divmod(py, self.tile_h)
        pj, lj = divmod(px, self.tile_w)
        return ((pi * self.pc + pj) * self.tile_h + li) * self.tile_w + lj

    def program(self, pid: int) -> Iterator[Op]:
        """Render via a dynamic tile queue (SPLASH VOLREND load-balances
        with task stealing; a static partition leaves the processors whose
        tiles miss the head idle)."""
        bar = PhaseBarriers()
        self._next_tile = 0  # reset runs in every program before any grab
        qt = self.queue_tile
        tiles_x = self.width // qt
        n_tiles = (self.height // qt) * tiles_x
        vox_addr = self.rvolume.element
        node_addr = self.rnodes.element
        pix_addr = self.rpixels.element
        qaddr = self.rqueue.element(0)
        yield Barrier(bar())
        while True:
            yield Lock(0)
            yield Read(qaddr)
            tile = self._next_tile
            self._next_tile += 1
            yield Write(qaddr)
            yield Unlock(0)
            if tile >= n_tiles:
                break
            ty, tx = divmod(tile, tiles_x)
            for py in range(ty * qt, (ty + 1) * qt):
                for px in range(tx * qt, (tx + 1) * qt):
                    intensity, visits = self.march(px, py)
                    self.image[py, px] = intensity
                    for kind, idx in visits:
                        if kind == "node":
                            yield Read(node_addr(idx * _NODE_DOUBLES))
                            yield Work(12)
                        else:
                            yield Read(vox_addr(idx))
                            yield Work(8)
                    yield Work(30)
                    yield Write(pix_addr(self._pixel_elem(py, px)))
        yield Barrier(bar())
