"""Raytrace — recursive ray tracing of a sphere scene (SPLASH-2 RAYTRACE
analog; the paper ran the "Balls4" scene).

Paper characterization (Tables 2-3): read-only, unstructured communication;
a *large* working set (rays reflect, so a processor's rays wander over much
of the scene); pixel plane partitioned like Ocean's grid with processors
writing only their own pixels; scene data read-only and distributed
randomly; an octree imposed on the scene for efficiency, whose top levels
everybody shares.  Figure 2: ≤10% gain even at 8-way clustering (prefetching
of cold scene data); Figure 4: working-set overlap keeps helping even at
32 KB caches because the working set is large.

Implementation: reflective spheres in the unit cube, an octree built over
them (subdivide while a node holds more than a few spheres), orthographic
camera, Lambertian shading plus specular reflection up to ``max_depth``
bounces.  Rays traverse the shared octree (node reads), test spheres
(sphere-record reads) and write only their own pixel tile.  All
intersection math is real and the rendered image is deterministic.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..core.config import MachineConfig
from ..sim.program import Barrier, Lock, Op, Read, Unlock, Work, Write
from .base import Application, PhaseBarriers, proc_grid_shape

__all__ = ["RaytraceApp"]

_SPHERE_DOUBLES = 8   # center(3) + radius + reflectivity + pad = one line
_NODE_DOUBLES = 8     # one line per octree node (bounds/children metadata)

_LIGHT = np.array([0.40824829, 0.40824829, -0.81649658])  # normalized


class _Node:
    """Octree node over the unit cube."""

    __slots__ = ("center", "half", "children", "spheres")

    def __init__(self, center: np.ndarray, half: float) -> None:
        self.center = center
        self.half = half
        self.children: list["_Node"] | None = None
        self.spheres: list[int] = []


class RaytraceApp(Application):
    """Recursive sphere ray tracer.

    Parameters
    ----------
    width, height:
        Image size (default 96×96; pixels are tiled over the processor
        grid exactly like Ocean's subgrids).
    n_spheres:
        Scene size (default 160 — a "Balls"-class scene, dense enough
        that the traversal working set exceeds the paper's largest
        32 KB cache).
    max_depth:
        Reflection bounce limit (default 3; Volrend is the no-reflection
        counterpart).
    """

    name = "raytrace"
    # dynamic task queue: streams depend on simulated lock order
    stream_invariant = False

    def __init__(self, config: MachineConfig, width: int = 96,
                 height: int = 96, n_spheres: int = 160, max_depth: int = 3,
                 leaf_spheres: int = 4, max_tree_depth: int = 6,
                 queue_tile: int = 4, seed: int = 12345) -> None:
        super().__init__(config, seed)
        self.pr, self.pc = proc_grid_shape(config.n_processors)
        if height % self.pr or width % self.pc:
            raise ValueError(
                f"image {width}x{height} must tile over the {self.pr}x"
                f"{self.pc} processor grid")
        if height % queue_tile or width % queue_tile:
            raise ValueError("queue_tile must divide the image dimensions")
        self.queue_tile = queue_tile
        self._next_tile = 0
        self.width, self.height = width, height
        self.tile_h, self.tile_w = height // self.pr, width // self.pc
        self.n_spheres = n_spheres
        self.max_depth = max_depth
        self.leaf_spheres = leaf_spheres
        self.max_tree_depth = max_tree_depth
        self.centers = np.empty((n_spheres, 3))
        self.radii = np.empty(n_spheres)
        self.reflect = np.empty(n_spheres)
        self.image = np.zeros((height, width))
        self.rays_cast = 0
        self.rays_hit = 0
        self.nodes: list[_Node] = []

    # ---------------------------------------------------------------- setup
    def setup(self) -> None:
        rng = self.rng(0)
        self.centers[:] = rng.uniform(0.15, 0.85, size=(self.n_spheres, 3))
        self.radii[:] = rng.uniform(0.04, 0.10, self.n_spheres)
        self.reflect[:] = rng.uniform(0.2, 0.7, self.n_spheres)
        self._build_octree()
        self.rspheres = self.space.allocate(
            "raytrace.spheres", self.n_spheres * _SPHERE_DOUBLES)
        self.rnodes = self.space.allocate(
            "raytrace.nodes", len(self.nodes) * _NODE_DOUBLES)
        self.rpixels = self.space.allocate(
            "raytrace.pixels", self.width * self.height)
        self.rqueue = self.space.allocate("raytrace.queue", 8)
        self.place_interleaved(self.rspheres)
        self.place_interleaved(self.rnodes)
        # tile ownership is dynamic, so pixel pages have no natural owner
        self.place_interleaved(self.rpixels)

    def _build_octree(self) -> None:
        root = _Node(np.full(3, 0.5), 0.5)
        root.spheres = list(range(self.n_spheres))
        self.nodes = [root]
        self._node_index: dict[int, int] = {id(root): 0}
        self._subdivide(root, 0)

    def _subdivide(self, node: _Node, depth: int) -> None:
        if len(node.spheres) <= self.leaf_spheres or depth >= self.max_tree_depth:
            return
        node.children = []
        for o in range(8):
            off = np.array([1 if o & 4 else -1, 1 if o & 2 else -1,
                            1 if o & 1 else -1], dtype=float)
            child = _Node(node.center + off * node.half / 2, node.half / 2)
            # sphere overlaps child AABB (conservative center-distance test)
            for s in node.spheres:
                d = np.abs(self.centers[s] - child.center)
                if np.all(d <= child.half + self.radii[s]):
                    child.spheres.append(s)
            self._node_index[id(child)] = len(self.nodes)
            self.nodes.append(child)
            node.children.append(child)
        node.spheres = []
        for child in node.children:
            self._subdivide(child, depth + 1)

    # ----------------------------------------------------------- numerics
    def _ray_aabb(self, orig: np.ndarray, inv_dir: np.ndarray,
                  node: _Node) -> bool:
        # slab method; axes with zero direction (inv_dir = ±inf) use an
        # explicit containment test to avoid the 0·inf = NaN pitfall
        tmin, tmax = 0.0, np.inf
        for ax in range(3):
            lo = node.center[ax] - node.half
            hi = node.center[ax] + node.half
            o = orig[ax]
            inv = inv_dir[ax]
            if np.isinf(inv):
                if o < lo or o > hi:
                    return False
                continue
            t1 = (lo - o) * inv
            t2 = (hi - o) * inv
            if t1 > t2:
                t1, t2 = t2, t1
            tmin = max(tmin, t1)
            tmax = min(tmax, t2)
            if tmin > tmax:
                return False
        return True

    def _ray_sphere(self, orig: np.ndarray, direction: np.ndarray,
                    s: int) -> float | None:
        oc = orig - self.centers[s]
        b = float(oc @ direction)
        c = float(oc @ oc) - self.radii[s] ** 2
        disc = b * b - c
        if disc < 0.0:
            return None
        t = -b - np.sqrt(disc)
        if t < 1e-6:
            t = -b + np.sqrt(disc)
        return float(t) if t > 1e-6 else None

    def _trace(self, orig: np.ndarray, direction: np.ndarray, depth: int,
               trace: list[tuple[str, int]]) -> float:
        """Shade one ray, appending ('node', idx) / ('sphere', idx) visits."""
        with np.errstate(divide="ignore"):
            inv_dir = 1.0 / direction
        best_t, best_s = np.inf, -1
        stack = [self.nodes[0]]
        tested: set[int] = set()
        while stack:
            node = stack.pop()
            trace.append(("node", self._node_index[id(node)]))
            if not self._ray_aabb(orig, inv_dir, node):
                continue
            if node.children is not None:
                stack.extend(node.children)
                continue
            for s in node.spheres:
                if s in tested:
                    continue
                tested.add(s)
                trace.append(("sphere", s))
                t = self._ray_sphere(orig, direction, s)
                if t is not None and t < best_t:
                    best_t, best_s = t, s
        if best_s < 0:
            return 0.05  # background
        hit = orig + best_t * direction
        normal = (hit - self.centers[best_s]) / self.radii[best_s]
        shade = max(0.0, float(-normal @ _LIGHT)) * (1.0 - self.reflect[best_s])
        if depth + 1 < self.max_depth and self.reflect[best_s] > 0.0:
            rdir = direction - 2.0 * float(direction @ normal) * normal
            shade += self.reflect[best_s] * self._trace(
                hit + 1e-5 * rdir, rdir, depth + 1, trace)
        return min(shade, 1.0)

    # ------------------------------------------------------------- program
    def _pixel_elem(self, py: int, px: int) -> int:
        """Tile-contiguous pixel layout ([proc][local row][local col])."""
        pi, li = divmod(py, self.tile_h)
        pj, lj = divmod(px, self.tile_w)
        return ((pi * self.pc + pj) * self.tile_h + li) * self.tile_w + lj

    def program(self, pid: int) -> Iterator[Op]:
        """Render via a dynamic tile queue (SPLASH RAYTRACE load-balances
        with distributed task queues; static tiles would leave the
        processors whose tiles miss the scene idle at the barrier)."""
        bar = PhaseBarriers()
        self._next_tile = 0  # reset runs in every program before any grab
        qt = self.queue_tile
        tiles_x = self.width // qt
        n_tiles = (self.height // qt) * tiles_x
        node_addr = self.rnodes.element
        sph_addr = self.rspheres.element
        pix_addr = self.rpixels.element
        qaddr = self.rqueue.element(0)
        yield Barrier(bar())
        while True:
            yield Lock(0)
            yield Read(qaddr)
            tile = self._next_tile
            self._next_tile += 1
            yield Write(qaddr)
            yield Unlock(0)
            if tile >= n_tiles:
                break
            ty, tx = divmod(tile, tiles_x)
            for py in range(ty * qt, (ty + 1) * qt):
                for px in range(tx * qt, (tx + 1) * qt):
                    orig = np.array([(px + 0.5) / self.width,
                                     (py + 0.5) / self.height, -0.5])
                    direction = np.array([0.0, 0.0, 1.0])
                    visits: list[tuple[str, int]] = []
                    shade = self._trace(orig, direction, 0, visits)
                    self.image[py, px] = shade
                    self.rays_cast += 1
                    if shade > 0.05:
                        self.rays_hit += 1
                    for kind, idx in visits:
                        if kind == "node":
                            yield Read(node_addr(idx * _NODE_DOUBLES))
                            yield Work(20)
                        else:
                            yield Read(sph_addr(idx * _SPHERE_DOUBLES))
                            yield Work(45)
                    yield Work(60)  # shading (normal, dot products, clamp)
                    yield Write(pix_addr(self._pixel_elem(py, px)))
        yield Barrier(bar())
