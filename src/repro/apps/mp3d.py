"""MP3D — rarefied-fluid particle-in-cell simulation (SPLASH MP3D analog).

Paper characterization (Tables 2-3): 50 000 particles; *the* communication
stress test — high-volume, very unstructured, read-write sharing of the
space-cell array; large O(n/p) working set.  The paper keeps it precisely
because it is *not* a well-tuned parallel code: particles are dealt to
processors round-robin with no spatial locality (it was written for vector
machines), so every processor scatters updates across the whole space-cell
array.  Figure 2: the relative communication reduction from clustering is
small, but because communication dominates execution time the performance
gain is the largest of the unstructured codes (~15% at 8-way).

Per time step each processor, for each of its particles:

1. reads the particle record (its own partition, placed locally),
2. advances it ballistically, reflecting at the domain walls (real
   kinematics — positions/velocities are simulated honestly),
3. reads **and writes** the space cell the particle lands in (count,
   momentum and energy accumulators — the unstructured read-write
   communication), and
4. with probability ``collide_prob`` performs a collision against the
   cell's reservoir velocity, rotating its velocity while preserving speed
   (energy-conserving, which the tests check).

Steps are separated by barriers.  Cell records are one cache line each and
round-robin page-placed (no owner makes sense — everyone writes them all).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..core.config import MachineConfig
from ..sim.program import Barrier, Lock, Op, Read, Unlock, Work, Write
from .base import Application, PhaseBarriers

__all__ = ["MP3DApp"]

#: particle record: pos(3) + vel(3) + padding = one 64 B line
_PARTICLE_DOUBLES = 8
#: cell record: count + momentum(3) + energy + reservoir(3) = one 64 B line
_CELL_DOUBLES = 8


class MP3DApp(Application):
    """Particle-in-cell stress test.

    Parameters
    ----------
    n_particles:
        Particle count (default 50 000, the paper's size).
    cells_per_side:
        The space array is ``cells_per_side**3`` cells (default 12 → 1 728
        cells ≈ 108 KB of read-write shared accumulators).
    n_steps:
        Time steps (default 4).
    collide_prob:
        Per-step collision probability (default 0.25).
    """

    name = "mp3d"

    def __init__(self, config: MachineConfig, n_particles: int = 50000,
                 cells_per_side: int = 12, n_steps: int = 4,
                 collide_prob: float = 0.25, seed: int = 12345) -> None:
        super().__init__(config, seed)
        if n_particles < config.n_processors:
            raise ValueError("need at least one particle per processor")
        self.n_particles = n_particles
        self.cells_per_side = cells_per_side
        self.n_cells = cells_per_side ** 3
        self.n_steps = n_steps
        self.collide_prob = collide_prob
        self.pos = np.empty((n_particles, 3))
        self.vel = np.empty((n_particles, 3))
        # cell accumulators: [count, px, py, pz, energy, rx, ry, rz]
        self.cells = np.zeros((self.n_cells, _CELL_DOUBLES))

    # ---------------------------------------------------------------- setup
    def setup(self) -> None:
        rng = self.rng(0)
        self.pos[:] = rng.uniform(0.0, 1.0, size=self.pos.shape)
        self.vel[:] = rng.normal(0.0, 0.08, size=self.vel.shape)
        self.cells[:, 5:8] = rng.normal(0.0, 0.08, size=(self.n_cells, 3))
        self.rparticles = self.space.allocate(
            "mp3d.particles", self.n_particles * _PARTICLE_DOUBLES)
        self.rcells = self.space.allocate(
            "mp3d.cells", self.n_cells * _CELL_DOUBLES)
        # particles dealt round-robin -> place contiguous index chunks at
        # their owner's cluster anyway (records are private to the owner)
        self.place_partitions(self.rparticles)
        # space cells: no meaningful owner; first-touch round-robin pages

    def cell_of(self, p: int) -> int:
        """Space cell index containing particle ``p`` (from live position)."""
        cps = self.cells_per_side
        ijk = np.minimum((self.pos[p] * cps).astype(int), cps - 1)
        return int((ijk[0] * cps + ijk[1]) * cps + ijk[2])

    # -------------------------------------------------------------- program
    def program(self, pid: int) -> Iterator[Op]:
        bar = PhaseBarriers()
        rng = self.rng(1, pid)
        mine = self.partition_slice(self.n_particles, pid)
        pelem = self.rparticles.element
        celem = self.rcells.element
        dt = 0.05
        yield Barrier(bar())

        for _step in range(self.n_steps):
            for p in mine:
                # -- numerics: ballistic move with wall reflection --------
                self.pos[p] += dt * self.vel[p]
                for ax in range(3):
                    if self.pos[p, ax] < 0.0:
                        self.pos[p, ax] = -self.pos[p, ax]
                        self.vel[p, ax] = -self.vel[p, ax]
                    elif self.pos[p, ax] > 1.0:
                        self.pos[p, ax] = 2.0 - self.pos[p, ax]
                        self.vel[p, ax] = -self.vel[p, ax]
                cell = self.cell_of(p)
                crec = self.cells[cell]
                crec[0] += 1.0
                crec[1:4] += self.vel[p]
                crec[4] += 0.5 * float(self.vel[p] @ self.vel[p])
                collided = rng.random() < self.collide_prob
                if collided:
                    # elastic scatter against the cell reservoir direction:
                    # rotate velocity toward it, preserving speed
                    speed = float(np.linalg.norm(self.vel[p]))
                    mix = 0.5 * (self.vel[p] + crec[5:8])
                    norm = float(np.linalg.norm(mix))
                    if norm > 1e-12 and speed > 0.0:
                        self.vel[p] = mix * (speed / norm)
                # -- reference stream -------------------------------------
                yield Read(pelem(p * _PARTICLE_DOUBLES))
                yield Work(50)  # move + cell arithmetic
                yield Read(celem(cell * _CELL_DOUBLES))     # accumulate:
                yield Write(celem(cell * _CELL_DOUBLES))    # read-modify-write
                if collided:
                    # SPLASH MP3D guards collisions with per-cell locks;
                    # lock contention is part of its synchronisation story.
                    yield Lock(cell)
                    yield Work(40)
                    yield Write(celem(cell * _CELL_DOUBLES))
                    yield Unlock(cell)
                yield Write(pelem(p * _PARTICLE_DOUBLES))
            yield Barrier(bar())

    # ------------------------------------------------------------- checking
    def total_count(self) -> float:
        """Sum of all cell population accumulators (= particles × steps)."""
        return float(self.cells[:, 0].sum())

    def kinetic_energy(self) -> float:
        """Total particle kinetic energy (conserved by elastic collisions)."""
        return float(0.5 * np.einsum("ij,ij->", self.vel, self.vel))
