"""The nine-application workload suite (SPLASH-style, really computing)."""

from .barnes import BarnesApp
from .base import Application, PhaseBarriers, proc_grid_shape
from .fft import FFTApp
from .fmm import FMMApp
from .lu import LUApp
from .mp3d import MP3DApp
from .ocean import OceanApp
from .radix import RadixApp
from .raytrace import RaytraceApp
from .registry import APP_NAMES, PAPER_PROBLEM_SIZES, app_class, build_app
from .volrend import VolrendApp

__all__ = [
    "Application", "PhaseBarriers", "proc_grid_shape",
    "BarnesApp", "FFTApp", "FMMApp", "LUApp", "MP3DApp", "OceanApp",
    "RadixApp", "RaytraceApp", "VolrendApp",
    "APP_NAMES", "PAPER_PROBLEM_SIZES", "app_class", "build_app",
]
