"""Radix — parallel radix sort of integer keys (SPLASH-2 RADIX analog).

Paper characterization (Tables 2-3): 256 K integer keys, radix 256;
all-to-all, relatively unstructured communication; two working sets — one
small (histograms), one large O(n/p) (the key partitions).  Figure 2: Radix
shows significant *prefetching* effects on the shared histograms, but — as
in LU — cluster-mates touch the histograms at the same time, so much of the
saved load-stall time reappears as merge time and net benefits are small.

One pass per digit (least significant first):

1. **histogram** — each processor counts digit occurrences in its key
   partition (linear local reads) and publishes its histogram row to a
   shared histogram table;
2. *barrier*; **rank** — the digit space is split across processors: the
   owner of a digit slice reads that *column* of every processor's
   histogram row (this transposed reduction over the shared histograms is
   the heavily shared read the paper calls out) and publishes per-(digit,
   processor) starting offsets;
3. *barrier*; **permute** — each processor re-reads its keys and writes
   each into its globally ranked slot of the destination buffer
   (unstructured all-to-all writes, "random locations in a shared array");
4. *barrier*; buffers swap and the next digit begins.

The sort is real: the final buffer equals ``numpy.sort`` of the input
(checked in tests).  Key buffers and histogram/offset rows are placed at
their owner's cluster.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..core.config import MachineConfig
from ..sim.program import Barrier, Op, Read, Work, Write
from .base import Application, PhaseBarriers

__all__ = ["RadixApp"]


class RadixApp(Application):
    """Parallel LSD radix sort.

    Parameters
    ----------
    n_keys:
        Number of keys (default 131 072; the paper used 262 144).
    radix:
        Digit base (default 256, the paper's radix).
    n_digits:
        Number of digit passes; keys are drawn from ``[0, radix**n_digits)``
        (default 2, giving 16-bit keys at the default radix).
    """

    name = "radix"

    def __init__(self, config: MachineConfig, n_keys: int = 131072,
                 radix: int = 256, n_digits: int = 2,
                 seed: int = 12345) -> None:
        super().__init__(config, seed)
        if n_keys % config.n_processors != 0:
            raise ValueError("n_keys must be divisible by the processor count")
        if radix < 2 or n_digits < 1:
            raise ValueError("radix must be >= 2 and n_digits >= 1")
        if radix % config.n_processors != 0 and config.n_processors % radix != 0:
            # digit slices must tile the radix space evenly
            if radix < config.n_processors:
                raise ValueError("radix must be >= n_processors")
        self.n_keys = n_keys
        self.radix = radix
        self.n_digits = n_digits
        self.keys_per_proc = n_keys // config.n_processors
        self.buffers = [np.empty(n_keys, dtype=np.int64) for _ in range(2)]
        self.key_input = np.empty(n_keys, dtype=np.int64)
        # per-pass scratch shared between processes (recomputed each pass)
        self._hist = np.zeros((config.n_processors, radix), dtype=np.int64)
        self._offsets = np.zeros((radix, config.n_processors), dtype=np.int64)
        self._offsets_pass = -1  # which pass self._offsets currently holds

    # ---------------------------------------------------------------- setup
    def setup(self) -> None:
        rng = self.rng(0)
        hi = self.radix ** self.n_digits
        self.key_input[:] = rng.integers(0, hi, size=self.n_keys)
        self.buffers[0][:] = self.key_input
        n = self.n_keys
        self.rkeys = [self.space.allocate(f"radix.keys{b}", n) for b in (0, 1)]
        p, r = self.config.n_processors, self.radix
        self.rhist = self.space.allocate("radix.hist", p * r)
        self.roffsets = self.space.allocate("radix.offsets", r * p)
        self.rtotals = self.space.allocate("radix.totals", r)
        for region in self.rkeys:
            self.place_partitions(region)
        self.place_partitions(self.rhist)      # row pid at pid's cluster
        # offsets: digit-major; slice owned by the digit-slice owner
        self.place_partitions(self.roffsets)

    def _digit_slice(self, pid: int) -> range:
        """Digit values whose ranking processor ``pid`` is."""
        per = self.radix // self.config.n_processors
        if per == 0:
            # fewer digits than processors: low pids take one digit each
            return range(pid, pid + 1) if pid < self.radix else range(0)
        return range(pid * per, (pid + 1) * per)

    # -------------------------------------------------------------- program
    def program(self, pid: int) -> Iterator[Op]:
        bar = PhaseBarriers()
        p = self.config.n_processors
        r = self.radix
        kpp = self.keys_per_proc
        lo = pid * kpp
        yield Barrier(bar())

        for digit in range(self.n_digits):
            shift = digit
            src = self.buffers[digit % 2]
            dst = self.buffers[(digit + 1) % 2]
            rsrc = self.rkeys[digit % 2]
            rdst = self.rkeys[(digit + 1) % 2]

            # ---- phase 1: local histogram ------------------------------
            my_keys = src[lo:lo + kpp]
            digits = (my_keys // (r ** shift)) % r
            self._hist[pid, :] = np.bincount(digits, minlength=r)
            yield from self.read_span(rsrc, lo, kpp)
            yield Work(12 * kpp)
            yield from self.write_span(self.rhist, pid * r, r)
            yield Barrier(bar())

            # ---- phase 2a: transposed rank reduction -------------------
            # I own a slice of digit values; read that column of every
            # processor's histogram row (the heavily shared access the
            # paper calls out) and publish within-digit processor offsets
            # plus my digits' totals.
            if digit != self._offsets_pass:
                # numerics once per pass, identical for all processes
                counts = self._hist.sum(axis=0)
                digit_base = np.concatenate(([0], np.cumsum(counts)[:-1]))
                within = np.cumsum(self._hist, axis=0) - self._hist
                self._offsets[:, :] = digit_base[:, None] + within.T
                self._offsets_pass = digit
            mine = self._digit_slice(pid)
            hist_elem = self.rhist.element
            for d in mine:
                for q in range(p):
                    yield Read(hist_elem(q * r + d))
                yield Work(2 * p)
                yield from self.write_span(self.roffsets, d * p, p)
                yield Write(self.rtotals.element(d))
            yield Barrier(bar())

            # ---- phase 2b: digit-base prefix ---------------------------
            # Each slice owner folds the totals of all lower digits into
            # its offsets (the compact second reduction step that replaces
            # SPLASH's tree).
            if len(mine):
                yield from self.read_span(self.rtotals, 0, mine.start + 1)
                yield Work(mine.start + 2 * len(mine))
                for d in mine:
                    yield from self.write_span(self.roffsets, d * p, p)
            yield Barrier(bar())

            # ---- phase 3: permutation ----------------------------------
            ranks = self._offsets[digits, pid] + _stable_rank_within(digits, r)
            dst[ranks] = my_keys
            off_elem = self.roffsets.element
            dst_elem = rdst.element
            read_off_done = set()
            for i in range(kpp):
                d = int(digits[i])
                if d not in read_off_done:
                    read_off_done.add(d)
                    yield Read(off_elem(d * p + pid))
                yield Read(rsrc.element(lo + i))
                yield Work(14)
                yield Write(dst_elem(int(ranks[i])))
            yield Barrier(bar())

    # ------------------------------------------------------------- checking
    def result(self) -> np.ndarray:
        """The sorted keys (final destination buffer)."""
        return self.buffers[self.n_digits % 2].copy()

    def reference(self) -> np.ndarray:
        return np.sort(self.key_input)


def _stable_rank_within(digits: np.ndarray, radix: int) -> np.ndarray:
    """Rank of each key among *my* keys with the same digit (stable order)."""
    ranks = np.empty(len(digits), dtype=np.int64)
    seen = np.zeros(radix, dtype=np.int64)
    for i, d in enumerate(digits):
        ranks[i] = seen[d]
        seen[d] += 1
    return ranks
