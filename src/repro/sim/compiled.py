"""Compiled-trace execution: flat-array program capture and reuse.

The execution engine historically pulled one ``(opcode, arg)`` tuple per
simulated operation out of a per-processor Python generator.  Each pull is a
generator resumption plus a tuple allocation plus a tuple unpack — pure
interpreter overhead that dwarfs the simulated work for memory-light ops.
Worse, every sweep point regenerated the *identical* stream from scratch:
the reference stream of an application depends only on the problem
(app + kwargs + seed) and the stream-relevant machine fields
(:meth:`~repro.core.config.MachineConfig.trace_signature` — processor
count, line size, page size), **not** on cluster size, cache capacity,
latency table, or network model.  A cluster-size × cache-size grid can
therefore capture each app's program once and replay it everywhere.

This module provides that capture/replay layer:

* :class:`CompiledProgram` — per-processor flat parallel ``array('q')``
  opcode/arg arrays.  READ/WRITE operands are pre-divided by the line size
  (the engine's per-op ``arg // line_size`` disappears) and consecutive
  WORK ops are fused at compile time, so replay is index bumping with zero
  per-op allocation;
* :func:`compile_program` — drain a generator-based program factory once
  into a :class:`CompiledProgram`;
* :func:`trace_key` — content hash identifying one compiled trace
  (version, app, kwargs, seed, stream-relevant machine fields);
* :class:`TraceCache` — process-wide in-memory LRU of compiled programs
  plus an optional persistent tier
  (:class:`~repro.core.resultcache.TraceStore`), so a sweep compiles each
  app once per process and ``--jobs`` worker processes share traces via
  disk.

Replay is **bit-identical** to generator execution: the engine's golden
and equivalence suites (``tests/test_golden_regression.py``,
``tests/test_compiled.py``) compare canonical ``RunResult`` JSON
byte-for-byte.  A corrupted or stale disk trace is never fatal — it decodes
to a miss (with a warning) and the program is regenerated.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import warnings
import zlib
from array import array
from collections import OrderedDict
from typing import Any, Mapping

from ..core.resultcache import TraceStore
from .program import (OP_BARRIER, OP_READ, OP_UNLOCK, OP_WORK, OP_WRITE,
                      ProgramFactory)

__all__ = ["CompiledProgram", "TraceCache", "TraceDecodeError",
           "compile_program", "trace_key", "clear_memory_cache",
           "memory_cache_len", "ENV_TRACE_LRU"]

#: environment variable overriding the in-memory LRU capacity (entries)
ENV_TRACE_LRU = "REPRO_TRACE_LRU"

# Default sized to hold a full 9-app sweep: 6 stream-invariant traces (one
# per app, shared across cluster sizes) plus one trace per (dynamic app,
# config) pair — a 4-cluster-size grid needs 6 + 3*4 = 18.  Quick-scale
# traces are a few MB each, so 32 stays far below typical memory budgets;
# REPRO_TRACE_LRU overrides for paper-scale runs.
_DEFAULT_LRU_ENTRIES = 32

#: serialization magic: bump the trailing digits on any format change so
#: stale cache entries from older versions decode as misses, not garbage
_MAGIC = b"RPROTRC1"


class TraceDecodeError(ValueError):
    """A serialized compiled trace is corrupt, truncated, or incompatible."""


class CompiledProgram:
    """The flat-array form of one program across all processors.

    ``ops[pid]`` / ``args[pid]`` are parallel ``array('q')`` columns: entry
    ``i`` is the ``i``-th operation of processor ``pid``.  Opcodes are the
    :mod:`repro.sim.program` constants; READ/WRITE args are **line
    numbers** (already divided by ``line_size``), all other args are
    verbatim.

    Instances are immutable by convention (the engine only reads them), so
    one compiled program can be replayed concurrently by any number of
    engines and shared through :class:`TraceCache`.
    """

    __slots__ = ("ops", "args", "n_processors", "line_size", "source_ops",
                 "fused_work", "_runtime", "_batch")

    def __init__(self, ops: list[array], args: list[array], line_size: int,
                 source_ops: int, fused_work: bool) -> None:
        if len(ops) != len(args):
            raise ValueError("ops/args column counts differ")
        for o, a in zip(ops, args):
            if len(o) != len(a):
                raise ValueError("ops/args columns have unequal lengths")
        self.ops = ops
        self.args = args
        self.n_processors = len(ops)
        self.line_size = line_size
        #: operation count before WORK fusion (what a generator would yield)
        self.source_ops = source_ops
        self.fused_work = fused_work
        self._runtime: tuple[list[list[int]], list[list[int]]] | None = None
        #: batched-replay decode cache (:mod:`repro.sim.batch.columns`):
        #: packed per-processor columns plus the static per-processor
        #: counter totals, shared by every point of a batch group
        self._batch = None

    def runtime_columns(self) -> tuple[list[list[int]], list[list[int]]]:
        """Plain-list views of ``(ops, args)`` for the replay loop.

        ``array('q')`` is the compact storage/wire format, but indexing it
        boxes a fresh int per access; replay indexes every operand once per
        replay, so the engine uses list columns where each int is boxed
        once.  Built lazily on first replay and cached — the arrays remain
        the canonical (serialized, hashed) representation.
        """
        rt = self._runtime
        if rt is None:
            rt = ([list(o) for o in self.ops], [list(a) for a in self.args])
            self._runtime = rt
        return rt

    # ----------------------------------------------------------------- size
    @property
    def total_ops(self) -> int:
        """Stored (post-fusion) operations across all processors."""
        return sum(len(o) for o in self.ops)

    @property
    def nbytes(self) -> int:
        """In-memory payload size of the flat arrays."""
        return sum(o.itemsize * len(o) + a.itemsize * len(a)
                   for o, a in zip(self.ops, self.args))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"CompiledProgram({self.n_processors} processors, "
                f"{self.total_ops:,} ops, line_size={self.line_size})")

    # -------------------------------------------------------- serialization
    def to_bytes(self) -> bytes:
        """Compact binary encoding (zlib-compressed, CRC-protected)."""
        payload = b"".join(col.tobytes()
                           for pair in zip(self.ops, self.args)
                           for col in pair)
        header = json.dumps({
            "n_processors": self.n_processors,
            "line_size": self.line_size,
            "source_ops": self.source_ops,
            "fused_work": self.fused_work,
            "counts": [len(o) for o in self.ops],
            "itemsize": self.ops[0].itemsize if self.ops else 8,
            "byteorder": sys.byteorder,
            "crc32": zlib.crc32(payload),
        }, sort_keys=True).encode("utf-8")
        return (_MAGIC + len(header).to_bytes(4, "little") + header
                + zlib.compress(payload, 1))

    @classmethod
    def from_bytes(cls, blob: bytes) -> "CompiledProgram":
        """Inverse of :meth:`to_bytes`.

        Raises :class:`TraceDecodeError` on any corruption: bad magic,
        truncation, malformed header, CRC mismatch, or an encoding written
        by an incompatible platform (item size / byte order).
        """
        try:
            if blob[:8] != _MAGIC:
                raise TraceDecodeError("bad magic")
            hlen = int.from_bytes(blob[8:12], "little")
            header = json.loads(blob[12:12 + hlen].decode("utf-8"))
            payload = zlib.decompress(blob[12 + hlen:])
            counts = header["counts"]
            itemsize = header["itemsize"]
            if itemsize != array("q").itemsize:
                raise TraceDecodeError(f"item size {itemsize} != native")
            if header["byteorder"] != sys.byteorder:
                raise TraceDecodeError("foreign byte order")
            if zlib.crc32(payload) != header["crc32"]:
                raise TraceDecodeError("payload CRC mismatch")
            if len(payload) != 2 * itemsize * sum(counts):
                raise TraceDecodeError("payload length mismatch")
            ops: list[array] = []
            args: list[array] = []
            offset = 0
            for count in counts:
                nb = count * itemsize
                for out in (ops, args):
                    col = array("q")
                    col.frombytes(payload[offset:offset + nb])
                    out.append(col)
                    offset += nb
            return cls(ops, args, header["line_size"],
                       header["source_ops"], header["fused_work"])
        except TraceDecodeError:
            raise
        except Exception as exc:  # truncated/garbled in any other way
            raise TraceDecodeError(f"undecodable trace: {exc!r}") from exc


def compile_program(program_factory: ProgramFactory, n_processors: int,
                    line_size: int, fuse_work: bool = True,
                    ) -> CompiledProgram:
    """Drain every processor's generator once into a :class:`CompiledProgram`.

    * READ/WRITE byte addresses become line numbers (``arg // line_size``),
      hoisting the division out of the replay loop entirely;
    * with ``fuse_work`` (the default), a run of consecutive WORK ops
      collapses into one WORK carrying the summed cycles — SPMD emission
      helpers pad spans with WORK, so fusion typically removes 10-30% of
      stored ops;
    * operand validation (negative WORK, unknown opcode) happens here, at
      compile time, so the replay loop never re-checks it.

    The drain is **barrier-phased**, mirroring the engine's interleaving at
    the granularity that matters: several applications (Radix's parallel
    prefix, Barnes' tree phases, the task-grid codes) compute shared Python
    state in one barrier phase that the next phase's streams read, so no
    generator may run ahead of a barrier until every generator has reached
    it.  Within a phase, generators advance in processor order — safe
    because SPMD phases are race-free between barriers (that is what the
    barrier is *for*; an app whose stream content depended on intra-phase
    timing would not be deterministic across machine organisations in the
    first place, and the equivalence suite would catch it).
    """
    if n_processors <= 0:
        raise ValueError("n_processors must be positive")
    if line_size <= 0:
        raise ValueError("line_size must be positive")
    all_ops = [array("q") for _ in range(n_processors)]
    all_args = [array("q") for _ in range(n_processors)]
    gens = [iter(program_factory(pid)) for pid in range(n_processors)]
    prev_was_work = [False] * n_processors
    source_ops = 0
    running = list(range(n_processors))
    while running:
        still_running = []
        for pid in running:
            ops = all_ops[pid]
            args = all_args[pid]
            append_op = ops.append
            append_arg = args.append
            was_work = prev_was_work[pid]
            for opcode, arg in gens[pid]:
                source_ops += 1
                if opcode == OP_WORK:
                    if arg < 0:
                        raise ValueError(f"negative WORK cycles: {arg}")
                    if fuse_work and was_work:
                        args[-1] += arg
                        continue
                    was_work = True
                else:
                    was_work = False
                    if opcode == OP_READ or opcode == OP_WRITE:
                        arg //= line_size
                    elif not 0 <= opcode <= OP_UNLOCK:
                        raise ValueError(f"unknown opcode {opcode}")
                append_op(opcode)
                append_arg(arg)
                if opcode == OP_BARRIER:
                    still_running.append(pid)
                    break
            prev_was_work[pid] = was_work
        running = still_running
    return CompiledProgram(all_ops, all_args, line_size, source_ops,
                           fuse_work)


class ProgramRecorder:
    """Capture a program's streams *while* an engine executes them.

    The barrier-phased drain of :func:`compile_program` is correct only for
    applications whose streams are independent of intra-phase timing.  The
    dynamic task-queue codes (Barnes, Raytrace, Volrend) violate that: a
    lock-protected Python-side counter decides which task each processor
    grabs, so the streams depend on simulated lock-acquisition order —
    something only a real engine run knows.  For those, wrap the factory::

        recorder = ProgramRecorder(app.program, n, line_size)
        result = engine.run(recorder.factory)
        program = recorder.finish()

    ``factory`` is a drop-in :data:`~repro.sim.program.ProgramFactory` that
    transparently appends every yielded op (with the same line-division and
    WORK fusion as :func:`compile_program`) before handing it to the
    engine, so the capture is the *executed* interleaving by construction
    and replaying it on an identically-configured machine is bit-identical.
    """

    def __init__(self, program_factory: ProgramFactory, n_processors: int,
                 line_size: int, fuse_work: bool = True) -> None:
        if n_processors <= 0:
            raise ValueError("n_processors must be positive")
        if line_size <= 0:
            raise ValueError("line_size must be positive")
        self._factory = program_factory
        self.n_processors = n_processors
        self.line_size = line_size
        self.fuse_work = fuse_work
        self._ops = [array("q") for _ in range(n_processors)]
        self._args = [array("q") for _ in range(n_processors)]
        self._source_ops = 0

    def factory(self, pid: int):
        """The recording wrapper around ``program_factory(pid)``."""
        ops = self._ops[pid]
        args = self._args[pid]
        fuse = self.fuse_work
        line_size = self.line_size
        was_work = False
        for op in self._factory(pid):
            opcode, arg = op
            self._source_ops += 1
            if opcode == OP_WORK:
                if fuse and was_work:
                    args[-1] += arg
                    yield op
                    continue
                was_work = True
                ops.append(opcode)
                args.append(arg)
            else:
                was_work = False
                ops.append(opcode)
                args.append(arg // line_size
                            if opcode == OP_READ or opcode == OP_WRITE
                            else arg)
            yield op

    def finish(self) -> CompiledProgram:
        """The capture as a :class:`CompiledProgram` (call after the run)."""
        return CompiledProgram(self._ops, self._args, self.line_size,
                               self._source_ops, self.fuse_work)


# --------------------------------------------------------------------- keys

def trace_key(app: str, app_kwargs: Mapping[str, Any], config: Any,
              seed: int, version: str | None = None,
              stream_invariant: bool = True) -> str:
    """Content hash identifying one compiled trace.

    Covers the package version, the application and its problem kwargs, the
    application seed, and the machine fields the reference stream actually
    depends on (:meth:`MachineConfig.trace_signature`).  Cluster size,
    cache capacity, associativity, latency table, and network model are
    deliberately **absent** — that is what lets a clustering sweep reuse
    one trace across its whole grid.

    With ``stream_invariant=False`` (the dynamic task-queue applications,
    whose executed streams depend on simulated timing) the key instead
    covers the **complete** machine configuration: such a capture is only
    replayable at the exact configuration that recorded it.
    """
    if version is None:
        from .._version import __version__ as version
    payload = {
        "version": version,
        "app": app,
        "app_kwargs": dict(app_kwargs),
        "seed": seed,
        "stream": (config.trace_signature() if stream_invariant
                   else config.to_dict()),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# -------------------------------------------------------- process-wide LRU

_memory_lru: OrderedDict[str, CompiledProgram] = OrderedDict()


def _lru_capacity() -> int:
    try:
        return max(1, int(os.environ.get(ENV_TRACE_LRU,
                                         _DEFAULT_LRU_ENTRIES)))
    except ValueError:
        return _DEFAULT_LRU_ENTRIES


def clear_memory_cache() -> None:
    """Drop every in-memory trace (tests and cold benchmarks use this)."""
    _memory_lru.clear()


def memory_cache_len() -> int:
    """Number of traces currently held by the in-memory LRU."""
    return len(_memory_lru)


class TraceCache:
    """Two-tier cache of compiled programs.

    Tier 1 is a **process-wide** LRU of live :class:`CompiledProgram`
    objects (capacity :data:`ENV_TRACE_LRU`, default 32 entries) — shared by
    every ``TraceCache`` instance in the process, so a study, its executor,
    and a process-pool worker all see each other's compilations.  Tier 2 is
    an optional :class:`~repro.core.resultcache.TraceStore` on disk, which
    is what lets separate ``--jobs`` worker processes and separate CLI
    invocations reuse traces.

    Instances are cheap and picklable (the LRU is module state, the store
    carries only a path), so executors ship them to pool workers as-is.
    """

    def __init__(self, store: TraceStore | None = None) -> None:
        self.store = store
        self.memory_hits = 0
        self.disk_hits = 0
        self.misses = 0

    def get(self, key: str) -> CompiledProgram | None:
        """The cached program for ``key``, or ``None`` (counted as a miss).

        A corrupt disk entry degrades to a miss with a ``UserWarning``; the
        caller recompiles and :meth:`put` overwrites the bad entry.
        """
        program = _memory_lru.get(key)
        if program is not None:
            _memory_lru.move_to_end(key)
            self.memory_hits += 1
            return program
        if self.store is not None:
            blob = self.store.get_bytes(key)
            if blob is not None:
                try:
                    program = CompiledProgram.from_bytes(blob)
                except TraceDecodeError as exc:
                    warnings.warn(
                        f"discarding corrupt compiled trace {key[:12]}… "
                        f"({exc}); regenerating", stacklevel=2)
                else:
                    self._remember(key, program)
                    self.disk_hits += 1
                    return program
        self.misses += 1
        return None

    def preload(self, key: str) -> CompiledProgram | None:
        """Make ``key`` resident in the in-memory LRU, without stats.

        Fork-server warmup: the sweep parent calls this for every disk-
        resident trace *before* the worker pool forks, so workers inherit
        the decoded programs copy-on-write instead of each re-reading and
        re-decompressing the :class:`~repro.core.resultcache.TraceStore`.
        Unlike :meth:`get` it never touches the hit/miss counters (warmup
        is not demand traffic) and a corrupt disk entry is silently left
        for the demand path to report.  Returns the resident program, or
        ``None`` when the trace is neither in memory nor on disk.
        """
        program = _memory_lru.get(key)
        if program is not None:
            _memory_lru.move_to_end(key)
            return program
        if self.store is None:
            return None
        blob = self.store.get_bytes(key)
        if blob is None:
            return None
        try:
            program = CompiledProgram.from_bytes(blob)
        except TraceDecodeError:
            return None
        self._remember(key, program)
        return program

    def put(self, key: str, program: CompiledProgram) -> None:
        """Install ``program`` in both tiers (disk failures are swallowed)."""
        self._remember(key, program)
        if self.store is not None:
            self.store.put_bytes(key, program.to_bytes())

    @staticmethod
    def _remember(key: str, program: CompiledProgram) -> None:
        _memory_lru[key] = program
        _memory_lru.move_to_end(key)
        capacity = _lru_capacity()
        while len(_memory_lru) > capacity:
            _memory_lru.popitem(last=False)

    # ------------------------------------------------------------- plumbing
    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    def stats(self) -> str:
        """``'N memory + M disk hits, K misses'`` summary for logs."""
        return (f"{self.memory_hits} memory + {self.disk_hits} disk hits, "
                f"{self.misses} misses")

    def __repr__(self) -> str:  # pragma: no cover
        return f"TraceCache(store={self.store!r}, {self.stats()})"
