"""Compiled-trace execution: flat-array program capture and reuse.

The execution engine historically pulled one ``(opcode, arg)`` tuple per
simulated operation out of a per-processor Python generator.  Each pull is a
generator resumption plus a tuple allocation plus a tuple unpack — pure
interpreter overhead that dwarfs the simulated work for memory-light ops.
Worse, every sweep point regenerated the *identical* stream from scratch:
the reference stream of an application depends only on the problem
(app + kwargs + seed) and the stream-relevant machine fields
(:meth:`~repro.core.config.MachineConfig.trace_signature` — processor
count, line size, page size), **not** on cluster size, cache capacity,
latency table, or network model.  A cluster-size × cache-size grid can
therefore capture each app's program once and replay it everywhere.

This module provides that capture/replay layer:

* :class:`CompiledProgram` — per-processor flat parallel ``array('q')``
  opcode/arg arrays.  READ/WRITE operands are pre-divided by the line size
  (the engine's per-op ``arg // line_size`` disappears) and consecutive
  WORK ops are fused at compile time, so replay is index bumping with zero
  per-op allocation;
* :func:`compile_program` — drain a generator-based program factory once
  into a :class:`CompiledProgram`;
* :func:`trace_key` — content hash identifying one compiled trace
  (version, app, kwargs, seed, stream-relevant machine fields);
* :class:`TraceCache` — process-wide in-memory LRU of compiled programs
  plus an optional persistent tier
  (:class:`~repro.core.resultcache.TraceStore`), so a sweep compiles each
  app once per process and ``--jobs`` worker processes share traces via
  disk.

**Streaming traces.**  Two wire formats coexist.  The legacy ``RPROTRC1``
encoding (zlib-compressed, CRC-protected) remains readable for migration.
The current ``RPROTRC2`` encoding is *mmappable*: an aligned, uncompressed
little-endian int64 section per column behind a JSON header/TOC, so
:meth:`CompiledProgram.from_file` can map a
:class:`~repro.core.resultcache.TraceStore` blob copy-on-write
(``mmap.ACCESS_COPY``) and expose the columns as zero-copy ``memoryview``
slices over the page cache.  A mapped program costs ~0 resident bytes
until touched, its pages are shared between every process mapping the
same blob (fork-server workers, the sweep daemon, parallel CLI runs), and
the native kernel (:mod:`repro.native`) replays it by passing the mapped
column addresses straight into C — no decode, no packing copy.  The pure
python replay loop reads mapped programs through a chunked window
(:class:`_ChunkedColumn`) so it never holds more than a few thousand
boxed ints per column; paper-scale traces (512² LU ≈ 45 MB) stream
through a bounded footprint instead of materialising everywhere.

The in-memory LRU is governed by a **byte budget**
(``REPRO_TRACE_LRU_BYTES``, default 256 MiB) that charges mapped programs
a token constant — so any number of paper-scale mapped traces stay
resident while materialised ones are evicted by size.  The historical
entry-count knob (``REPRO_TRACE_LRU``) is still honoured when set, as a
deprecated alias.  ``REPRO_TRACE_MMAP=0`` disables mapping (every disk
load decodes eagerly to arrays).

Replay is **bit-identical** to generator execution: the engine's golden
and equivalence suites (``tests/test_golden_regression.py``,
``tests/test_compiled.py``, ``tests/test_tracestream.py``) compare
canonical ``RunResult`` JSON byte-for-byte.  A corrupted or stale disk
trace is never fatal — it decodes to a miss (with a warning) and the
program is regenerated.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
import sys
import warnings
import zlib
from array import array
from collections import OrderedDict
from typing import Any, Mapping

from ..core.resultcache import TraceStore
from .program import (OP_BARRIER, OP_READ, OP_UNLOCK, OP_WORK, OP_WRITE,
                      ProgramFactory)

__all__ = ["CompiledProgram", "TraceCache", "TraceDecodeError",
           "compile_program", "trace_key", "clear_memory_cache",
           "memory_cache_len", "memory_cache_bytes", "trace_cache_info",
           "ENV_TRACE_LRU", "ENV_TRACE_LRU_BYTES", "ENV_TRACE_MMAP"]

#: deprecated alias: entry-count cap on the in-memory LRU (honoured when
#: set; the byte budget below is the primary knob)
ENV_TRACE_LRU = "REPRO_TRACE_LRU"

#: environment variable overriding the in-memory LRU byte budget
ENV_TRACE_LRU_BYTES = "REPRO_TRACE_LRU_BYTES"

#: set to ``0`` to disable memory-mapped trace loads (eager array decode)
ENV_TRACE_MMAP = "REPRO_TRACE_MMAP"

# Sized so a full 9-app quick sweep (a few MB per materialised trace)
# never evicts, while a single paper-scale materialised trace (512² LU is
# ~45 MB of columns) still fits several times over.  Mapped traces are
# charged _MAPPED_RESIDENT_BYTES each, so at paper scale the budget is
# effectively an entry bound of ~64k mapped traces — i.e. unlimited.
_DEFAULT_LRU_BYTES = 256 * 1024 * 1024

#: accounting charge for a mapped program: its python-side footprint is a
#: handful of memoryview objects plus one chunked-window cache; the column
#: payload lives in the (evictable, shared) page cache, not the heap
_MAPPED_RESIDENT_BYTES = 4096

#: serialization magics: bump the trailing digit on any format change so
#: stale cache entries from older versions decode as misses, not garbage
_MAGIC_V1 = b"RPROTRC1"
_MAGIC = b"RPROTRC2"

_ITEMSIZE = 8  # int64 columns, both formats


def _align8(n: int) -> int:
    return (n + 7) & ~7


class TraceDecodeError(ValueError):
    """A serialized compiled trace is corrupt, truncated, or incompatible."""


class _ChunkedColumn:
    """A lazy plain-int window over one mapped int64 column.

    The per-point replay loop indexes each processor's column with a
    monotonically non-decreasing cursor and calls ``len()`` once — nothing
    else — so a single cached chunk of boxed ints per column is enough to
    serve it.  Out-of-window accesses re-box the surrounding aligned chunk
    (``tolist`` on a memoryview slice, one C pass), keeping the python
    replay of a mapped program at a bounded footprint:
    ``2 columns × n_processors × _CHUNK`` boxed ints, independent of trace
    size.
    """

    __slots__ = ("_mv", "_n", "_chunk", "_base")

    #: window size in entries; 4096 keeps a 64-processor replay under
    #: ~0.5M resident boxed ints while re-boxing rarely enough to stay
    #: within a few percent of full-list replay throughput
    _CHUNK = 4096

    def __init__(self, mv: memoryview) -> None:
        self._mv = mv
        self._n = len(mv)
        self._chunk: list[int] = []
        self._base = 0

    def __len__(self) -> int:
        return self._n

    def __getitem__(self, i: int) -> int:
        off = i - self._base
        chunk = self._chunk
        if 0 <= off < len(chunk):
            return chunk[off]
        if not 0 <= i < self._n:
            raise IndexError("column index out of range")
        base = i - (i % self._CHUNK)
        self._base = base
        chunk = self._chunk = self._mv[base:base + self._CHUNK].tolist()
        return chunk[i - base]

    def __iter__(self):
        mv = self._mv
        step = self._CHUNK
        for base in range(0, self._n, step):
            yield from mv[base:base + step].tolist()


def _le_bytes(col) -> bytes:
    """Column payload as little-endian int64 bytes (host-order aware)."""
    if sys.byteorder == "little":
        return col.tobytes()
    swapped = array("q", col)
    swapped.byteswap()
    return swapped.tobytes()


class CompiledProgram:
    """The flat-array form of one program across all processors.

    ``ops[pid]`` / ``args[pid]`` are parallel int64 columns: entry ``i``
    is the ``i``-th operation of processor ``pid``.  Opcodes are the
    :mod:`repro.sim.program` constants; READ/WRITE args are **line
    numbers** (already divided by ``line_size``), all other args are
    verbatim.  Columns are ``array('q')`` for compiled/decoded programs
    and ``memoryview`` slices over a copy-on-write file mapping for
    programs loaded via :meth:`from_file` (``mapped`` is then true); both
    spellings expose identical indexing, length, and buffer protocols, so
    every replay path (python per-point, fused batch, native C) works on
    either.

    Instances are immutable by convention (the engine only reads them, and
    the native kernel takes ``const`` views), so one compiled program can
    be replayed concurrently by any number of engines and shared through
    :class:`TraceCache`.
    """

    __slots__ = ("ops", "args", "n_processors", "line_size", "source_ops",
                 "fused_work", "mapped", "_mm", "_runtime", "_batch")

    def __init__(self, ops: list, args: list, line_size: int,
                 source_ops: int, fused_work: bool, *,
                 mapped: bool = False, mapping=None) -> None:
        if len(ops) != len(args):
            raise ValueError("ops/args column counts differ")
        for o, a in zip(ops, args):
            if len(o) != len(a):
                raise ValueError("ops/args columns have unequal lengths")
        self.ops = ops
        self.args = args
        self.n_processors = len(ops)
        self.line_size = line_size
        #: operation count before WORK fusion (what a generator would yield)
        self.source_ops = source_ops
        self.fused_work = fused_work
        #: columns are memoryview slices over a file mapping (zero-copy)
        self.mapped = mapped
        #: the mmap object keeping mapped columns alive (``None`` otherwise)
        self._mm = mapping
        self._runtime = None
        #: batched-replay decode cache (:mod:`repro.sim.batch.columns`):
        #: packed per-processor columns plus the static per-processor
        #: counter totals, shared by every point of a batch group
        self._batch = None

    def runtime_columns(self):
        """Indexable ``(ops, args)`` views for the per-point replay loop.

        ``array('q')`` is the compact storage/wire format, but indexing it
        boxes a fresh int per access; replay indexes every operand once per
        replay, so the engine uses list columns where each int is boxed
        once.  Built lazily on first replay and cached — the arrays remain
        the canonical (serialized, hashed) representation.

        For **mapped** programs the views are :class:`_ChunkedColumn`
        windows instead of full lists: same indexing contract, bounded
        boxed-int footprint regardless of trace size.
        """
        rt = self._runtime
        if rt is None:
            if self.mapped:
                rt = ([_ChunkedColumn(o) for o in self.ops],
                      [_ChunkedColumn(a) for a in self.args])
            else:
                rt = ([list(o) for o in self.ops],
                      [list(a) for a in self.args])
            self._runtime = rt
        return rt

    # ----------------------------------------------------------------- size
    @property
    def total_ops(self) -> int:
        """Stored (post-fusion) operations across all processors."""
        return sum(len(o) for o in self.ops)

    @property
    def nbytes(self) -> int:
        """Payload size of the flat columns (mapped or materialised)."""
        return sum(o.itemsize * len(o) + a.itemsize * len(a)
                   for o, a in zip(self.ops, self.args))

    @property
    def resident_nbytes(self) -> int:
        """What this program charges against the in-memory LRU budget.

        Materialised columns live on the heap and cost their full payload;
        mapped columns live in the shared, evictable page cache and cost a
        token constant.
        """
        return _MAPPED_RESIDENT_BYTES if self.mapped else self.nbytes

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "mapped" if self.mapped else "materialised"
        return (f"CompiledProgram({self.n_processors} processors, "
                f"{self.total_ops:,} ops, line_size={self.line_size}, "
                f"{kind})")

    # -------------------------------------------------------- serialization
    def _header(self, crc: int, payload_offset: int | None = None) -> bytes:
        fields = {
            "n_processors": self.n_processors,
            "line_size": self.line_size,
            "source_ops": self.source_ops,
            "fused_work": self.fused_work,
            "counts": [len(o) for o in self.ops],
            "itemsize": _ITEMSIZE,
            "byteorder": "little" if payload_offset is not None
            else sys.byteorder,
            "crc32": crc,
        }
        if payload_offset is not None:
            fields["payload_offset"] = payload_offset
        return json.dumps(fields, sort_keys=True).encode("utf-8")

    def to_bytes(self, *, version: int = 2) -> bytes:
        """Binary encoding; ``version=2`` (default) is the mmappable form.

        * **v2** — magic, uint32-LE header length, JSON header, zero pad
          to an 8-byte boundary, then the raw little-endian int64 columns
          (per processor: ops then args).  Uncompressed and aligned so
          :meth:`from_file` can map it and hand slices to the native
          kernel without a copy.
        * **v1** — the legacy zlib-compressed encoding, kept for the
          migration round-trip suite.
        """
        if version == 1:
            # legacy writer: native byte order, zlib-compressed
            payload = b"".join(col.tobytes()
                               for pair in zip(self.ops, self.args)
                               for col in pair)
            header = self._header(zlib.crc32(payload))
            return (_MAGIC_V1 + len(header).to_bytes(4, "little") + header
                    + zlib.compress(payload, 1))
        if version != 2:
            raise ValueError(f"unknown trace format version {version}")
        payload = b"".join(_le_bytes(col)
                           for pair in zip(self.ops, self.args)
                           for col in pair)
        crc = zlib.crc32(payload)
        # the header records its own payload offset; offset depends on
        # header length, so fix-point the (rarely iterating) computation
        offset = 0
        for _ in range(4):
            header = self._header(crc, payload_offset=offset)
            want = _align8(12 + len(header))
            if want == offset:
                break
            offset = want
        pad = b"\0" * (offset - 12 - len(header))
        return (_MAGIC + len(header).to_bytes(4, "little") + header + pad
                + payload)

    @classmethod
    def _decode_header(cls, blob, lo: int = 0):
        """Parse ``(header, payload_start)`` from either format's framing."""
        hlen = int.from_bytes(bytes(blob[lo + 8:lo + 12]), "little")
        if hlen <= 0 or lo + 12 + hlen > len(blob):
            raise TraceDecodeError("truncated header")
        header = json.loads(bytes(blob[lo + 12:lo + 12 + hlen])
                            .decode("utf-8"))
        if header["itemsize"] != _ITEMSIZE:
            raise TraceDecodeError(
                f"item size {header['itemsize']} != native")
        return header, lo + 12 + hlen

    @classmethod
    def from_bytes(cls, blob: bytes) -> "CompiledProgram":
        """Inverse of :meth:`to_bytes` — eager decode of either format.

        Raises :class:`TraceDecodeError` on any corruption: bad magic,
        truncation, malformed header, CRC mismatch, or an encoding written
        by an incompatible platform (item size / byte order).
        """
        try:
            magic = bytes(blob[:8])
            if magic == _MAGIC_V1:
                header, pos = cls._decode_header(blob)
                if header["byteorder"] != sys.byteorder:
                    raise TraceDecodeError("foreign byte order")
                payload = zlib.decompress(blob[pos:])
                swap = False
            elif magic == _MAGIC:
                header, pos = cls._decode_header(blob)
                offset = header["payload_offset"]
                if offset < pos:
                    raise TraceDecodeError("payload overlaps header")
                payload = bytes(blob[offset:])
                swap = sys.byteorder != "little"
            else:
                raise TraceDecodeError("bad magic")
            counts = header["counts"]
            if zlib.crc32(payload) != header["crc32"]:
                raise TraceDecodeError("payload CRC mismatch")
            if len(payload) != 2 * _ITEMSIZE * sum(counts):
                raise TraceDecodeError("payload length mismatch")
            ops: list[array] = []
            args: list[array] = []
            offset = 0
            for count in counts:
                nb = count * _ITEMSIZE
                for out in (ops, args):
                    col = array("q")
                    col.frombytes(payload[offset:offset + nb])
                    if swap:
                        col.byteswap()
                    out.append(col)
                    offset += nb
            return cls(ops, args, header["line_size"],
                       header["source_ops"], header["fused_work"])
        except TraceDecodeError:
            raise
        except Exception as exc:  # truncated/garbled in any other way
            raise TraceDecodeError(f"undecodable trace: {exc!r}") from exc

    @classmethod
    def from_file(cls, path, *, mmap_ok: bool = True) -> "CompiledProgram":
        """Load a stored trace, memory-mapping v2 blobs when possible.

        The mapping is ``ACCESS_COPY`` (private copy-on-write): writable
        from Python's side — which ``ctypes.from_buffer`` requires for the
        zero-copy native hand-off — while the file itself is never
        modified and clean pages remain shared page-cache memory.  Map
        validation is **structural only** (magic, header, section bounds
        against the file size): a truncated blob fails here and degrades
        to a cache miss, while reading every payload byte to CRC it would
        defeat lazy paging — v2 relies on the store's atomic writes, like
        every other consumer.  Legacy v1 blobs, big-endian hosts, and
        ``mmap_ok=False`` fall back to an eager :meth:`from_bytes` decode.

        Raises ``OSError`` if the file cannot be opened (a plain store
        miss) and :class:`TraceDecodeError` for anything wrong past that.
        """
        with open(path, "rb") as fh:
            magic = fh.read(8)
            if magic != _MAGIC or not mmap_ok or sys.byteorder != "little":
                try:
                    return cls.from_bytes(magic + fh.read())
                except TraceDecodeError:
                    raise
                except Exception as exc:
                    raise TraceDecodeError(
                        f"unreadable trace file: {exc!r}") from exc
            try:
                mm = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_COPY)
            except (OSError, ValueError) as exc:  # empty or unmappable
                raise TraceDecodeError(f"unmappable trace: {exc!r}") from exc
        try:
            header, pos = cls._decode_header(mm)
            counts = header["counts"]
            if header["byteorder"] != "little":
                raise TraceDecodeError("foreign byte order")
            offset = header["payload_offset"]
            need = offset + 2 * _ITEMSIZE * sum(counts)
            if offset < pos or offset % _ITEMSIZE or need != len(mm):
                raise TraceDecodeError("payload length mismatch")
            if hasattr(mm, "madvise"):  # replay touches columns in order
                mm.madvise(mmap.MADV_SEQUENTIAL)
            view = memoryview(mm)
            ops: list[memoryview] = []
            args: list[memoryview] = []
            for count in counts:
                nb = count * _ITEMSIZE
                for out in (ops, args):
                    out.append(view[offset:offset + nb].cast("q"))
                    offset += nb
            return cls(ops, args, header["line_size"], header["source_ops"],
                       header["fused_work"], mapped=True, mapping=mm)
        except TraceDecodeError:
            raise
        except Exception as exc:
            raise TraceDecodeError(f"undecodable trace: {exc!r}") from exc


def compile_program(program_factory: ProgramFactory, n_processors: int,
                    line_size: int, fuse_work: bool = True,
                    ) -> CompiledProgram:
    """Drain every processor's generator once into a :class:`CompiledProgram`.

    * READ/WRITE byte addresses become line numbers (``arg // line_size``),
      hoisting the division out of the replay loop entirely;
    * with ``fuse_work`` (the default), a run of consecutive WORK ops
      collapses into one WORK carrying the summed cycles — SPMD emission
      helpers pad spans with WORK, so fusion typically removes 10-30% of
      stored ops;
    * operand validation (negative WORK, unknown opcode) happens here, at
      compile time, so the replay loop never re-checks it.

    The drain is **barrier-phased**, mirroring the engine's interleaving at
    the granularity that matters: several applications (Radix's parallel
    prefix, Barnes' tree phases, the task-grid codes) compute shared Python
    state in one barrier phase that the next phase's streams read, so no
    generator may run ahead of a barrier until every generator has reached
    it.  Within a phase, generators advance in processor order — safe
    because SPMD phases are race-free between barriers (that is what the
    barrier is *for*; an app whose stream content depended on intra-phase
    timing would not be deterministic across machine organisations in the
    first place, and the equivalence suite would catch it).
    """
    if n_processors <= 0:
        raise ValueError("n_processors must be positive")
    if line_size <= 0:
        raise ValueError("line_size must be positive")
    all_ops = [array("q") for _ in range(n_processors)]
    all_args = [array("q") for _ in range(n_processors)]
    gens = [iter(program_factory(pid)) for pid in range(n_processors)]
    prev_was_work = [False] * n_processors
    source_ops = 0
    running = list(range(n_processors))
    while running:
        still_running = []
        for pid in running:
            ops = all_ops[pid]
            args = all_args[pid]
            append_op = ops.append
            append_arg = args.append
            was_work = prev_was_work[pid]
            for opcode, arg in gens[pid]:
                source_ops += 1
                if opcode == OP_WORK:
                    if arg < 0:
                        raise ValueError(f"negative WORK cycles: {arg}")
                    if fuse_work and was_work:
                        args[-1] += arg
                        continue
                    was_work = True
                else:
                    was_work = False
                    if opcode == OP_READ or opcode == OP_WRITE:
                        arg //= line_size
                    elif not 0 <= opcode <= OP_UNLOCK:
                        raise ValueError(f"unknown opcode {opcode}")
                append_op(opcode)
                append_arg(arg)
                if opcode == OP_BARRIER:
                    still_running.append(pid)
                    break
            prev_was_work[pid] = was_work
        running = still_running
    return CompiledProgram(all_ops, all_args, line_size, source_ops,
                           fuse_work)


class ProgramRecorder:
    """Capture a program's streams *while* an engine executes them.

    The barrier-phased drain of :func:`compile_program` is correct only for
    applications whose streams are independent of intra-phase timing.  The
    dynamic task-queue codes (Barnes, Raytrace, Volrend) violate that: a
    lock-protected Python-side counter decides which task each processor
    grabs, so the streams depend on simulated lock-acquisition order —
    something only a real engine run knows.  For those, wrap the factory::

        recorder = ProgramRecorder(app.program, n, line_size)
        result = engine.run(recorder.factory)
        program = recorder.finish()

    ``factory`` is a drop-in :data:`~repro.sim.program.ProgramFactory` that
    transparently appends every yielded op (with the same line-division and
    WORK fusion as :func:`compile_program`) before handing it to the
    engine, so the capture is the *executed* interleaving by construction
    and replaying it on an identically-configured machine is bit-identical.
    """

    def __init__(self, program_factory: ProgramFactory, n_processors: int,
                 line_size: int, fuse_work: bool = True) -> None:
        if n_processors <= 0:
            raise ValueError("n_processors must be positive")
        if line_size <= 0:
            raise ValueError("line_size must be positive")
        self._factory = program_factory
        self.n_processors = n_processors
        self.line_size = line_size
        self.fuse_work = fuse_work
        self._ops = [array("q") for _ in range(n_processors)]
        self._args = [array("q") for _ in range(n_processors)]
        self._source_ops = 0

    def factory(self, pid: int):
        """The recording wrapper around ``program_factory(pid)``."""
        ops = self._ops[pid]
        args = self._args[pid]
        fuse = self.fuse_work
        line_size = self.line_size
        was_work = False
        for op in self._factory(pid):
            opcode, arg = op
            self._source_ops += 1
            if opcode == OP_WORK:
                if fuse and was_work:
                    args[-1] += arg
                    yield op
                    continue
                was_work = True
                ops.append(opcode)
                args.append(arg)
            else:
                was_work = False
                ops.append(opcode)
                args.append(arg // line_size
                            if opcode == OP_READ or opcode == OP_WRITE
                            else arg)
            yield op

    def finish(self) -> CompiledProgram:
        """The capture as a :class:`CompiledProgram` (call after the run)."""
        return CompiledProgram(self._ops, self._args, self.line_size,
                               self._source_ops, self.fuse_work)


# --------------------------------------------------------------------- keys

def trace_key(app: str, app_kwargs: Mapping[str, Any], config: Any,
              seed: int, version: str | None = None,
              stream_invariant: bool = True) -> str:
    """Content hash identifying one compiled trace.

    Covers the package version, the application and its problem kwargs, the
    application seed, and the machine fields the reference stream actually
    depends on (:meth:`MachineConfig.trace_signature`).  Cluster size,
    cache capacity, associativity, latency table, and network model are
    deliberately **absent** — that is what lets a clustering sweep reuse
    one trace across its whole grid.

    With ``stream_invariant=False`` (the dynamic task-queue applications,
    whose executed streams depend on simulated timing) the key instead
    covers the **complete** machine configuration: such a capture is only
    replayable at the exact configuration that recorded it.
    """
    if version is None:
        from .._version import __version__ as version
    payload = {
        "version": version,
        "app": app,
        "app_kwargs": dict(app_kwargs),
        "seed": seed,
        "stream": (config.trace_signature() if stream_invariant
                   else config.to_dict()),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# -------------------------------------------------------- process-wide LRU

_memory_lru: OrderedDict[str, CompiledProgram] = OrderedDict()
_memory_lru_bytes = 0


def _byte_budget() -> int:
    try:
        return max(1, int(os.environ.get(ENV_TRACE_LRU_BYTES,
                                         _DEFAULT_LRU_BYTES)))
    except ValueError:
        return _DEFAULT_LRU_BYTES


def _entry_capacity() -> int | None:
    """Deprecated entry-count cap; ``None`` when unset (the default)."""
    raw = os.environ.get(ENV_TRACE_LRU)
    if raw is None:
        return None
    try:
        return max(1, int(raw))
    except ValueError:
        return None


def _mmap_enabled() -> bool:
    return os.environ.get(ENV_TRACE_MMAP, "1") != "0"


def clear_memory_cache() -> None:
    """Drop every in-memory trace (tests and cold benchmarks use this)."""
    global _memory_lru_bytes
    _memory_lru.clear()
    _memory_lru_bytes = 0


def memory_cache_len() -> int:
    """Number of traces currently held by the in-memory LRU."""
    return len(_memory_lru)


def memory_cache_bytes() -> int:
    """Resident bytes charged against the LRU budget (mapped ≈ 0)."""
    return _memory_lru_bytes


def trace_cache_info() -> dict[str, Any]:
    """Process-wide trace-LRU accounting (daemon ``/stats``, diagnostics)."""
    return {
        "entries": len(_memory_lru),
        "mapped_entries": sum(1 for p in _memory_lru.values() if p.mapped),
        "resident_bytes": _memory_lru_bytes,
        "payload_bytes": sum(p.nbytes for p in _memory_lru.values()),
        "budget_bytes": _byte_budget(),
        "entry_capacity": _entry_capacity(),
    }


class TraceCache:
    """Two-tier cache of compiled programs.

    Tier 1 is a **process-wide** LRU of live :class:`CompiledProgram`
    objects — shared by every ``TraceCache`` instance in the process, so a
    study, its executor, and a process-pool worker all see each other's
    compilations.  It is bounded by a **byte budget**
    (:data:`ENV_TRACE_LRU_BYTES`, default 256 MiB of
    :attr:`~CompiledProgram.resident_nbytes`; the deprecated
    :data:`ENV_TRACE_LRU` entry cap still applies when set).  Tier 2 is
    an optional :class:`~repro.core.resultcache.TraceStore` on disk, which
    is what lets separate ``--jobs`` worker processes and separate CLI
    invocations reuse traces.  Disk loads of current-format blobs are
    **memory-mapped** (zero-copy, ~0 resident cost; disable with
    ``REPRO_TRACE_MMAP=0``); legacy blobs decode eagerly.

    Instances are cheap and picklable (the LRU is module state, the store
    carries only a path), so executors ship them to pool workers as-is.
    """

    def __init__(self, store: TraceStore | None = None) -> None:
        self.store = store
        self.memory_hits = 0
        self.disk_hits = 0
        self.misses = 0

    def _load_disk(self, key: str, warn: bool) -> CompiledProgram | None:
        """Map or decode the store's blob for ``key`` (``None`` on miss).

        Maintains the store's hit/miss counters exactly like
        ``store.get_bytes``: unreadable file ⇒ store miss; readable but
        undecodable ⇒ store hit that this cache degrades to a miss.
        """
        store = self.store
        if not _mmap_enabled():
            blob = store.get_bytes(key)
            if blob is None:
                return None
            try:
                return CompiledProgram.from_bytes(blob)
            except TraceDecodeError as exc:
                if warn:
                    self._warn_corrupt(key, exc)
                return None
        try:
            program = CompiledProgram.from_file(store.path_for(key))
        except OSError:
            store.misses += 1
            return None
        except TraceDecodeError as exc:
            store.hits += 1
            if warn:
                self._warn_corrupt(key, exc)
            return None
        store.hits += 1
        return program

    @staticmethod
    def _warn_corrupt(key: str, exc: Exception) -> None:
        warnings.warn(f"discarding corrupt compiled trace {key[:12]}… "
                      f"({exc}); regenerating", stacklevel=4)

    def get(self, key: str) -> CompiledProgram | None:
        """The cached program for ``key``, or ``None`` (counted as a miss).

        A corrupt disk entry degrades to a miss with a ``UserWarning``; the
        caller recompiles and :meth:`put` overwrites the bad entry.
        """
        program = _memory_lru.get(key)
        if program is not None:
            _memory_lru.move_to_end(key)
            self.memory_hits += 1
            return program
        if self.store is not None:
            program = self._load_disk(key, warn=True)
            if program is not None:
                self._remember(key, program)
                self.disk_hits += 1
                return program
        self.misses += 1
        return None

    def preload(self, key: str) -> CompiledProgram | None:
        """Make ``key`` resident in the in-memory LRU, without stats.

        Fork-server warmup: the sweep parent calls this for every disk-
        resident trace *before* the worker pool forks, so workers inherit
        the programs copy-on-write instead of each re-reading the
        :class:`~repro.core.resultcache.TraceStore` per point (mapped
        programs share their column pages outright — parent and every
        worker map the same page-cache pages).  Unlike :meth:`get` it
        never touches this cache's hit/miss counters (warmup is not
        demand traffic) and a corrupt disk entry is silently left for the
        demand path to report.  Returns the resident program, or ``None``
        when the trace is neither in memory nor on disk.
        """
        program = _memory_lru.get(key)
        if program is not None:
            _memory_lru.move_to_end(key)
            return program
        if self.store is None:
            return None
        program = self._load_disk(key, warn=False)
        if program is None:
            return None
        self._remember(key, program)
        return program

    def put(self, key: str, program: CompiledProgram) -> None:
        """Install ``program`` in both tiers (disk failures are swallowed)."""
        self._remember(key, program)
        if self.store is not None:
            self.store.put_bytes(key, program.to_bytes())

    @staticmethod
    def _remember(key: str, program: CompiledProgram) -> None:
        global _memory_lru_bytes
        old = _memory_lru.pop(key, None)
        if old is not None:
            _memory_lru_bytes -= old.resident_nbytes
        _memory_lru[key] = program
        _memory_lru_bytes += program.resident_nbytes
        budget = _byte_budget()
        capacity = _entry_capacity()
        while len(_memory_lru) > 1 and (
                _memory_lru_bytes > budget
                or (capacity is not None and len(_memory_lru) > capacity)):
            _, evicted = _memory_lru.popitem(last=False)
            _memory_lru_bytes -= evicted.resident_nbytes

    # ------------------------------------------------------------- plumbing
    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    def stats(self) -> str:
        """``'N memory + M disk hits, K misses'`` summary for logs."""
        return (f"{self.memory_hits} memory + {self.disk_hits} disk hits, "
                f"{self.misses} misses")

    def __repr__(self) -> str:  # pragma: no cover
        return f"TraceCache(store={self.store!r}, {self.stats()})"
