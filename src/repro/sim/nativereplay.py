"""Native-kernel replay: eligibility gate and RunResult assembly.

Bridges :mod:`repro.native` (rank 2: the C kernel, its build layer, and
the raw driver) into the simulation layer.  :func:`replay_native` is the
drop-in twin of :func:`repro.sim.batch.engine.replay_fused`: same
validation, same exceptions, same byte-identical
:class:`~repro.core.metrics.RunResult` — the kernel returns the raw end
state, the driver writes it back into the live memory objects, and the
canonical :class:`~repro.sim.stats.StatsAssembler` builds the result
from those objects exactly as every other path does.

:func:`native_fusible` is deliberately conservative, mirroring
``fusible()`` and adding the kernel's own restrictions: flat latencies
only (the mesh provider is stateful python), at most 64 clusters (the
sharer mask lives in one machine word), a non-degenerate capacity, and a
*fresh* memory system (the kernel starts from empty state; every replay
constructs its memory fresh, so this only excludes exotic callers).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import repro.native as native
from ..core.metrics import MissCounters, RunResult
from ..memory.coherence import CoherentMemorySystem
from ..native.driver import NativeDeadlock, run_native
from .engine import SimulationDeadlock
from .stats import DEFAULT_ASSEMBLER
from .sync import SyncRegistry

if TYPE_CHECKING:  # pragma: no cover
    from ..core.config import MachineConfig
    from .compiled import CompiledProgram

__all__ = ["NATIVE_PROTOCOLS", "native_fusible", "native_kernel",
           "replay_native", "try_replay_native"]

#: coherence protocols the C kernel implements.  Anything else degrades
#: silently to the canonical python path (the CLI's forced ``--native``
#: additionally refuses the combination up front, exit 2).
NATIVE_PROTOCOLS = frozenset({"directory"})

_FRESH = MissCounters()


def native_kernel():
    """The loaded C kernel, or ``None`` when python should run.

    Thin re-export of :func:`repro.native.kernel` so sim-layer callers
    (and the batch engine above) share one selection point.  Raises when
    the kernel is forced on (``REPRO_NATIVE=1``) but unavailable.
    """
    return native.kernel()


def native_fusible(memory) -> bool:
    """Whether the C kernel can drive this memory system exactly.

    Requires everything ``fusible()`` does (exact
    :class:`CoherentMemorySystem`, fully-associative kernel tuples) plus
    flat latencies, ≤ 64 clusters, a usable capacity, and fresh state.
    """
    if (type(memory) is not CoherentMemorySystem
            or memory._kernels is None
            or not memory._flat
            or len(memory.caches) > 64
            or memory._capacity_lines == 0):
        return False
    if memory._dtable:
        return False
    d = memory.directory
    if d.invalidations_sent or d.replacement_hints or d.writebacks:
        return False
    for cache in memory.caches:
        if cache.slot_of or cache.inserts or cache.evictions:
            return False
    for hist in memory._history:
        if hist:
            return False
    for ctr in memory.counters:
        if ctr != _FRESH:
            return False
    return True


def replay_native(config: "MachineConfig", memory: CoherentMemorySystem,
                  program: "CompiledProgram", lib=None) -> RunResult:
    """Replay ``program`` against ``memory`` with the C kernel.

    Byte-identical to :func:`replay_fused` (and therefore to
    ``execute_program(..., compiled=True)``) whenever
    :func:`native_fusible(memory)` holds; callers gate on it.
    """
    if lib is None:
        lib = native.kernel()
        if lib is None:
            raise RuntimeError("native kernel is not available")
    n = config.n_processors
    if program.n_processors != n:
        raise ValueError(
            f"compiled program has {program.n_processors} processors, "
            f"machine has {n}")
    if program.line_size != config.line_size:
        raise ValueError(
            f"compiled program captured at line size "
            f"{program.line_size}, machine uses {config.line_size}")
    try:
        execution_time, breakdowns = run_native(lib, config, memory, program)
    except NativeDeadlock as nd:
        # reconstruct the canonical deadlock message through the real
        # SyncRegistry (creation order preserved by the kernel's export)
        sync = SyncRegistry(n)
        for bid, episodes, waiting in nd.barriers:
            b = sync.barrier(bid)
            b.episodes = episodes
            b._waiting.extend(waiting)
        for lid, holder, acq, cont, waiting in nd.locks:
            lk = sync.lock(lid)
            lk.holder = holder
            lk.acquisitions = acq
            lk.contended_acquisitions = cont
            lk._queue.extend(waiting)
        detail = sync.idle_check() or "processors blocked forever"
        stuck = [p for p in range(n) if nd.finish[p] is None]
        raise SimulationDeadlock(
            f"{len(stuck)} processors never finished ({detail}); "
            f"first stuck: {stuck[:8]}") from None
    return DEFAULT_ASSEMBLER.assemble(execution_time, breakdowns, memory)


def try_replay_native(config: "MachineConfig", app,
                      program: "CompiledProgram") -> RunResult | None:
    """Per-point seam: run natively when selected and eligible, else None.

    The single-run twin of the batch engine's dispatch: builds the same
    fresh memory system ``app.run(program=...)`` would, gates on
    :func:`native_fusible`, and leaves every ineligible case (python
    selected, mesh latencies, non-directory protocol, mismatched
    program) to the canonical path — including its exact validation
    errors.
    """
    if config.protocol not in NATIVE_PROTOCOLS:
        # the C kernel implements the directory protocol only; other
        # backends degrade silently to the canonical python replay
        return None
    lib = native.kernel()
    if lib is None:
        return None
    if (program.n_processors != config.n_processors
            or program.line_size != config.line_size):
        return None  # canonical path raises its own errors
    app.ensure_setup()
    memory = CoherentMemorySystem(config, app.allocator)
    if not native_fusible(memory):
        return None
    return replay_native(config, memory, program, lib=lib)
