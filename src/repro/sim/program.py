"""Operation vocabulary for simulated parallel programs.

A simulated *program* is a function ``program(processor_id) -> iterator`` of
operations.  The engine pulls operations one at a time and charges their cost
to the issuing processor's clock, exactly as an execution-driven simulator
interleaves instrumented application threads (the paper's Tango-lite).

Operations are plain tuples ``(opcode, operand)`` — the engine executes
millions of them, so we avoid per-op object allocation beyond the tuple
itself.  Applications use the constructor helpers below rather than raw
tuples, keeping call sites readable:

>>> def worker(pid):
...     yield Work(100)          # 100 cycles of private computation
...     yield Read(0x1000)       # shared-data read (may stall)
...     yield Write(0x1000)      # shared-data write (never stalls)
...     yield Barrier(0)         # global barrier 0
...     yield Lock(3); yield Unlock(3)

``Work`` aggregates everything the paper charges to CPU busy time other than
shared references: instruction execution and private/stack references (which
are allocated locally and always hit).
"""

from __future__ import annotations

from typing import Callable, Iterator

__all__ = ["OP_WORK", "OP_READ", "OP_WRITE", "OP_BARRIER", "OP_LOCK",
           "OP_UNLOCK", "Work", "Read", "Write", "Barrier", "Lock", "Unlock",
           "Op", "Program", "ProgramFactory"]

OP_WORK = 0
OP_READ = 1
OP_WRITE = 2
OP_BARRIER = 3
OP_LOCK = 4
OP_UNLOCK = 5

#: An operation: (opcode, operand).
Op = tuple[int, int]
#: A per-processor instruction stream.
Program = Iterator[Op]
#: ``factory(processor_id) -> Program`` — what applications hand the engine.
ProgramFactory = Callable[[int], Program]


def Work(cycles: int) -> Op:
    """``cycles`` of processor-private computation (always ≥ 0)."""
    return (OP_WORK, cycles)


def Read(addr: int) -> Op:
    """Read of shared byte address ``addr`` (blocks on a miss)."""
    return (OP_READ, addr)


def Write(addr: int) -> Op:
    """Write of shared byte address ``addr`` (latency hidden)."""
    return (OP_WRITE, addr)


def Barrier(barrier_id: int) -> Op:
    """Arrive at global barrier ``barrier_id``; resume when all arrive."""
    return (OP_BARRIER, barrier_id)


def Lock(lock_id: int) -> Op:
    """Acquire lock ``lock_id`` (FIFO; waiting is charged to sync time)."""
    return (OP_LOCK, lock_id)


def Unlock(lock_id: int) -> Op:
    """Release lock ``lock_id`` (must be held by the issuing processor)."""
    return (OP_UNLOCK, lock_id)
