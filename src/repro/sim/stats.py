"""Run-level statistics: RunResult assembly and human-readable summaries.

Two halves:

* :class:`StatsAssembler` — the pluggable seam between the engine's event
  loop and :class:`~repro.core.metrics.RunResult`.  The engine finishes a
  run with per-processor time breakdowns and a memory system; everything
  after that — the mean breakdown, the aggregated miss counters, the
  optional per-cluster and network sections — is *stats assembly*, and it
  lives here rather than inline in the hot-loop module so probes and
  future backends can substitute their own assembly without touching the
  bit-identity-critical engine core.
* :class:`RunSummary` / :func:`summarize` — turn raw counters into the
  quantities the paper talks about (miss rates, component fractions) for
  CLI output, examples, and tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.metrics import (MissCause, NetworkStats, RunResult,
                            TimeBreakdown)

__all__ = ["RunSummary", "StatsAssembler", "DEFAULT_ASSEMBLER", "summarize"]


class StatsAssembler:
    """Assemble the canonical :class:`RunResult` from a finished run.

    The default instance reproduces the engine's historical inline
    assembly byte-for-byte: mean breakdown over processors, aggregated
    miss counters, per-cluster counters when the memory system exposes
    ``counters``, and network stats when it exposes ``network_stats``.
    Subclass and pass to :class:`~repro.sim.engine.Engine` (or
    :func:`~repro.sim.engine.execute_program`) to attach different
    accounting; the engine's event loop never changes.
    """

    def assemble(self, execution_time: int,
                 breakdowns: list[TimeBreakdown], memory) -> RunResult:
        n = len(breakdowns)
        mean = TimeBreakdown()
        for bd in breakdowns:
            mean.add(bd)
        if n:
            mean = TimeBreakdown(cpu=mean.cpu / n, load=mean.load / n,
                                 merge=mean.merge / n, sync=mean.sync / n)

        per_cluster = getattr(memory, "counters", None)
        stats_of = getattr(memory, "network_stats", None)
        return RunResult(
            execution_time=execution_time,
            breakdown=mean,
            per_processor=breakdowns,
            misses=memory.aggregate_counters(),
            per_cluster_misses=list(per_cluster) if per_cluster else [],
            network=stats_of() if stats_of is not None else None,
        )


#: shared zero-state default; the engine uses it when no assembler is given
DEFAULT_ASSEMBLER = StatsAssembler()


@dataclass(frozen=True)
class RunSummary:
    """Digest of one simulation run."""

    execution_time: int
    cpu_fraction: float
    load_fraction: float
    merge_fraction: float
    sync_fraction: float
    references: int
    miss_rate: float
    read_misses: int
    write_misses: int
    upgrade_misses: int
    merges: int
    merge_refetches: int
    prefetch_hits: int
    cold_misses: int
    coherence_misses: int
    capacity_misses: int
    #: interconnect counters when a network model ran (else None)
    network: NetworkStats | None = None

    def format(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"execution time       {self.execution_time:>14,} cycles",
            f"  cpu / load / merge / sync   "
            f"{self.cpu_fraction:6.1%} {self.load_fraction:6.1%} "
            f"{self.merge_fraction:6.1%} {self.sync_fraction:6.1%}",
            f"references           {self.references:>14,}",
            f"miss rate            {self.miss_rate:>14.4%}",
            f"  read / write / upgrade      "
            f"{self.read_misses:,} / {self.write_misses:,} / "
            f"{self.upgrade_misses:,}",
            f"  merges (refetched)          "
            f"{self.merges:,} ({self.merge_refetches:,})",
            f"  cluster prefetch hits       {self.prefetch_hits:,}",
            f"  cold / coherence / capacity "
            f"{self.cold_misses:,} / {self.coherence_misses:,} / "
            f"{self.capacity_misses:,}",
        ]
        net = self.network
        if net is not None:
            per = net.hops / net.messages if net.messages else 0.0
            lines.append(
                f"network              {net.messages:>14,} messages "
                f"({per:.2f} hops each)")
            lines.append(
                f"  queue delay / peak link util"
                f" {net.queue_delay_cycles:,} cyc / "
                f"{net.peak_link_utilization:.3f}")
        return "\n".join(lines)


def summarize(result: RunResult) -> RunSummary:
    """Build a :class:`RunSummary` from a run result."""
    fr = result.breakdown.fractions()
    m = result.misses
    return RunSummary(
        execution_time=result.execution_time,
        cpu_fraction=fr["cpu"],
        load_fraction=fr["load"],
        merge_fraction=fr["merge"],
        sync_fraction=fr["sync"],
        references=m.references,
        miss_rate=m.miss_rate,
        read_misses=m.read_misses,
        write_misses=m.write_misses,
        upgrade_misses=m.upgrade_misses,
        merges=m.merges,
        merge_refetches=m.merge_refetches,
        prefetch_hits=m.prefetch_hits,
        cold_misses=m.by_cause[MissCause.COLD],
        coherence_misses=m.by_cause[MissCause.COHERENCE],
        capacity_misses=m.by_cause[MissCause.CAPACITY],
        network=result.network,
    )
