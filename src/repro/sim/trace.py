"""Reference-trace capture and replay.

The paper's methodology is execution-driven simulation, but the community
standard it sits in is *trace-driven* cache simulation: capture the global
interleaved reference stream once, then replay it against as many memory-
system configurations as you like.  This module provides both halves:

* :class:`TracingMemory` — wraps any memory system and records every
  reference it services: ``(time, processor, kind, line, outcome)``;
* :class:`ReferenceTrace` — the recorded stream, with save/load (a compact
  binary numpy format) and summary statistics;
* :func:`replay` — drive a fresh memory system with a recorded trace,
  preserving the original issue times (the classic trace-driven
  approximation: the interleaving is frozen, so timing feedback from the
  new configuration does not reorder references).

Trace-driven replay is an *approximation* the execution-driven engine does
not make — replaying a 1-cluster trace against an 8-cluster machine keeps
the 1-cluster interleaving.  The paper notes its results are "possibly
timing dependent" in exactly this way; the test suite quantifies the gap on
small runs (it is small, because barriers pin the phase structure).

Not to be confused with :mod:`repro.sim.compiled`: a
:class:`ReferenceTrace` is a *memory-level* record (post-engine, timing
frozen, approximate across configurations), while a
:class:`~repro.sim.compiled.CompiledProgram` is a *program-level* capture
of the op stream fed to the engine — replaying one re-runs the full
timing simulation and is bit-identical to generator execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..core.metrics import MissCounters

__all__ = ["TraceRecord", "ReferenceTrace", "TracingMemory", "replay"]

#: record kinds
KIND_READ = 0
KIND_WRITE = 1


@dataclass(frozen=True)
class TraceRecord:
    """One reference in the global interleaved stream."""

    time: int
    processor: int
    kind: int          # KIND_READ or KIND_WRITE
    line: int

    @property
    def is_read(self) -> bool:
        return self.kind == KIND_READ


@dataclass
class ReferenceTrace:
    """A recorded reference stream (columnar numpy storage)."""

    times: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    processors: np.ndarray = field(default_factory=lambda: np.empty(0, np.int32))
    kinds: np.ndarray = field(default_factory=lambda: np.empty(0, np.int8))
    lines: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))

    def __len__(self) -> int:
        return len(self.times)

    def __getitem__(self, i: int) -> TraceRecord:
        return TraceRecord(int(self.times[i]), int(self.processors[i]),
                           int(self.kinds[i]), int(self.lines[i]))

    # ------------------------------------------------------------- storage
    def save(self, path: str | Path) -> None:
        """Write the trace to ``path`` (numpy .npz, compressed)."""
        np.savez_compressed(path, times=self.times, processors=self.processors,
                            kinds=self.kinds, lines=self.lines)

    @classmethod
    def load(cls, path: str | Path) -> "ReferenceTrace":
        """Read a trace written by :meth:`save`."""
        with np.load(path) as data:
            return cls(times=data["times"], processors=data["processors"],
                       kinds=data["kinds"], lines=data["lines"])

    # ------------------------------------------------------------ analysis
    def summary(self) -> dict[str, float | int]:
        """Aggregate statistics of the stream."""
        n = len(self)
        if n == 0:
            return {"references": 0, "reads": 0, "writes": 0,
                    "distinct_lines": 0, "duration": 0}
        reads = int((self.kinds == KIND_READ).sum())
        return {
            "references": n,
            "reads": reads,
            "writes": n - reads,
            "distinct_lines": int(len(np.unique(self.lines))),
            "duration": int(self.times.max() - self.times.min()),
        }

    def footprint_bytes(self, line_size: int = 64) -> int:
        """Bytes of distinct memory touched."""
        return int(len(np.unique(self.lines))) * line_size


class TracingMemory:
    """Memory-system wrapper that records every reference it forwards.

    Drop-in for the engine: ``Engine(cfg, TracingMemory(inner)).run(...)``.
    """

    def __init__(self, inner) -> None:
        self.inner = inner
        self._times: list[int] = []
        self._procs: list[int] = []
        self._kinds: list[int] = []
        self._lines: list[int] = []

    def read(self, processor: int, line: int, now: int,
             is_retry: bool = False):
        if not is_retry:
            self._times.append(now)
            self._procs.append(processor)
            self._kinds.append(KIND_READ)
            self._lines.append(line)
        return self.inner.read(processor, line, now, is_retry)

    def write(self, processor: int, line: int, now: int):
        self._times.append(now)
        self._procs.append(processor)
        self._kinds.append(KIND_WRITE)
        self._lines.append(line)
        return self.inner.write(processor, line, now)

    def aggregate_counters(self) -> MissCounters:
        return self.inner.aggregate_counters()

    @property
    def counters(self):
        return getattr(self.inner, "counters", [])

    def trace(self) -> ReferenceTrace:
        """The stream recorded so far."""
        return ReferenceTrace(
            times=np.asarray(self._times, np.int64),
            processors=np.asarray(self._procs, np.int32),
            kinds=np.asarray(self._kinds, np.int8),
            lines=np.asarray(self._lines, np.int64),
        )


def replay(trace: ReferenceTrace, memory) -> MissCounters:
    """Drive ``memory`` with a recorded trace at its original issue times.

    Classic trace-driven simulation: references keep their recorded order
    and timestamps; stalls in the new configuration do not reorder the
    stream.  Returns the aggregate miss counters of the replay.
    """
    read = memory.read
    write = memory.write
    times = trace.times
    procs = trace.processors
    kinds = trace.kinds
    lines = trace.lines
    for i in range(len(trace)):
        if kinds[i] == KIND_READ:
            read(int(procs[i]), int(lines[i]), int(times[i]))
        else:
            write(int(procs[i]), int(lines[i]), int(times[i]))
    return memory.aggregate_counters()
