"""Synchronization primitives with wait-time accounting.

The paper's execution-time bars charge all barrier and lock waiting to a
distinct *sync* component; these objects do the bookkeeping.  Both are
driven by the engine — a processor that blocks is simply not rescheduled
until the primitive says when it may resume.

Barriers are sense-reversing in spirit: an instance is reusable, and a new
episode starts automatically after a release.  Locks are FIFO (ticket)
locks — the paper's applications use locks for task queues and histogram
cells where fairness keeps the simulation deterministic.
"""

from __future__ import annotations

from collections import deque

__all__ = ["BarrierState", "LockState", "SyncRegistry"]


class BarrierState:
    """One reusable global barrier.

    The engine calls :meth:`arrive`; when the last participant arrives the
    method returns the list of ``(processor, wait_cycles)`` releases and the
    barrier resets for its next episode.
    """

    __slots__ = ("n_participants", "_waiting", "episodes")

    def __init__(self, n_participants: int) -> None:
        if n_participants <= 0:
            raise ValueError("n_participants must be positive")
        self.n_participants = n_participants
        self._waiting: list[tuple[int, int]] = []  # (processor, arrival time)
        self.episodes = 0

    def arrive(self, processor: int, now: int) -> list[tuple[int, int]] | None:
        """Register arrival; return releases if this arrival completes it.

        Returns ``None`` while the barrier is still filling.  On completion
        returns ``[(processor, wait), ...]`` for *every* participant
        (including the last arrival, with wait 0); all resume at ``now``.
        """
        self._waiting.append((processor, now))
        if len(self._waiting) < self.n_participants:
            return None
        releases = [(pid, now - arrived) for pid, arrived in self._waiting]
        self._waiting.clear()
        self.episodes += 1
        return releases

    @property
    def n_waiting(self) -> int:
        return len(self._waiting)


class LockState:
    """One FIFO lock."""

    __slots__ = ("holder", "_queue", "acquisitions", "contended_acquisitions")

    def __init__(self) -> None:
        self.holder: int | None = None
        self._queue: deque[tuple[int, int]] = deque()  # (processor, arrival)
        self.acquisitions = 0
        self.contended_acquisitions = 0

    def acquire(self, processor: int, now: int) -> bool:
        """Try to take the lock; True if acquired, False if queued."""
        if self.holder is None:
            self.holder = processor
            self.acquisitions += 1
            return True
        if self.holder == processor:
            raise RuntimeError(f"processor {processor} re-acquiring held lock")
        self._queue.append((processor, now))
        return False

    def release(self, processor: int, now: int) -> tuple[int, int] | None:
        """Release the lock; return ``(next_processor, wait)`` if one queued."""
        if self.holder != processor:
            raise RuntimeError(
                f"processor {processor} releasing lock held by {self.holder}")
        if self._queue:
            next_pid, arrived = self._queue.popleft()
            self.holder = next_pid
            self.acquisitions += 1
            self.contended_acquisitions += 1
            return next_pid, now - arrived
        self.holder = None
        return None

    @property
    def n_waiting(self) -> int:
        return len(self._queue)


class SyncRegistry:
    """Lazily created barriers and locks, keyed by application-chosen ids.

    All barriers span all processors (the paper's applications use global
    barriers; subset barriers can be modelled with distinct work phases).
    """

    __slots__ = ("n_processors", "_barriers", "_locks")

    def __init__(self, n_processors: int) -> None:
        self.n_processors = n_processors
        self._barriers: dict[int, BarrierState] = {}
        self._locks: dict[int, LockState] = {}

    def barrier(self, barrier_id: int) -> BarrierState:
        b = self._barriers.get(barrier_id)
        if b is None:
            b = BarrierState(self.n_processors)
            self._barriers[barrier_id] = b
        return b

    def lock(self, lock_id: int) -> LockState:
        lk = self._locks.get(lock_id)
        if lk is None:
            lk = LockState()
            self._locks[lock_id] = lk
        return lk

    def idle_check(self) -> str | None:
        """Describe any primitive still holding blocked processors, if any.

        The engine calls this when the event queue drains; a non-``None``
        result means deadlock (e.g. mismatched barrier participation).
        """
        for bid, b in self._barriers.items():
            if b.n_waiting:
                return (f"barrier {bid} still holds {b.n_waiting} of "
                        f"{b.n_participants} processors")
        for lid, lk in self._locks.items():
            if lk.n_waiting:
                return f"lock {lid} still has {lk.n_waiting} waiters"
        return None
