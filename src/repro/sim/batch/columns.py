"""One trace decode shared by every consumer of a batch.

A :class:`~repro.sim.compiled.CompiledProgram` stores its per-processor
opcode/operand columns as compact ``array('q')`` pairs.  In a batched
sweep the same program is replayed N times, so everything that can be
derived from the columns alone — independent of cluster geometry, cache
sizing, or network — is computed once per *group* and cached on the
program (:attr:`CompiledProgram._batch`):

* **packed columns** — per-processor lists of ``arg << 3 | opcode`` ints,
  the fused kernel's instruction stream.  One packed int per operation
  halves the fetch cost of the replay loop (a single list-iterator
  ``next`` instead of two indexed loads and a pointer bump) and lets a
  processor switch restore its position by swapping one iterator.  The
  encoding is exact for negative operands too: Python and numpy both
  shift arithmetically over two's complement.
* **static counter totals** — per-processor ``cpu`` cycles, read counts
  and write counts.  In the canonical engine every operation's busy-time
  contribution is configuration-independent (each READ eventually adds
  exactly one hit cycle, blocked LOCKs receive their acquisition cycle
  through the unlock handoff, WORK adds its operand), as are the
  per-reference ``reads``/``writes`` counter bumps.  The fused kernel
  therefore seeds these totals up front and drops the increments from
  its inner loop entirely.

Two decoders produce identical values:

* the **pure-python reference** — one pass over the boxed column pairs,
  always available;
* the **numpy fast path** — bulk ``frombuffer`` views with vectorised
  packing and counting.  Auto-detected at import, value-identical to the
  reference (pinned by the batch property suite).

:func:`prepare_columns` (the plain-list views used by per-point replay)
also lives here so a batch group's canonical-fallback replays share one
decode as well.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, NamedTuple

from ..program import OP_BARRIER, OP_READ, OP_WORK, OP_WRITE

if TYPE_CHECKING:  # pragma: no cover
    from ..compiled import CompiledProgram

try:  # numpy is an optional accelerator here, never a requirement
    import numpy as _np
except ImportError:  # pragma: no cover - the image ships numpy
    _np = None

__all__ = ["HAVE_NUMPY", "BatchAux", "batch_aux_numpy", "batch_aux_python",
           "columns_numpy", "columns_python", "prepare_batch",
           "prepare_columns"]

#: whether the numpy decoder is available in this interpreter
HAVE_NUMPY = _np is not None

Columns = tuple  # (ops_of, args_of): two lists of per-processor int lists


class BatchAux(NamedTuple):
    """Everything the fused kernel precomputes from one compiled trace."""

    #: per-processor packed instruction stream (``arg << 3 | opcode``)
    packed: list[list[int]]
    #: per-processor static busy cycles (WORK operands + one cycle per
    #: READ/WRITE/LOCK/UNLOCK — configuration-independent, see module doc)
    cpu: list[int]
    #: per-processor READ-operation counts (= ``counters.reads`` share)
    reads: list[int]
    #: per-processor WRITE-operation counts (= ``counters.writes`` share)
    writes: list[int]


def columns_python(program: "CompiledProgram") -> Columns:
    """Reference decoder: box each ``array('q')`` column into a list."""
    return ([list(o) for o in program.ops],
            [list(a) for a in program.args])


def columns_numpy(program: "CompiledProgram") -> Columns:
    """Numpy decoder: bulk-view the int64 buffers, box via ``tolist``.

    ``array('q')`` exposes its buffer directly, so ``frombuffer`` is a
    zero-copy view and ``tolist`` is the only pass over the data.  The
    resulting python ints are value-identical to the reference decoder's.
    """
    if _np is None:  # pragma: no cover - guarded by HAVE_NUMPY
        raise RuntimeError("numpy is not available")
    return ([_np.frombuffer(o, dtype=_np.int64).tolist() if len(o) else []
             for o in program.ops],
            [_np.frombuffer(a, dtype=_np.int64).tolist() if len(a) else []
             for a in program.args])


def batch_aux_python(program: "CompiledProgram") -> BatchAux:
    """Reference aux builder: one python pass per processor column."""
    packed: list[list[int]] = []
    cpu: list[int] = []
    reads: list[int] = []
    writes: list[int] = []
    for ops_col, args_col in zip(program.ops, program.args):
        col = []
        append = col.append
        busy = n_reads = n_writes = 0
        for op, arg in zip(ops_col, args_col):
            append(arg << 3 | op)
            if op == OP_WORK:
                busy += arg
            elif op == OP_READ:
                busy += 1
                n_reads += 1
            elif op == OP_WRITE:
                busy += 1
                n_writes += 1
            elif op != OP_BARRIER:  # LOCK / UNLOCK
                busy += 1
        packed.append(col)
        cpu.append(busy)
        reads.append(n_reads)
        writes.append(n_writes)
    return BatchAux(packed, cpu, reads, writes)


def batch_aux_numpy(program: "CompiledProgram") -> BatchAux:
    """Numpy aux builder: vectorised packing and counting per column."""
    if _np is None:  # pragma: no cover - guarded by HAVE_NUMPY
        raise RuntimeError("numpy is not available")
    packed: list[list[int]] = []
    cpu: list[int] = []
    reads: list[int] = []
    writes: list[int] = []
    for ops_col, args_col in zip(program.ops, program.args):
        if not len(ops_col):
            packed.append([])
            cpu.append(0)
            reads.append(0)
            writes.append(0)
            continue
        o = _np.frombuffer(ops_col, dtype=_np.int64)
        a = _np.frombuffer(args_col, dtype=_np.int64)
        packed.append((a << 3 | o).tolist())
        n_work = int((o == OP_WORK).sum())
        n_barrier = int((o == OP_BARRIER).sum())
        busy = int(a[o == OP_WORK].sum()) + (len(o) - n_work - n_barrier)
        cpu.append(busy)
        reads.append(int((o == OP_READ).sum()))
        writes.append(int((o == OP_WRITE).sum()))
    return BatchAux(packed, cpu, reads, writes)


def prepare_columns(program: "CompiledProgram",
                    use_numpy: bool | None = None) -> Columns:
    """Materialise (once) and return the program's replay columns.

    Idempotent and shared: the views are cached on the program exactly
    where :meth:`CompiledProgram.runtime_columns` caches its own, so one
    ``prepare_columns`` call amortises the decode across every replay of
    the program in this process.  ``use_numpy`` forces a decoder (tests);
    the default picks numpy when available.
    """
    rt = program._runtime
    if rt is None:
        if program.mapped:
            # mapped programs keep their bounded chunked-window views —
            # materialising boxed lists here would defeat streaming
            return program.runtime_columns()
        fast = HAVE_NUMPY if use_numpy is None else use_numpy
        rt = columns_numpy(program) if fast else columns_python(program)
        program._runtime = rt
    return rt


def prepare_batch(program: "CompiledProgram",
                  use_numpy: bool | None = None) -> BatchAux:
    """Materialise (once) and return the program's fused-replay aux.

    Cached on :attr:`CompiledProgram._batch`; every point of a batch
    group shares one decode.  ``use_numpy`` forces a builder (tests); the
    default picks numpy when available.  Both builders yield identical
    values.
    """
    aux = program._batch
    if aux is None:
        fast = HAVE_NUMPY if use_numpy is None else use_numpy
        aux = batch_aux_numpy(program) if fast else batch_aux_python(program)
        program._batch = aux
    return aux
