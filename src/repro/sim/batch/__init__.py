"""Batched lockstep replay: one trace decode drives every sweep point.

The paper's methodology replays one application trace across a grid of
cluster/cache configurations; this package makes the grid pay for the
trace **once**.  A :class:`~repro.sim.batch.planner.BatchPlanner` groups
sweep points by compiled-trace key (stream-invariant apps only; dynamic
task-queue apps fall through to per-point replay), and a
:class:`~repro.sim.batch.engine.BatchedReplay` advances every point of a
group over a single materialisation of the program's flat opcode/operand
columns using the fused replay kernel — the event loop with the memory
system's hit paths inlined, per-config scheduling kept independent so
results stay byte-identical to per-point execution.

Layer note: this package sits **above** ``repro.runtime`` in the layer
DAG (its planner speaks :class:`~repro.runtime.plan.RunRequest` and its
runner drives :class:`~repro.runtime.session.RunSession`) and below the
sweep machinery in ``repro.core`` that dispatches groups — see
``docs/INTERNALS.md`` and ``tools/check_layering.py``.
"""

from .columns import (HAVE_NUMPY, BatchAux, batch_aux_numpy,
                      batch_aux_python, columns_numpy, columns_python,
                      prepare_batch, prepare_columns)
from .engine import BatchedReplay, fusible, replay_fused
from .planner import BatchGroup, BatchPlan, BatchPlanner
from .runner import BatchItem, BatchStats, run_group

__all__ = ["BatchAux", "BatchGroup", "BatchItem", "BatchPlan",
           "BatchPlanner", "BatchStats", "BatchedReplay", "HAVE_NUMPY",
           "batch_aux_numpy", "batch_aux_python", "columns_numpy",
           "columns_python", "fusible", "prepare_batch", "prepare_columns",
           "replay_fused", "run_group"]
