"""Fused lockstep replay: engine loop and memory protocol in one kernel.

One batched sweep point costs one pass over the shared packed columns
(:mod:`.columns`) driven by :func:`replay_fused` — the
:meth:`~repro.sim.engine.Engine.run_compiled` event loop with the
*entire* :class:`~repro.memory.coherence.CoherentMemorySystem` hot path
(hits, misses, upgrades, invalidations, victim retirement) folded
directly into the opcode dispatch.  Per-config event scheduling stays
fully independent (each point keeps its own event queue, clocks, and
memory state), which is what keeps batched results exact: the fusion
removes interpreter overhead, never reorders a single transition.

What the fusion removes, relative to per-point replay:

* **memory-system calls** — ``memory.read`` / ``memory.write`` cost two
  Python frames plus per-call re-derivation of the cluster id, counter
  object, and kernel tuple on *every* reference.  The kernel binds each
  processor's cluster state once per processor switch (hot columns) or
  once per miss (directory/latency bindings) and performs the identical
  state transitions in-line, in the same order.
* **static counter updates** — per-processor busy cycles and the
  ``reads``/``writes`` reference counters are configuration-independent
  totals of the instruction stream (each READ ultimately adds exactly
  one hit cycle; a blocked LOCK receives its acquisition cycle through
  the unlock handoff).  They are seeded up front from the shared
  :class:`~repro.sim.batch.columns.BatchAux` and dropped from the loop.
* **fetch/dispatch overhead** — the packed ``arg << 3 | opcode`` column
  turns the per-op fetch into one bare ``for`` step over a list
  iterator, a processor switch into one iterator swap, and an LRU-touch
  probe into a single ``dict.pop``.
* **heap tuples** — the canonical ``(time, seq, pid)`` heap is replaced
  by a *bucket queue*: a dict ``time -> [pid, ...]`` plus an int-heap of
  distinct times.  Events at one time drain FIFO, and because the
  canonical ``seq`` counter increases monotonically, FIFO-per-time *is*
  seq order — same events, same tie-breaks, no tuple allocation and no
  sequence counter.  The cached horizon ``hz`` always equals the
  earliest pending event time, so the fast-path test is one comparison
  on exactly the canonical condition.

The final :class:`~repro.core.metrics.RunResult` is therefore
byte-identical — pinned by the batch parity and property suites against
per-point :class:`~repro.runtime.session.RunSession` execution.

:func:`fusible` is deliberately conservative: exact type match on
``CoherentMemorySystem`` (a subclass could override the hot methods) with
the fully-associative kernel tuples exposed.  Anything else — snoopy
clusters, set-associative caches, perfect memory — reports unfusible and
the caller falls back to the canonical per-point path.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import TYPE_CHECKING

from ...core.metrics import MissCause, RunResult, TimeBreakdown
from ...memory.cache import EXCLUSIVE, SHARED
from ...memory.coherence import CoherentMemorySystem
from ..engine import SimulationDeadlock, execute_program
from ..nativereplay import native_fusible, native_kernel, replay_native
from ..stats import DEFAULT_ASSEMBLER
from ..sync import SyncRegistry
from .columns import prepare_batch

if TYPE_CHECKING:  # pragma: no cover
    from ...core.config import MachineConfig
    from ..compiled import CompiledProgram

__all__ = ["BatchedReplay", "fusible", "replay_fused"]

#: horizon sentinel for an empty event queue (matches the canonical
#: fast-path condition ``not heap or tn < heap[0][0]``)
_INF = 1 << 62

_COLD = MissCause.COLD
_CAPACITY = MissCause.CAPACITY
_COHERENCE = MissCause.COHERENCE


def fusible(memory) -> bool:
    """Whether :func:`replay_fused` can drive this memory system.

    True only for a plain :class:`CoherentMemorySystem` (exact type — a
    subclass may override the hot paths the kernel inlines) whose caches
    expose the fully-associative kernel tuples.
    """
    return (type(memory) is CoherentMemorySystem
            and memory._kernels is not None)


def replay_fused(config: "MachineConfig", memory: CoherentMemorySystem,
                 program: "CompiledProgram") -> RunResult:
    """Replay ``program`` against ``memory`` with the fused kernel.

    Byte-identical to ``execute_program(config, memory, program,
    compiled=True)`` whenever :func:`fusible(memory)` holds; raises
    ``ValueError`` when it does not (callers gate on :func:`fusible`).
    """
    if not fusible(memory):
        raise ValueError("memory system is not fusible; use execute_program")
    n = config.n_processors
    if program.n_processors != n:
        raise ValueError(
            f"compiled program has {program.n_processors} processors, "
            f"machine has {n}")
    if program.line_size != config.line_size:
        raise ValueError(
            f"compiled program captured at line size "
            f"{program.line_size}, machine uses {config.line_size}")

    packed_of, cpu_of, reads_of, writes_of = prepare_batch(program)
    sync = SyncRegistry(n)

    # ---- memory-system state, bound once per replay
    kernels = memory._kernels
    counters = memory.counters
    histories = memory._history
    caches = memory.caches
    directory = memory.directory
    shift = memory._cluster_shift
    csize = config.cluster_size
    touch = memory._capacity_lines is not None
    cap = memory._capacity_lines
    dtable = memory._dtable
    dtable_get = dtable.get
    page_home_get = memory._page_home.get
    lpp = memory._lines_per_page
    home_of_line = memory.allocator.home_of_line
    flat = memory._flat
    l_lc = memory._local_clean
    l_rc = memory._remote_clean
    l_ldr = memory._local_dirty_remote
    l_rd3 = memory._remote_dirty_3p
    miss_cycles = getattr(memory.latency, "miss_cycles", None)
    locks_get = sync._locks.get
    sync_lock = sync.lock
    barriers_get = sync._barriers.get
    sync_barrier = sync.barrier
    # Per-line home memo.  A line's home is stable once computed: the
    # first miss either finds the page bound or binds it right there
    # (``home_of_line`` first touch), so the canonical sequence runs
    # exactly once per line and later misses reuse its result.
    home_cache: dict[int, int] = {}
    home_cache_get = home_cache.get

    # ---- static seeding: configuration-independent counter totals
    breakdowns = [TimeBreakdown() for _ in range(n)]
    cl_of = [(p >> shift) if shift is not None else p // csize
             for p in range(n)]
    for p in range(n):
        breakdowns[p].cpu = cpu_of[p]
        c = counters[cl_of[p]]
        c.reads += reads_of[p]
        c.writes += writes_of[p]

    # ---- per-processor binds: hot columns, and the (rarer) miss-path
    # constants.  Processors of one cluster share the same kernel objects,
    # exactly as in the memory system.
    binds = []
    mbinds = []
    for p in range(n):
        cl = cl_of[p]
        slot_of, state_col, pending_col, fetcher_col, free = kernels[cl]
        binds.append((iter(packed_of[p]), counters[cl], slot_of, slot_of.get,
                      state_col, pending_col, fetcher_col))
        cache = caches[cl]
        bit4 = 4 << cl
        mbinds.append((cl, bit4, bit4 | 2, bit4 | 1, ~bit4, ~(1 << cl),
                       histories[cl], cache, free, cache.tag))

    retry_line: list[int | None] = [None] * n
    finish: list[int | None] = [None] * n
    n_running = n

    # Bucket queue: events of one time drain FIFO = canonical seq order.
    buckets: dict[int, list[int]] = {0: list(range(n))}
    times: list[int] = [0]

    t = 0
    bkt = buckets[0]
    pid = bkt.pop(0)
    if not bkt:
        del buckets[0]
        heappop(times)
        hz = _INF
    else:
        hz = 0
    it, ctr, slot_of, slot_get, state_col, pending_col, fetcher_col = \
        binds[pid]
    pending = retry_line[pid]
    while True:
        if pending is not None:
            # ---- retry of a merged read at its fill time
            if touch:
                slot = slot_of.pop(pending, -1)
                if slot >= 0:
                    slot_of[pending] = slot
            else:
                slot = slot_get(pending, -1)
            if slot >= 0:
                pu = pending_col[slot]
                if pu > t:
                    ctr.merges += 1
                    breakdowns[pid].merge += pu - t
                    tn = pu
                else:
                    f = fetcher_col[slot]
                    if f != -1 and f != pid:
                        ctr.prefetch_hits += 1
                        fetcher_col[slot] = -1
                    pending = None
                    retry_line[pid] = None
                    tn = t + 1
            else:
                # invalidated while pending: refetch (a fresh read miss)
                ctr.merge_refetches += 1
                arg = pending
                (cl, bit4, bit4_ex, bit4_sh, nbit4, nbit1, history, cache,
                 free, tag_col) = mbinds[pid]
                cause = history.get(arg, _COLD)
                home = home_cache_get(arg)
                if home is None:
                    ph = page_home_get(arg // lpp)
                    home = ph if ph is not None else home_of_line(arg)
                    home_cache[arg] = home
                packed = dtable_get(arg, 0)
                if packed & 3 == 2:  # DIR_EXCLUSIVE: dirty remote owner
                    owner = packed.bit_length() - 3
                    if flat:
                        if owner == cl:
                            raise ValueError(
                                "requesting cluster cannot be the dirty "
                                "owner on a miss")
                        if cl == home:
                            stall = l_ldr
                        elif owner == home:
                            stall = l_rc
                        else:
                            stall = l_rd3
                    else:
                        stall = miss_cycles(cl, home, owner, t)
                    ok = kernels[owner]
                    ok[1][ok[0][arg]] = SHARED
                    dtable[arg] = (packed & -4) | bit4_sh
                else:
                    if flat:
                        stall = l_lc if cl == home else l_rc
                    else:
                        stall = miss_cycles(cl, home, None, t)
                    dtable[arg] = (packed & -4) | bit4_sh
                if touch and len(slot_of) >= cap:
                    vline = next(iter(slot_of))
                    slot = slot_of.pop(vline)
                    vstate = state_col[slot]
                    cache.evictions += 1
                    state_col[slot] = SHARED
                    pending_col[slot] = t + stall
                    fetcher_col[slot] = pid
                    tag_col[slot] = arg
                    slot_of[arg] = slot
                    cache.inserts += 1
                    history[vline] = _CAPACITY
                    if vstate == EXCLUSIVE:
                        if dtable_get(vline, 0) == bit4_ex:
                            del dtable[vline]
                            directory.writebacks += 1
                    else:
                        vpacked = dtable_get(vline)
                        if vpacked is not None:
                            vpacked &= nbit4
                            directory.replacement_hints += 1
                            if vpacked >> 2:
                                dtable[vline] = vpacked
                            else:
                                del dtable[vline]
                else:
                    slot = free.pop() if free else cache._grow()
                    state_col[slot] = SHARED
                    pending_col[slot] = t + stall
                    fetcher_col[slot] = pid
                    tag_col[slot] = arg
                    slot_of[arg] = slot
                    cache.inserts += 1
                ctr.read_misses += 1
                ctr.by_cause[cause] += 1
                breakdowns[pid].load += stall
                pending = None
                retry_line[pid] = None
                tn = t + stall + 1
        else:
            # ---- run this processor's ops while it is strictly ahead of
            # every scheduled event (the canonical heap fast path, with
            # the horizon cached so the test is one comparison); the
            # ``for``/``else`` exhausts into the finish arm
            for code in it:
                op = code & 7
                arg = code >> 3
                if op == 1:  # READ
                    if touch:
                        # LRU touch fused into the probe: pop + reinsert
                        # keeps dict order = LRU order
                        slot = slot_of.pop(arg, -1)
                        if slot >= 0:
                            slot_of[arg] = slot
                    else:
                        slot = slot_get(arg, -1)
                    if slot >= 0:
                        pu = pending_col[slot]
                        if pu > t:
                            ctr.merges += 1
                            breakdowns[pid].merge += pu - t
                            pending = arg
                            retry_line[pid] = arg
                            tn = pu
                            break
                        f = fetcher_col[slot]
                        if f != -1 and f != pid:
                            ctr.prefetch_hits += 1
                            fetcher_col[slot] = -1
                        tn = t + 1
                    else:
                        # ---- fresh read miss: classify, directory
                        # transaction, SHARED install (an absent line
                        # cannot be pending)
                        (cl, bit4, bit4_ex, bit4_sh, nbit4, nbit1, history,
                         cache, free, tag_col) = mbinds[pid]
                        cause = history.get(arg, _COLD)
                        home = home_cache_get(arg)
                        if home is None:
                            ph = page_home_get(arg // lpp)
                            home = (ph if ph is not None
                                    else home_of_line(arg))
                            home_cache[arg] = home
                        packed = dtable_get(arg, 0)
                        if packed & 3 == 2:  # dirty remote owner
                            owner = packed.bit_length() - 3
                            if flat:
                                if owner == cl:
                                    raise ValueError(
                                        "requesting cluster cannot be the "
                                        "dirty owner on a miss")
                                if cl == home:
                                    stall = l_ldr
                                elif owner == home:
                                    stall = l_rc
                                else:
                                    stall = l_rd3
                            else:
                                stall = miss_cycles(cl, home, owner, t)
                            # owner keeps the data but downgrades; the
                            # reader joins the sharers
                            ok = kernels[owner]
                            ok[1][ok[0][arg]] = SHARED
                            dtable[arg] = (packed & -4) | bit4_sh
                        else:
                            if flat:
                                stall = l_lc if cl == home else l_rc
                            else:
                                stall = miss_cycles(cl, home, None, t)
                            dtable[arg] = (packed & -4) | bit4_sh
                        if touch and len(slot_of) >= cap:
                            vline = next(iter(slot_of))
                            slot = slot_of.pop(vline)
                            vstate = state_col[slot]
                            cache.evictions += 1
                            # recycle the victim's slot for the new line
                            state_col[slot] = SHARED
                            pending_col[slot] = t + stall
                            fetcher_col[slot] = pid
                            tag_col[slot] = arg
                            slot_of[arg] = slot
                            cache.inserts += 1
                            history[vline] = _CAPACITY
                            if vstate == EXCLUSIVE:
                                if dtable_get(vline, 0) == bit4_ex:
                                    del dtable[vline]
                                    directory.writebacks += 1
                            else:
                                vpacked = dtable_get(vline)
                                if vpacked is not None:
                                    vpacked &= nbit4
                                    directory.replacement_hints += 1
                                    if vpacked >> 2:
                                        dtable[vline] = vpacked
                                    else:
                                        del dtable[vline]
                        else:
                            slot = free.pop() if free else cache._grow()
                            state_col[slot] = SHARED
                            pending_col[slot] = t + stall
                            fetcher_col[slot] = pid
                            tag_col[slot] = arg
                            slot_of[arg] = slot
                            cache.inserts += 1
                        ctr.read_misses += 1
                        ctr.by_cause[cause] += 1
                        breakdowns[pid].load += stall
                        tn = t + stall + 1
                elif op == 0:  # WORK
                    tn = t + arg
                elif op == 2:  # WRITE (never stalls: store buffers +
                    # relaxed consistency; protocol state still updates)
                    if touch:
                        slot = slot_of.pop(arg, -1)
                        if slot >= 0:
                            slot_of[arg] = slot
                    else:
                        slot = slot_get(arg, -1)
                    if slot >= 0:
                        if state_col[slot] != EXCLUSIVE:
                            # upgrade: invalidate the other sharers
                            ctr.upgrade_misses += 1
                            mb = mbinds[pid]
                            others = (dtable_get(arg, 0) >> 2) & mb[5]
                            if others:
                                bits = others
                                while bits:
                                    low = bits & -bits
                                    bits ^= low
                                    vcl = low.bit_length() - 1
                                    k2 = kernels[vcl]
                                    s2 = k2[0].pop(arg, -1)
                                    if s2 >= 0:
                                        k2[4].append(s2)
                                        histories[vcl][arg] = _COHERENCE
                                directory.invalidations_sent += \
                                    others.bit_count()
                            dtable[arg] = mb[2]  # bit4 | DIR_EXCLUSIVE
                            state_col[slot] = EXCLUSIVE
                        tn = t + 1
                    else:
                        # ---- write miss: fetch exclusive; latency
                        # hidden, line left pending
                        (cl, bit4, bit4_ex, bit4_sh, nbit4, nbit1, history,
                         cache, free, tag_col) = mbinds[pid]
                        cause = history.get(arg, _COLD)
                        home = home_cache_get(arg)
                        if home is None:
                            ph = page_home_get(arg // lpp)
                            home = (ph if ph is not None
                                    else home_of_line(arg))
                            home_cache[arg] = home
                        packed = dtable_get(arg, 0)
                        if packed & 3 == 2:  # dirty remote owner
                            owner = packed.bit_length() - 3
                            if flat:
                                if owner == cl:
                                    raise ValueError(
                                        "requesting cluster cannot be the "
                                        "dirty owner on a miss")
                                if cl == home:
                                    latency = l_ldr
                                elif owner == home:
                                    latency = l_rc
                                else:
                                    latency = l_rd3
                            else:
                                latency = miss_cycles(cl, home, owner, t)
                        else:
                            if flat:
                                latency = l_lc if cl == home else l_rc
                            else:
                                latency = miss_cycles(cl, home, None, t)
                        others = (packed >> 2) & nbit1
                        if others:
                            bits = others
                            while bits:
                                low = bits & -bits
                                bits ^= low
                                vcl = low.bit_length() - 1
                                k2 = kernels[vcl]
                                s2 = k2[0].pop(arg, -1)
                                if s2 >= 0:
                                    k2[4].append(s2)
                                    histories[vcl][arg] = _COHERENCE
                        directory.invalidations_sent += others.bit_count()
                        dtable[arg] = bit4_ex
                        if touch and len(slot_of) >= cap:
                            vline = next(iter(slot_of))
                            slot = slot_of.pop(vline)
                            vstate = state_col[slot]
                            cache.evictions += 1
                            state_col[slot] = EXCLUSIVE
                            pending_col[slot] = t + latency
                            fetcher_col[slot] = pid
                            tag_col[slot] = arg
                            slot_of[arg] = slot
                            cache.inserts += 1
                            history[vline] = _CAPACITY
                            if vstate == EXCLUSIVE:
                                if dtable_get(vline, 0) == bit4_ex:
                                    del dtable[vline]
                                    directory.writebacks += 1
                            else:
                                vpacked = dtable_get(vline)
                                if vpacked is not None:
                                    vpacked &= nbit4
                                    directory.replacement_hints += 1
                                    if vpacked >> 2:
                                        dtable[vline] = vpacked
                                    else:
                                        del dtable[vline]
                        else:
                            slot = free.pop() if free else cache._grow()
                            state_col[slot] = EXCLUSIVE
                            pending_col[slot] = t + latency
                            fetcher_col[slot] = pid
                            tag_col[slot] = arg
                            slot_of[arg] = slot
                            cache.inserts += 1
                        ctr.write_misses += 1
                        ctr.by_cause[cause] += 1
                        tn = t + 1
                elif op == 3:  # BARRIER (BarrierState.arrive, inlined)
                    bar = barriers_get(arg)
                    if bar is None:
                        bar = sync_barrier(arg)
                    w = bar._waiting
                    w.append((pid, t))
                    if len(w) == bar.n_participants:
                        bar.episodes += 1
                        try:
                            bkt = buckets[t]
                        except KeyError:
                            bkt = buckets[t] = []
                            heappush(times, t)
                        for rpid, arrived in w:
                            breakdowns[rpid].sync += t - arrived
                            bkt.append(rpid)
                        w.clear()
                    tn = None
                    break
                elif op == 4:  # LOCK (LockState.acquire, inlined)
                    lk = locks_get(arg)
                    if lk is None:
                        lk = sync_lock(arg)
                    holder = lk.holder
                    if holder is None:
                        lk.holder = pid
                        lk.acquisitions += 1
                        tn = t + 1
                    elif holder == pid:
                        raise RuntimeError(
                            f"processor {pid} re-acquiring held lock")
                    else:
                        lk._queue.append((pid, t))
                        tn = None
                        break
                else:  # OP_UNLOCK (LockState.release, inlined; the
                    # compile validated every opcode)
                    lk = locks_get(arg)
                    if lk is None:
                        lk = sync_lock(arg)
                    if lk.holder != pid:
                        raise RuntimeError(
                            f"processor {pid} releasing lock held by "
                            f"{lk.holder}")
                    q = lk._queue
                    if q:
                        next_pid, arrived = q.popleft()
                        lk.holder = next_pid
                        lk.acquisitions += 1
                        lk.contended_acquisitions += 1
                        # enqueue order (self, then next holder) fixes
                        # the tie-break at t+1 exactly as it always did
                        t1 = t + 1
                        try:
                            bkt = buckets[t1]
                        except KeyError:
                            bkt = buckets[t1] = []
                            heappush(times, t1)
                        bkt.append(pid)
                        breakdowns[next_pid].sync += t - arrived
                        bkt.append(next_pid)
                        tn = None
                        break
                    lk.holder = None
                    tn = t + 1
                # ---- fast path: strictly next, stay on this processor
                if tn < hz:
                    t = tn
                    continue
                break
            else:
                finish[pid] = t
                n_running -= 1
                tn = None

        # ---- scheduling tail
        if tn is None:  # blocked or finished
            if not times:
                break
        elif tn < hz:  # reachable from the retry arm / a fresh merge only
            t = tn
            continue
        else:
            # enqueue; tn >= hz guarantees an already-queued event runs
            # first, so the canonical ``npid == pid`` shortcut of the
            # heappushpop tail can never fire here
            try:
                buckets[tn].append(pid)
            except KeyError:
                buckets[tn] = [pid]
                heappush(times, tn)
        t = times[0]
        bkt = buckets[t]
        pid = bkt.pop(0)
        if not bkt:
            del buckets[t]
            heappop(times)
            hz = times[0] if times else _INF
        else:
            hz = t
        (it, ctr, slot_of, slot_get, state_col, pending_col,
         fetcher_col) = binds[pid]
        pending = retry_line[pid]

    # ---- wrap-up (Engine._finalize, verbatim semantics)
    if n_running > 0:
        detail = sync.idle_check() or "processors blocked forever"
        stuck = [p for p in range(n) if finish[p] is None]
        raise SimulationDeadlock(
            f"{len(stuck)} processors never finished ({detail}); "
            f"first stuck: {stuck[:8]}")
    execution_time = max(f for f in finish if f is not None) if n else 0
    for p in range(n):
        fin = finish[p]
        assert fin is not None
        breakdowns[p].sync += execution_time - fin
    return DEFAULT_ASSEMBLER.assemble(execution_time, breakdowns, memory)


class BatchedReplay:
    """Replay one compiled trace across N memory-system configurations.

    The single column decode (:func:`prepare_batch`, numpy-accelerated
    when available) is paid **lazily**, on the first point the pure-python
    fused kernel actually serves: when the native C kernel handles every
    point of a group — the common case with ``--native`` — the packed
    instruction streams are never built at all, which matters for mapped
    paper-scale traces (the native kernel reads the file mapping in
    place; packing would materialise the whole trace as boxed ints).
    Each :meth:`run` advances one configuration over the shared columns —
    with the native kernel when it is selected and the point qualifies
    (:func:`~repro.sim.nativereplay.native_fusible`), the pure-python
    fused kernel when the memory system qualifies, and the canonical
    ``execute_program`` replay otherwise.  All three are byte-identical;
    ``points_native`` / ``points_fused`` / ``points_fallback`` record
    which kernel served each point for the batch counters.
    """

    __slots__ = ("program", "use_numpy", "points_native", "points_fused",
                 "points_fallback")

    def __init__(self, program: "CompiledProgram",
                 use_numpy: bool | None = None) -> None:
        self.program = program
        self.use_numpy = use_numpy
        self.points_native = 0
        self.points_fused = 0
        self.points_fallback = 0

    def run(self, config: "MachineConfig", memory) -> RunResult:
        """Advance one configuration; exact regardless of the path taken."""
        if fusible(memory):
            lib = native_kernel()
            if lib is not None and native_fusible(memory):
                self.points_native += 1
                return replay_native(config, memory, self.program, lib=lib)
            self.points_fused += 1
            prepare_batch(self.program, use_numpy=self.use_numpy)
            return replay_fused(config, memory, self.program)
        self.points_fallback += 1
        return execute_program(config, memory, self.program, compiled=True)
