"""BatchPlanner: group sweep points that can share one trace decode.

Two points belong to the same batch group exactly when they replay the
same compiled trace — i.e. their :func:`~repro.sim.compiled.trace_key`\\ s
match.  For stream-invariant applications the key deliberately excludes
cluster size, cache size, and network model, so a whole cluster/cache
grid over one (app, kwargs, seed, processor-count, line-size) problem
collapses into a single group.  Dynamic task-queue applications
(``stream_invariant=False``) key on the *full* configuration and are
never grouped here: their stream is decided by the run itself, so each
point falls through to the canonical per-point path.

The planner only *plans* — it builds application instances (cheap
constructor, no setup) to learn each point's seed and stream invariance,
and never touches the trace cache or runs anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from ...core.config import MachineConfig
from ...runtime.plan import RunRequest

if TYPE_CHECKING:  # pragma: no cover
    pass

__all__ = ["BatchGroup", "BatchPlan", "BatchPlanner"]


@dataclass(frozen=True)
class BatchGroup:
    """One trace-key group: positions (into the planned spec list) that
    replay the same compiled trace."""

    key: str
    indices: tuple[int, ...]

    def __len__(self) -> int:
        return len(self.indices)


@dataclass
class BatchPlan:
    """What the planner decided for one sweep.

    ``groups`` hold the batched points; ``singles`` are the fallthrough
    positions (dynamic apps, or trace keys with fewer points than
    ``min_group``) that the executor evaluates per-point, exactly as it
    would without batching.
    """

    groups: list[BatchGroup] = field(default_factory=list)
    singles: list[int] = field(default_factory=list)

    @property
    def batched_points(self) -> int:
        return sum(len(g) for g in self.groups)


@dataclass
class BatchPlanner:
    """Groups :class:`~repro.runtime.plan.RunRequest`\\ s by trace key.

    ``min_group`` (default 2) is the smallest group worth batching: a
    lone point gains nothing from sharing a decode with itself, so it
    falls through and keeps the per-point path's exact behaviour —
    including its per-point timeout/error handling.
    """

    min_group: int = 2

    def plan(self, specs: Sequence[RunRequest],
             base_config: MachineConfig | None = None) -> BatchPlan:
        """Partition ``specs`` into batch groups and fallthrough singles.

        Returned indices are positions into ``specs``; every position
        appears exactly once across ``groups`` + ``singles``.
        """
        from ...apps.registry import build_app
        from ..compiled import trace_key

        base = base_config if base_config is not None else MachineConfig()
        by_key: dict[str, list[int]] = {}
        singles: list[int] = []
        for i, spec in enumerate(specs):
            try:
                config = spec.config_for(base)
                app = build_app(spec.app, config, **spec.kwargs)
            except Exception:
                # un-plannable (unknown app, bad kwargs): fall through so
                # the per-point path reports its canonical error outcome
                singles.append(i)
                continue
            if not app.stream_invariant:
                singles.append(i)
                continue
            key = trace_key(spec.app, spec.kwargs, config, app.seed,
                            stream_invariant=True)
            by_key.setdefault(key, []).append(i)

        plan = BatchPlan()
        for key, indices in by_key.items():
            if len(indices) >= max(self.min_group, 1):
                plan.groups.append(BatchGroup(key, tuple(indices)))
            else:
                singles.extend(indices)
        singles.sort()
        plan.singles = singles
        return plan
