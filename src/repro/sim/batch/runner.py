"""Run one batch group through the canonical pipeline, fused.

:func:`run_group` evaluates the points of one trace-key group with a
single :class:`~repro.runtime.session.RunSession` whose ``replayer``
seam is bound to the fused lockstep kernel: the first point acquires the
compiled trace (trace-cache hit or capture) and decodes the replay
columns once; every point — including the first — then replays over
those shared columns via :class:`~repro.sim.batch.engine.BatchedReplay`.
Because the runner goes *through* the session, trace-cache accounting,
observers, and the dynamic-app capture path behave exactly as they do
per-point; only the engine/memory interpreter overhead changes.

Failure isolation matches the sweep executor's: a point that raises
yields an error item, and the rest of the group completes.
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import repro.native as native

from ...core.config import MachineConfig
from ...memory import make_memory_system
from ...runtime.plan import RunRequest
from ...runtime.session import RunSession
from .engine import BatchedReplay

if TYPE_CHECKING:  # pragma: no cover
    from ...core.metrics import RunResult
    from ...runtime.hooks import RunObserver
    from ..compiled import TraceCache

__all__ = ["BatchItem", "BatchStats", "run_group"]


def _aux_decoder_name() -> str:
    """``"numpy"`` or ``"python"`` — the column decoder in effect."""
    from .columns import HAVE_NUMPY
    return "numpy" if HAVE_NUMPY else "python"


@dataclass
class BatchItem:
    """Per-point outcome of a group run (exactly one of result/error)."""

    result: "RunResult | None" = None
    error: str | None = None
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class BatchStats:
    """Batch counters, accumulated across sweeps by the executor/daemon.

    ``batched_points`` ran inside a group; ``fallthrough_points`` were
    planned out of batching (dynamic apps, lone trace keys) and took the
    per-point path; ``native_points`` / ``fused_points`` /
    ``fallback_points`` split the batched ones by which kernel served
    them — the C column interpreter, the pure-python fused kernel, or
    the canonical replay (fallback = unfusible memory system) — all
    three byte-identical.  ``kernel`` / ``aux_decoder`` snapshot the
    selections in effect when the stats object was created: which replay
    kernel a point would get and whether the numpy or pure-python aux
    decoder counts the columns.
    """

    groups: int = 0
    batched_points: int = 0
    fallthrough_points: int = 0
    native_points: int = 0
    fused_points: int = 0
    fallback_points: int = 0
    kernel: str = field(default_factory=native.kernel_name)
    aux_decoder: str = field(default_factory=lambda: _aux_decoder_name())

    def observe_plan(self, plan) -> None:
        self.groups += len(plan.groups)
        self.batched_points += plan.batched_points
        self.fallthrough_points += len(plan.singles)

    def points_per_group(self) -> float:
        return self.batched_points / self.groups if self.groups else 0.0

    def to_dict(self) -> dict:
        return {"groups": self.groups,
                "batched_points": self.batched_points,
                "fallthrough_points": self.fallthrough_points,
                "native_points": self.native_points,
                "fused_points": self.fused_points,
                "fallback_points": self.fallback_points,
                "kernel": self.kernel,
                "aux_decoder": self.aux_decoder,
                "points_per_group": round(self.points_per_group(), 3)}


def _make_replayer(stats: BatchStats | None):
    """A :class:`RunSession` ``replayer`` bound to the fused kernel.

    Builds the memory system the config's protocol selects (the same
    construction :meth:`Application.run` performs) and replays through
    :class:`BatchedReplay`, which decodes the program's columns once and
    picks fused vs canonical per memory system — non-directory protocols
    land on the canonical replay and count as ``fallback_points``.
    """
    state: dict = {}

    def replayer(config, app, program):
        batch = state.get("batch")
        if batch is None or batch.program is not program:
            batch = BatchedReplay(program)
            state["batch"] = batch
        memory = make_memory_system(config, app.allocator)
        before_native = batch.points_native
        before_fused = batch.points_fused
        result = batch.run(config, memory)
        if stats is not None:
            if batch.points_native > before_native:
                stats.native_points += 1
            elif batch.points_fused > before_fused:
                stats.fused_points += 1
            else:
                stats.fallback_points += 1
        return result

    return replayer


def run_group(specs: Sequence[RunRequest],
              base_config: MachineConfig | None = None,
              trace_cache: "TraceCache | None" = None,
              observer: "RunObserver | None" = None,
              stats: BatchStats | None = None) -> list[BatchItem]:
    """Evaluate one trace-key group; items come back in input order."""
    session = RunSession(base_config=base_config, trace_cache=trace_cache,
                         use_compiled=True, observer=observer,
                         replayer=_make_replayer(stats))
    items: list[BatchItem] = []
    for spec in specs:
        t0 = time.perf_counter()
        try:
            result = session.run(spec)
        except Exception:
            items.append(BatchItem(error=traceback.format_exc()))
        else:
            items.append(BatchItem(result=result,
                                   elapsed=time.perf_counter() - t0))
    return items
