"""Event-driven multiprocessor execution engine and program vocabulary."""

from .compiled import (CompiledProgram, ProgramRecorder, TraceCache,
                       TraceDecodeError, compile_program, trace_key)
from .engine import (Engine, PerfectMemory, SimulationDeadlock,
                     execute_program, run_program)
from .program import (OP_BARRIER, OP_LOCK, OP_READ, OP_UNLOCK, OP_WORK,
                      OP_WRITE, Barrier, Lock, Op, Program, ProgramFactory,
                      Read, Unlock, Work, Write)
from .stats import RunSummary, StatsAssembler, summarize
from .trace import ReferenceTrace, TraceRecord, TracingMemory, replay
from .sync import BarrierState, LockState, SyncRegistry

__all__ = [
    "Engine", "PerfectMemory", "SimulationDeadlock", "execute_program",
    "run_program",
    "CompiledProgram", "ProgramRecorder", "TraceCache", "TraceDecodeError",
    "compile_program", "trace_key",
    "Work", "Read", "Write", "Barrier", "Lock", "Unlock",
    "OP_WORK", "OP_READ", "OP_WRITE", "OP_BARRIER", "OP_LOCK", "OP_UNLOCK",
    "Op", "Program", "ProgramFactory",
    "BarrierState", "LockState", "SyncRegistry",
    "RunSummary", "StatsAssembler", "summarize",
    "ReferenceTrace", "TraceRecord", "TracingMemory", "replay",
]
