"""Event-driven multiprocessor execution engine (the Tango-lite analog).

The engine interleaves per-processor operation streams in global timestamp
order using a binary heap of ``(time, sequence, processor)`` events.  One
event processes one operation; the sequence number makes tie-breaking — and
therefore every simulation — fully deterministic.

Timing rules (paper §3.1):

* WORK(c) advances the processor clock by ``c`` CPU-busy cycles.
* A READ that hits costs one CPU cycle (the engine simulates single-cycle
  hits; cluster-size-dependent hit time enters via the §6 estimator).
* A READ that misses stalls the processor for the Table-1 latency (charged
  to *load*), then completes as a hit.
* A READ to a pending line stalls until the outstanding fill returns
  (charged to *merge*) and is then **retried**: if the line was invalidated
  while pending the retry takes a fresh miss (paper §2).
* WRITEs never stall (store buffers + relaxed consistency) and cost one
  CPU cycle to issue.
* BARRIER/LOCK blocking is charged to *sync*; end-of-program slack (waiting
  for the slowest processor) is also charged to *sync*, so every
  processor's components sum exactly to the global execution time.

The memory system is any object with ``read(processor, line, now, is_retry)``
and ``write(processor, line, now)`` — normally
:class:`~repro.memory.coherence.CoherentMemorySystem`, or
:class:`PerfectMemory` for load-latency profiling.
"""

from __future__ import annotations

from heapq import heappop, heappush

from ..core.config import MachineConfig
from ..core.metrics import MissCounters, RunResult, TimeBreakdown
from ..memory.coherence import READ_HIT, READ_MERGE
from .program import (OP_BARRIER, OP_LOCK, OP_READ, OP_UNLOCK, OP_WORK,
                      OP_WRITE, ProgramFactory)
from .sync import SyncRegistry

__all__ = ["Engine", "PerfectMemory", "SimulationDeadlock", "run_program"]


class SimulationDeadlock(RuntimeError):
    """The event queue drained while processors were still blocked."""


class PerfectMemory:
    """A memory system in which every reference hits.

    Used by the load-latency profiler (paper §6 / Table 5), where memory
    behaviour must be excluded so that only the load delay slot matters —
    the role Pixie played for the authors.
    """

    def read(self, processor: int, line: int, now: int,
             is_retry: bool = False) -> tuple[int, int]:
        return READ_HIT, 0

    def write(self, processor: int, line: int, now: int) -> None:
        return None

    def aggregate_counters(self) -> MissCounters:
        return MissCounters()


class Engine:
    """Run a program factory on a machine configuration.

    Parameters
    ----------
    config:
        Machine organisation; supplies processor count and line size.
    memory:
        Coherent memory system (or :class:`PerfectMemory`).
    read_hit_cycles:
        CPU cycles charged per read *hit* (default 1, the paper's setting;
        the load-latency profiler sweeps 1-4).
    max_cycles:
        Safety cap; exceeding it raises ``RuntimeError`` (runaway program).
    """

    def __init__(self, config: MachineConfig, memory,
                 read_hit_cycles: int = 1,
                 max_cycles: int | None = None) -> None:
        if read_hit_cycles < 1:
            raise ValueError("read_hit_cycles must be >= 1")
        self.config = config
        self.memory = memory
        self.read_hit_cycles = read_hit_cycles
        self.max_cycles = max_cycles
        self.sync = SyncRegistry(config.n_processors)

    def run(self, program_factory: ProgramFactory) -> RunResult:
        """Execute ``program_factory(pid)`` on every processor to completion."""
        n = self.config.n_processors
        line_size = self.config.line_size
        memory = self.memory
        read = memory.read
        write = memory.write
        hit_cost = self.read_hit_cycles
        max_cycles = self.max_cycles

        programs = [program_factory(pid) for pid in range(n)]
        breakdowns = [TimeBreakdown() for _ in range(n)]
        retry_line: list[int | None] = [None] * n
        finish: list[int | None] = [None] * n

        heap: list[tuple[int, int, int]] = []
        seq = 0
        for pid in range(n):
            heap.append((0, seq, pid))
            seq += 1
        # list of (time, seq, pid) is already a valid heap here (all zeros)

        n_running = n
        while heap:
            t, _, pid = heappop(heap)
            if max_cycles is not None and t > max_cycles:
                raise RuntimeError(
                    f"simulation exceeded max_cycles={max_cycles} "
                    f"(processor {pid} at t={t})")
            bd = breakdowns[pid]

            pending = retry_line[pid]
            if pending is not None:
                outcome, stall = read(pid, pending, t, True)
                if outcome == READ_MERGE:
                    bd.merge += stall
                    heappush(heap, (t + stall, seq, pid)); seq += 1
                    continue
                retry_line[pid] = None
                if outcome == READ_HIT:
                    bd.cpu += hit_cost
                    heappush(heap, (t + hit_cost, seq, pid)); seq += 1
                else:  # fresh miss after mid-flight invalidation
                    bd.load += stall
                    bd.cpu += hit_cost
                    heappush(heap, (t + stall + hit_cost, seq, pid)); seq += 1
                continue

            try:
                opcode, arg = next(programs[pid])
            except StopIteration:
                finish[pid] = t
                n_running -= 1
                continue

            if opcode == OP_WORK:
                if arg < 0:
                    raise ValueError(f"negative WORK cycles: {arg}")
                bd.cpu += arg
                heappush(heap, (t + arg, seq, pid)); seq += 1
            elif opcode == OP_READ:
                outcome, stall = read(pid, arg // line_size, t, False)
                if outcome == READ_HIT:
                    bd.cpu += hit_cost
                    heappush(heap, (t + hit_cost, seq, pid)); seq += 1
                elif outcome == READ_MERGE:
                    bd.merge += stall
                    retry_line[pid] = arg // line_size
                    heappush(heap, (t + stall, seq, pid)); seq += 1
                else:
                    bd.load += stall
                    bd.cpu += hit_cost
                    heappush(heap, (t + stall + hit_cost, seq, pid)); seq += 1
            elif opcode == OP_WRITE:
                write(pid, arg // line_size, t)
                bd.cpu += 1
                heappush(heap, (t + 1, seq, pid)); seq += 1
            elif opcode == OP_BARRIER:
                releases = self.sync.barrier(arg).arrive(pid, t)
                if releases is not None:
                    for rpid, wait in releases:
                        breakdowns[rpid].sync += wait
                        heappush(heap, (t, seq, rpid)); seq += 1
            elif opcode == OP_LOCK:
                if self.sync.lock(arg).acquire(pid, t):
                    bd.cpu += 1
                    heappush(heap, (t + 1, seq, pid)); seq += 1
                # else: blocked; rescheduled by the releasing processor
            elif opcode == OP_UNLOCK:
                handoff = self.sync.lock(arg).release(pid, t)
                bd.cpu += 1
                heappush(heap, (t + 1, seq, pid)); seq += 1
                if handoff is not None:
                    next_pid, wait = handoff
                    nbd = breakdowns[next_pid]
                    nbd.sync += wait
                    nbd.cpu += 1  # the acquisition cycle of its LOCK op
                    heappush(heap, (t + 1, seq, next_pid)); seq += 1
            else:
                raise ValueError(f"unknown opcode {opcode}")

        if n_running > 0:
            detail = self.sync.idle_check() or "processors blocked forever"
            stuck = [pid for pid in range(n) if finish[pid] is None]
            raise SimulationDeadlock(
                f"{len(stuck)} processors never finished ({detail}); "
                f"first stuck: {stuck[:8]}")

        execution_time = max(f for f in finish if f is not None) if n else 0
        for pid in range(n):
            fin = finish[pid]
            assert fin is not None
            breakdowns[pid].sync += execution_time - fin

        mean = TimeBreakdown()
        for bd in breakdowns:
            mean.add(bd)
        if n:
            mean = TimeBreakdown(cpu=mean.cpu / n, load=mean.load / n,
                                 merge=mean.merge / n, sync=mean.sync / n)

        per_cluster = getattr(memory, "counters", None)
        stats_of = getattr(memory, "network_stats", None)
        return RunResult(
            execution_time=execution_time,
            breakdown=mean,
            per_processor=breakdowns,
            misses=memory.aggregate_counters(),
            per_cluster_misses=list(per_cluster) if per_cluster else [],
            network=stats_of() if stats_of is not None else None,
        )


def run_program(config: MachineConfig, program_factory: ProgramFactory,
                memory=None, read_hit_cycles: int = 1,
                max_cycles: int | None = None) -> RunResult:
    """Convenience wrapper: build the memory system and run one simulation."""
    if memory is None:
        from ..memory.coherence import CoherentMemorySystem
        memory = CoherentMemorySystem(config)
    engine = Engine(config, memory, read_hit_cycles=read_hit_cycles,
                    max_cycles=max_cycles)
    return engine.run(program_factory)
