"""Event-driven multiprocessor execution engine (the Tango-lite analog).

The engine interleaves per-processor operation streams in global timestamp
order using a binary heap of ``(time, sequence, processor)`` events.  One
event processes one operation; the sequence number makes tie-breaking — and
therefore every simulation — fully deterministic.

Timing rules (paper §3.1):

* WORK(c) advances the processor clock by ``c`` CPU-busy cycles.
* A READ that hits costs one CPU cycle (the engine simulates single-cycle
  hits; cluster-size-dependent hit time enters via the §6 estimator).
* A READ that misses stalls the processor for the Table-1 latency (charged
  to *load*), then completes as a hit.
* A READ to a pending line stalls until the outstanding fill returns
  (charged to *merge*) and is then **retried**: if the line was invalidated
  while pending the retry takes a fresh miss (paper §2).
* WRITEs never stall (store buffers + relaxed consistency) and cost one
  CPU cycle to issue.
* BARRIER/LOCK blocking is charged to *sync*; end-of-program slack (waiting
  for the slowest processor) is also charged to *sync*, so every
  processor's components sum exactly to the global execution time.

The memory system is any object with ``read(processor, line, now, is_retry)``
and ``write(processor, line, now)`` — normally
:class:`~repro.memory.coherence.CoherentMemorySystem`, or
:class:`PerfectMemory` for load-latency profiling.  Both methods are bound
once per run and called once per READ/WRITE op, which makes them the
engine's hottest downstream calls; the memory layer keeps them allocation-
free on hits by storing all per-line state in slab columns
(see :mod:`repro.memory.cache`) rather than per-line heap objects.  The
engine in turn promises the memory system monotonically non-decreasing
``now`` values per processor — the ordering the pending/merge bookkeeping
in those columns relies on.

Execution paths and the heap-lean fast path
-------------------------------------------

Programs run either from generators (:meth:`Engine.run`, the historical
path) or from a pre-compiled flat-array capture
(:meth:`Engine.run_compiled` on a :class:`~repro.sim.compiled.
CompiledProgram`), which eliminates the per-op generator resumption and
tuple unpack.  Both paths share a *heap fast path*: when the processor's
next event lands **strictly earlier** than the current heap minimum (or
the heap is empty), that event would necessarily be popped next, so the
heappush/heappop round-trip is skipped and the processor simply continues.
This is bit-identical to the historical engine: skipping an adjacent
push/pop pair removes one sequence number from the global counter, which
relabels all later sequence numbers monotonically — the relative order of
every remaining event, including ties, is unchanged.  (An event *equal* to
the heap minimum must still go through the heap: the incumbent was pushed
earlier, holds the smaller sequence number, and wins the tie.)
"""

from __future__ import annotations

from heapq import heappop, heappush, heappushpop

from ..core.config import MachineConfig
from ..core.metrics import MissCounters, RunResult, TimeBreakdown
from ..memory.coherence import READ_HIT, READ_MERGE
from .program import (OP_BARRIER, OP_LOCK, OP_READ, OP_UNLOCK, OP_WORK,
                      OP_WRITE, ProgramFactory)
from .stats import DEFAULT_ASSEMBLER, StatsAssembler
from .sync import SyncRegistry

__all__ = ["Engine", "PerfectMemory", "SimulationDeadlock",
           "execute_program", "run_program"]


class SimulationDeadlock(RuntimeError):
    """The event queue drained while processors were still blocked."""


class PerfectMemory:
    """A memory system in which every reference hits.

    Used by the load-latency profiler (paper §6 / Table 5), where memory
    behaviour must be excluded so that only the load delay slot matters —
    the role Pixie played for the authors.
    """

    def read(self, processor: int, line: int, now: int,
             is_retry: bool = False) -> tuple[int, int]:
        return READ_HIT, 0

    def write(self, processor: int, line: int, now: int) -> None:
        return None

    def aggregate_counters(self) -> MissCounters:
        return MissCounters()


class Engine:
    """Run a program factory on a machine configuration.

    Parameters
    ----------
    config:
        Machine organisation; supplies processor count and line size.
    memory:
        Coherent memory system (or :class:`PerfectMemory`).
    read_hit_cycles:
        CPU cycles charged per read *hit* (default 1, the paper's setting;
        the load-latency profiler sweeps 1-4).
    max_cycles:
        Safety cap; exceeding it raises ``RuntimeError`` (runaway program).
    heap_fast_path:
        Skip the heappush/heappop round-trip when the rescheduled event is
        strictly earlier than the heap minimum (default on; results are
        bit-identical either way — the flag exists for the equivalence
        tests and for benchmarking the fast path's contribution).
    stats:
        :class:`~repro.sim.stats.StatsAssembler` that turns the finished
        breakdowns + memory counters into the :class:`RunResult`.  The
        shared default reproduces the historical assembly exactly; the
        seam exists for probes, not for the hot loop (assembly runs once
        per run).
    """

    def __init__(self, config: MachineConfig, memory,
                 read_hit_cycles: int = 1,
                 max_cycles: int | None = None,
                 heap_fast_path: bool = True,
                 stats: StatsAssembler | None = None) -> None:
        if read_hit_cycles < 1:
            raise ValueError("read_hit_cycles must be >= 1")
        self.config = config
        self.memory = memory
        self.read_hit_cycles = read_hit_cycles
        self.max_cycles = max_cycles
        self.heap_fast_path = heap_fast_path
        self.stats = DEFAULT_ASSEMBLER if stats is None else stats
        self.sync = SyncRegistry(config.n_processors)

    # ------------------------------------------------------- generator path
    def run(self, program_factory: ProgramFactory) -> RunResult:
        """Execute ``program_factory(pid)`` on every processor to completion."""
        n = self.config.n_processors
        line_size = self.config.line_size
        memory = self.memory
        read = memory.read
        write = memory.write
        hit_cost = self.read_hit_cycles
        max_cycles = self.max_cycles
        fast = self.heap_fast_path
        sync = self.sync

        nexts = [iter(program_factory(pid)).__next__ for pid in range(n)]
        breakdowns = [TimeBreakdown() for _ in range(n)]
        retry_line: list[int | None] = [None] * n
        finish: list[int | None] = [None] * n
        # sentinel keeps the per-op guard to one int compare; 2**62 cycles
        # is beyond any simulation, so "no limit" and "huge limit" coincide
        limit = max_cycles if max_cycles is not None else 1 << 62

        # list of (time, seq, pid) is already a valid heap here (all zeros)
        heap: list[tuple[int, int, int]] = [(0, pid, pid) for pid in range(n)]
        seq = n
        n_running = n

        # Single flat loop: one iteration processes one operation.  The
        # reschedule tail fuses the historical heappush + outer heappop into
        # one heappushpop (same returned minimum, same tie-breaks, half the
        # sift work); ``tn = None`` marks a blocked/finished processor whose
        # next event comes solely from the heap.
        t, _, pid = heappop(heap)
        bd = breakdowns[pid]
        nxt = nexts[pid]
        pending = retry_line[pid]
        while True:
            if t > limit:
                raise RuntimeError(
                    f"simulation exceeded max_cycles={max_cycles} "
                    f"(processor {pid} at t={t})")

            if pending is not None:
                outcome, stall = read(pid, pending, t, True)
                if outcome == READ_MERGE:
                    bd.merge += stall
                    tn = t + stall
                elif outcome == READ_HIT:
                    pending = None
                    bd.cpu += hit_cost
                    tn = t + hit_cost
                else:  # fresh miss after mid-flight invalidation
                    pending = None
                    bd.load += stall
                    bd.cpu += hit_cost
                    tn = t + stall + hit_cost
            else:
                try:
                    opcode, arg = nxt()
                except StopIteration:
                    finish[pid] = t
                    n_running -= 1
                    tn = None
                else:
                    # dispatch ordered by dynamic frequency: reads dominate
                    # every app once consecutive WORK ops are fused
                    if opcode == OP_READ:
                        line = arg // line_size
                        outcome, stall = read(pid, line, t, False)
                        if outcome == READ_HIT:
                            bd.cpu += hit_cost
                            tn = t + hit_cost
                        elif outcome == READ_MERGE:
                            bd.merge += stall
                            pending = line
                            tn = t + stall
                        else:
                            bd.load += stall
                            bd.cpu += hit_cost
                            tn = t + stall + hit_cost
                    elif opcode == OP_WORK:
                        if arg < 0:
                            raise ValueError(f"negative WORK cycles: {arg}")
                        bd.cpu += arg
                        tn = t + arg
                    elif opcode == OP_WRITE:
                        write(pid, arg // line_size, t)
                        bd.cpu += 1
                        tn = t + 1
                    elif opcode == OP_BARRIER:
                        releases = sync.barrier(arg).arrive(pid, t)
                        if releases is not None:
                            for rpid, wait in releases:
                                breakdowns[rpid].sync += wait
                                heappush(heap, (t, seq, rpid)); seq += 1
                        tn = None  # waiting (or rescheduled in the releases)
                    elif opcode == OP_LOCK:
                        if sync.lock(arg).acquire(pid, t):
                            bd.cpu += 1
                            tn = t + 1
                        else:
                            tn = None  # blocked; rescheduled by the releaser
                    elif opcode == OP_UNLOCK:
                        handoff = sync.lock(arg).release(pid, t)
                        bd.cpu += 1
                        if handoff is None:
                            tn = t + 1
                        else:
                            # push order (self, then next holder) fixes the
                            # tie-break at t+1 exactly as it always did
                            heappush(heap, (t + 1, seq, pid)); seq += 1
                            next_pid, wait = handoff
                            nbd = breakdowns[next_pid]
                            nbd.sync += wait
                            nbd.cpu += 1  # the acquisition cycle of its LOCK
                            heappush(heap, (t + 1, seq, next_pid)); seq += 1
                            tn = None
                    else:
                        raise ValueError(f"unknown opcode {opcode}")

            # ---- scheduling tail
            if tn is None:  # blocked or finished
                if not heap:
                    break
                t, _, npid = heappop(heap)
            elif fast and (not heap or tn < heap[0][0]):
                t = tn  # strictly next: stay on this processor
                continue
            else:
                t, _, npid = heappushpop(heap, (tn, seq, pid)); seq += 1
                if npid == pid:
                    continue
            retry_line[pid] = pending
            pid = npid
            bd = breakdowns[pid]
            nxt = nexts[pid]
            pending = retry_line[pid]

        return self._finalize(breakdowns, finish, n_running)

    # -------------------------------------------------------- compiled path
    def run_compiled(self, program) -> RunResult:
        """Replay a :class:`~repro.sim.compiled.CompiledProgram`.

        Bit-identical to :meth:`run` on the program the capture was
        compiled from; the per-op generator resumption, tuple unpack, and
        ``arg // line_size`` all disappear (READ/WRITE operands are
        pre-divided line numbers).
        """
        n = self.config.n_processors
        if program.n_processors != n:
            raise ValueError(
                f"compiled program has {program.n_processors} processors, "
                f"machine has {n}")
        if program.line_size != self.config.line_size:
            raise ValueError(
                f"compiled program captured at line size "
                f"{program.line_size}, machine uses {self.config.line_size}")
        memory = self.memory
        read = memory.read
        write = memory.write
        hit_cost = self.read_hit_cycles
        max_cycles = self.max_cycles
        fast = self.heap_fast_path
        sync = self.sync

        ops_of, args_of = program.runtime_columns()
        n_ops_of = [len(o) for o in ops_of]
        ip = [0] * n  # per-processor instruction pointer
        breakdowns = [TimeBreakdown() for _ in range(n)]
        retry_line: list[int | None] = [None] * n
        finish: list[int | None] = [None] * n
        limit = max_cycles if max_cycles is not None else 1 << 62

        heap: list[tuple[int, int, int]] = [(0, pid, pid) for pid in range(n)]
        seq = n
        n_running = n

        # Same flat heappushpop loop as :meth:`run` (see the comment there);
        # here a processor's resumable state is (instruction pointer, pending
        # retry line), both kept in locals and stored back only on a switch.
        t, _, pid = heappop(heap)
        bd = breakdowns[pid]
        ops = ops_of[pid]
        args = args_of[pid]
        i = ip[pid]
        n_ops = n_ops_of[pid]
        pending = retry_line[pid]
        while True:
            if t > limit:
                raise RuntimeError(
                    f"simulation exceeded max_cycles={max_cycles} "
                    f"(processor {pid} at t={t})")

            if pending is not None:
                outcome, stall = read(pid, pending, t, True)
                if outcome == READ_MERGE:
                    bd.merge += stall
                    tn = t + stall
                elif outcome == READ_HIT:
                    pending = None
                    bd.cpu += hit_cost
                    tn = t + hit_cost
                else:
                    pending = None
                    bd.load += stall
                    bd.cpu += hit_cost
                    tn = t + stall + hit_cost
            elif i == n_ops:
                finish[pid] = t
                n_running -= 1
                tn = None
            else:
                opcode = ops[i]
                arg = args[i]
                i += 1
                if opcode == OP_READ:
                    outcome, stall = read(pid, arg, t, False)
                    if outcome == READ_HIT:
                        bd.cpu += hit_cost
                        tn = t + hit_cost
                    elif outcome == READ_MERGE:
                        bd.merge += stall
                        pending = arg
                        tn = t + stall
                    else:
                        bd.load += stall
                        bd.cpu += hit_cost
                        tn = t + stall + hit_cost
                elif opcode == OP_WORK:
                    bd.cpu += arg
                    tn = t + arg
                elif opcode == OP_WRITE:
                    write(pid, arg, t)
                    bd.cpu += 1
                    tn = t + 1
                elif opcode == OP_BARRIER:
                    releases = sync.barrier(arg).arrive(pid, t)
                    if releases is not None:
                        for rpid, wait in releases:
                            breakdowns[rpid].sync += wait
                            heappush(heap, (t, seq, rpid)); seq += 1
                    tn = None
                elif opcode == OP_LOCK:
                    if sync.lock(arg).acquire(pid, t):
                        bd.cpu += 1
                        tn = t + 1
                    else:
                        tn = None
                else:  # OP_UNLOCK (compile validated every opcode)
                    handoff = sync.lock(arg).release(pid, t)
                    bd.cpu += 1
                    if handoff is None:
                        tn = t + 1
                    else:
                        heappush(heap, (t + 1, seq, pid)); seq += 1
                        next_pid, wait = handoff
                        nbd = breakdowns[next_pid]
                        nbd.sync += wait
                        nbd.cpu += 1
                        heappush(heap, (t + 1, seq, next_pid)); seq += 1
                        tn = None

            # ---- scheduling tail
            if tn is None:  # blocked or finished
                if not heap:
                    break
                t, _, npid = heappop(heap)
            elif fast and (not heap or tn < heap[0][0]):
                t = tn
                continue
            else:
                t, _, npid = heappushpop(heap, (tn, seq, pid)); seq += 1
                if npid == pid:
                    continue
            ip[pid] = i
            retry_line[pid] = pending
            pid = npid
            bd = breakdowns[pid]
            ops = ops_of[pid]
            args = args_of[pid]
            i = ip[pid]
            n_ops = n_ops_of[pid]
            pending = retry_line[pid]

        return self._finalize(breakdowns, finish, n_running)

    # ------------------------------------------------------------ wrap-up
    def _finalize(self, breakdowns: list[TimeBreakdown],
                  finish: list[int | None], n_running: int) -> RunResult:
        n = self.config.n_processors
        if n_running > 0:
            detail = self.sync.idle_check() or "processors blocked forever"
            stuck = [pid for pid in range(n) if finish[pid] is None]
            raise SimulationDeadlock(
                f"{len(stuck)} processors never finished ({detail}); "
                f"first stuck: {stuck[:8]}")

        # end-of-run slack: every processor waits for the slowest, charged
        # to sync so components sum exactly to the execution time
        execution_time = max(f for f in finish if f is not None) if n else 0
        for pid in range(n):
            fin = finish[pid]
            assert fin is not None
            breakdowns[pid].sync += execution_time - fin

        return self.stats.assemble(execution_time, breakdowns, self.memory)


def execute_program(config: MachineConfig, memory, source, *,
                    compiled: bool = False,
                    read_hit_cycles: int = 1,
                    max_cycles: int | None = None,
                    heap_fast_path: bool = True,
                    stats: StatsAssembler | None = None) -> RunResult:
    """The one canonical engine wiring: build an :class:`Engine`, run it.

    ``source`` is a program factory (generator path) or, with
    ``compiled=True``, a :class:`~repro.sim.compiled.CompiledProgram`
    (replay path).  Every in-tree execution — :meth:`Application.run
    <repro.apps.base.Application.run>`, the :class:`~repro.runtime.session.
    RunSession` pipeline, and everything layered above them — funnels
    through this helper, so engine construction policy (stats assembly,
    fast-path defaults) has exactly one home.
    """
    engine = Engine(config, memory, read_hit_cycles=read_hit_cycles,
                    max_cycles=max_cycles, heap_fast_path=heap_fast_path,
                    stats=stats)
    if compiled:
        return engine.run_compiled(source)
    return engine.run(source)


def run_program(config: MachineConfig, program_factory: ProgramFactory,
                memory=None, read_hit_cycles: int = 1,
                max_cycles: int | None = None) -> RunResult:
    """Convenience wrapper: build the memory system and run one simulation."""
    if memory is None:
        from ..memory.coherence import CoherentMemorySystem
        memory = CoherentMemorySystem(config)
    return execute_program(config, memory, program_factory,
                           read_hit_cycles=read_hit_cycles,
                           max_cycles=max_cycles)
