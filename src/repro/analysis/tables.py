"""Paper-format table renderers (Tables 1 and 4-7).

Each function returns the table as a string whose rows mirror the paper's
layout, so EXPERIMENTS.md can juxtapose paper and measured values directly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Mapping

from ..core.config import PAPER_CLUSTER_SIZES, LatencyModel
from ..core.contention import (ClusteredCostResult, ExpansionTable,
                               conflict_table)

if TYPE_CHECKING:  # pragma: no cover
    from ..core.study import SweepPoint

__all__ = ["render_table1", "render_table4", "render_table5",
           "render_cost_table", "render_comparison",
           "render_protocol_comparison"]


def render_table1(latency: LatencyModel | None = None) -> str:
    """Table 1: latency of memory operations."""
    lm = latency or LatencyModel()
    rows = [
        ("Hit in cache (1 processor per cluster)", lm.hit_cycles(1)),
        ("Hit in cache (2 processors per cluster)", lm.hit_cycles(2)),
        ("Hit in cache (4 and 8 processors per cluster)", lm.hit_cycles(4)),
        ("Miss to local home, satisfied by home cluster", lm.local_clean),
        ("Miss to local home, satisfied by remote cluster", lm.local_dirty_remote),
        ("Miss to remote home, satisfied by home", lm.remote_clean),
        ("Miss to remote home, satisfied by third party cluster",
         lm.remote_dirty_third_party),
    ]
    width = max(len(r[0]) for r in rows)
    lines = ["Table 1: Latency of Memory Operations",
             f"{'Memory Operation':<{width}}  Cycles",
             "-" * (width + 8)]
    lines += [f"{name:<{width}}  {cycles:>6}" for name, cycles in rows]
    return "\n".join(lines)


def render_table4(cluster_sizes: Iterable[int] = PAPER_CLUSTER_SIZES) -> str:
    """Table 4: probabilities of bank conflict."""
    lines = ["Table 4: Probabilities of Bank Conflict",
             f"{'Processors (n)':>14} {'Banks (m)':>10} {'P(collision)':>13}",
             "-" * 40]
    for n, m, c in conflict_table(cluster_sizes):
        lines.append(f"{n:>14} {m:>10} {c:>13.3f}")
    return "\n".join(lines)


def render_table5(tables: Mapping[str, ExpansionTable],
                  title: str = "Table 5: Load Latency Execution Time Factors",
                  ) -> str:
    """Table 5: execution-time expansion factors for load latencies 1-4."""
    lines = [title,
             f"{'Application':>12} {'1 cyc':>7} {'2 cyc':>7} {'3 cyc':>7} "
             f"{'4 cyc':>7}",
             "-" * 45]
    for app, t in tables.items():
        f = t.factors
        lines.append(f"{app:>12} {f[0]:>7.3f} {f[1]:>7.3f} {f[2]:>7.3f} "
                     f"{f[3]:>7.3f}")
    return "\n".join(lines)


def render_cost_table(results: Iterable[ClusteredCostResult],
                      title: str) -> str:
    """Tables 6/7: relative execution time of clustering with §6 costs."""
    results = list(results)
    if not results:
        return title + "\n(no results)"
    cluster_sizes = sorted(results[0].relative_time)
    header = f"{'Application':>12} " + " ".join(
        f"{c}-way".rjust(8) for c in cluster_sizes)
    lines = [title, header, "-" * len(header)]
    for r in results:
        lines.append(f"{r.app:>12} " + " ".join(
            f"{r.relative_time[c]:8.2f}" for c in cluster_sizes))
    return "\n".join(lines)


def render_protocol_comparison(
        sweep: "Mapping[tuple[str, int], SweepPoint]",
        title: str = "Cross-protocol comparison",
        baseline_protocol: str = "directory") -> str:
    """The protocol × cluster-size sweep as an aligned comparison table.

    One row per (protocol, cluster size): absolute execution time, the
    ratio against ``baseline_protocol`` at the *same* cluster size (what
    the protocol costs), and the ratio against the protocol's own
    smallest-cluster point (what clustering buys under it).
    """
    protocols = list(dict.fromkeys(p for p, _ in sweep))
    clusters = sorted({c for _, c in sweep})
    own_base = {p: next((sweep[(p, c)].execution_time for c in clusters
                         if (p, c) in sweep), None)
                for p in protocols}
    header = (f"{'protocol':>10} {'cluster':>8} {'exec time':>12} "
              f"{'vs ' + baseline_protocol:>14} {'vs own 1st':>11}")
    lines = [title, "=" * len(title), header, "-" * len(header)]
    for p in protocols:
        for c in clusters:
            point = sweep.get((p, c))
            if point is None:
                continue
            t = point.execution_time
            ref = sweep.get((baseline_protocol, c))
            vs_ref = (f"{t / ref.execution_time:14.3f}"
                      if ref is not None and ref.execution_time else
                      " " * 13 + "-")
            base = own_base[p]
            vs_own = f"{t / base:11.3f}" if base else " " * 10 + "-"
            lines.append(f"{p:>10} {f'{c}p':>8} {t:>12} {vs_ref} {vs_own}")
    return "\n".join(lines)


def render_comparison(title: str, columns: Iterable[str],
                      paper: Mapping[str, Iterable[float]],
                      measured: Mapping[str, Iterable[float]]) -> str:
    """Side-by-side paper-vs-measured rows (used by EXPERIMENTS.md)."""
    cols = list(columns)
    header = (f"{'row':>12} {'':>9}" + " ".join(f"{c:>8}" for c in cols))
    lines = [title, header, "-" * len(header)]
    for key in paper:
        pv = list(paper[key])
        lines.append(f"{key:>12} {'paper':>9}" + " ".join(
            f"{v:8.2f}" for v in pv))
        if key in measured:
            mv = list(measured[key])
            lines.append(f"{'':>12} {'measured':>9}" + " ".join(
                f"{v:8.2f}" for v in mv))
    return "\n".join(lines)
