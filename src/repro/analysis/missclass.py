"""Miss-class analysis: where clustering's benefit (or cost) comes from.

The paper's §2 decomposes the cluster-miss-rate reduction into prefetching,
obviated communication, and working-set overlap, and its §4 discussion of
LU/Radix hinges on *merge* anatomy (prefetches that arrive too late).
These helpers turn the per-cluster :class:`~repro.core.metrics.MissCounters`
of a sweep into those decompositions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..core.metrics import MissCause
from ..core.study import SweepPoint

__all__ = ["MissBreakdownRow", "miss_breakdown", "merge_anatomy",
           "render_miss_breakdown"]


@dataclass(frozen=True)
class MissBreakdownRow:
    """Aggregate miss statistics for one configuration."""

    cluster_size: int
    references: int
    misses: int
    miss_rate: float
    cold: int
    coherence: int
    capacity: int
    merges: int
    merge_refetches: int
    upgrades: int
    prefetch_hits: int

    @property
    def communication_fraction(self) -> float:
        """Coherence misses as a fraction of all misses."""
        return self.coherence / self.misses if self.misses else 0.0


def miss_breakdown(sweep: Mapping[int, SweepPoint]) -> list[MissBreakdownRow]:
    """One row per cluster size of a cluster sweep."""
    rows = []
    for c in sorted(sweep):
        m = sweep[c].result.misses
        rows.append(MissBreakdownRow(
            cluster_size=c,
            references=m.references,
            misses=m.misses,
            miss_rate=m.miss_rate,
            cold=m.by_cause[MissCause.COLD],
            coherence=m.by_cause[MissCause.COHERENCE],
            capacity=m.by_cause[MissCause.CAPACITY],
            merges=m.merges,
            merge_refetches=m.merge_refetches,
            upgrades=m.upgrade_misses,
            prefetch_hits=m.prefetch_hits,
        ))
    return rows


def merge_anatomy(sweep: Mapping[int, SweepPoint]) -> dict[int, dict[str, float]]:
    """Per cluster size: how much load stall turned into merge stall.

    The paper (LU, §4): "load stall time is reduced by more than a factor
    of two.  However, most of this time is replaced by merge stall time" —
    prefetching works but arrives too late.  Values are mean cycles per
    processor.
    """
    out: dict[int, dict[str, float]] = {}
    for c in sorted(sweep):
        bd = sweep[c].result.breakdown
        out[c] = {
            "load": float(bd.load),
            "merge": float(bd.merge),
            "load_plus_merge": float(bd.load + bd.merge),
        }
    return out


def render_miss_breakdown(rows: list[MissBreakdownRow], title: str) -> str:
    """Aligned text table of :func:`miss_breakdown` output."""
    header = (f"{'cluster':>8} {'refs':>10} {'misses':>9} {'rate':>8} "
              f"{'cold':>8} {'coher':>8} {'capac':>8} {'merge':>7} "
              f"{'refetch':>8} {'upgr':>7} {'prefetch':>9}")
    lines = [title, header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r.cluster_size:>7}p {r.references:>10,} {r.misses:>9,} "
            f"{r.miss_rate:8.4f} {r.cold:>8,} {r.coherence:>8,} "
            f"{r.capacity:>8,} {r.merges:>7,} {r.merge_refetches:>8,} "
            f"{r.upgrades:>7,} {r.prefetch_hits:>9,}")
    return "\n".join(lines)
