"""Machine-readable export of experiment results (CSV / JSON).

The text renderers in :mod:`repro.analysis.tables` and
:mod:`repro.analysis.figures` mirror the paper's layout; downstream users
who want to re-plot the data (matplotlib, gnuplot, a spreadsheet) need the
raw series instead.  These helpers flatten figures and sweeps into rows of
plain scalars.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any, Mapping

from ..core.study import SweepPoint
from .figures import FigureData

__all__ = ["figure_to_records", "figure_to_csv", "figure_to_json",
           "sweep_to_records", "sweep_to_csv"]


def figure_to_records(fig: FigureData) -> list[dict[str, Any]]:
    """One dict per bar: group, label, components, total."""
    records = []
    for group in fig.groups:
        for bar in group.bars:
            records.append({
                "figure": fig.title,
                "group": group.label,
                "bar": bar.label,
                "cpu": bar.cpu,
                "load": bar.load,
                "merge": bar.merge,
                "sync": bar.sync,
                "total": bar.total,
            })
    return records


def _records_to_csv(records: list[dict[str, Any]]) -> str:
    if not records:
        return ""
    out = io.StringIO()
    writer = csv.DictWriter(out, fieldnames=list(records[0]))
    writer.writeheader()
    writer.writerows(records)
    return out.getvalue()


def figure_to_csv(fig: FigureData) -> str:
    """CSV text with one row per bar."""
    return _records_to_csv(figure_to_records(fig))


def figure_to_json(fig: FigureData, indent: int | None = 2) -> str:
    """JSON text: ``{"title": ..., "bars": [...]}``."""
    return json.dumps({"title": fig.title,
                       "bars": figure_to_records(fig)}, indent=indent)


def sweep_to_records(sweep: Mapping[Any, SweepPoint]) -> list[dict[str, Any]]:
    """Flatten a cluster/capacity sweep: one dict per simulated point.

    Includes the raw execution time, the component breakdown, and the
    headline miss statistics, so every number in the paper-format output
    can be recomputed from the export.
    """
    records = []
    for key, point in sweep.items():
        bd = point.result.breakdown
        m = point.result.misses
        records.append({
            "app": point.app,
            "cluster_size": point.cluster_size,
            "cache_kb": ("inf" if point.cache_kb is None
                         else float(point.cache_kb)),
            "execution_time": point.result.execution_time,
            "cpu": bd.cpu,
            "load": bd.load,
            "merge": bd.merge,
            "sync": bd.sync,
            "references": m.references,
            "misses": m.misses,
            "miss_rate": m.miss_rate,
            "merges": m.merges,
            "upgrades": m.upgrade_misses,
            "prefetch_hits": m.prefetch_hits,
        })
    records.sort(key=lambda r: (str(r["cache_kb"]), r["cluster_size"]))
    return records


def sweep_to_csv(sweep: Mapping[Any, SweepPoint]) -> str:
    """CSV text with one row per simulated configuration."""
    return _records_to_csv(sweep_to_records(sweep))
