"""Golden-artifact support: parse rendered figure/table text back to data.

The benchmark harness writes every reproduced artifact as the paper-format
text of :func:`~repro.analysis.figures.render_rows` (figures) and the cost
tables (Tables 6/7).  This module inverts those renderings so recorded
artifacts — the seed outputs under ``benchmarks/results/`` and the quick
fixtures under ``tests/golden/`` — can serve as *golden files*: a fast
regression test re-runs a configuration and checks the fresh bars against
the recorded ones within a tolerance, guarding the reproduction against
silent drift from future refactors.

* :func:`parse_rows` / :func:`load_figure` — inverse of ``render_rows``;
* :func:`parse_cost_table` — inverse of ``render_cost_table``'s first block;
* :func:`compare_figures` — bar-by-bar deviations between two figures.
"""

from __future__ import annotations

import re
from pathlib import Path

from .figures import Bar, BarGroup, FigureData

__all__ = ["parse_rows", "load_figure", "parse_cost_table",
           "compare_figures", "max_deviation"]

#: a bar label as emitted by the figure builders: "1p", "8p", "64p"
_BAR_LABEL = re.compile(r"^\d+p$")

_FLOAT = re.compile(r"^-?\d+(?:\.\d+)?$")


def _is_float(token: str) -> bool:
    return bool(_FLOAT.match(token))


def parse_rows(text: str) -> FigureData:
    """Parse :func:`~repro.analysis.figures.render_rows` output.

    Tolerates trailing sections (miss decompositions, timing lines): row
    parsing stops at the first line that is not a bar row.  Raises
    ``ValueError`` if no bar rows are found.
    """
    lines = text.splitlines()
    if not lines:
        raise ValueError("empty figure text")
    title = lines[0].strip()
    fig = FigureData(title=title)
    groups: dict[str, BarGroup] = {}
    in_rows = False
    for line in lines[1:]:
        stripped = line.strip()
        if not in_rows:
            in_rows = stripped.startswith("---")
            continue
        tokens = stripped.split()
        # bar rows: [group] bar total cpu load merge sync
        if len(tokens) == 6 and _BAR_LABEL.match(tokens[0]):
            group_label, bar_tokens = "", tokens
        elif len(tokens) == 7 and _BAR_LABEL.match(tokens[1]):
            group_label, bar_tokens = tokens[0], tokens[1:]
        else:
            break
        if not all(_is_float(t) for t in bar_tokens[1:]):
            break
        total, cpu, load, merge, sync = (float(t) for t in bar_tokens[1:])
        bar = Bar(label=bar_tokens[0], cpu=cpu, load=load, merge=merge,
                  sync=sync)
        if abs(bar.total - total) > 0.25:  # rendered at 0.1 resolution
            raise ValueError(
                f"inconsistent row in {title!r}: components sum to "
                f"{bar.total:.2f} but total column says {total:.1f}")
        if group_label not in groups:
            groups[group_label] = BarGroup(label=group_label)
            fig.groups.append(groups[group_label])
        groups[group_label].bars.append(bar)
    if not fig.groups:
        raise ValueError(f"no bar rows found under title {title!r}")
    return fig


def load_figure(path: str | Path) -> FigureData:
    """Parse a rendered-figure text file (e.g. ``benchmarks/results``)."""
    return parse_rows(Path(path).read_text(encoding="utf-8"))


def parse_cost_table(text: str) -> dict[str, dict[str, float]]:
    """Parse the first block of a rendered Table 6/7.

    Returns ``{application: {column header: relative time}}`` — e.g.
    ``{"barnes": {"1-way": 1.0, "2-way": 0.78, ...}}``.
    """
    lines = [ln.strip() for ln in text.splitlines() if ln.strip()]
    header: list[str] | None = None
    out: dict[str, dict[str, float]] = {}
    for line in lines:
        tokens = line.split()
        if header is None:
            if len(tokens) > 1 and all("-way" in t for t in tokens[1:]):
                header = tokens[1:]
            continue
        if line.startswith("---"):
            continue
        if len(tokens) == len(header) + 1 and \
                all(_is_float(t) for t in tokens[1:]):
            out[tokens[0]] = {col: float(v)
                              for col, v in zip(header, tokens[1:])}
        else:
            break  # end of the first block ("Paper vs measured" follows)
    if not out:
        raise ValueError("no cost-table rows found")
    return out


def compare_figures(actual: FigureData, expected: FigureData,
                    tolerance: float = 0.15,
                    ) -> list[tuple[str, str, str, float, float]]:
    """Bar-by-bar deviations beyond ``tolerance`` percentage points.

    Returns ``(group, bar, component, actual, expected)`` tuples for every
    component (plus the stacked total) that moved more than ``tolerance``.
    The default of 0.15 only allows for the 0.1-resolution rounding of the
    rendered text: the simulator is deterministic, so a genuine change in
    behaviour — not noise — is the only thing that can move a bar.
    """
    deviations: list[tuple[str, str, str, float, float]] = []
    if len(actual.groups) != len(expected.groups):
        raise ValueError(
            f"figure shape changed: {len(actual.groups)} groups vs "
            f"{len(expected.groups)} expected")
    for got_g, exp_g in zip(actual.groups, expected.groups):
        if len(got_g.bars) != len(exp_g.bars):
            raise ValueError(
                f"group {exp_g.label!r} changed: {len(got_g.bars)} bars vs "
                f"{len(exp_g.bars)} expected")
        for got, exp in zip(got_g.bars, exp_g.bars):
            for comp in ("cpu", "load", "merge", "sync", "total"):
                a = got.total if comp == "total" else got.component(comp)
                e = exp.total if comp == "total" else exp.component(comp)
                if abs(a - e) > tolerance:
                    deviations.append((exp_g.label, exp.label, comp, a, e))
    return deviations


def max_deviation(actual: FigureData, expected: FigureData) -> float:
    """Largest absolute component/total difference between two figures."""
    worst = 0.0
    for got_g, exp_g in zip(actual.groups, expected.groups):
        for got, exp in zip(got_g.bars, exp_g.bars):
            for comp in ("cpu", "load", "merge", "sync"):
                worst = max(worst,
                            abs(got.component(comp) - exp.component(comp)))
            worst = max(worst, abs(got.total - exp.total))
    return worst
