"""Paper-format figure data and rendering (Figures 2-8).

Every evaluation figure in the paper is a family of stacked bars — one bar
per (cache size, cluster size), four components (cpu / load / merge /
sync), normalized to the 1-processor-per-cluster bar of the same cache
size.  :class:`FigureData` holds exactly that structure; renderers emit the
paper's numeric annotations as aligned text tables and an ASCII bar chart
for terminals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from ..core.study import CacheKey, SweepPoint, cache_label, normalize_sweep

__all__ = ["Bar", "BarGroup", "FigureData", "contention_slowdown",
           "figure_from_cluster_sweep", "figure_from_capacity_sweep",
           "figure_from_contention_sweep", "figure_from_protocol_sweep",
           "render_rows", "render_ascii", "render_scaling",
           "render_shape_comparison", "render_slowdown"]

_COMPONENTS = ("cpu", "load", "merge", "sync")


@dataclass(frozen=True)
class Bar:
    """One stacked bar: normalized component heights (percent of baseline)."""

    label: str
    cpu: float
    load: float
    merge: float
    sync: float

    @property
    def total(self) -> float:
        return self.cpu + self.load + self.merge + self.sync

    def component(self, name: str) -> float:
        return getattr(self, name)


@dataclass
class BarGroup:
    """Bars sharing a normalization baseline (one cache size)."""

    label: str
    bars: list[Bar] = field(default_factory=list)


@dataclass
class FigureData:
    """A full figure: titled groups of normalized stacked bars."""

    title: str
    groups: list[BarGroup] = field(default_factory=list)

    def bar(self, group_label: str, bar_label: str) -> Bar:
        for g in self.groups:
            if g.label == group_label:
                for b in g.bars:
                    if b.label == bar_label:
                        return b
        raise KeyError(f"no bar {bar_label!r} in group {group_label!r}")

    def series(self, component: str | None = None) -> dict[str, list[float]]:
        """{group label: [values per bar]} of totals or one component."""
        out = {}
        for g in self.groups:
            if component is None:
                out[g.label] = [b.total for b in g.bars]
            else:
                out[g.label] = [b.component(component) for b in g.bars]
        return out


def _bar_from_norm(label: str, norm: Mapping[str, float]) -> Bar:
    return Bar(label=label, cpu=norm["cpu"], load=norm["load"],
               merge=norm["merge"], sync=norm["sync"])


def figure_from_cluster_sweep(title: str, sweep: Mapping[int, SweepPoint],
                              ) -> FigureData:
    """Figure 2/3 style: one group, one bar per cluster size."""
    norms = normalize_sweep(sweep)
    group = BarGroup(label="")
    for c in sorted(sweep):
        group.bars.append(_bar_from_norm(f"{c}p", norms[c]))
    return FigureData(title=title, groups=[group])


def figure_from_capacity_sweep(title: str,
                               sweep: Mapping[tuple[CacheKey, int], SweepPoint],
                               ) -> FigureData:
    """Figure 4-8 style: one group per cache size, bars per cluster size.

    Groups appear in increasing cache size with infinite last, matching the
    paper's left-to-right 4k / 16k / 32k / inf layout.
    """
    norms = normalize_sweep(sweep)
    cache_sizes = sorted({k for k, _ in sweep},
                         key=lambda k: (k is None, k if k is not None else 0))
    fig = FigureData(title=title)
    for kb in cache_sizes:
        group = BarGroup(label=cache_label(kb))
        for (k, c) in sorted(sweep, key=lambda kc: (kc[1],)):
            if k == kb:
                group.bars.append(_bar_from_norm(f"{c}p", norms[(k, c)]))
        fig.groups.append(group)
    return fig


def figure_from_contention_sweep(title: str,
                                 sweep: Mapping[tuple[float, int], SweepPoint],
                                 ) -> FigureData:
    """Contention-sensitivity figure: one group per network load.

    Bars within a load group are normalized to the 1-processor-per-cluster
    bar *at that load*, so the clustering benefit under load reads exactly
    like the paper's figures read the benefit at a cache size: a bar below
    100 means that cluster size beats 1-per-cluster at that load, and the
    load at which larger clusters' bars sink below 100 is the crossover.
    """
    norms = normalize_sweep(sweep)
    loads = sorted({load for load, _ in sweep})
    fig = FigureData(title=title)
    for load in loads:
        group = BarGroup(label=f"{load:g}")
        for (ld, c) in sorted(sweep, key=lambda kc: kc[1]):
            if ld == load:
                group.bars.append(_bar_from_norm(f"{c}p", norms[(ld, c)]))
        fig.groups.append(group)
    return fig


def figure_from_protocol_sweep(title: str,
                               sweep: Mapping[tuple[str, int], SweepPoint],
                               baseline_protocol: str = "directory",
                               baseline_cluster: int = 1) -> FigureData:
    """Cross-protocol comparison: one group per protocol, bars per cluster.

    Unlike the per-group normalization of the paper figures, every bar
    here is a percentage of **one** global baseline — the
    ``baseline_protocol`` run at ``baseline_cluster`` processors per
    cluster (directory at 1p unless overridden) — so bar heights are
    comparable *across* protocol groups: reading along a cluster size
    shows what the protocol costs, reading along a group shows what
    clustering buys under that protocol.
    """
    protocols = list(dict.fromkeys(p for p, _ in sweep))
    base_key = (baseline_protocol, baseline_cluster)
    if base_key not in sweep:
        base_key = (protocols[0], baseline_cluster)
    if base_key not in sweep:
        raise ValueError(
            f"no baseline point {base_key!r} in the protocol sweep")
    base = sweep[base_key].result.execution_time
    fig = FigureData(title=title)
    for proto in protocols:
        group = BarGroup(label=proto)
        for (p, c) in sorted(sweep, key=lambda kc: kc[1]):
            if p == proto:
                norm = sweep[(p, c)].result.breakdown.normalized_to(base)
                group.bars.append(_bar_from_norm(f"{c}p", norm))
        fig.groups.append(group)
    return fig


def contention_slowdown(sweep: Mapping[tuple[float, int], SweepPoint],
                        ) -> dict[int, dict[float, float]]:
    """Per-cluster-size degradation: time(load) / time(lowest load).

    Returns ``{cluster_size: {load: slowdown}}`` with the lowest swept
    load (ideally 0.0) as the 1.0 baseline of each cluster size.  Larger
    clusters sending fewer and shorter-routed messages show smaller
    slowdowns — the quantity the contention study is after.
    """
    by_cluster: dict[int, dict[float, int]] = {}
    for (load, c), point in sweep.items():
        by_cluster.setdefault(c, {})[load] = point.execution_time
    out: dict[int, dict[float, float]] = {}
    for c, times in sorted(by_cluster.items()):
        base = times[min(times)]
        out[c] = {load: times[load] / base for load in sorted(times)}
    return out


def render_slowdown(slowdown: Mapping[int, Mapping[float, float]],
                    title: str) -> str:
    """Aligned slowdown table: one row per cluster size, one column per load."""
    lines = [title, "=" * len(title)]
    loads = sorted({ld for row in slowdown.values() for ld in row})
    header = f"{'cluster':>8} " + " ".join(f"load {ld:g}".rjust(9)
                                           for ld in loads)
    lines.append(header)
    lines.append("-" * len(header))
    for c in sorted(slowdown):
        row = slowdown[c]
        lines.append(f"{f'{c}p':>8} " + " ".join(
            f"{row[ld]:9.3f}" if ld in row else " " * 9 for ld in loads))
    return "\n".join(lines)


def render_rows(fig: FigureData) -> str:
    """The paper's numeric annotations as an aligned text table."""
    lines = [fig.title, "=" * len(fig.title)]
    header = f"{'group':>6} {'bar':>5} {'total':>7} " + " ".join(
        f"{c:>7}" for c in _COMPONENTS)
    lines.append(header)
    lines.append("-" * len(header))
    for g in fig.groups:
        for b in g.bars:
            lines.append(
                f"{g.label:>6} {b.label:>5} {b.total:7.1f} "
                + " ".join(f"{b.component(c):7.1f}" for c in _COMPONENTS))
    return "\n".join(lines)


_GLYPHS = {"cpu": "#", "load": "=", "merge": "~", "sync": "."}


def render_ascii(fig: FigureData, height: int = 25) -> str:
    """Stacked ASCII bars (one column per bar), component glyphs:
    ``#`` cpu, ``=`` load, ``~`` merge, ``.`` sync."""
    cols: list[tuple[str, list[str]]] = []  # (label, glyph column bottom-up)
    max_total = max((b.total for g in fig.groups for b in g.bars), default=100.0)
    scale = height / max(max_total, 1e-9)
    for g in fig.groups:
        for b in g.bars:
            column: list[str] = []
            for comp in _COMPONENTS:
                column.extend([_GLYPHS[comp]] * round(b.component(comp) * scale))
            label = f"{g.label}:{b.label}" if g.label else b.label
            cols.append((label, column))
        cols.append(("", []))  # gap between groups
    if cols and cols[-1][0] == "":
        cols.pop()
    width = max((len(label) for label, _ in cols), default=4)
    lines = [fig.title, ""]
    tallest = max((len(c) for _, c in cols), default=0)
    for row in range(tallest - 1, -1, -1):
        line = " ".join(
            (col[row] if row < len(col) else " ").center(width)
            for _, col in cols)
        lines.append(line)
    lines.append(" ".join(label.center(width) for label, _ in cols))
    legend = "  ".join(f"{g}={c}" for c, g in _GLYPHS.items())
    lines.append(f"[{legend}] (bars are % of the 1p baseline per group)")
    return "\n".join(lines)


def render_scaling(study: Mapping[str, Any]) -> str:
    """The §4 pushout study as an aligned table plus speedup bars.

    ``study`` is a :func:`~repro.core.scaling.pushout` /
    :func:`~repro.core.scaling.scaling_study` result dict.  Both curves
    share one bar scale, so the clustered curve continuing to grow after
    the unclustered one flattens — the pushout — is visible directly.
    """
    su = study["speedups_unclustered"]
    sc = study["speedups_clustered"]
    counts = study.get("processor_counts") or sorted(su)
    csize = study["cluster_size"]
    tier = study.get("tier")
    title = (f"# {study['app']}: §4 scaling pushout — cluster {csize} vs 1"
             + (f", tier {tier}" if tier else ""))
    lines = [title, "=" * len(title)]
    peak = max(max(su.values()), max(sc.values()), 1e-9)
    width = 36
    header = (f"{'P':>6} {'bar':>6} {'speedup':>8}  curve")
    lines.append(header)
    lines.append("-" * (len(header) + width - 5))
    for p in counts:
        for label, series in (("1p", su), (f"{csize}p", sc)):
            bar = "#" * max(1, round(series[p] / peak * width))
            lines.append(f"{p:>6} {label:>6} {series[p]:>8.2f}  {bar}")
    eu = study["effective_unclustered"]
    ec = study["effective_clustered"]
    lines.append(f"effective processors: unclustered {eu}, clustered {ec}")
    if ec > eu:
        lines.append(f"pushout: {ec / eu:g}x — clustering pushes out the "
                     f"effective processor count")
    elif ec == eu:
        lines.append("pushout: none at this problem size (clustered keeps "
                     "pace with unclustered)")
    else:
        lines.append("pushout: negative — clustering rolls over earlier "
                     "here")
    return "\n".join(lines)


def render_shape_comparison(cmp: Mapping[str, Any],
                            label_a: str = "a",
                            label_b: str = "b") -> str:
    """A :func:`~repro.core.scaling.compare_shapes` result as a table.

    Normalised speedups (each curve / its own peak) side by side with the
    pointwise gap, closing with the max divergence the CI smoke gates on.
    """
    counts = cmp["processor_counts"]
    na, nb = cmp["normalised_a"], cmp["normalised_b"]
    title = f"# speedup-curve shape: {label_a} vs {label_b} (each / own peak)"
    lines = [title, "=" * len(title),
             f"{'P':>6} {label_a:>10} {label_b:>10} {'gap':>8}"]
    for p in counts:
        lines.append(f"{p:>6} {na[p]:>10.3f} {nb[p]:>10.3f} "
                     f"{abs(na[p] - nb[p]):>8.3f}")
    lines.append(f"max shape divergence: {cmp['max_divergence']:.3f}")
    return "\n".join(lines)
