"""Analysis layer: regenerate the paper's figures and tables."""

from .export import (figure_to_csv, figure_to_json, figure_to_records,
                     sweep_to_csv, sweep_to_records)
from .figures import (Bar, BarGroup, FigureData, contention_slowdown,
                      figure_from_capacity_sweep, figure_from_cluster_sweep,
                      figure_from_contention_sweep,
                      figure_from_protocol_sweep, render_ascii,
                      render_rows, render_scaling,
                      render_shape_comparison, render_slowdown)
from .golden import (compare_figures, load_figure, max_deviation,
                     parse_cost_table, parse_rows)
from .missclass import (MissBreakdownRow, merge_anatomy, miss_breakdown,
                        render_miss_breakdown)
from .tables import (render_comparison, render_cost_table,
                     render_protocol_comparison, render_table1,
                     render_table4, render_table5)

__all__ = [
    "Bar", "BarGroup", "FigureData",
    "figure_from_cluster_sweep", "figure_from_capacity_sweep",
    "figure_from_contention_sweep", "figure_from_protocol_sweep",
    "contention_slowdown",
    "render_rows", "render_ascii", "render_scaling",
    "render_shape_comparison", "render_slowdown",
    "MissBreakdownRow", "miss_breakdown", "merge_anatomy",
    "render_miss_breakdown",
    "render_table1", "render_table4", "render_table5", "render_cost_table",
    "render_comparison", "render_protocol_comparison",
    "figure_to_records", "figure_to_csv", "figure_to_json",
    "sweep_to_records", "sweep_to_csv",
    "parse_rows", "load_figure", "parse_cost_table", "compare_figures",
    "max_deviation",
]
