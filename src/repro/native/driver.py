"""Marshal one replay into the C kernel and write its end state back.

The kernel (:mod:`repro.native.build` compiles ``kernel.c``) runs the
entire fused replay in a single call over zero-copy views of the
program's ``array('q')`` opcode/operand columns and returns the full
observable end state in one int64 blob.  :func:`run_native` writes that
state back **in place** into the live :class:`CoherentMemorySystem`
objects — slot maps rebuilt in exact LRU/dict order, columns extended
with the cache's own growth schedule, counters accumulated — so the
memory system afterwards is indistinguishable from one the pure-python
fused kernel drove, and the caller can assemble the identical
:class:`~repro.core.metrics.RunResult`.

Error statuses map to the exact exceptions (type and message) the
python kernel raises; deadlock (status 1) writes the state back and
raises :class:`NativeDeadlock` carrying the finish times and sync
registry snapshot so the sim layer can produce the canonical
``SimulationDeadlock`` message.
"""

from __future__ import annotations

import ctypes
from typing import TYPE_CHECKING

from ..core.metrics import MissCause, TimeBreakdown

if TYPE_CHECKING:  # pragma: no cover
    from ..core.config import MachineConfig
    from ..memory.coherence import CoherentMemorySystem

__all__ = ["NativeDeadlock", "run_native"]

_M64 = 0xFFFFFFFFFFFFFFFF
_CAUSES = (MissCause.COLD, MissCause.CAPACITY, MissCause.COHERENCE)


class NativeDeadlock(Exception):
    """Deadlock detected by the kernel; state already written back.

    Carries everything the sim layer needs to raise the canonical
    ``SimulationDeadlock``: per-processor finish times (``None`` for the
    stuck ones) and the sync-registry end state in creation order.
    """

    def __init__(self, finish, barriers, locks):
        super().__init__("native replay deadlock")
        self.finish = finish
        #: [(barrier_id, episodes, [(pid, arrived), ...]), ...]
        self.barriers = barriers
        #: [(lock_id, holder_or_None, acquisitions, contended,
        #:   [(pid, arrived), ...]), ...]
        self.locks = locks


def _column_pointer(col, ptype):
    """``int64*`` over a program column without copying its payload.

    ``array('q')`` columns expose their buffer address directly; mapped
    programs carry ``memoryview`` slices over a copy-on-write file
    mapping, which ``ctypes.from_buffer`` turns into the same flat
    pointer — the kernel then reads the page cache in place (the mapping
    is ``ACCESS_COPY``, so the writability ``from_buffer`` demands never
    reaches the file; the kernel itself treats the columns as ``const``).
    An empty column has no buffer to take an address of — the kernel
    never dereferences a processor whose length is 0, so NULL is exact.
    """
    if len(col) == 0:
        return ctypes.cast(None, ptype)
    if hasattr(col, "buffer_info"):  # array('q')
        return ctypes.cast(col.buffer_info()[0], ptype)
    return ctypes.cast(ctypes.addressof(ctypes.c_char.from_buffer(col)),
                       ptype)


def run_native(lib, config: "MachineConfig", memory: "CoherentMemorySystem",
               program) -> tuple[int, list[TimeBreakdown]]:
    """Replay ``program`` on ``memory`` natively; return (time, breakdowns).

    ``memory`` must be fresh and flat (the ``native_fusible`` gate in
    :mod:`repro.sim.nativereplay` guarantees it).  Mutates ``memory``
    and its allocator in place to the exact end state the pure-python
    fused kernel would leave.
    """
    n = config.n_processors
    ncl = config.n_clusters
    c64 = ctypes.c_int64
    P = ctypes.POINTER(c64)

    # zero-copy column views; keep the arrays (or the mmap behind a
    # mapped program's memoryviews) referenced for the call
    ops_cols = program.ops
    args_cols = program.args
    ops_arr = (P * n)(*[_column_pointer(c, P) for c in ops_cols])
    args_arr = (P * n)(*[_column_pointer(c, P) for c in args_cols])
    lens = (c64 * n)(*[len(c) for c in ops_cols])

    alloc = memory.allocator
    ph = alloc._page_home
    pages = (c64 * max(1, len(ph)))(*ph.keys())
    homes = (c64 * max(1, len(ph)))(*ph.values())

    cap = memory._capacity_lines
    finish_a = (c64 * n)()
    bd = (c64 * (4 * n))()
    exec_time = c64()
    err = (c64 * 2)()
    blob_p = P()
    blob_len = c64()

    st = lib.repro_replay(
        n, ncl, config.cluster_size,
        ops_arr, args_arr, lens,
        -1 if cap is None else cap,
        memory._local_clean, memory._remote_clean,
        memory._local_dirty_remote, memory._remote_dirty_3p,
        memory._lines_per_page, alloc._rr_next,
        pages, homes, len(ph),
        finish_a, bd, ctypes.byref(exec_time), err,
        ctypes.byref(blob_p), ctypes.byref(blob_len))

    if st < 0:
        # no state was exported; mirror the python kernel's exceptions
        if st == -2:
            raise ValueError(
                "requesting cluster cannot be the dirty owner on a miss")
        if st == -3:
            raise RuntimeError(f"processor {err[0]} re-acquiring held lock")
        if st == -4:
            holder = None if err[1] < 0 else err[1]
            raise RuntimeError(
                f"processor {err[0]} releasing lock held by {holder}")
        if st == -5:
            raise MemoryError("native replay kernel out of memory")
        raise RuntimeError(f"native replay kernel failed (status {st})")

    data = blob_p[0:blob_len.value]
    lib.repro_release(blob_p)
    barriers, locks = _writeback(memory, ncl, data)

    breakdowns = [TimeBreakdown(cpu=bd[4 * p], load=bd[4 * p + 1],
                                merge=bd[4 * p + 2], sync=bd[4 * p + 3])
                  for p in range(n)]
    if st == 1:
        finish = [None if finish_a[p] < 0 else finish_a[p]
                  for p in range(n)]
        raise NativeDeadlock(finish, barriers, locks)
    return exec_time.value, breakdowns


def _writeback(memory, ncl: int, data: list) -> tuple[list, list]:
    """Apply the kernel's end-state blob to the live memory objects."""
    alloc = memory.allocator
    i = 2
    rr_next, n_ft = data[0], data[1]
    page_home = alloc._page_home
    for _ in range(n_ft):
        page_home[data[i]] = data[i + 1]
        i += 2
    alloc.first_touch_pages += n_ft
    alloc._rr_next = rr_next

    directory = memory.directory
    directory.invalidations_sent += data[i]
    directory.replacement_hints += data[i + 1]
    directory.writebacks += data[i + 2]
    n_dir = data[i + 3]
    i += 4
    dtable = memory._dtable
    for _ in range(n_dir):
        line, dstate, mask = data[i], data[i + 1], data[i + 2]
        i += 3
        dtable[line] = ((mask & _M64) << 2) | dstate

    for cl in range(ncl):
        ctr = memory.counters[cl]
        (n_reads, n_writes, rm, wm, um, mg, mrf, pf,
         n_cold, n_cap, n_coh) = data[i:i + 11]
        i += 11
        ctr.reads += n_reads
        ctr.writes += n_writes
        ctr.read_misses += rm
        ctr.write_misses += wm
        ctr.upgrade_misses += um
        ctr.merges += mg
        ctr.merge_refetches += mrf
        ctr.prefetch_hits += pf
        by_cause = ctr.by_cause
        by_cause[MissCause.COLD] += n_cold
        by_cause[MissCause.CAPACITY] += n_cap
        by_cause[MissCause.COHERENCE] += n_coh

        cache = memory.caches[cl]
        evictions, inserts, n_slots, n_res, n_free = data[i:i + 5]
        i += 5
        cache.evictions += evictions
        cache.inserts += inserts
        add = n_slots - len(cache.state)
        if add:
            # grow in place to the kernel's slot count; freed slots keep
            # placeholder values (unobservable: every slot is rewritten
            # on install before any read)
            zeros = bytes(8 * add)
            cache.state.frombytes(zeros)
            cache.pending.extend([0] * add)
            cache.fetcher.extend([-1] * add)
            cache.tag.frombytes(zeros)
        slot_of = cache.slot_of
        state_col = cache.state
        pending_col = cache.pending
        fetcher_col = cache.fetcher
        tag_col = cache.tag
        # resident lines arrive in LRU order == python dict order
        for _ in range(n_res):
            line, slot, dstate, pu, fetcher = data[i:i + 5]
            i += 5
            slot_of[line] = slot
            state_col[slot] = dstate
            pending_col[slot] = pu
            fetcher_col[slot] = fetcher
            tag_col[slot] = line
        cache.free[:] = data[i:i + n_free]
        i += n_free
        n_hist = data[i]
        i += 1
        hist = memory._history[cl]
        for _ in range(n_hist):
            hist[data[i]] = _CAUSES[data[i + 1]]
            i += 2

    barriers = []
    n_bar = data[i]
    i += 1
    for _ in range(n_bar):
        bid, episodes, n_wait = data[i:i + 3]
        i += 3
        waiting = [(data[i + 2 * k], data[i + 2 * k + 1])
                   for k in range(n_wait)]
        i += 2 * n_wait
        barriers.append((bid, episodes, waiting))
    locks = []
    n_lk = data[i]
    i += 1
    for _ in range(n_lk):
        lid, holder, acq, cont, n_wait = data[i:i + 5]
        i += 5
        waiting = [(data[i + 2 * k], data[i + 2 * k + 1])
                   for k in range(n_wait)]
        i += 2 * n_wait
        locks.append((lid, None if holder < 0 else holder, acq, cont,
                      waiting))
    return barriers, locks
