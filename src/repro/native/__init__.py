"""Native replay kernel: selection seam and escape hatch.

``repro.native`` owns the optional C column interpreter
(:mod:`kernel.c <repro.native.build>`) that twins the pure-python fused
replay kernel byte-for-byte.  This module decides *whether* it runs:

* ``REPRO_NATIVE`` env var — ``0``/``off`` disables, ``1``/``on``
  forces (raising if no kernel can be built), unset/``auto`` uses the
  kernel when a compiler or cached artifact is available and falls back
  to pure python otherwise.  Because the knob is an environment
  variable, worker processes (fork, fork-server, spawn) inherit the
  parent's selection automatically.
* :func:`set_native` — programmatic switch (used by
  ``SweepExecutor(native=...)`` and the ``--native/--no-native`` CLI
  flags); it writes ``REPRO_NATIVE`` so children agree with the parent.

The pure-python kernels remain canonical; everything here degrades
gracefully to them (missing compiler, failed build, forced off).
Layer rank 2: imports nothing above :mod:`repro.memory`.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING

from . import build as _build
from .build import ABI_VERSION, BuildError

if TYPE_CHECKING:  # pragma: no cover
    import ctypes

__all__ = ["ABI_VERSION", "BuildError", "available", "build_error",
           "enabled_mode", "kernel", "kernel_name", "selected",
           "set_native", "status"]

_OFF = frozenset(("0", "off", "no", "false"))
_ON = frozenset(("1", "on", "yes", "true"))

# one loaded library per process, keyed by the build-relevant env so
# tests that repoint REPRO_NATIVE_CC / REPRO_NATIVE_CACHE re-resolve
_lib: "ctypes.CDLL | None" = None
_lib_err: str | None = None
_lib_key: tuple | None = None


def enabled_mode() -> str:
    """Current selection mode: ``"on"``, ``"off"``, or ``"auto"``."""
    v = os.environ.get("REPRO_NATIVE", "").strip().lower()
    if v in _OFF:
        return "off"
    if v in _ON:
        return "on"
    return "auto"


def set_native(flag: bool | None) -> None:
    """Set the process-wide (and child-inherited) kernel selection.

    ``True`` forces native, ``False`` forces pure python, ``None``
    restores auto-detection.  Writes ``REPRO_NATIVE`` so every worker
    process spawned afterwards — fork, fork-server, or spawn — sees the
    same selection as the parent.
    """
    if flag is None:
        os.environ.pop("REPRO_NATIVE", None)
    else:
        os.environ["REPRO_NATIVE"] = "1" if flag else "0"


def _env_key() -> tuple:
    return (os.environ.get("REPRO_NATIVE_CC"),
            os.environ.get("REPRO_NATIVE_CACHE"))


def _load() -> "ctypes.CDLL | None":
    """Build/load the kernel once per process; remember failures."""
    global _lib, _lib_err, _lib_key
    key = _env_key()
    if _lib_key == key and (_lib is not None or _lib_err is not None):
        return _lib
    try:
        _lib = _build.load()
        _lib_err = None
    except BuildError as exc:
        _lib = None
        _lib_err = str(exc)
    _lib_key = key
    return _lib


def kernel() -> "ctypes.CDLL | None":
    """The loaded native kernel, or ``None`` when python should run.

    Returns ``None`` when disabled or (in auto mode) unavailable; raises
    :class:`RuntimeError` when the kernel is *forced* on but cannot be
    had — a forced selection must never silently degrade.
    """
    mode = enabled_mode()
    if mode == "off":
        return None
    lib = _load()
    if lib is None and mode == "on":
        raise RuntimeError(
            f"REPRO_NATIVE=1 but the native kernel is unavailable: "
            f"{_lib_err or 'unknown build failure'}")
    return lib


def selected() -> bool:
    """Whether a replay right now would use the native kernel."""
    if enabled_mode() == "off":
        return False
    return _load() is not None


def kernel_name() -> str:
    """``"native"`` or ``"python"`` — the kernel a replay would use."""
    return "native" if selected() else "python"


def available() -> bool:
    """Whether a kernel *could* be selected (compiler or artifact).

    Passive: never triggers a compile.  A previously loaded library
    counts; otherwise a resolvable compiler does.
    """
    if _lib is not None and _lib_key == _env_key():
        return True
    return _build.find_compiler() is not None


def build_error() -> str | None:
    """Last build/load failure in this process, if any."""
    return _lib_err


def status() -> dict:
    """Selection snapshot for observability (never triggers a compile)."""
    mode = enabled_mode()
    loaded = _lib is not None and _lib_key == _env_key()
    return {
        "mode": mode,
        "available": available(),
        "loaded": loaded,
        "build_error": _lib_err,
        "compiler": _build.find_compiler(),
        "abi": ABI_VERSION,
        "kernel": ("native" if mode != "off" and (loaded or available())
                   else "python"),
    }
