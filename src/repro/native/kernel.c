/* Native replay kernel: C twin of repro.sim.batch.engine.replay_fused.
 *
 * One call replays one compiled program against one (fresh) flat-latency
 * CoherentMemorySystem configuration and returns every observable side
 * effect: finish times, per-processor time breakdowns, execution time,
 * and a single int64 blob holding the full end state (directory table,
 * per-cluster cache columns in exact LRU order, free lists, miss
 * histories, counters, allocator first touches, sync registry).  The
 * Python driver (repro.native.driver) writes the blob back into the
 * live objects, so the result is byte-identical to the pure-python
 * fused kernel — which remains the canonical reference.
 *
 * Equivalences relied on (proved against the python kernel, pinned by
 * tests/test_native_properties.py):
 *
 * - scheduler: a binary heap of (time, seq, pid) with a monotone seq
 *   counter pops in exactly the bucket queue's FIFO-per-time order,
 *   which is the canonical (time, seq, pid) heap order.
 * - LRU: a doubly-linked list over slot numbers (head = LRU) mirrors
 *   CPython dict insertion order under the same touch discipline
 *   (pop + reinsert == unlink + push_tail); maintained untouched in
 *   infinite mode too so the exported slot_of order equals dict order.
 * - counters: busy cycles and reads/writes are counted online at op
 *   dispatch (never on a merge retry), which totals exactly the static
 *   seeding the python kernel performs up front.
 *
 * Directory masks are kept as a separate 64-bit word (Python packs
 * (mask << 2) | state into one unbounded int); the driver gates the
 * kernel on n_clusters <= 64.
 *
 * Statuses: 0 ok, 1 deadlock (state still exported), -2 dirty-owner
 * ValueError, -3 re-acquiring held lock, -4 releasing foreign lock,
 * -5 out of memory.  Mirrored in repro.native.driver.
 */

#include <stdint.h>
#include <stdlib.h>
#include <string.h>

#define ABI 1

#define ST_OK 0
#define ST_DEADLOCK 1
#define ST_DIRTY_OWNER (-2)
#define ST_REACQUIRE (-3)
#define ST_BAD_RELEASE (-4)
#define ST_NOMEM (-5)

#define NO_LINE INT64_MIN
#define T_INF ((int64_t)1 << 62)

#if defined(_WIN32)
#define EXPORT __declspec(dllexport)
#else
#define EXPORT __attribute__((visibility("default")))
#endif

static inline int ctz64(uint64_t v) { return __builtin_ctzll(v); }
static inline int popcount64(uint64_t v) { return __builtin_popcountll(v); }

/* Floor division matching Python's // for a positive divisor. */
static inline int64_t fdiv(int64_t a, int64_t b) {
    int64_t q = a / b;
    if ((a % b) != 0 && a < 0) q--;
    return q;
}

/* ---------------------------------------------------------------- map
 * Open-addressing int64 hash map, linear probe, tombstone deletion,
 * power-of-two capacity, Fibonacci hashing.  v2 is optional (directory
 * entries store (state, mask); everything else stores one value). */

typedef struct {
    int64_t *key;
    int64_t *v1;
    int64_t *v2;
    uint8_t *st; /* 0 empty, 1 used, 2 tombstone */
    size_t cap;
    size_t live;
    size_t fill; /* used + tombstones */
    int two;
} Map;

static int map_init(Map *m, size_t cap0, int two) {
    size_t c = 16;
    while (c < cap0) c <<= 1;
    m->key = (int64_t *)malloc(c * sizeof(int64_t));
    m->v1 = (int64_t *)malloc(c * sizeof(int64_t));
    m->v2 = two ? (int64_t *)malloc(c * sizeof(int64_t)) : NULL;
    m->st = (uint8_t *)calloc(c, 1);
    m->cap = c;
    m->live = 0;
    m->fill = 0;
    m->two = two;
    if (!m->key || !m->v1 || (two && !m->v2) || !m->st) return ST_NOMEM;
    return 0;
}

static void map_free(Map *m) {
    free(m->key);
    free(m->v1);
    free(m->v2);
    free(m->st);
    m->key = m->v1 = m->v2 = NULL;
    m->st = NULL;
}

static inline size_t map_ix(const Map *m, int64_t k) {
    uint64_t h = (uint64_t)k * 0x9E3779B97F4A7C15ULL;
    h ^= h >> 32;
    return (size_t)h & (m->cap - 1);
}

static inline int map_get(const Map *m, int64_t k, int64_t *v1, int64_t *v2) {
    size_t i = map_ix(m, k);
    for (;;) {
        uint8_t s = m->st[i];
        if (s == 0) return 0;
        if (s == 1 && m->key[i] == k) {
            if (v1) *v1 = m->v1[i];
            if (v2) *v2 = m->v2[i];
            return 1;
        }
        i = (i + 1) & (m->cap - 1);
    }
}

static int map_put(Map *m, int64_t k, int64_t a, int64_t b);

static int map_rehash(Map *m, size_t want) {
    size_t c = 16;
    while (c < want) c <<= 1;
    int64_t *ok = m->key, *o1 = m->v1, *o2 = m->v2;
    uint8_t *os = m->st;
    size_t ocap = m->cap;
    m->key = (int64_t *)malloc(c * sizeof(int64_t));
    m->v1 = (int64_t *)malloc(c * sizeof(int64_t));
    m->v2 = m->two ? (int64_t *)malloc(c * sizeof(int64_t)) : NULL;
    m->st = (uint8_t *)calloc(c, 1);
    if (!m->key || !m->v1 || (m->two && !m->v2) || !m->st) {
        free(m->key);
        free(m->v1);
        free(m->v2);
        free(m->st);
        m->key = ok;
        m->v1 = o1;
        m->v2 = o2;
        m->st = os;
        return ST_NOMEM;
    }
    m->cap = c;
    m->live = 0;
    m->fill = 0;
    for (size_t i = 0; i < ocap; i++)
        if (os[i] == 1) map_put(m, ok[i], o1[i], m->two ? o2[i] : 0);
    free(ok);
    free(o1);
    free(o2);
    free(os);
    return 0;
}

static int map_put(Map *m, int64_t k, int64_t a, int64_t b) {
    if ((m->fill + 1) * 8 >= m->cap * 5) {
        if (map_rehash(m, (m->live + 1) * 4)) return ST_NOMEM;
    }
    size_t i = map_ix(m, k);
    size_t tomb = (size_t)-1;
    for (;;) {
        uint8_t s = m->st[i];
        if (s == 0) break;
        if (s == 2) {
            if (tomb == (size_t)-1) tomb = i;
        } else if (m->key[i] == k) {
            m->v1[i] = a;
            if (m->two) m->v2[i] = b;
            return 0;
        }
        i = (i + 1) & (m->cap - 1);
    }
    if (tomb != (size_t)-1) {
        i = tomb;
    } else {
        m->fill++;
    }
    m->st[i] = 1;
    m->key[i] = k;
    m->v1[i] = a;
    if (m->two) m->v2[i] = b;
    m->live++;
    return 0;
}

/* Delete k; returns 1 (v1 filled) when present, 0 otherwise. */
static inline int map_del(Map *m, int64_t k, int64_t *v1) {
    size_t i = map_ix(m, k);
    for (;;) {
        uint8_t s = m->st[i];
        if (s == 0) return 0;
        if (s == 1 && m->key[i] == k) {
            if (v1) *v1 = m->v1[i];
            m->st[i] = 2;
            m->live--;
            return 1;
        }
        i = (i + 1) & (m->cap - 1);
    }
}

/* ------------------------------------------------------------- cache
 * Slab-column cache mirroring memory.cache.FullyAssociativeCache: the
 * same columns, the same free-list discipline (finite: preallocated,
 * pop order 0,1,2,...; infinite: grown in python's exact schedule),
 * plus an explicit LRU list standing in for dict insertion order. */

typedef struct {
    Map slot_of;
    int64_t *state, *pending, *fetcher, *tag;
    int64_t *lprev, *lnext; /* LRU links by slot; head = LRU victim */
    int64_t head, tail;
    int64_t n_slots;
    int64_t *free_;
    int64_t free_n, free_cap;
    int64_t evictions, inserts;
} Cache;

static int cache_free_push(Cache *c, int64_t s) {
    if (c->free_n == c->free_cap) {
        int64_t nc = c->free_cap ? c->free_cap * 2 : 64;
        int64_t *nf = (int64_t *)realloc(c->free_, nc * sizeof(int64_t));
        if (!nf) return ST_NOMEM;
        c->free_ = nf;
        c->free_cap = nc;
    }
    c->free_[c->free_n++] = s;
    return 0;
}

static int cache_columns_grow(Cache *c, int64_t nn) {
    int64_t *p;
    p = (int64_t *)realloc(c->state, nn * sizeof(int64_t));
    if (!p) return ST_NOMEM;
    c->state = p;
    p = (int64_t *)realloc(c->pending, nn * sizeof(int64_t));
    if (!p) return ST_NOMEM;
    c->pending = p;
    p = (int64_t *)realloc(c->fetcher, nn * sizeof(int64_t));
    if (!p) return ST_NOMEM;
    c->fetcher = p;
    p = (int64_t *)realloc(c->tag, nn * sizeof(int64_t));
    if (!p) return ST_NOMEM;
    c->tag = p;
    p = (int64_t *)realloc(c->lprev, nn * sizeof(int64_t));
    if (!p) return ST_NOMEM;
    c->lprev = p;
    p = (int64_t *)realloc(c->lnext, nn * sizeof(int64_t));
    if (!p) return ST_NOMEM;
    c->lnext = p;
    for (int64_t i = c->n_slots; i < nn; i++) {
        c->state[i] = 0;
        c->pending[i] = 0;
        c->fetcher[i] = -1;
        c->tag[i] = 0;
    }
    return 0;
}

/* FullyAssociativeCache._grow, verbatim schedule: add = n ? n : 1024,
 * free gains n+add-1 .. n+1 (top of stack = n+1), slot n is returned. */
static int cache_grow(Cache *c, int64_t *slot_out) {
    int64_t n = c->n_slots;
    int64_t add = n ? n : 1024;
    int rc = cache_columns_grow(c, n + add);
    if (rc) return rc;
    for (int64_t i = n + add - 1; i > n; i--) {
        rc = cache_free_push(c, i);
        if (rc) return rc;
    }
    c->n_slots = n + add;
    *slot_out = n;
    return 0;
}

static inline void lru_push_tail(Cache *c, int64_t s) {
    c->lprev[s] = c->tail;
    c->lnext[s] = -1;
    if (c->tail >= 0)
        c->lnext[c->tail] = s;
    else
        c->head = s;
    c->tail = s;
}

static inline void lru_unlink(Cache *c, int64_t s) {
    int64_t p = c->lprev[s], nx = c->lnext[s];
    if (p >= 0)
        c->lnext[p] = nx;
    else
        c->head = nx;
    if (nx >= 0)
        c->lprev[nx] = p;
    else
        c->tail = p;
}

static inline void lru_touch(Cache *c, int64_t s) {
    if (c->tail == s) return;
    lru_unlink(c, s);
    lru_push_tail(c, s);
}

/* -------------------------------------------------------------- sync */

typedef struct {
    int64_t id, episodes, n_wait;
    int64_t *wpid, *warr; /* capacity n, fixed */
} Barrier;

typedef struct {
    int64_t id, holder, acq, cont;
    int64_t *qpid, *qarr; /* FIFO ring */
    int64_t qh, qn, qcap;
} Lock;

static int lock_enqueue(Lock *lk, int64_t pid, int64_t t) {
    if (lk->qn == lk->qcap) {
        int64_t nc = lk->qcap ? lk->qcap * 2 : 4;
        int64_t *np = (int64_t *)malloc(nc * sizeof(int64_t));
        int64_t *na = (int64_t *)malloc(nc * sizeof(int64_t));
        if (!np || !na) {
            free(np);
            free(na);
            return ST_NOMEM;
        }
        for (int64_t i = 0; i < lk->qn; i++) {
            np[i] = lk->qpid[(lk->qh + i) % (lk->qcap ? lk->qcap : 1)];
            na[i] = lk->qarr[(lk->qh + i) % (lk->qcap ? lk->qcap : 1)];
        }
        free(lk->qpid);
        free(lk->qarr);
        lk->qpid = np;
        lk->qarr = na;
        lk->qh = 0;
        lk->qcap = nc;
    }
    int64_t i = (lk->qh + lk->qn) % lk->qcap;
    lk->qpid[i] = pid;
    lk->qarr[i] = t;
    lk->qn++;
    return 0;
}

static inline void lock_dequeue(Lock *lk, int64_t *pid, int64_t *arr) {
    *pid = lk->qpid[lk->qh];
    *arr = lk->qarr[lk->qh];
    lk->qh = (lk->qh + 1) % lk->qcap;
    lk->qn--;
}

/* ------------------------------------------------------------- heap
 * (time, seq, pid) binary min-heap; seq is a monotone counter, so pop
 * order is FIFO within one time == the canonical bucket-queue order. */

typedef struct {
    int64_t t, seq, pid;
} Ev;

static inline int ev_lt(Ev a, Ev b) {
    return a.t < b.t || (a.t == b.t && a.seq < b.seq);
}

static inline void heap_push(Ev *h, int64_t *hn, Ev e) {
    int64_t i = (*hn)++;
    h[i] = e;
    while (i > 0) {
        int64_t par = (i - 1) >> 1;
        if (!ev_lt(h[i], h[par])) break;
        Ev tmp = h[i];
        h[i] = h[par];
        h[par] = tmp;
        i = par;
    }
}

static inline Ev heap_pop(Ev *h, int64_t *hn) {
    Ev top = h[0];
    int64_t n = --(*hn);
    if (n > 0) {
        h[0] = h[n];
        int64_t i = 0;
        for (;;) {
            int64_t l = 2 * i + 1, r = l + 1, m = i;
            if (l < n && ev_lt(h[l], h[m])) m = l;
            if (r < n && ev_lt(h[r], h[m])) m = r;
            if (m == i) break;
            Ev tmp = h[i];
            h[i] = h[m];
            h[m] = tmp;
            i = m;
        }
    }
    return top;
}

/* --------------------------------------------------------------- buf */

typedef struct {
    int64_t *v;
    int64_t n, cap;
} Buf;

static int buf_push(Buf *b, int64_t x) {
    if (b->n == b->cap) {
        int64_t nc = b->cap ? b->cap * 2 : 256;
        int64_t *nv = (int64_t *)realloc(b->v, nc * sizeof(int64_t));
        if (!nv) return ST_NOMEM;
        b->v = nv;
        b->cap = nc;
    }
    b->v[b->n++] = x;
    return 0;
}

/* Insert with python-dict ordering: log the key on a NEW insert only
 * (reassigning a present key keeps its position, exactly as a python
 * dict does).  The export section replays the log to emit entries in
 * dict iteration order — for insert-only maps a forward scan; for maps
 * with deletes (the directory), a backward scan keeping the latest
 * occurrence of each live key, then reversed, since a del + reinsert
 * moves a python-dict key to the end. */
static int map_put_ordered(Map *m, Buf *log, int64_t k, int64_t a,
                           int64_t b) {
    if (!map_get(m, k, NULL, NULL) && buf_push(log, k)) return ST_NOMEM;
    return map_put(m, k, a, b);
}

/* ---------------------------------------------------------- context */

#define NCTR 11
/* per-cluster counter layout (mirrored in repro.native.driver):
 * 0 reads, 1 writes, 2 read_misses, 3 write_misses, 4 upgrade_misses,
 * 5 merges, 6 merge_refetches, 7 prefetch_hits,
 * 8 cold, 9 capacity, 10 coherence (by_cause tallies) */

typedef struct {
    int64_t n, ncl, csize, cap, lpp, rr_next;
    int touch;
    int64_t l_lc, l_rc, l_ldr, l_rd3;
    Cache *ca;  /* ncl */
    Map dir;    /* line -> (state, mask) */
    Buf dir_log;   /* dir insertion log (python-dict export order) */
    Map homes;  /* line -> home memo (per replay, as in the kernel) */
    Map pages;  /* page -> home (allocator._page_home) */
    Map *hist;  /* ncl: line -> cause (1 CAPACITY, 2 COHERENCE) */
    Buf *hist_log; /* ncl: history insertion logs (insert-only maps) */
    int64_t *ctr; /* ncl * NCTR */
    int64_t inv_sent, repl_hints, writebacks;
    int64_t *ft; /* first-touch log: (page, home) pairs, in order */
    int64_t ft_n, ft_cap;
    int64_t *bd; /* out: 4n (cpu, load, merge, sync) */
} Ctx;

static int ft_push(Ctx *x, int64_t page, int64_t home) {
    if (x->ft_n * 2 == x->ft_cap) {
        int64_t nc = x->ft_cap ? x->ft_cap * 2 : 64;
        int64_t *nf = (int64_t *)realloc(x->ft, nc * sizeof(int64_t));
        if (!nf) return ST_NOMEM;
        x->ft = nf;
        x->ft_cap = nc;
    }
    x->ft[x->ft_n * 2] = page;
    x->ft[x->ft_n * 2 + 1] = home;
    x->ft_n++;
    return 0;
}

/* Per-line home with the kernel's memo; binds the page on first touch
 * (allocation.PageAllocator.home_of_line, verbatim semantics). */
static int home_of(Ctx *x, int64_t line, int64_t *home_out) {
    int64_t h;
    if (map_get(&x->homes, line, &h, NULL)) {
        *home_out = h;
        return 0;
    }
    int64_t page = fdiv(line, x->lpp);
    if (!map_get(&x->pages, page, &h, NULL)) {
        h = x->rr_next;
        if (map_put(&x->pages, page, h, 0)) return ST_NOMEM;
        x->rr_next = (h + 1) % x->ncl;
        if (ft_push(x, page, h)) return ST_NOMEM;
    }
    if (map_put(&x->homes, line, h, 0)) return ST_NOMEM;
    *home_out = h;
    return 0;
}

/* Victim retirement: replacement hint for SHARED, writeback for a line
 * this cluster holds EXCLUSIVE (exact packed comparison, as in python). */
static int retire(Ctx *x, int cl, int64_t vline, int64_t vstate) {
    int64_t ds, dm;
    if (!map_get(&x->dir, vline, &ds, &dm)) return 0;
    if (vstate == 2) { /* EXCLUSIVE */
        if (ds == 2 && dm == (int64_t)(1ULL << cl)) {
            map_del(&x->dir, vline, NULL);
            x->writebacks++;
        }
    } else {
        dm &= (int64_t)~(1ULL << cl);
        x->repl_hints++;
        if (dm) {
            if (map_put(&x->dir, vline, ds, dm)) return ST_NOMEM;
        } else {
            map_del(&x->dir, vline, NULL);
        }
    }
    return 0;
}

/* Install `line` into cluster cl's cache (state_new 1=SHARED on a read
 * miss, 2=EXCLUSIVE on a write miss), evicting the LRU victim when the
 * cache is full — the python kernel's install block, verbatim order. */
static int install(Ctx *x, int cl, int64_t pid, int64_t line, int64_t ready,
                   int64_t state_new) {
    Cache *c = &x->ca[cl];
    int64_t slot;
    if (x->touch && (int64_t)c->slot_of.live >= x->cap) {
        slot = c->head;
        int64_t vline = c->tag[slot];
        int64_t vstate = c->state[slot];
        map_del(&c->slot_of, vline, NULL);
        lru_unlink(c, slot);
        c->evictions++;
        c->state[slot] = state_new;
        c->pending[slot] = ready;
        c->fetcher[slot] = pid;
        c->tag[slot] = line;
        if (map_put(&c->slot_of, line, slot, 0)) return ST_NOMEM;
        lru_push_tail(c, slot);
        c->inserts++;
        if (map_put_ordered(&x->hist[cl], &x->hist_log[cl], vline,
                            1 /*CAPACITY*/, 0))
            return ST_NOMEM;
        int rc = retire(x, cl, vline, vstate);
        if (rc) return rc;
    } else {
        if (c->free_n) {
            slot = c->free_[--c->free_n];
        } else {
            int rc = cache_grow(c, &slot);
            if (rc) return rc;
        }
        c->state[slot] = state_new;
        c->pending[slot] = ready;
        c->fetcher[slot] = pid;
        c->tag[slot] = line;
        if (map_put(&c->slot_of, line, slot, 0)) return ST_NOMEM;
        lru_push_tail(c, slot);
        c->inserts++;
    }
    return 0;
}

/* Invalidate `line` in every cluster of `bits`, ascending cluster order
 * (lowest-bit extraction, as in the python kernel). */
static int invalidate(Ctx *x, uint64_t bits, int64_t line) {
    while (bits) {
        int vcl = ctz64(bits);
        bits &= bits - 1;
        Cache *c = &x->ca[vcl];
        int64_t s2;
        if (map_del(&c->slot_of, line, &s2)) {
            if (cache_free_push(c, s2)) return ST_NOMEM;
            lru_unlink(c, s2);
            if (map_put_ordered(&x->hist[vcl], &x->hist_log[vcl], line,
                                2 /*COHERENCE*/, 0))
                return ST_NOMEM;
        }
    }
    return 0;
}

/* Full read miss (fresh miss and invalidated-while-pending refetch):
 * classify, directory transaction (owner downgrade on dirty-remote),
 * SHARED install, counters, load stall. */
static int read_miss(Ctx *x, int cl, int64_t pid, int64_t line, int64_t t,
                     int64_t *stall_out) {
    int64_t cause = 0, home, stall;
    map_get(&x->hist[cl], line, &cause, NULL);
    int rc = home_of(x, line, &home);
    if (rc) return rc;
    int64_t ds = 0, dm = 0;
    map_get(&x->dir, line, &ds, &dm);
    if (ds == 2) { /* dirty remote owner */
        int owner = ctz64((uint64_t)dm);
        if (owner == cl) return ST_DIRTY_OWNER;
        stall = (cl == home) ? x->l_ldr
                             : (owner == home ? x->l_rc : x->l_rd3);
        /* owner keeps the data but downgrades; the reader joins */
        Cache *oc = &x->ca[owner];
        int64_t s;
        if (map_get(&oc->slot_of, line, &s, NULL)) oc->state[s] = 1;
        if (map_put_ordered(&x->dir, &x->dir_log, line, 1,
                            dm | (int64_t)(1ULL << cl)))
            return ST_NOMEM;
    } else {
        stall = (cl == home) ? x->l_lc : x->l_rc;
        if (map_put_ordered(&x->dir, &x->dir_log, line, 1,
                            dm | (int64_t)(1ULL << cl)))
            return ST_NOMEM;
    }
    rc = install(x, cl, pid, line, t + stall, 1);
    if (rc) return rc;
    int64_t *ct = x->ctr + (size_t)cl * NCTR;
    ct[2]++;            /* read_misses */
    ct[8 + cause]++;    /* by_cause */
    x->bd[4 * pid + 1] += stall; /* load */
    *stall_out = stall;
    return 0;
}

/* Write miss: fetch exclusive (latency hidden, line left pending),
 * invalidating every other sharer; invalidations_sent counts the whole
 * `others` mask unconditionally, exactly as the python kernel does. */
static int write_miss(Ctx *x, int cl, int64_t pid, int64_t line, int64_t t) {
    int64_t cause = 0, home, latency;
    map_get(&x->hist[cl], line, &cause, NULL);
    int rc = home_of(x, line, &home);
    if (rc) return rc;
    int64_t ds = 0, dm = 0;
    map_get(&x->dir, line, &ds, &dm);
    if (ds == 2) { /* dirty remote owner */
        int owner = ctz64((uint64_t)dm);
        if (owner == cl) return ST_DIRTY_OWNER;
        latency = (cl == home) ? x->l_ldr
                               : (owner == home ? x->l_rc : x->l_rd3);
    } else {
        latency = (cl == home) ? x->l_lc : x->l_rc;
    }
    uint64_t others = (uint64_t)dm & ~(1ULL << cl);
    if (others) {
        rc = invalidate(x, others, line);
        if (rc) return rc;
    }
    x->inv_sent += popcount64(others);
    if (map_put_ordered(&x->dir, &x->dir_log, line, 2,
                        (int64_t)(1ULL << cl)))
        return ST_NOMEM;
    rc = install(x, cl, pid, line, t + latency, 2);
    if (rc) return rc;
    int64_t *ct = x->ctr + (size_t)cl * NCTR;
    ct[3]++;         /* write_misses */
    ct[8 + cause]++; /* by_cause */
    return 0;
}

/* ---------------------------------------------------------- registry */

typedef struct {
    Barrier *v;
    int64_t n, cap;
    Map ix; /* id -> index (creation order == array order) */
} Barriers;

typedef struct {
    Lock *v;
    int64_t n, cap;
    Map ix;
} Locks;

static int barrier_of(Barriers *bs, int64_t id, int64_t n_procs,
                      Barrier **out) {
    int64_t i;
    if (map_get(&bs->ix, id, &i, NULL)) {
        *out = &bs->v[i];
        return 0;
    }
    if (bs->n == bs->cap) {
        int64_t nc = bs->cap ? bs->cap * 2 : 8;
        Barrier *nv = (Barrier *)realloc(bs->v, nc * sizeof(Barrier));
        if (!nv) return ST_NOMEM;
        bs->v = nv;
        bs->cap = nc;
    }
    Barrier *b = &bs->v[bs->n];
    b->id = id;
    b->episodes = 0;
    b->n_wait = 0;
    b->wpid = (int64_t *)malloc(n_procs * sizeof(int64_t));
    b->warr = (int64_t *)malloc(n_procs * sizeof(int64_t));
    if (!b->wpid || !b->warr) return ST_NOMEM;
    if (map_put(&bs->ix, id, bs->n, 0)) return ST_NOMEM;
    bs->n++;
    *out = b;
    return 0;
}

static int lock_of(Locks *ls, int64_t id, Lock **out) {
    int64_t i;
    if (map_get(&ls->ix, id, &i, NULL)) {
        *out = &ls->v[i];
        return 0;
    }
    if (ls->n == ls->cap) {
        int64_t nc = ls->cap ? ls->cap * 2 : 8;
        Lock *nv = (Lock *)realloc(ls->v, nc * sizeof(Lock));
        if (!nv) return ST_NOMEM;
        ls->v = nv;
        ls->cap = nc;
    }
    Lock *lk = &ls->v[ls->n];
    lk->id = id;
    lk->holder = -1;
    lk->acq = 0;
    lk->cont = 0;
    lk->qpid = lk->qarr = NULL;
    lk->qh = lk->qn = lk->qcap = 0;
    if (map_put(&ls->ix, id, ls->n, 0)) return ST_NOMEM;
    ls->n++;
    *out = lk;
    return 0;
}

/* ------------------------------------------------------------ replay */

EXPORT int64_t repro_abi(void) { return ABI; }

EXPORT void repro_release(int64_t *blob) { free(blob); }

/* Zero-copy column contract: ops[p]/args[p] may point straight into a
 * read-mostly file mapping of a v2 trace blob (driver.py hands over the
 * mmap'd addresses; 8-byte aligned, little-endian int64, lens[p] entries).
 * The kernel must only ever READ them — a store would dirty private
 * copy-on-write pages and forfeit the shared-page-cache economics the
 * streaming-trace layer is built on — and must tolerate ops[p] == NULL
 * when lens[p] == 0 (an empty column has no buffer to address).  Access
 * is sequential per processor, which the mapping layer advertises to the
 * OS via MADV_SEQUENTIAL. */
EXPORT int64_t repro_replay(
    int64_t n, int64_t ncl, int64_t csize,
    const int64_t **ops, const int64_t **args, const int64_t *lens,
    int64_t cap, /* capacity lines per cluster cache; -1 = infinite */
    int64_t l_lc, int64_t l_rc, int64_t l_ldr, int64_t l_rd3,
    int64_t lpp, int64_t rr_next,
    const int64_t *ph_pages, const int64_t *ph_homes, int64_t n_ph,
    int64_t *finish,     /* out: n, -1 = never finished */
    int64_t *bd,         /* out: 4n (cpu, load, merge, sync) */
    int64_t *exec_time,  /* out: 1 */
    int64_t *err,        /* out: 2 (pid / holder for lock errors) */
    int64_t **blob_out, int64_t *blob_len_out) {
    int64_t st = ST_OK;
    Ctx x;
    memset(&x, 0, sizeof(x));
    Barriers bars;
    memset(&bars, 0, sizeof(bars));
    Locks locks;
    memset(&locks, 0, sizeof(locks));
    Ev *heap = NULL;
    int64_t hn = 0;
    int64_t *ipos = NULL, *retry = NULL;
    Buf blob;
    memset(&blob, 0, sizeof(blob));

    *blob_out = NULL;
    *blob_len_out = 0;
    err[0] = err[1] = -1;
    *exec_time = 0;

    x.n = n;
    x.ncl = ncl;
    x.csize = csize;
    x.cap = cap;
    x.touch = cap >= 0;
    x.lpp = lpp;
    x.rr_next = rr_next;
    x.l_lc = l_lc;
    x.l_rc = l_rc;
    x.l_ldr = l_ldr;
    x.l_rd3 = l_rd3;
    x.bd = bd;

    x.ca = (Cache *)calloc(ncl, sizeof(Cache));
    x.hist = (Map *)calloc(ncl, sizeof(Map));
    x.hist_log = (Buf *)calloc(ncl, sizeof(Buf));
    x.ctr = (int64_t *)calloc(ncl * NCTR, sizeof(int64_t));
    heap = (Ev *)malloc((n + 4) * sizeof(Ev));
    ipos = (int64_t *)calloc(n, sizeof(int64_t));
    retry = (int64_t *)malloc(n * sizeof(int64_t));
    if (!x.ca || !x.hist || !x.hist_log || !x.ctr || !heap || !ipos ||
        !retry) {
        st = ST_NOMEM;
        goto done;
    }
    if ((st = map_init(&x.dir, 1024, 1))) goto done;
    if ((st = map_init(&x.homes, 1024, 0))) goto done;
    if ((st = map_init(&x.pages, 64, 0))) goto done;
    if ((st = map_init(&bars.ix, 16, 0))) goto done;
    if ((st = map_init(&locks.ix, 16, 0))) goto done;
    for (int64_t i = 0; i < ncl; i++) {
        Cache *c = &x.ca[i];
        c->head = c->tail = -1;
        if ((st = map_init(&c->slot_of, x.touch ? (size_t)cap * 2 : 1024,
                           0)))
            goto done;
        if ((st = map_init(&x.hist[i], 256, 0))) goto done;
        if (x.touch) {
            /* finite: preallocated slab, free pops 0, 1, 2, ... */
            if ((st = cache_columns_grow(c, cap))) goto done;
            c->n_slots = cap;
            for (int64_t s = cap - 1; s >= 0; s--)
                if ((st = cache_free_push(c, s))) goto done;
        }
    }
    for (int64_t i = 0; i < n_ph; i++)
        if ((st = map_put(&x.pages, ph_pages[i], ph_homes[i], 0))) goto done;
    for (int64_t p = 0; p < n; p++) {
        finish[p] = -1;
        retry[p] = NO_LINE;
    }

    /* initial events: every processor at time 0, pid order == seq order */
    {
        int64_t seq0 = 0;
        for (int64_t p = 0; p < n; p++) {
            Ev e = {0, seq0++, p};
            heap_push(heap, &hn, e);
        }
    }
    int64_t seq = n;
    int64_t n_running = n;

    Ev e0 = heap_pop(heap, &hn);
    int64_t t = e0.t;
    int64_t pid = e0.pid;
    int64_t hz = hn ? heap[0].t : T_INF;
    int cl = (int)(pid / csize);
    int64_t *ct = x.ctr + (size_t)cl * NCTR;
    int64_t pending = retry[pid];

    for (;;) {
        int64_t tn = 0;
        int noevent = 0;
        if (pending != NO_LINE) {
            /* ---- retry of a merged read at its fill time */
            Cache *c = &x.ca[cl];
            int64_t slot;
            int found = map_get(&c->slot_of, pending, &slot, NULL);
            if (found) {
                if (x.touch) lru_touch(c, slot);
                int64_t pu = c->pending[slot];
                if (pu > t) {
                    ct[5]++; /* merges */
                    bd[4 * pid + 2] += pu - t;
                    tn = pu;
                } else {
                    int64_t f = c->fetcher[slot];
                    if (f != -1 && f != pid) {
                        ct[7]++; /* prefetch_hits */
                        c->fetcher[slot] = -1;
                    }
                    pending = NO_LINE;
                    retry[pid] = NO_LINE;
                    tn = t + 1;
                }
            } else {
                /* invalidated while pending: refetch (fresh read miss) */
                ct[6]++; /* merge_refetches */
                int64_t stall;
                int rc = read_miss(&x, cl, pid, pending, t, &stall);
                if (rc) {
                    st = rc;
                    err[0] = pid;
                    goto done;
                }
                pending = NO_LINE;
                retry[pid] = NO_LINE;
                tn = t + stall + 1;
            }
        } else {
            /* ---- run ops while strictly ahead of every queued event */
            const int64_t *po = ops[pid];
            const int64_t *pa = args[pid];
            int64_t ip = ipos[pid];
            const int64_t iplen = lens[pid];
            Cache *c = &x.ca[cl];
            int finished = 0;
            for (;;) {
                if (ip >= iplen) {
                    finished = 1;
                    break;
                }
                int64_t op = po[ip];
                int64_t arg = pa[ip];
                ip++;
                if (op == 1) { /* READ */
                    bd[4 * pid] += 1;
                    ct[0]++;
                    int64_t slot;
                    int found = map_get(&c->slot_of, arg, &slot, NULL);
                    if (found) {
                        if (x.touch) lru_touch(c, slot);
                        int64_t pu = c->pending[slot];
                        if (pu > t) {
                            ct[5]++; /* merges */
                            bd[4 * pid + 2] += pu - t;
                            pending = arg;
                            retry[pid] = arg;
                            tn = pu;
                            break; /* no fast path: tail handles tn */
                        }
                        int64_t f = c->fetcher[slot];
                        if (f != -1 && f != pid) {
                            ct[7]++; /* prefetch_hits */
                            c->fetcher[slot] = -1;
                        }
                        tn = t + 1;
                    } else {
                        int64_t stall;
                        int rc = read_miss(&x, cl, pid, arg, t, &stall);
                        if (rc) {
                            st = rc;
                            err[0] = pid;
                            goto done;
                        }
                        tn = t + stall + 1;
                    }
                } else if (op == 0) { /* WORK */
                    bd[4 * pid] += arg;
                    tn = t + arg;
                } else if (op == 2) { /* WRITE (never stalls) */
                    bd[4 * pid] += 1;
                    ct[1]++;
                    int64_t slot;
                    int found = map_get(&c->slot_of, arg, &slot, NULL);
                    if (found) {
                        if (x.touch) lru_touch(c, slot);
                        if (c->state[slot] != 2) {
                            /* upgrade: invalidate the other sharers */
                            ct[4]++;
                            int64_t ds = 0, dm = 0;
                            map_get(&x.dir, arg, &ds, &dm);
                            uint64_t others =
                                (uint64_t)dm & ~(1ULL << cl);
                            if (others) {
                                int rc = invalidate(&x, others, arg);
                                if (rc) {
                                    st = rc;
                                    goto done;
                                }
                                x.inv_sent += popcount64(others);
                            }
                            if (map_put_ordered(&x.dir, &x.dir_log, arg, 2,
                                                (int64_t)(1ULL << cl))) {
                                st = ST_NOMEM;
                                goto done;
                            }
                            c->state[slot] = 2;
                        }
                        tn = t + 1;
                    } else {
                        int rc = write_miss(&x, cl, pid, arg, t);
                        if (rc) {
                            st = rc;
                            err[0] = pid;
                            goto done;
                        }
                        tn = t + 1;
                    }
                } else if (op == 3) { /* BARRIER */
                    Barrier *b;
                    if (barrier_of(&bars, arg, n, &b)) {
                        st = ST_NOMEM;
                        goto done;
                    }
                    b->wpid[b->n_wait] = pid;
                    b->warr[b->n_wait] = t;
                    b->n_wait++;
                    if (b->n_wait == n) {
                        b->episodes++;
                        for (int64_t w = 0; w < b->n_wait; w++) {
                            bd[4 * b->wpid[w] + 3] += t - b->warr[w];
                            Ev e = {t, seq++, b->wpid[w]};
                            heap_push(heap, &hn, e);
                        }
                        b->n_wait = 0;
                    }
                    noevent = 1;
                    break;
                } else if (op == 4) { /* LOCK */
                    bd[4 * pid] += 1;
                    Lock *lk;
                    if (lock_of(&locks, arg, &lk)) {
                        st = ST_NOMEM;
                        goto done;
                    }
                    if (lk->holder == -1) {
                        lk->holder = pid;
                        lk->acq++;
                        tn = t + 1;
                    } else if (lk->holder == pid) {
                        st = ST_REACQUIRE;
                        err[0] = pid;
                        goto done;
                    } else {
                        if (lock_enqueue(lk, pid, t)) {
                            st = ST_NOMEM;
                            goto done;
                        }
                        noevent = 1;
                        break;
                    }
                } else { /* UNLOCK */
                    bd[4 * pid] += 1;
                    Lock *lk;
                    if (lock_of(&locks, arg, &lk)) {
                        st = ST_NOMEM;
                        goto done;
                    }
                    if (lk->holder != pid) {
                        st = ST_BAD_RELEASE;
                        err[0] = pid;
                        err[1] = lk->holder;
                        goto done;
                    }
                    if (lk->qn) {
                        int64_t np, arr;
                        lock_dequeue(lk, &np, &arr);
                        lk->holder = np;
                        lk->acq++;
                        lk->cont++;
                        /* enqueue order (self, then next holder) fixes
                         * the tie-break at t+1 */
                        Ev e1 = {t + 1, seq++, pid};
                        heap_push(heap, &hn, e1);
                        bd[4 * np + 3] += t - arr;
                        Ev e2 = {t + 1, seq++, np};
                        heap_push(heap, &hn, e2);
                        noevent = 1;
                        break;
                    }
                    lk->holder = -1;
                    tn = t + 1;
                }
                /* ---- fast path: strictly next, stay on this processor */
                if (tn < hz) {
                    t = tn;
                    continue;
                }
                break;
            }
            ipos[pid] = ip;
            if (finished) {
                finish[pid] = t;
                n_running--;
                noevent = 1;
            }
        }

        /* ---- scheduling tail */
        if (noevent) {
            if (hn == 0) break;
        } else if (tn < hz) { /* retry arm / fresh merge only */
            t = tn;
            continue;
        } else {
            Ev e = {tn, seq++, pid};
            heap_push(heap, &hn, e);
        }
        Ev nx = heap_pop(heap, &hn);
        t = nx.t;
        pid = nx.pid;
        hz = hn ? heap[0].t : T_INF;
        cl = (int)(pid / csize);
        ct = x.ctr + (size_t)cl * NCTR;
        pending = retry[pid];
    }

    /* ---- wrap-up (Engine._finalize semantics) */
    if (n_running > 0) {
        st = ST_DEADLOCK; /* state still exported; python raises */
    } else {
        int64_t mx = 0;
        for (int64_t p = 0; p < n; p++)
            if (finish[p] > mx) mx = finish[p];
        *exec_time = mx;
        for (int64_t p = 0; p < n; p++) bd[4 * p + 3] += mx - finish[p];
    }

    /* ---- export end state (layout mirrored in repro.native.driver) */
    {
        int rc = 0;
#define PUSH(v)                                                            \
    do {                                                                   \
        if ((rc = buf_push(&blob, (int64_t)(v)))) goto export_done;        \
    } while (0)
        PUSH(x.rr_next);
        PUSH(x.ft_n);
        for (int64_t i = 0; i < x.ft_n * 2; i++) PUSH(x.ft[i]);
        PUSH(x.inv_sent);
        PUSH(x.repl_hints);
        PUSH(x.writebacks);
        PUSH(x.dir.live);
        /* directory in python-dict order: the log holds one entry per
         * insert event; a deleted-then-reinserted line's latest entry
         * wins (python moves the key to the end), so scan backwards
         * keeping first sightings of live lines, then emit reversed. */
        {
            Map seen;
            Buf ord;
            memset(&ord, 0, sizeof(ord));
            if ((rc = map_init(&seen, (size_t)x.dir.live * 2 + 16, 0)))
                goto export_done;
            for (int64_t i = x.dir_log.n - 1; i >= 0 && !rc; i--) {
                int64_t k = x.dir_log.v[i];
                if (!map_get(&x.dir, k, NULL, NULL)) continue;
                if (map_get(&seen, k, NULL, NULL)) continue;
                if ((rc = map_put(&seen, k, 0, 0))) break;
                rc = buf_push(&ord, k);
            }
            for (int64_t i = ord.n - 1; i >= 0 && !rc; i--) {
                int64_t a = 0, b = 0;
                map_get(&x.dir, ord.v[i], &a, &b);
                if ((rc = buf_push(&blob, ord.v[i]))) break;
                if ((rc = buf_push(&blob, a))) break;
                rc = buf_push(&blob, b);
            }
            map_free(&seen);
            free(ord.v);
            if (rc) goto export_done;
        }
        for (int64_t clx = 0; clx < ncl; clx++) {
            Cache *c = &x.ca[clx];
            for (int k = 0; k < NCTR; k++)
                PUSH(x.ctr[(size_t)clx * NCTR + k]);
            PUSH(c->evictions);
            PUSH(c->inserts);
            PUSH(c->n_slots);
            PUSH(c->slot_of.live);
            PUSH(c->free_n);
            /* resident lines in LRU order (head = dict-first) */
            for (int64_t s = c->head; s >= 0; s = c->lnext[s]) {
                PUSH(c->tag[s]);
                PUSH(s);
                PUSH(c->state[s]);
                PUSH(c->pending[s]);
                PUSH(c->fetcher[s]);
            }
            for (int64_t i = 0; i < c->free_n; i++) PUSH(c->free_[i]);
            PUSH(x.hist[clx].live);
            /* insert-only map: the log lists each line exactly once, in
             * python-dict (first-insertion) order */
            for (int64_t i = 0; i < x.hist_log[clx].n; i++) {
                int64_t k = x.hist_log[clx].v[i];
                int64_t cause = 0;
                map_get(&x.hist[clx], k, &cause, NULL);
                PUSH(k);
                PUSH(cause);
            }
        }
        PUSH(bars.n);
        for (int64_t i = 0; i < bars.n; i++) {
            Barrier *b = &bars.v[i];
            PUSH(b->id);
            PUSH(b->episodes);
            PUSH(b->n_wait);
            for (int64_t w = 0; w < b->n_wait; w++) {
                PUSH(b->wpid[w]);
                PUSH(b->warr[w]);
            }
        }
        PUSH(locks.n);
        for (int64_t i = 0; i < locks.n; i++) {
            Lock *lk = &locks.v[i];
            PUSH(lk->id);
            PUSH(lk->holder);
            PUSH(lk->acq);
            PUSH(lk->cont);
            PUSH(lk->qn);
            for (int64_t w = 0; w < lk->qn; w++) {
                PUSH(lk->qpid[(lk->qh + w) % lk->qcap]);
                PUSH(lk->qarr[(lk->qh + w) % lk->qcap]);
            }
        }
#undef PUSH
    export_done:
        if (rc) {
            st = ST_NOMEM;
        } else {
            *blob_out = blob.v;
            *blob_len_out = blob.n;
            blob.v = NULL; /* ownership passes to the caller */
        }
    }

done:
    free(blob.v);
    if (x.ca) {
        for (int64_t i = 0; i < ncl; i++) {
            Cache *c = &x.ca[i];
            map_free(&c->slot_of);
            free(c->state);
            free(c->pending);
            free(c->fetcher);
            free(c->tag);
            free(c->lprev);
            free(c->lnext);
            free(c->free_);
        }
        free(x.ca);
    }
    if (x.hist) {
        for (int64_t i = 0; i < ncl; i++) map_free(&x.hist[i]);
        free(x.hist);
    }
    if (x.hist_log) {
        for (int64_t i = 0; i < ncl; i++) free(x.hist_log[i].v);
        free(x.hist_log);
    }
    free(x.ctr);
    free(x.ft);
    free(x.dir_log.v);
    map_free(&x.dir);
    map_free(&x.homes);
    map_free(&x.pages);
    if (bars.v) {
        for (int64_t i = 0; i < bars.n; i++) {
            free(bars.v[i].wpid);
            free(bars.v[i].warr);
        }
        free(bars.v);
    }
    map_free(&bars.ix);
    if (locks.v) {
        for (int64_t i = 0; i < locks.n; i++) {
            free(locks.v[i].qpid);
            free(locks.v[i].qarr);
        }
        free(locks.v);
    }
    map_free(&locks.ix);
    free(heap);
    free(ipos);
    free(retry);
    return st;
}
