"""Stdlib-only build layer for the native replay kernel.

Compiles ``kernel.c`` with whatever C compiler the host offers (``cc`` /
``gcc`` / ``clang``, or an explicit ``REPRO_NATIVE_CC`` override) into a
shared object loaded via :mod:`ctypes` — no new dependencies, no
setuptools.  Artifacts live in an on-disk cache keyed by the source
hash, ABI version, and compiler, so one compile serves every process
and every later invocation; a source or ABI change produces a new key
and a fresh build.  The compile writes to a temp file and publishes
with ``os.replace`` so concurrent builders race benignly.

Environment knobs:

``REPRO_NATIVE_CC``
    Explicit compiler path/name.  A value that does not resolve means
    "no compiler" (used by CI to prove the pure-python fallback).
``REPRO_NATIVE_CACHE``
    Artifact cache directory (default ``~/.cache/repro-clustering/native``).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path

__all__ = ["ABI_VERSION", "BuildError", "artifact_path", "build",
           "cache_dir", "find_compiler", "load", "source_path"]

#: must match ``#define ABI`` in kernel.c; bump on any layout change
ABI_VERSION = 1

_COMPILERS = ("cc", "gcc", "clang")


class BuildError(RuntimeError):
    """Raised when the kernel cannot be built or loaded."""


def source_path() -> Path:
    """Path of the bundled ``kernel.c``."""
    return Path(__file__).resolve().parent / "kernel.c"


def find_compiler() -> str | None:
    """Resolve a usable C compiler, or ``None``.

    ``REPRO_NATIVE_CC`` (when set and non-empty) is authoritative: if it
    does not resolve to an executable there is no compiler, full stop —
    the knob doubles as CI's "mask cc from PATH" switch.
    """
    override = os.environ.get("REPRO_NATIVE_CC")
    if override is not None and override.strip():
        return shutil.which(override)
    if override is not None:  # set but empty: explicit "no compiler"
        return None
    for name in _COMPILERS:
        path = shutil.which(name)
        if path:
            return path
    return None


def cache_dir() -> Path:
    """Artifact cache directory (``REPRO_NATIVE_CACHE`` overrides)."""
    env = os.environ.get("REPRO_NATIVE_CACHE")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-clustering" / "native"


def _source_key(compiler: str) -> str:
    h = hashlib.sha256()
    h.update(source_path().read_bytes())
    h.update(f"|abi={ABI_VERSION}|cc={os.path.basename(compiler)}".encode())
    return h.hexdigest()[:16]


def artifact_path(compiler: str | None = None) -> Path | None:
    """Cached shared-object path for the current source, or ``None``.

    ``None`` means there is no compiler to key the artifact by *and* no
    previously-built artifact to fall back on.
    """
    if compiler is None:
        compiler = find_compiler()
    if compiler is None:
        return None
    return cache_dir() / f"kernel-{_source_key(compiler)}.so"


def build(force: bool = False) -> Path:
    """Build (or reuse) the kernel shared object; returns its path."""
    compiler = find_compiler()
    if compiler is None:
        raise BuildError("no C compiler found (cc/gcc/clang, or set "
                         "REPRO_NATIVE_CC)")
    out = artifact_path(compiler)
    assert out is not None
    if out.exists() and not force:
        return out
    out.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(suffix=".so", dir=str(out.parent))
    os.close(fd)
    cmd = [compiler, "-O2", "-shared", "-fPIC", "-o", tmp,
           str(source_path())]
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True)
        if proc.returncode != 0:
            raise BuildError(
                f"kernel compile failed ({' '.join(cmd)}):\n{proc.stderr}")
        os.replace(tmp, out)  # atomic publish; concurrent builds race OK
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)
    return out


def load() -> ctypes.CDLL:
    """Build if needed, load via ctypes, and verify the ABI stamp."""
    path = build()
    try:
        lib = ctypes.CDLL(str(path))
    except OSError as exc:
        raise BuildError(f"cannot load kernel {path}: {exc}") from exc
    lib.repro_abi.restype = ctypes.c_int64
    lib.repro_abi.argtypes = []
    abi = lib.repro_abi()
    if abi != ABI_VERSION:
        raise BuildError(
            f"kernel {path} reports ABI {abi}, expected {ABI_VERSION}")
    p = ctypes.POINTER(ctypes.c_int64)
    lib.repro_replay.restype = ctypes.c_int64
    lib.repro_replay.argtypes = [
        ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,   # n, ncl, csize
        ctypes.POINTER(p), ctypes.POINTER(p), p,          # ops, args, lens
        ctypes.c_int64,                                   # cap
        ctypes.c_int64, ctypes.c_int64,                   # l_lc, l_rc
        ctypes.c_int64, ctypes.c_int64,                   # l_ldr, l_rd3
        ctypes.c_int64, ctypes.c_int64,                   # lpp, rr_next
        p, p, ctypes.c_int64,                             # page_home, n_ph
        p, p, p, p,                   # finish, breakdowns, exec_time, err
        ctypes.POINTER(p), p,                             # blob, blob_len
    ]
    lib.repro_release.restype = None
    lib.repro_release.argtypes = [p]
    return lib
