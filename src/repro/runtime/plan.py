"""Declarative run descriptions: what to simulate, resolved how.

:class:`RunRequest` is the canonical "one sweep point" value — which
application, at which cluster size and cache size, with which problem
kwargs, optionally under which interconnect model.  It is frozen,
hashable, order-insensitive in its kwargs, and cheap to pickle, so the
same object flows untouched from grid construction through result-cache
keying to process-pool submission.  ``repro.core.executor.PointSpec`` is
an alias of this class: historical call sites keep working, new code
names the runtime type.

:class:`RunPlan` is a request *resolved* against a base
:class:`~repro.core.config.MachineConfig` — the concrete machine the
point will run on, plus the execution policy (compiled-trace replay or
direct generator drive).  :class:`~repro.runtime.session.RunSession`
consumes plans; everything above it consumes requests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Mapping

if TYPE_CHECKING:  # pragma: no cover
    from ..core.config import MachineConfig, NetworkConfig

__all__ = ["RunRequest", "RunPlan"]


@dataclass(frozen=True)
class RunRequest:
    """One sweep point: which app on which machine organisation.

    ``app_kwargs`` is stored as a sorted tuple of items so requests are
    hashable, order-insensitive, and cheap to pickle across processes.
    Build instances with :meth:`make` (which accepts a plain dict).

    ``network`` optionally overrides the base config's interconnect model
    for this point — the contention sweep varies it per point the way
    cluster and cache size always varied.  ``None`` inherits the base.

    ``protocol`` optionally overrides the base config's coherence
    protocol for this point — the protocol sweep varies it per point.
    ``None`` inherits the base (normally ``"directory"``).
    """

    app: str
    cluster_size: int
    cache_kb: float | int | None
    app_kwargs: tuple[tuple[str, Any], ...] = ()
    network: NetworkConfig | None = None
    protocol: str | None = None

    @classmethod
    def make(cls, app: str, cluster_size: int, cache_kb: float | int | None,
             app_kwargs: Mapping[str, Any] | None = None,
             network: NetworkConfig | None = None,
             protocol: str | None = None) -> "RunRequest":
        return cls(app, int(cluster_size), cache_kb,
                   tuple(sorted((app_kwargs or {}).items())), network,
                   protocol)

    @property
    def kwargs(self) -> dict[str, Any]:
        """The app kwargs as a plain dict."""
        return dict(self.app_kwargs)

    def config_for(self, base: MachineConfig) -> MachineConfig:
        """The machine this point runs on, derived from a base template."""
        config = base.with_clusters(self.cluster_size).with_cache_kb(
            None if self.cache_kb is None else float(self.cache_kb))
        if self.network is not None:
            config = config.with_network(self.network)
        if self.protocol is not None:
            config = config.with_protocol(self.protocol)
        return config

    def describe(self) -> str:
        cache = "inf" if self.cache_kb is None else f"{self.cache_kb:g}k"
        kw = (", ".join(f"{k}={v}" for k, v in self.app_kwargs)
              if self.app_kwargs else "defaults")
        net = ""
        if self.network is not None:
            net = (f", {self.network.provider} net "
                   f"@ load {self.network.background_load:g}")
        proto = "" if self.protocol is None else f", {self.protocol}"
        return (f"{self.app} @ {self.cluster_size}/cluster, cache {cache}"
                f"{net}{proto} ({kw})")

    def resolve(self, base_config: MachineConfig | None = None,
                use_compiled: bool = True) -> "RunPlan":
        """Shorthand for :meth:`RunPlan.resolve` on this request."""
        return RunPlan.resolve(self, base_config, use_compiled=use_compiled)


@dataclass(frozen=True)
class RunPlan:
    """A :class:`RunRequest` bound to the concrete machine it runs on.

    ``config`` is fully resolved — cluster count, cache sizing, and any
    per-point network override already applied — so the session never
    re-derives machine parameters.  ``use_compiled`` selects the
    execution policy: compiled-trace replay (the default; bit-identical
    to generator execution and much faster across a grid) or direct
    generator drive (required when the run substitutes a non-standard
    memory system whose captures must not enter the shared trace cache).
    """

    request: RunRequest
    config: MachineConfig
    use_compiled: bool = True

    @classmethod
    def resolve(cls, request: RunRequest,
                base_config: MachineConfig | None = None,
                use_compiled: bool = True) -> "RunPlan":
        """Bind ``request`` to ``base_config`` (default machine if None)."""
        # deferred import: this module must not pull in repro.core at
        # import time — repro.core.executor aliases PointSpec to
        # RunRequest at module level, and an eager import here would
        # close that cycle on a partially-initialized module
        from ..core.config import MachineConfig

        base = base_config or MachineConfig()
        return cls(request=request, config=request.config_for(base),
                   use_compiled=use_compiled)
