"""RunSession: the one canonical pipeline from request to result.

Every entry layer — the CLI, :class:`~repro.core.study.ClusteringStudy`,
all :class:`~repro.core.executor.SweepExecutor` backends, and the
benchmark harness — funnels through this module.  A session performs,
in order:

1. **resolve** — bind the :class:`~repro.runtime.plan.RunRequest` to the
   base machine config (:meth:`RunPlan.resolve`);
2. **build** — construct the application and run its setup (allocation,
   placement, problem construction);
3. **trace acquisition** — look the compiled reference stream up in the
   trace cache (``trace-hit``) or capture it (``capture``), honouring
   :attr:`~repro.apps.base.Application.stream_invariant`;
4. **execute** — drive the engine (replay or generator) and assemble the
   :class:`~repro.core.metrics.RunResult`.

The operation sequence is byte-for-byte the historical
``evaluate_point`` pipeline; attaching a
:class:`~repro.runtime.hooks.RunObserver` adds timestamps and phase
events around the same calls without reordering them, so observed and
unobserved runs are bit-identical (pinned by ``tests/test_runtime.py``).

:meth:`RunSession.run_detailed` is the explicit-wiring variant for
tools that need the memory system afterwards (reference tracing,
working-set residency, snoopy-vs-directory comparison, load-latency
calibration): it accepts a ``memory_factory`` and always drives the
generator path, keeping non-standard memory systems out of the shared
trace cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from .hooks import RunObserver, _Clock
from .plan import RunPlan, RunRequest

if TYPE_CHECKING:  # pragma: no cover
    from ..apps.base import Application
    from ..core.config import MachineConfig
    from ..core.metrics import RunResult
    from ..sim.compiled import CompiledProgram, TraceCache

__all__ = ["RunOutcome", "RunSession"]


@dataclass
class RunOutcome:
    """Everything a finished pipeline pass produced.

    ``result`` is always set.  ``memory`` is the memory system the run
    used when the session wired it explicitly (:meth:`RunSession.run_detailed`);
    the canonical pipeline lets the application own its memory system and
    leaves this ``None``.  ``program`` is the compiled trace that was
    replayed or captured (``None`` on pure generator runs), and
    ``from_cache`` marks traces served from the trace cache.
    """

    plan: RunPlan
    result: RunResult
    app: "Application"
    memory: Any = None
    program: "CompiledProgram | None" = None
    from_cache: bool = False

    @property
    def request(self) -> RunRequest:
        return self.plan.request

    @property
    def config(self) -> MachineConfig:
        return self.plan.config


@dataclass
class RunSession:
    """Executes :class:`RunRequest`\\ s through the canonical pipeline.

    Parameters
    ----------
    base_config:
        Machine template requests resolve against (default machine when
        ``None``).  Per-request cluster/cache/network settings are
        applied on top.
    trace_cache:
        Optional :class:`~repro.sim.compiled.TraceCache`; compiled
        streams are served from and written back to it.  ``None`` makes
        every run capture its own stream.
    use_compiled:
        Execute by compiled-trace replay (default) or drive the
        generators directly on every run (bit-identical, slower).
    observer:
        Optional :class:`~repro.runtime.hooks.RunObserver`.  When
        ``None`` the pipeline takes no timestamps — detached sessions
        add zero work to the historical path.
    replayer:
        Optional replay engine override, ``replayer(config, app,
        program) -> RunResult | None``.  When set, every compiled-trace
        replay of the pipeline (trace hits *and* fresh captures) is
        offered to it first; returning ``None`` falls back to the
        canonical :meth:`Application.run` replay.  A replayer must be
        result-exact — the seam exists for the batched lockstep kernel
        (:mod:`repro.sim.batch`), which is pinned byte-identical —
        and is never consulted on generator-path or
        :meth:`run_detailed` executions.
    """

    base_config: MachineConfig | None = None
    trace_cache: "TraceCache | None" = field(default=None, repr=False)
    use_compiled: bool = True
    observer: RunObserver | None = field(default=None, repr=False)
    replayer: "Callable[[MachineConfig, Application, CompiledProgram], RunResult | None] | None" = \
        field(default=None, repr=False)

    # ------------------------------------------------------------------ API
    def run(self, request: RunRequest) -> RunResult:
        """Run one request; the result-only view of :meth:`run_plan`."""
        return self.run_plan(self.resolve(request)).result

    def resolve(self, request: RunRequest) -> RunPlan:
        """Bind a request to this session's base machine config."""
        return RunPlan.resolve(request, self.base_config,
                               use_compiled=self.use_compiled)

    def run_plan(self, plan: RunPlan) -> RunOutcome:
        """Execute a resolved plan through the canonical pipeline."""
        obs = self.observer
        clock = _Clock() if obs is not None else None
        if obs is not None:
            obs.on_phase("resolve", clock.lap(),
                         {"config": plan.config.describe()})

        from ..apps.registry import build_app  # deferred: avoids import cycle

        request = plan.request
        app = build_app(request.app, plan.config, **request.kwargs)
        app.ensure_setup()
        if obs is not None:
            obs.on_phase("build", clock.lap(), {"app": request.app})

        if not plan.use_compiled:
            result = app.run()
            outcome = RunOutcome(plan, result, app)
            return self._finish(outcome, clock)

        from ..sim.compiled import trace_key  # deferred: avoids import cycle

        key = trace_key(request.app, request.kwargs, plan.config, app.seed,
                        stream_invariant=app.stream_invariant)
        cache = self.trace_cache
        program = cache.get(key) if cache is not None else None
        if program is not None:
            if obs is not None:
                obs.on_phase("trace-hit", clock.lap(),
                             {"ops": program.total_ops,
                              "mapped": program.mapped})
            result = self._replay(plan, app, program)
            outcome = RunOutcome(plan, result, app, program=program,
                                 from_cache=True)
            return self._finish(outcome, clock)
        if app.stream_invariant:
            program = app.compiled_program()
            if cache is not None:
                cache.put(key, program)
            if obs is not None:
                obs.on_phase("capture", clock.lap(),
                             {"ops": program.total_ops,
                              "source_ops": program.source_ops})
            result = self._replay(plan, app, program)
            outcome = RunOutcome(plan, result, app, program=program)
            return self._finish(outcome, clock)
        # dynamic task-queue app: the stream is decided by the run itself,
        # so capture during generator execution; the capture replays
        # bit-identically at this exact configuration only (the trace key
        # covers the full config)
        result, program = app.run_recorded()
        if cache is not None:
            cache.put(key, program)
        outcome = RunOutcome(plan, result, app, program=program)
        return self._finish(outcome, clock)

    def run_detailed(self, request: RunRequest, *,
                     memory_factory: "Callable[[MachineConfig, Application], Any] | None" = None,
                     program: "CompiledProgram | None" = None,
                     read_hit_cycles: int = 1,
                     max_cycles: int | None = None,
                     heap_fast_path: bool = True) -> RunOutcome:
        """Run with explicit memory wiring; returns the memory system.

        ``memory_factory(config, app)`` builds the memory system the run
        uses (default: whatever backend ``config.protocol`` selects via
        :func:`~repro.memory.make_memory_system`), so probes
        can substitute tracing wrappers, snoopy protocols, or a perfect
        memory with a fixed ``read_hit_cycles``.  The trace cache is never
        consulted or written — a capture under a non-standard memory
        system or latency model must not masquerade as the canonical
        stream.  Pass ``program`` to replay an explicit compiled trace
        instead of driving the generators.
        """
        obs = self.observer
        clock = _Clock() if obs is not None else None
        plan = RunPlan.resolve(request, self.base_config,
                               use_compiled=program is not None)
        if obs is not None:
            obs.on_phase("resolve", clock.lap(),
                         {"config": plan.config.describe()})

        from ..apps.registry import build_app  # deferred: avoids import cycle

        app = build_app(request.app, plan.config, **request.kwargs)
        app.ensure_setup()
        if obs is not None:
            obs.on_phase("build", clock.lap(), {"app": request.app})

        from ..memory import make_memory_system
        from ..sim.engine import execute_program

        # memory construction belongs to the execute phase: benchmark
        # floors time "build the memory system + run the engine" as one
        # region, and the observer must report the same region
        if memory_factory is not None:
            memory = memory_factory(plan.config, app)
        else:
            memory = make_memory_system(plan.config, app.allocator)
        result = execute_program(plan.config, memory,
                                 program if program is not None
                                 else app.program,
                                 compiled=program is not None,
                                 read_hit_cycles=read_hit_cycles,
                                 max_cycles=max_cycles,
                                 heap_fast_path=heap_fast_path)
        outcome = RunOutcome(plan, result, app, memory=memory,
                             program=program)
        return self._finish(outcome, clock)

    # ------------------------------------------------------------ internals
    def _replay(self, plan: RunPlan, app: "Application",
                program: "CompiledProgram") -> RunResult:
        """Replay a compiled trace, honouring the :attr:`replayer` seam.

        With no replayer installed (or when it declines), the native C
        kernel serves the point when selected and eligible
        (:func:`~repro.sim.nativereplay.try_replay_native` — byte-
        identical to the canonical replay), so single runs benefit from
        the kernel exactly as ``--batch`` sweeps do.
        """
        if self.replayer is not None:
            result = self.replayer(plan.config, app, program)
            if result is not None:
                return result
        from ..sim.nativereplay import try_replay_native
        result = try_replay_native(plan.config, app, program)
        if result is not None:
            return result
        return app.run(program=program)

    def _finish(self, outcome: RunOutcome, clock: _Clock | None) -> RunOutcome:
        obs = self.observer
        if obs is not None:
            result = outcome.result
            obs.on_phase("execute", clock.lap(),
                         {"references": result.misses.references,
                          "cycles": result.execution_time})
            obs.on_result(outcome.plan, result)
        return outcome
