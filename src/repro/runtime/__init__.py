"""Canonical run pipeline: declarative requests, one session, probes.

Every simulation in this repository is the same lifecycle — resolve a
machine configuration, build an application, acquire (or capture) its
compiled reference stream, drive the engine, assemble a
:class:`~repro.core.metrics.RunResult`.  This package owns that lifecycle
end to end:

* :mod:`repro.runtime.plan` — :class:`RunRequest` (the declarative "what
  to run": app, cluster size, cache size, problem kwargs, network
  override) and :class:`RunPlan` (the request resolved against a base
  :class:`~repro.core.config.MachineConfig`);
* :mod:`repro.runtime.session` — :class:`RunSession`, which executes
  requests through the one canonical pipeline (the code path the sweep
  executor, the CLI, the study driver, and the benchmark harness all
  funnel through);
* :mod:`repro.runtime.hooks` — the :class:`RunObserver` probe protocol
  (phase transitions, per-point timing, result counters) plus the
  built-in :class:`TimingObserver` behind ``repro-clustering run --probe
  timing``.  With no observer attached the pipeline takes no timestamps
  and emits no events — the fast path is unchanged.

Layering: ``runtime`` sits above ``apps``/``sim``/``memory``/``network``
and below ``core`` (the sweep/caching machinery), so any backend —
serial, process pool, fork server, or future remote executors — composes
the same pipeline instead of re-wiring engines by hand.
"""

from .hooks import RunObserver, TimingObserver
from .plan import RunPlan, RunRequest
from .session import RunOutcome, RunSession

__all__ = ["RunRequest", "RunPlan", "RunObserver", "TimingObserver",
           "RunOutcome", "RunSession"]
