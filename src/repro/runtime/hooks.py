"""Probe protocol for the run pipeline: observers over session phases.

A :class:`RunObserver` attached to a :class:`~repro.runtime.session.RunSession`
hears the pipeline's phase transitions (``resolve`` → ``build`` →
``capture``/``trace-hit`` → ``execute``), each with its wall-clock
duration and a small info mapping (event counts, cache disposition,
miss/coherence counters).  The contract is deliberately one-way and
post-hoc: observers never influence execution — a session with an
observer produces byte-identical results to one without, which the
parity tests pin.

Zero-cost when detached: the session takes no timestamps and builds no
info dicts unless an observer is attached, so the hot path of a sweep
(thousands of points, no probes) is exactly the historical code path.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any, Mapping

if TYPE_CHECKING:  # pragma: no cover
    from ..core.metrics import RunResult
    from .plan import RunPlan

__all__ = ["RunObserver", "TimingObserver"]


class RunObserver:
    """Base observer: every hook is a no-op; subclass what you need.

    Hooks
    -----
    ``on_phase(name, elapsed_s, info)``
        One pipeline phase finished.  ``name`` is one of ``"resolve"``,
        ``"build"``, ``"capture"``, ``"trace-hit"``, ``"execute"``;
        ``elapsed_s`` is its wall-clock duration; ``info`` carries
        phase-specific facts (see :class:`~repro.runtime.session.RunSession`).
    ``on_result(plan, result)``
        The run finished; ``result`` is the canonical
        :class:`~repro.core.metrics.RunResult` (miss counters, time
        breakdown, optional network stats — the full post-run record).
    """

    def on_phase(self, name: str, elapsed_s: float,
                 info: Mapping[str, Any]) -> None:  # pragma: no cover
        pass

    def on_result(self, plan: "RunPlan",
                  result: "RunResult") -> None:  # pragma: no cover
        pass


class TimingObserver(RunObserver):
    """Built-in probe: record per-phase wall-clock and phase info.

    Backs ``repro-clustering run --probe timing`` and the benchmark
    harness (which reads :meth:`elapsed` instead of wrapping the engine
    in its own timers).  Reusable across runs via :meth:`reset`.
    """

    def __init__(self) -> None:
        self.phases: list[tuple[str, float, dict[str, Any]]] = []
        self.result: "RunResult | None" = None

    # ------------------------------------------------------------- protocol
    def on_phase(self, name: str, elapsed_s: float,
                 info: Mapping[str, Any]) -> None:
        self.phases.append((name, elapsed_s, dict(info)))

    def on_result(self, plan: "RunPlan", result: "RunResult") -> None:
        self.result = result

    # -------------------------------------------------------------- queries
    def reset(self) -> None:
        """Forget everything recorded; ready for the next run."""
        self.phases.clear()
        self.result = None

    def elapsed(self, name: str) -> float:
        """Total wall-clock of every recorded phase called ``name``."""
        return sum(t for n, t, _ in self.phases if n == name)

    def total(self) -> float:
        """Wall-clock across all recorded phases."""
        return sum(t for _, t, _ in self.phases)

    def format(self) -> str:
        """Human-readable per-phase report (the ``--probe timing`` output)."""
        lines = []
        for name, elapsed_s, info in self.phases:
            extras = " ".join(f"{k}={v}" for k, v in sorted(info.items()))
            lines.append(f"  {name:<10} {elapsed_s * 1e3:10.2f} ms"
                         + (f"   {extras}" if extras else ""))
        lines.append(f"  {'total':<10} {self.total() * 1e3:10.2f} ms")
        return "\n".join(lines)


class _Clock:
    """Tiny phase stopwatch the session uses when an observer is attached."""

    __slots__ = ("_t0",)

    def __init__(self) -> None:
        self._t0 = time.perf_counter()

    def lap(self) -> float:
        now = time.perf_counter()
        elapsed = now - self._t0
        self._t0 = now
        return elapsed
