"""Command-line experiment driver.

Examples::

    repro-clustering run ocean --clusters 4 --cache 16
    repro-clustering fig2 --apps ocean lu --quick
    repro-clustering fig3
    repro-clustering fig4            # raytrace capacity sweep
    repro-clustering table4
    repro-clustering table5 --measure
    repro-clustering table6 --quick
    repro-clustering workingset barnes
    repro-clustering network ocean --quick --loads 0,0.5,0.8

``--quick`` shrinks problem sizes (~10× fewer cycles) for sanity runs;
``--paper-scale`` selects the paper's Table 2 sizes.  Everything prints the
paper-format numeric tables plus an ASCII rendering of the figures.

Execution control (see ``docs/EXECUTION.md``):

* ``--jobs N`` fans the sweep grid out over ``N`` worker processes
  (results are byte-identical to the serial run — the simulator is
  deterministic);
* ``--batch`` switches to batched lockstep replay: sweep points that
  share a compiled trace are grouped and driven over one decode of the
  trace columns (still byte-identical; dynamic apps fall through to
  per-point replay);
* ``--native`` forces the native C replay kernel (exit 2 when it cannot
  be built), ``--no-native`` forces the pure-python kernels; with
  neither flag the kernel auto-selects (native when a compiler or cached
  artifact is available).  Results are byte-identical either way;

* finished points are memoized in a persistent on-disk cache
  (``~/.cache/repro-clustering`` or ``$REPRO_CACHE_DIR``); a repeated
  command is served from cache.  ``--no-cache`` bypasses it,
  ``--cache-dir`` relocates it.  Hit/miss counts are logged to stderr.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Any

from .analysis import (contention_slowdown, figure_from_capacity_sweep,
                       figure_from_cluster_sweep,
                       figure_from_contention_sweep,
                       figure_from_protocol_sweep, merge_anatomy,
                       miss_breakdown, render_ascii, render_cost_table,
                       render_miss_breakdown, render_protocol_comparison,
                       render_rows, render_scaling,
                       render_shape_comparison, render_slowdown,
                       render_table1, render_table4, render_table5)
from .apps.registry import (APP_NAMES, PAPER_PROBLEM_SIZES,
                            QUICK_PROBLEM_SIZES)
from .core.config import (PAPER_CACHE_SIZES_KB, PAPER_CLUSTER_SIZES,
                          PAPER_NETWORK_LOADS, PROTOCOLS, MachineConfig)
from .core.contention import (PAPER_TABLE5, ExpansionTable,
                              LoadLatencyProfiler, SharedCacheCostModel)
from .core.executor import (SweepExecutionError, SweepExecutor,
                            fork_available)
from .core.resultcache import ResultCache, TraceStore
from .core.study import ClusteringStudy, cache_label
from .core.workingset import knee_of, working_set_curve
from .runtime import RunRequest, RunSession, TimingObserver
from .service import ServiceDaemon, SweepService
from .sim.compiled import TraceCache
from .sim.stats import summarize

__all__ = ["main", "QUICK_PROBLEM_SIZES"]
# QUICK_PROBLEM_SIZES now lives in apps.registry (imported above and
# re-exported here for existing callers)

#: figure number -> application of the paper's finite-capacity figures
CAPACITY_FIGURES = {4: "raytrace", 5: "mp3d", 6: "barnes", 7: "fmm",
                    8: "volrend"}


def _app_kwargs(name: str, args: argparse.Namespace) -> dict[str, Any]:
    if getattr(args, "paper_scale", False):
        return dict(PAPER_PROBLEM_SIZES.get(name, {}))
    if getattr(args, "quick", False):
        return dict(QUICK_PROBLEM_SIZES.get(name, {}))
    return {}


def _base_config(args: argparse.Namespace) -> MachineConfig:
    return MachineConfig(n_processors=args.processors,
                         protocol=getattr(args, "protocol", "directory"))


def _native_selection(args: argparse.Namespace) -> bool | None:
    """Resolve ``--native/--no-native`` into a kernel selection.

    Exits 2 on a contradictory pair, and on ``--native`` when the C
    kernel cannot be built — a forced selection must fail up front, not
    degrade mid-sweep.  Returns ``True``/``False``/``None`` (auto).
    """
    import os

    import repro.native as native

    from .sim.nativereplay import NATIVE_PROTOCOLS

    if args.native and args.no_native:
        print("repro-clustering: --native and --no-native are mutually "
              "exclusive", file=sys.stderr)
        raise SystemExit(2)
    protocol = getattr(args, "protocol", "directory")
    if args.native and protocol not in NATIVE_PROTOCOLS:
        # a forced kernel selection must refuse an unimplemented
        # protocol up front, not silently run the python path
        print(f"repro-clustering: --native: the C kernel implements "
              f"{', '.join(sorted(NATIVE_PROTOCOLS))} only, not "
              f"'{protocol}'; drop --native (auto selection degrades "
              f"to the python engine)", file=sys.stderr)
        raise SystemExit(2)
    if args.native:
        prev = os.environ.get("REPRO_NATIVE")
        native.set_native(True)
        try:
            native.kernel()
        except RuntimeError as exc:
            if prev is None:
                os.environ.pop("REPRO_NATIVE", None)
            else:
                os.environ["REPRO_NATIVE"] = prev
            print(f"repro-clustering: --native: {exc}", file=sys.stderr)
            raise SystemExit(2)
        return True
    if args.no_native:
        return False
    return None


def _executor(args: argparse.Namespace) -> SweepExecutor:
    """One executor per invocation, built from the global flags."""
    executor = getattr(args, "_executor", None)
    if executor is None:
        cache = None if args.no_cache else ResultCache(args.cache_dir)
        # compiled traces: always at least the in-process LRU; the disk
        # tier (shared with --jobs workers and later invocations) follows
        # the result cache's location and --no-cache switch
        store = None if args.no_cache else TraceStore(args.cache_dir)
        jobs = args.jobs or 1
        backend = "serial"
        if jobs > 1:
            backend = "fork" if args.fork_server else "process"
        if args.fork_server and not fork_available():
            print("repro-clustering: --fork-server needs the 'fork' start "
                  "method, which this platform does not provide",
                  file=sys.stderr)
            raise SystemExit(2)
        if args.batch and args.no_cache:
            # batching needs the disk trace store: groups dispatched to
            # worker processes share their one decode via the store, and
            # an LRU-only cache would silently degrade every group to a
            # per-worker recapture — refuse instead
            print("repro-clustering: --batch needs the persistent trace "
                  "store, which --no-cache disables; drop one of the two "
                  "flags", file=sys.stderr)
            raise SystemExit(2)
        if args.batch and args.timeout is not None:
            print("repro-clustering: --batch evaluates whole trace-key "
                  "groups per dispatch, so the per-point --timeout cannot "
                  "be enforced; drop one of the two flags", file=sys.stderr)
            raise SystemExit(2)
        executor = SweepExecutor(
            backend=backend,
            max_workers=jobs if jobs > 1 else None,
            timeout=args.timeout, cache=cache,
            trace_cache=TraceCache(store), batch=args.batch,
            native=_native_selection(args))
        args._executor = executor
    return executor


def _study(app: str, args: argparse.Namespace) -> ClusteringStudy:
    return ClusteringStudy(app, _base_config(args), _app_kwargs(app, args),
                           executor=_executor(args))


def _cache_arg(value: str) -> float | None:
    """Parse one cache size: positive KB or ``'inf'``/``'none'``.

    Used as an argparse ``type=`` converter, so a bad value is a usage
    error (exit code 2), not a mid-command traceback.
    """
    if value in ("inf", "none"):
        return None
    try:
        kb = float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a cache size in KB or 'inf', got {value!r}")
    if kb <= 0:
        raise argparse.ArgumentTypeError(
            f"cache size must be > 0 KB (or 'inf'), got {value}")
    return kb


def _cache_list(value: str) -> list[float | None]:
    sizes = [_cache_arg(v) for v in value.split(",") if v]
    if not sizes:
        raise argparse.ArgumentTypeError("expected at least one cache size")
    return sizes


def _int_list(value: str) -> list[int]:
    """Comma-separated positive ints (sweep sizes are counts, never <= 0)."""
    try:
        sizes = [int(v) for v in value.split(",") if v]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated integers, got {value!r}")
    if not sizes:
        raise argparse.ArgumentTypeError("expected at least one size")
    for n in sizes:
        if n < 1:
            raise argparse.ArgumentTypeError(
                f"sizes must be >= 1, got {n}")
    return sizes


def _positive_int(value: str) -> int:
    n = int(value)
    if n < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {n}")
    return n


def _positive_float(value: str) -> float:
    x = float(value)
    if x <= 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {value}")
    return x


def _load_list(value: str) -> list[float]:
    loads = [float(v) for v in value.split(",") if v]
    for load in loads:
        if not (0.0 <= load < 1.0):
            raise argparse.ArgumentTypeError(
                f"loads must be in [0, 1), got {load:g}")
    return loads


def cmd_run(args: argparse.Namespace) -> int:
    config = _base_config(args).with_clusters(args.clusters).with_cache_kb(
        args.cache)
    if args.probe == "timing":
        # probe runs bypass the result cache (a cache hit would time
        # nothing) but still share the invocation's trace cache
        observer = TimingObserver()
        session = RunSession(base_config=_base_config(args),
                             trace_cache=_executor(args).trace_cache,
                             observer=observer)
        request = RunRequest.make(args.app, args.clusters, args.cache,
                                  _app_kwargs(args.app, args))
        t0 = time.time()
        result = session.run(request)
        print(f"# {args.app} on {config.describe()}"
              f"  [{time.time() - t0:.1f}s]")
        print(summarize(result).format())
        print("# probe: timing (pipeline phases)")
        print(observer.format())
        return 0
    study = _study(args.app, args)
    t0 = time.time()
    point = study.run_point(args.clusters, args.cache)
    print(f"# {args.app} on {config.describe()}  [{time.time() - t0:.1f}s]")
    print(summarize(point.result).format())
    return 0


def cmd_fig2(args: argparse.Namespace) -> int:
    apps = args.apps or list(APP_NAMES)
    for app in apps:
        study = _study(app, args)
        t0 = time.time()
        sweep = study.cluster_sweep(None, args.cluster_sizes)
        fig = figure_from_cluster_sweep(
            f"Figure 2 ({app}): infinite caches", sweep)
        print(render_rows(fig))
        if args.ascii:
            print(render_ascii(fig))
        print(render_miss_breakdown(miss_breakdown(sweep), f"{app}: misses"))
        print(f"[{time.time() - t0:.1f}s]\n")
    return 0


def cmd_fig3(args: argparse.Namespace) -> int:
    kwargs = _app_kwargs("ocean", args)
    kwargs.setdefault("n", 64)  # the paper's "smaller 66-by-66 grid"
    study = ClusteringStudy("ocean", _base_config(args), kwargs,
                            executor=_executor(args))
    sizes = list(args.cluster_sizes) + [args.processors]  # 'inf' bar
    sweep = study.cluster_sweep(None, sizes)
    fig = figure_from_cluster_sweep(
        "Figure 3: Ocean, infinite cache, small problem", sweep)
    print(render_rows(fig))
    if args.ascii:
        print(render_ascii(fig))
    return 0


def cmd_capacity_figure(args: argparse.Namespace, fignum: int) -> int:
    app = CAPACITY_FIGURES[fignum]
    study = _study(app, args)
    t0 = time.time()
    sweep = study.capacity_sweep(args.cache_sizes, args.cluster_sizes)
    fig = figure_from_capacity_sweep(
        f"Figure {fignum}: finite capacity effects for {app}", sweep)
    print(render_rows(fig))
    if args.ascii:
        print(render_ascii(fig))
    print(f"[{time.time() - t0:.1f}s]")
    return 0


def cmd_table1(args: argparse.Namespace) -> int:
    print(render_table1())
    return 0


def cmd_table4(args: argparse.Namespace) -> int:
    print(render_table4())
    return 0


def cmd_table5(args: argparse.Namespace) -> int:
    tables = {name: ExpansionTable(f) for name, f in PAPER_TABLE5.items()}
    print(render_table5(tables, "Table 5 (paper, Pixie-measured)"))
    if args.measure:
        profiler = LoadLatencyProfiler(_base_config(args))
        measured = {}
        for app in tables:
            profiler.app_kwargs = _app_kwargs(app, args)
            t0 = time.time()
            measured[app] = profiler.measure(app)
            print(f"  measured {app} [{time.time() - t0:.1f}s]",
                  file=sys.stderr)
        print(render_table5(
            measured, "Table 5 (measured on this engine, no delay-slot "
            "scheduling — upper bounds)"))
    return 0


def _cost_rows(apps: list[str], cache_kb: float | None,
               args: argparse.Namespace):
    model = SharedCacheCostModel()
    rows = []
    for app in apps:
        rows.append(model.evaluate(app, cache_kb, _base_config(args),
                                   args.cluster_sizes,
                                   _app_kwargs(app, args),
                                   executor=_executor(args)))
    return rows


def cmd_table6(args: argparse.Namespace) -> int:
    rows = _cost_rows(["barnes", "radix", "volrend", "mp3d"], 4.0, args)
    print(render_cost_table(
        rows, "Table 6: Relative Execution Time of Clustering with 4KB "
        "Caches (shared-cache costs included)"))
    return 0


def cmd_table7(args: argparse.Namespace) -> int:
    rows = _cost_rows(["ocean", "lu"], None, args)
    print(render_cost_table(
        rows, "Table 7: Relative Execution Time of Clustering with "
        "Infinite Caches (shared-cache costs included)"))
    return 0


def cmd_workingset(args: argparse.Namespace) -> int:
    sizes = list(args.cache_sizes)
    if None not in sizes:
        sizes.append(None)  # always anchor with the infinite cache
    curve = working_set_curve(args.app, sizes_kb=sizes,
                              cluster_size=args.clusters,
                              base_config=_base_config(args),
                              app_kwargs=_app_kwargs(args.app, args),
                              executor=_executor(args))
    print(f"# working set of {args.app} (cluster size {args.clusters})")
    for label, rate, cap in curve.rows():
        print(f"{label:>8}  miss rate {rate:8.4f}  capacity misses {cap:>10,}")
    knee = knee_of(curve)
    print(f"knee: {'beyond probed sizes' if knee is None else f'{knee:g} KB'}")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    """Shared-cache vs snoopy shared-memory cluster, same budget."""
    from .memory import make_memory_system

    session = RunSession(base_config=_base_config(args))
    request = RunRequest.make(args.app, args.clusters, args.cache,
                              _app_kwargs(args.app, args))

    outcome = session.run_detailed(request)
    shared = outcome.result
    print(f"# shared-cache cluster: {outcome.config.describe()}")
    print(summarize(shared).format())

    outcome = session.run_detailed(
        request,
        memory_factory=lambda cfg, app: make_memory_system(
            cfg.with_protocol("snoopy"), app.allocator))
    snoopy = outcome.result
    print("\n# snoopy shared-memory cluster (same budget)")
    print(summarize(snoopy).format())
    print(f"cache-to-cache transfers: {outcome.memory.c2c_transfers:,}")
    ratio = snoopy.execution_time / max(shared.execution_time, 1)
    print(f"\nsnoopy / shared-cache execution time: {ratio:.3f}")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Record a reference trace and report its statistics."""
    from .memory.coherence import CoherentMemorySystem
    from .sim.trace import TracingMemory

    session = RunSession(base_config=_base_config(args))
    request = RunRequest.make(args.app, args.clusters, args.cache,
                              _app_kwargs(args.app, args))
    outcome = session.run_detailed(
        request,
        memory_factory=lambda cfg, app: TracingMemory(
            CoherentMemorySystem(cfg, app.allocator)))
    config = outcome.config
    trace = outcome.memory.trace()
    summary = trace.summary()
    print(f"# trace of {args.app} on {config.describe()}")
    for key, value in summary.items():
        print(f"  {key:>15}: {value:,}")
    print(f"  {'footprint':>15}: {trace.footprint_bytes(config.line_size):,}"
          f" bytes")
    if args.output:
        trace.save(args.output)
        print(f"saved to {args.output}")
    return 0


def cmd_network(args: argparse.Namespace) -> int:
    """Contention-sensitivity sweep under the mesh interconnect model."""
    cache = args.cache
    loads = sorted(set(args.loads) | {0.0})  # 0 anchors both checks below
    study = _study(args.app, args)
    t0 = time.time()

    table_sweep = study.cluster_sweep(cache, args.cluster_sizes)
    sweep = study.contention_sweep(loads, args.cluster_sizes, cache)

    title = f"# {args.app}: zero-load mesh vs Table 1 (calibration check)"
    print(title)
    print(f"{'bar':>5} {'table':>14} {'mesh @ 0':>14} {'deviation':>10}")
    worst = 0.0
    for c in sorted(args.cluster_sizes):
        t_table = table_sweep[c].execution_time
        t_mesh = sweep[(0.0, c)].execution_time
        dev = 100.0 * (t_mesh - t_table) / t_table
        worst = max(worst, abs(dev))
        print(f"{f'{c}p':>5} {t_table:>14,} {t_mesh:>14,} {dev:>+9.2f}%")
    print(f"worst deviation: {worst:.2f}%\n")

    fig = figure_from_contention_sweep(
        f"Contention sensitivity: {args.app}, cache {cache_label(args.cache)} "
        f"(bars % of 1p at the same load)", sweep)
    print(render_rows(fig))
    if args.ascii:
        print(render_ascii(fig))

    print()
    print(render_slowdown(contention_slowdown(sweep),
                          f"{args.app}: slowdown vs zero network load"))

    top = max(loads)
    print(f"\n# network counters at load {top:g}")
    print(f"{'bar':>5} {'messages':>12} {'hops/msg':>9} {'queue cyc':>12} "
          f"{'peak util':>10}")
    for c in sorted(args.cluster_sizes):
        net = sweep[(top, c)].result.network
        if net is None:
            continue
        per = net.hops / net.messages if net.messages else 0.0
        print(f"{f'{c}p':>5} {net.messages:>12,} {per:>9.2f} "
              f"{net.queue_delay_cycles:>12,} "
              f"{net.peak_link_utilization:>10.3f}")
    print(f"[{time.time() - t0:.1f}s]")
    return 0


def cmd_scaling(args: argparse.Namespace) -> int:
    """The §4 pushout study: processor-count scaling, clustered vs not."""
    import repro.native as native

    from .core.scaling import (SCALING_TIERS, compare_shapes,
                               scaling_processor_counts, scaling_study)

    selection = _native_selection(args)
    if selection is not None:
        native.set_native(selection)
    result_cache = None if args.no_cache else ResultCache(args.cache_dir)
    store = None if args.no_cache else TraceStore(args.cache_dir)
    trace_cache = TraceCache(store)

    counts = tuple(args.counts) if args.counts else None
    for c in (counts or scaling_processor_counts(args.tier)):
        if c % args.clusters:
            print(f"repro-clustering: cluster size {args.clusters} does "
                  f"not divide processor count {c}", file=sys.stderr)
            return 2

    rendered: list[str] = []
    studies: list[dict[str, Any]] = []
    status = 0
    for app in args.apps:
        study = scaling_study(app, args.tier, cluster_size=args.clusters,
                              cache_kb=args.cache,
                              processor_counts=counts,
                              marginal_threshold=args.threshold,
                              trace_cache=trace_cache,
                              result_cache=result_cache)
        studies.append(study)
        text = render_scaling(study)
        rendered.append(text)
        print(text)
        if study["effective_clustered"] < study["effective_unclustered"]:
            status = 1
        if args.compare_tier:
            other = scaling_study(app, args.compare_tier,
                                  cluster_size=args.clusters,
                                  cache_kb=args.cache,
                                  processor_counts=counts,
                                  marginal_threshold=args.threshold,
                                  trace_cache=trace_cache,
                                  result_cache=result_cache)
            studies.append(other)
            shape = compare_shapes(study["speedups_clustered"],
                                   other["speedups_clustered"])
            study["shape_vs"] = {"tier": args.compare_tier,
                                 "max_divergence": shape["max_divergence"]}
            text = render_shape_comparison(
                shape, f"{app}@{args.tier}", f"{app}@{args.compare_tier}")
            rendered.append(text)
            print()
            print(text)
            if shape["max_divergence"] > args.shape_tolerance:
                print(f"repro-clustering: shape divergence "
                      f"{shape['max_divergence']:.3f} exceeds tolerance "
                      f"{args.shape_tolerance:.3f}", file=sys.stderr)
                status = 1
        print()

    if args.figure:
        with open(args.figure, "w", encoding="utf-8") as fh:
            fh.write("\n\n".join(rendered) + "\n")
        print(f"figure written to {args.figure}")
    if args.json:
        import json as _json
        with open(args.json, "w", encoding="utf-8") as fh:
            _json.dump(studies, fh, indent=2, sort_keys=True)
        print(f"study data written to {args.json}")
    if result_cache is not None:
        print(f"[result cache: {result_cache.stats()} — "
              f"{result_cache.directory}]", file=sys.stderr)
    if trace_cache.hits or trace_cache.misses:
        print(f"[trace cache: {trace_cache.stats()}]", file=sys.stderr)
    return status


def cmd_merge(args: argparse.Namespace) -> int:
    study = _study(args.app, args)
    sweep = study.cluster_sweep(args.cache, args.cluster_sizes)
    print(f"# merge anatomy for {args.app} (cache {cache_label(args.cache)})")
    for c, row in merge_anatomy(sweep).items():
        print(f"{c:>2}p  load {row['load']:>12,.0f}  merge "
              f"{row['merge']:>12,.0f}  load+merge "
              f"{row['load_plus_merge']:>12,.0f}")
    return 0


def _protocol_list(value: str) -> list[str]:
    """Comma-separated protocol names, validated against PROTOCOLS."""
    names = [v for v in value.split(",") if v]
    if not names:
        raise argparse.ArgumentTypeError("expected at least one protocol")
    for name in names:
        if name not in PROTOCOLS:
            raise argparse.ArgumentTypeError(
                f"unknown protocol {name!r}; choose from "
                f"{', '.join(PROTOCOLS)}")
    return names


def cmd_study(args: argparse.Namespace) -> int:
    """Cross-protocol study: protocol × cluster-size grid, one app."""
    protocols = list(args.protocols or PROTOCOLS)
    # the global --protocol names the protocol of interest; make sure the
    # grid includes it (and the directory baseline the figure normalizes
    # to) whatever --protocols narrowed the field to
    focus = getattr(args, "protocol", "directory")
    if focus not in protocols:
        protocols.append(focus)
    if "directory" not in protocols:
        protocols.insert(0, "directory")

    t0 = time.time()
    if args.server:
        host, _, port = args.server.rpartition(":")
        try:
            port = int(port)
        except ValueError:
            print(f"repro-clustering: --server expects HOST:PORT, got "
                  f"{args.server!r}", file=sys.stderr)
            return 2
        from .core.study import SweepPoint
        from .service import ServiceClient, ServiceError

        requests = [(p, c, RunRequest.make(args.app, c, args.cache,
                                           _app_kwargs(args.app, args),
                                           protocol=p))
                    for p in protocols for c in args.cluster_sizes]
        client = ServiceClient(host or "127.0.0.1", port)
        try:
            reports = client.run_sweep([r for _, _, r in requests])
        except (ServiceError, OSError) as exc:
            print(f"repro-clustering: study --server: {exc}",
                  file=sys.stderr)
            return 1
        finally:
            client.close()
        sweep = {(p, c): SweepPoint(args.app, c, args.cache, rep.result)
                 for (p, c, _), rep in zip(requests, reports)}
        served = (f"daemon {args.server}: {len(reports)} points, "
                  f"{sum(r.cached for r in reports)} cached, "
                  f"{sum(r.coalesced for r in reports)} coalesced")
    else:
        study = _study(args.app, args)
        sweep = study.protocol_sweep(protocols, args.cluster_sizes,
                                     args.cache)
        served = None

    fig = figure_from_protocol_sweep(
        f"Cross-protocol comparison: {args.app}, cache "
        f"{cache_label(args.cache)} (bars % of directory @ 1p)", sweep)
    print(render_rows(fig))
    if args.ascii:
        print()
        print(render_ascii(fig))
    print()
    print(render_protocol_comparison(
        sweep, f"{args.app}: protocol × cluster size"))
    if served:
        print(f"[{served}]", file=sys.stderr)
    print(f"[{time.time() - t0:.1f}s]")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the long-lived sweep service daemon (see docs/SERVICE.md)."""
    executor = _executor(args)
    # the service layer owns memoization (the cache must compose with
    # single-flight coalescing), so the executor's own cache hook is
    # detached and handed to the service instead
    cache = executor.cache
    executor.cache = None
    service = SweepService(executor, base_config=_base_config(args),
                           cache=cache)
    daemon = ServiceDaemon(service, host=args.host, port=args.port,
                           drain_deadline=args.drain)
    rc = daemon.run_blocking(announce=True)
    stats = service.stats_dict()
    print(f"repro-clustering serve: stopped after {stats['uptime_s']:.1f}s — "
          f"{stats['points']} points ({stats['executed']} executed, "
          f"{stats['cache_hits']} cache hits, {stats['coalesced']} "
          f"coalesced, {stats['errors']} errors)", file=sys.stderr)
    return rc


def cmd_bench(args: argparse.Namespace) -> int:
    """Engine throughput + sweep wall-clock benchmark (BENCH_engine.json)."""
    import json
    from pathlib import Path

    from .core.bench import (bench_batch, bench_engine, bench_jobs,
                             bench_memory, bench_native, bench_sweep,
                             bench_trace, check_floor, write_report)

    _native_selection(args)  # validate the flag pair; exits 2 when forced
    # native but unbuildable, so the A/B below never starts half-broken
    apps = list(args.apps or APP_NAMES)
    config = _base_config(args)
    kwargs_of = {a: _app_kwargs(a, args) for a in apps}
    t0 = time.time()

    print(f"# engine throughput ({config.n_processors} processors)")
    print(f"{'app':>9} {'ops':>11} {'legacy ops/s':>12} {'replay ops/s':>13} "
          f"{'speedup':>8}")
    rows = []
    for a in apps:
        r = bench_engine(a, config, kwargs_of[a], repeats=args.repeats)
        rows.append(r)
        print(f"{a:>9} {r.source_ops:>11,} {r.legacy_ops_per_s:>12,.0f} "
              f"{r.replay_ops_per_s:>13,.0f} {r.replay_speedup:>7.2f}x",
              flush=True)

    sweep = None
    if not args.no_sweep:
        sweep = bench_sweep(apps, config, args.cluster_sizes,
                            kwargs_of=kwargs_of)
        print(f"\n# sweep wall-clock ({sweep.n_points} points, "
              f"clusters {args.cluster_sizes})")
        print(f"  legacy engine {sweep.legacy_s:>8.2f}s")
        print(f"  fast path     {sweep.generator_s:>8.2f}s")
        print(f"  compiled cold {sweep.cold_s:>8.2f}s "
              f"({sweep.cold_speedup:.2f}x)")
        print(f"  compiled warm {sweep.warm_s:>8.2f}s "
              f"({sweep.warm_speedup:.2f}x)")
        if not sweep.identical:
            print("ERROR: execution modes produced different results",
                  file=sys.stderr)
            return 1

    memory = None
    if not args.no_memory:
        memory = bench_memory()
        print("\n# memory-system microbench (coherence layer only)")
        for m in memory:
            print(f"  {m.stream:>9} {m.n_ops:>9,} ops "
                  f"{m.ops_per_s:>12,.0f} ops/s")

    jobs = None
    if args.jobs_bench:
        jobs = bench_jobs(apps, config, args.cluster_sizes,
                          jobs=args.jobs_bench, kwargs_of=kwargs_of)
        print(f"\n# {jobs.jobs}-worker sweep ({jobs.n_points} points, "
              f"pool startup included)")
        print(f"  process backend {jobs.process_s:>8.2f}s")
        if jobs.fork_s is None:
            print("  fork backend    unavailable on this platform")
        else:
            print(f"  fork backend    {jobs.fork_s:>8.2f}s "
                  f"({jobs.fork_speedup:.2f}x)")
        if not jobs.identical:
            print("ERROR: backends produced different results",
                  file=sys.stderr)
            return 1

    batch = None
    if args.batch:
        batch = bench_batch(apps, config, args.cluster_sizes,
                            kwargs_of=kwargs_of,
                            repeats=max(3, args.repeats))
        print(f"\n# batched lockstep replay A/B ({batch.n_points} points, "
              f"{batch.groups} trace-key groups, best of {batch.repeats})")
        print(f"  per-point warm {batch.warm_s:>8.2f}s")
        print(f"  batched        {batch.batched_s:>8.2f}s "
              f"({batch.batch_speedup:.2f}x, "
              f"{batch.points_per_s:.1f} points/s)")
        print(f"  fused {batch.fused_points} / fallback "
              f"{batch.fallback_points} / fallthrough "
              f"{batch.fallthrough_points} points")
        if not batch.identical:
            print("ERROR: batched replay diverged from per-point results",
                  file=sys.stderr)
            return 1

    native = None
    if args.native:
        native = bench_native(apps, config, args.cluster_sizes,
                              kwargs_of=kwargs_of,
                              repeats=max(3, args.repeats))
        print(f"\n# native C kernel vs python A/B ({native.n_points} points, "
              f"{native.groups} trace-key groups, best of {native.repeats})")
        print(f"  per-point warm  python {native.python_warm_s:>8.2f}s  "
              f"native {native.native_warm_s:>8.2f}s "
              f"({native.warm_speedup:.2f}x)")
        print(f"  batched         python {native.python_batched_s:>8.2f}s  "
              f"native {native.native_batched_s:>8.2f}s "
              f"({native.batch_speedup:.2f}x, "
              f"{native.points_per_s:.1f} points/s)")
        print(f"  {native.native_points} of {native.n_points} points on the "
              f"C kernel per batched pass")
        if not native.identical:
            print("ERROR: native kernel diverged from pure-python results",
                  file=sys.stderr)
            return 1

    trace = None
    if args.trace:
        from .core.scaling import scaling_problem
        trace = bench_trace(args.trace_app, config,
                            app_kwargs=scaling_problem(args.trace_app,
                                                       args.trace_tier),
                            include_native=args.native)
        mb = trace.trace_nbytes / 1e6
        print(f"\n# trace streaming A/B ({trace.app} {args.trace_tier} "
              f"tier, {trace.source_ops:,} ops, {mb:.1f} MB blob, "
              f"capture {trace.capture_s:.2f}s; fresh process per mode)")
        print(f"  {'mode':>20} {'decode':>9} {'first point':>12} "
              f"{'peak RSS':>10}")
        for name, m in trace.modes.items():
            print(f"  {name:>20} {m['decode_s']:>8.3f}s "
                  f"{m['first_point_s']:>11.3f}s "
                  f"{m['maxrss_kb'] / 1024:>7.0f} MB")
        print(f"  first-point speedup {trace.first_point_speedup:.2f}x, "
              f"peak-RSS ratio {trace.maxrss_ratio:.2f}x "
              f"(materialized/mapped, python kernels)")
        if not trace.identical:
            print("ERROR: trace consumption modes produced different "
                  "results", file=sys.stderr)
            return 1

    write_report(args.output, rows, sweep, config, memory=memory, jobs=jobs,
                 batch=batch, native=native, trace=trace)
    print(f"\nwrote {args.output}  [{time.time() - t0:.1f}s]")

    if args.floor:
        floor = json.loads(Path(args.floor).read_text(encoding="utf-8"))
        failures = check_floor(rows, floor, args.floor_tolerance,
                               memory=memory, batch=batch, native=native,
                               trace=trace)
        if failures:
            for line in failures:
                print(f"FLOOR REGRESSION: {line}", file=sys.stderr)
            return 1
        measured = {r.app for r in rows}
        measured |= {f"memory:{m.stream}" for m in memory or ()}
        if batch is not None:
            measured |= {"batch:points_per_s", "batch:speedup"}
        if native is not None:
            measured |= {"native:points_per_s", "native:batch_speedup",
                         "native:warm_speedup"}
        if trace is not None:
            measured |= {"trace:first_point_speedup", "trace:maxrss_ratio"}
        covered = sorted(set(floor) & measured)
        print(f"floor check passed for {', '.join(covered) or 'no apps'} "
              f"(tolerance {args.floor_tolerance:.0%})")
    return 0


def _add_global_options(p: argparse.ArgumentParser, *,
                        suppress: bool = False) -> None:
    """The option set shared by the driver and every subcommand.

    Added twice: to the main parser with real defaults, and to each
    subparser with ``SUPPRESS`` defaults so ``fig2 --quick --jobs 4``
    works as well as ``--quick --jobs 4 fig2`` without the subparser's
    defaults clobbering values already parsed at the top level.
    """
    def dflt(value: Any) -> Any:
        return argparse.SUPPRESS if suppress else value

    p.add_argument("--processors", type=_positive_int, default=dflt(64),
                   help="total processors (default 64, the paper's machine)")
    p.add_argument("--quick", action="store_true", default=dflt(False),
                   help="reduced problem sizes for fast sanity runs")
    p.add_argument("--paper-scale", action="store_true", default=dflt(False),
                   help="the paper's Table 2 problem sizes")
    p.add_argument("--ascii", action="store_true", default=dflt(False),
                   help="also draw ASCII bar charts")
    p.add_argument("--jobs", type=_positive_int, default=dflt(1), metavar="N",
                   help="evaluate sweep points in N worker processes "
                   "(default 1 = serial; results are identical either way)")
    p.add_argument("--fork-server", action="store_true", default=dflt(False),
                   help="with --jobs N: fork-server mode — preload compiled "
                   "traces in the parent, fork workers that inherit them "
                   "copy-on-write (POSIX only; exits 2 elsewhere)")
    p.add_argument("--batch", action="store_true", default=dflt(False),
                   help="batched lockstep replay: group sweep points by "
                   "compiled trace and replay each group over one shared "
                   "decode (byte-identical results; composes with --jobs "
                   "by sharding groups across workers)")
    p.add_argument("--native", action="store_true", default=dflt(False),
                   help="force the native C replay kernel (exit 2 when it "
                   "cannot be built; results are byte-identical to the "
                   "pure-python kernels).  In 'bench', also runs the "
                   "native-vs-python A/B section")
    p.add_argument("--no-native", action="store_true", default=dflt(False),
                   help="force the pure-python replay kernels (default is "
                   "auto: native when a compiler or cached artifact exists)")
    p.add_argument("--timeout", type=_positive_float, default=dflt(None),
                   metavar="SECS",
                   help="per-point wall-clock limit (process backend only); "
                   "a late point reports an error, the sweep continues")
    p.add_argument("--no-cache", action="store_true", default=dflt(False),
                   help="bypass the persistent result cache entirely "
                   "(neither read nor write)")
    p.add_argument("--cache-dir", default=dflt(None), metavar="DIR",
                   help="result cache location (default $REPRO_CACHE_DIR "
                   "or ~/.cache/repro-clustering)")
    p.add_argument("--cluster-sizes", type=_int_list,
                   default=dflt(list(PAPER_CLUSTER_SIZES)), metavar="N,N,...",
                   help="comma-separated cluster sizes (default 1,2,4,8)")
    p.add_argument("--protocol", choices=PROTOCOLS,
                   default=dflt("directory"),
                   help="coherence protocol backend (default directory — "
                   "the paper's full-bit-vector directory; 'snoopy' and "
                   "'dls' run on the python engine, so forcing --native "
                   "with them exits 2)")
    p.add_argument("--cache-sizes", type=_cache_list,
                   default=dflt(list(PAPER_CACHE_SIZES_KB)), metavar="KB,...",
                   help="comma-separated per-processor cache sizes in KB "
                   "('inf' allowed; default 4,16,32,inf)")


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-clustering",
        description="Reproduce 'The Benefits of Clustering in Shared "
        "Address Space Multiprocessors' (SC'95)",
        # no prefix abbreviation: subcommand flags like `run --cache` must
        # not collide with global --cache-dir/--cache-sizes
        allow_abbrev=False)
    _add_global_options(p)
    sub = p.add_subparsers(dest="command", required=True)

    def add_command(name: str, **kwargs: Any) -> argparse.ArgumentParser:
        sp = sub.add_parser(name, allow_abbrev=False, **kwargs)
        _add_global_options(sp, suppress=True)
        return sp

    sp = add_command("run", help="simulate one app on one configuration")
    sp.add_argument("app", choices=APP_NAMES)
    sp.add_argument("--clusters", type=_positive_int, default=1)
    sp.add_argument("--cache", type=_cache_arg, default=None,
                    help="per-processor cache KB or 'inf' (default inf)")
    sp.add_argument("--probe", choices=["timing"], default=None,
                    help="attach a pipeline probe: 'timing' prints "
                    "per-phase wall-clock and event counts (bypasses the "
                    "result cache)")
    sp.set_defaults(func=cmd_run)

    sp = add_command("fig2", help="infinite-cache cluster sweeps")
    sp.add_argument("--apps", nargs="+", choices=APP_NAMES)
    sp.set_defaults(func=cmd_fig2)

    sp = add_command("fig3", help="Ocean small problem, infinite cache")
    sp.set_defaults(func=cmd_fig3)

    for num, app in CAPACITY_FIGURES.items():
        sp = add_command(f"fig{num}",
                            help=f"finite capacity effects for {app}")
        sp.set_defaults(func=lambda a, n=num: cmd_capacity_figure(a, n))

    for num, fn in ((1, cmd_table1), (4, cmd_table4)):
        sp = add_command(f"table{num}")
        sp.set_defaults(func=fn)

    sp = add_command("table5", help="load-latency expansion factors")
    sp.add_argument("--measure", action="store_true",
                    help="also measure factors on this engine (slow)")
    sp.set_defaults(func=cmd_table5)

    sp = add_command("table6", help="4KB caches + shared-cache costs")
    sp.set_defaults(func=cmd_table6)
    sp = add_command("table7", help="infinite caches + shared-cache costs")
    sp.set_defaults(func=cmd_table7)

    sp = add_command("workingset", help="miss rate vs cache size")
    sp.add_argument("app", choices=APP_NAMES)
    sp.add_argument("--clusters", type=_positive_int, default=1)
    sp.set_defaults(func=cmd_workingset)

    sp = add_command("network",
                        help="interconnect contention sensitivity "
                        "(mesh model vs Table 1)")
    sp.add_argument("app", nargs="?", default="ocean", choices=APP_NAMES)
    sp.add_argument("--cache", type=_cache_arg, default=None,
                    help="per-processor cache KB or 'inf' (default inf)")
    sp.add_argument("--loads", type=_load_list,
                    default=list(PAPER_NETWORK_LOADS), metavar="L,L,...",
                    help="background network loads in [0,1) to sweep "
                    "(default 0,0.3,0.6,0.8; 0 is always included)")
    sp.set_defaults(func=cmd_network)

    sp = add_command("scaling",
                     help="§4 pushout study: processor-count scaling, "
                     "clustered vs unclustered, with tier presets")
    sp.add_argument("apps", nargs="*", choices=APP_NAMES, metavar="APP",
                    default=["raytrace"],
                    help="applications to study (default raytrace, the "
                    "clearest quick-scale pushout)")
    sp.add_argument("--tier", choices=("quick", "medium", "paper"),
                    default="quick",
                    help="problem-size tier: quick sanity sizes, medium "
                    "CI smoke, or the paper's Table 2 sizes (default "
                    "quick)")
    sp.add_argument("--clusters", type=_positive_int, default=4,
                    help="cluster size to compare against unclustered "
                    "(default 4)")
    sp.add_argument("--cache", type=_cache_arg, default=None,
                    help="per-processor cache KB or 'inf' (default inf)")
    sp.add_argument("--counts", type=_int_list, default=None,
                    metavar="N,N,...",
                    help="processor counts to sweep (default: the tier's "
                    "preset grid)")
    sp.add_argument("--threshold", type=_positive_float, default=1.15,
                    metavar="RATIO",
                    help="marginal speedup a doubling must deliver to "
                    "count as effective (default 1.15)")
    sp.add_argument("--compare-tier", choices=("quick", "medium", "paper"),
                    default=None, metavar="TIER",
                    help="also run TIER and compare speedup-curve shapes")
    sp.add_argument("--shape-tolerance", type=_positive_float, default=0.25,
                    metavar="FRAC",
                    help="max normalised shape divergence allowed with "
                    "--compare-tier before exiting 1 (default 0.25)")
    sp.add_argument("--figure", metavar="PATH",
                    help="write the rendered figures to PATH")
    sp.add_argument("--json", metavar="PATH",
                    help="write the study dicts as JSON to PATH")
    sp.set_defaults(func=cmd_scaling)

    sp = add_command("merge", help="load-vs-merge anatomy per cluster size")
    sp.add_argument("app", choices=APP_NAMES)
    sp.add_argument("--cache", type=_cache_arg, default=None,
                    help="per-processor cache KB or 'inf' (default inf)")
    sp.set_defaults(func=cmd_merge)

    sp = add_command("study",
                     help="cross-protocol study: protocol × cluster-size "
                     "grid with a comparison figure and table")
    sp.add_argument("app", nargs="?", default="ocean", choices=APP_NAMES)
    sp.add_argument("--protocols", type=_protocol_list, default=None,
                    metavar="P,P,...",
                    help="protocols to sweep (default: all of "
                    f"{','.join(PROTOCOLS)}; the global --protocol and "
                    "the directory baseline are always included)")
    sp.add_argument("--cache", type=_cache_arg, default=None,
                    help="per-processor cache KB or 'inf' (default inf)")
    sp.add_argument("--server", metavar="HOST:PORT",
                    help="evaluate the grid through a running sweep "
                    "daemon ('repro-clustering serve') instead of "
                    "in-process")
    sp.set_defaults(func=cmd_study)

    sp = add_command("compare",
                        help="shared-cache vs snoopy shared-memory cluster")
    sp.add_argument("app", choices=APP_NAMES)
    sp.add_argument("--clusters", type=_positive_int, default=4)
    sp.add_argument("--cache", type=_cache_arg, default=4.0)
    sp.set_defaults(func=cmd_compare)

    sp = add_command("trace", help="record a reference trace")
    sp.add_argument("app", choices=APP_NAMES)
    sp.add_argument("--clusters", type=_positive_int, default=1)
    sp.add_argument("--cache", type=_cache_arg, default=None,
                    help="per-processor cache KB or 'inf' (default inf)")
    sp.add_argument("--output", help="save the trace to this .npz file")
    sp.set_defaults(func=cmd_trace)

    sp = add_command("serve",
                     help="long-lived simulation daemon: HTTP+JSON point/"
                     "sweep API with single-flight request coalescing")
    sp.add_argument("--host", default="127.0.0.1",
                    help="bind address (default 127.0.0.1)")
    sp.add_argument("--port", type=int, default=8642,
                    help="TCP port (default 8642; 0 = ephemeral)")
    sp.add_argument("--drain", type=_positive_float, default=10.0,
                    metavar="SECS",
                    help="graceful-shutdown deadline for in-flight points "
                    "(default 10)")
    sp.set_defaults(func=cmd_serve)

    sp = add_command("bench",
                     help="engine throughput + sweep wall-clock benchmark")
    sp.add_argument("--apps", nargs="+", choices=APP_NAMES, metavar="APP",
                    help="applications to bench (default: all nine)")
    sp.add_argument("--output", default="BENCH_engine.json", metavar="JSON",
                    help="report path (default BENCH_engine.json)")
    sp.add_argument("--repeats", type=_positive_int, default=1, metavar="N",
                    help="timed runs per path; the fastest is kept")
    sp.add_argument("--no-sweep", action="store_true",
                    help="skip the end-to-end sweep timing (engine "
                    "throughput only; much faster)")
    sp.add_argument("--no-memory", action="store_true",
                    help="skip the memory-system microbench")
    sp.add_argument("--jobs-bench", type=_positive_int, default=None,
                    metavar="N",
                    help="also time an N-worker sweep under the process "
                    "vs fork backends (pool startup included)")
    sp.add_argument("--trace", action="store_true",
                    help="also run the trace streaming A/B: materialized "
                    "vs memory-mapped consumption of one paper-scale "
                    "trace, fresh subprocess per mode (adds the native "
                    "pair when --native is set)")
    sp.add_argument("--trace-app", choices=APP_NAMES, default="lu",
                    metavar="APP",
                    help="application for the streaming A/B (default lu)")
    sp.add_argument("--trace-tier", choices=("quick", "medium", "paper"),
                    default="paper",
                    help="problem tier for the streaming A/B trace "
                    "(default paper — the workload the layer exists for)")
    sp.add_argument("--floor", metavar="JSON",
                    help="floor file mapping app -> min replay ops/s; "
                    "exit 1 on regression (see benchmarks/perf/floor.json)")
    sp.add_argument("--floor-tolerance", type=float, default=0.30,
                    metavar="FRAC",
                    help="allowed shortfall below the floor (default 0.30)")
    sp.set_defaults(func=cmd_bench)
    return p


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        rc = args.func(args)
    except SweepExecutionError as exc:
        print(f"repro-clustering: {exc}", file=sys.stderr)
        rc = 1
    executor = getattr(args, "_executor", None)
    if executor is not None and executor.cache is not None:
        cache = executor.cache
        print(f"[result cache: {cache.stats()} — {cache.directory}]",
              file=sys.stderr)
    if executor is not None and executor.trace_cache is not None:
        tc = executor.trace_cache
        if tc.hits or tc.misses:
            print(f"[trace cache: {tc.stats()}]", file=sys.stderr)
    return rc


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
