"""Directory-based invalidation coherence over shared-cache clusters.

This is the protocol of the paper's simulated architecture (§3.1, Figure 1):
nodes of processors clustered around one shared cache, distributed memory,
full-bit-vector directories with replacement hints, invalidation-based
coherence with cache states INVALID / SHARED / EXCLUSIVE and directory
states NOT_CACHED / SHARED / EXCLUSIVE.

Semantics implemented verbatim from the paper:

* READ misses fetch the line SHARED and are the only misses that stall the
  processor; WRITE and UPGRADE miss latencies are assumed hidden by store
  buffers and relaxed consistency, but their fills still leave the line
  *pending* in the cache.
* A READ to a pending line is a **MERGE MISS**: the reader blocks until the
  outstanding fill returns.  If the line is invalidated while pending, the
  reader must fetch it again (a *merge refetch*).
* Invalidations are instantaneous and may invalidate pending lines.
* SHARED evictions send replacement hints; EXCLUSIVE evictions write back.

The protocol operates at *cluster* granularity: all processors behind one
shared cache are a single coherence participant, which is exactly the
mechanism by which clustering obviates communication.

Hot-path layout
---------------
The two hot entry points, :meth:`CoherentMemorySystem.read` and
:meth:`CoherentMemorySystem.write`, take line numbers (the simulation engine
divides byte addresses by the line size once) and run against **flat
state**, allocating nothing per access:

* each cluster's cache is bound once as a *kernel tuple*
  ``(slot_of, state, pending, fetcher, free)`` — the slab columns of
  :class:`~repro.memory.cache.FullyAssociativeCache` — so a hit is a dict
  probe plus two array indexings and a miss recycles the victim's slot in
  place;
* the directory is its packed-int table (``dict line -> (mask << 2) |
  state``), so directory transitions are single int ops and the sole-owner
  writeback test is one comparison;
* the four flat Table-1 miss latencies return **interned** ``(READ_MISS,
  latency)`` transition tuples instead of allocating a fresh pair per miss;
* ``hits`` and ``references`` are *derived* on
  :class:`~repro.core.metrics.MissCounters` (see there), so the hit path
  increments one counter, not three.

A hop-based provider (MeshLatency) is stateful — contention queues,
counters — so it keeps the ``miss_cycles`` call and per-miss tuple; the
set-associative cache extension likewise keeps polymorphic cache calls.
"""

from __future__ import annotations

from ..core.config import MachineConfig
from ..core.metrics import MissCause, MissCounters, NetworkStats
from ..network.latency import TableLatency, make_latency_provider
from .allocation import PageAllocator
from .cache import EXCLUSIVE, SHARED, FullyAssociativeCache, make_cache
from .directory import DIR_EXCLUSIVE, DIR_SHARED, NOT_CACHED, Directory

__all__ = ["READ_HIT", "READ_MERGE", "READ_MISS", "CoherentMemorySystem"]

#: read() outcome tags (plain ints for speed on the hot path)
READ_HIT = 0
READ_MERGE = 1
READ_MISS = 2

# Per-cluster line history for cold/coherence/capacity classification.  The
# history dict stores, for each line a cluster has ever lost, the MissCause a
# future miss on that line will carry: evictions write CAPACITY, invalidations
# write COHERENCE, and a line never seen classifies COLD via the dict-get
# default.  (Installs need no history write: a resident line cannot miss, and
# every way of losing a line — eviction or invalidation — records its cause.)
_COLD = MissCause.COLD
_CAPACITY = MissCause.CAPACITY
_COHERENCE = MissCause.COHERENCE

#: preallocated hit result — read() returns this once per hit, the single
#: most common outcome of a simulation, and callers only ever unpack it
_HIT = (READ_HIT, 0)


class CoherentMemorySystem:
    """One coherent memory system: cluster caches + directory + allocator.

    Parameters
    ----------
    config:
        Machine organisation (cluster geometry, cache sizing, latencies).
    allocator:
        Page-home policy; a fresh first-touch round-robin allocator is built
        if not supplied (applications that place data pass their own).
    """

    def __init__(self, config: MachineConfig,
                 allocator: PageAllocator | None = None) -> None:
        self.config = config
        self.allocator = allocator if allocator is not None else PageAllocator(
            config.n_clusters, config.page_size, config.line_size)
        if self.allocator.n_clusters != config.n_clusters:
            raise ValueError(
                f"allocator built for {self.allocator.n_clusters} clusters, "
                f"machine has {config.n_clusters}")
        self.directory = Directory(config.n_clusters)
        # miss pricing goes through a pluggable provider; the default
        # flat-table provider is bit-identical to config.latency
        self.latency = make_latency_provider(config)
        capacity = config.cluster_cache_lines
        self.caches = [make_cache(capacity, config.associativity)
                       for _ in range(config.n_clusters)]
        self.counters = [MissCounters() for _ in range(config.n_clusters)]
        # Per-cluster line history for cold/coherence/capacity classification
        # (see the module-level comment above _COLD for the encoding).
        self._history: list[dict[int, MissCause]] = [dict() for _ in range(config.n_clusters)]
        self._cluster_shift = config.cluster_shift
        # --- hot-path precomputation ----------------------------------
        # The flat Table-1 latencies are inlined on the miss path (the
        # dominant per-op cost of a simulation) and their (READ_MISS,
        # latency) transition tuples are interned up front.
        self._flat = isinstance(self.latency, TableLatency)
        model = config.latency
        self._local_clean = model.local_clean
        self._remote_clean = model.remote_clean
        self._local_dirty_remote = model.local_dirty_remote
        self._remote_dirty_3p = model.remote_dirty_third_party
        self._t_local_clean = (READ_MISS, model.local_clean)
        self._t_remote_clean = (READ_MISS, model.remote_clean)
        self._t_local_dirty = (READ_MISS, model.local_dirty_remote)
        self._t_remote_dirty_3p = (READ_MISS, model.remote_dirty_third_party)
        # live views of allocator page bindings for the in-line home lookup
        # (first touch of a page still goes through the allocator)
        self._page_home = self.allocator._page_home
        self._lines_per_page = self.allocator._lines_per_page
        # Fully associative caches (the paper's model) expose their slab
        # columns; binding them as per-cluster kernel tuples lets the hot
        # path run as plain dict/array ops with no method call and no
        # per-line object.  The set-associative extension keeps the
        # polymorphic calls.
        self._kernels = (
            [(c.slot_of, c.state, c.pending, c.fetcher, c.free)
             for c in self.caches]
            if all(type(c) is FullyAssociativeCache for c in self.caches)
            else None)
        self._capacity_lines = capacity
        # the directory's packed table, bound once for in-line transitions
        self._dtable = self.directory.packed

    # ------------------------------------------------------------------ hot
    def cluster_of(self, processor: int) -> int:
        """Cluster id for a processor (shift when cluster size is a power of 2)."""
        if self._cluster_shift is not None:
            return processor >> self._cluster_shift
        return processor // self.config.cluster_size

    def read(self, processor: int, line: int, now: int,
             is_retry: bool = False) -> tuple[int, int]:
        """Process a read by ``processor`` to ``line`` at time ``now``.

        Returns ``(outcome, stall_cycles)`` where outcome is one of
        ``READ_HIT`` (stall 0), ``READ_MERGE`` (stall until the outstanding
        fill returns; the caller must *retry* the read at ``now + stall``
        with ``is_retry=True``), or ``READ_MISS`` (stall = Table-1 latency;
        the line is installed pending).

        ``is_retry`` suppresses double-counting of the reference when the
        engine re-issues a merged read.

        The miss path inlines the classify / directory-transaction /
        install / retire sequence: it runs once per miss — the dominant
        per-op cost of a whole simulation — and the ~8 Python frames it
        saves are worth the longer method body.  The state transitions are
        the same as the method-per-step form, in the same order.
        """
        shift = self._cluster_shift
        cluster = (processor >> shift if shift is not None
                   else processor // self.config.cluster_size)
        ctr = self.counters[cluster]
        if not is_retry:
            ctr.reads += 1
        kernels = self._kernels
        if kernels is not None:
            kern = kernels[cluster]
            slot_of = kern[0]
            slot = slot_of.get(line, -1)
            if slot >= 0:
                if self._capacity_lines is not None:
                    # LRU touch: delete + reinsert keeps dict order = LRU
                    del slot_of[line]
                    slot_of[line] = slot
                pending_until = kern[2][slot]
                if pending_until > now:
                    ctr.merges += 1
                    return READ_MERGE, pending_until - now
                fetcher = kern[3][slot]
                if fetcher != -1 and fetcher != processor:
                    ctr.prefetch_hits += 1
                    kern[3][slot] = -1
                return _HIT
        else:
            kern = None
            cache = self.caches[cluster]
            slot = cache.lookup(line)
            if slot >= 0:
                pending_until = cache.pending[slot]
                if pending_until > now:
                    ctr.merges += 1
                    return READ_MERGE, pending_until - now
                fetcher = cache.fetcher[slot]
                if fetcher != -1 and fetcher != processor:
                    ctr.prefetch_hits += 1
                    cache.fetcher[slot] = -1
                return _HIT
        if is_retry:
            # Line was invalidated while we were merged on its fill.
            ctr.merge_refetches += 1

        # ---- read miss: classify, directory transaction, SHARED install
        history = self._history[cluster]
        cause = history.get(line, _COLD)
        page_home = self._page_home.get(line // self._lines_per_page)
        home = (page_home if page_home is not None
                else self.allocator.home_of_line(line))
        dtable = self._dtable
        packed = dtable.get(line, 0)
        if packed & 3 == DIR_EXCLUSIVE:
            owner = packed.bit_length() - 3
            if self._flat:
                if owner == cluster:
                    raise ValueError(
                        "requesting cluster cannot be the dirty owner on a miss")
                if cluster == home:
                    result = self._t_local_dirty
                elif owner == home:
                    result = self._t_remote_clean
                else:
                    result = self._t_remote_dirty_3p
                latency = result[1]
            else:
                latency = self.latency.miss_cycles(cluster, home, owner, now)
                result = (READ_MISS, latency)
            # Owner keeps the data but downgrades; reader joins the sharers.
            if kernels is not None:
                ok = kernels[owner]
                ok[1][ok[0][line]] = SHARED
            else:
                self.caches[owner].downgrade(line)
            dtable[line] = (packed & -4) | (4 << cluster) | DIR_SHARED
        else:
            if self._flat:
                result = (self._t_local_clean if cluster == home
                          else self._t_remote_clean)
                latency = result[1]
            else:
                latency = self.latency.miss_cycles(cluster, home, None, now)
                result = (READ_MISS, latency)
            dtable[line] = (packed & -4) | (4 << cluster) | DIR_SHARED
        if kern is not None:
            cache = self.caches[cluster]
            state_col = kern[1]
            cap = self._capacity_lines
            if cap is not None and len(slot_of) >= cap:
                vline = next(iter(slot_of))
                slot = slot_of.pop(vline)
                vstate = state_col[slot]
                cache.evictions += 1
                # recycle the victim's slot for the incoming line
                state_col[slot] = SHARED
                kern[2][slot] = now + latency
                kern[3][slot] = processor
                cache.tag[slot] = line
                slot_of[line] = slot
                cache.inserts += 1
                # retire the victim (the body of _retire_inline, saved a
                # call on what is the common case of every capacity miss)
                history[vline] = _CAPACITY
                if vstate == EXCLUSIVE:
                    if dtable.get(vline, 0) == (4 << cluster) | DIR_EXCLUSIVE:
                        del dtable[vline]
                        self.directory.writebacks += 1
                else:
                    vpacked = dtable.get(vline)
                    if vpacked is not None:
                        vpacked &= ~(4 << cluster)
                        self.directory.replacement_hints += 1
                        if vpacked >> 2:
                            dtable[vline] = vpacked
                        else:
                            del dtable[vline]
            else:
                free = kern[4]
                slot = free.pop() if free else cache._grow()
                state_col[slot] = SHARED
                kern[2][slot] = now + latency
                kern[3][slot] = processor
                cache.tag[slot] = line
                slot_of[line] = slot
                cache.inserts += 1
        else:
            victim = self.caches[cluster].insert(line, SHARED, now + latency,
                                                 processor)
            if victim is not None:
                self._retire_inline(cluster, victim.line, victim.state,
                                    history, dtable)
        ctr.read_misses += 1
        ctr.by_cause[cause] += 1
        return result

    def write(self, processor: int, line: int, now: int) -> None:
        """Process a write by ``processor`` to ``line`` at time ``now``.

        Writes never stall (store buffer + relaxed consistency); they update
        protocol state, classify the miss, and leave missing lines pending.
        Like :meth:`read`, the miss and upgrade paths are inlined.
        """
        shift = self._cluster_shift
        cluster = (processor >> shift if shift is not None
                   else processor // self.config.cluster_size)
        ctr = self.counters[cluster]
        ctr.writes += 1
        directory = self.directory
        dtable = self._dtable
        kernels = self._kernels
        if kernels is not None:
            kern = kernels[cluster]
            slot_of = kern[0]
            slot = slot_of.get(line, -1)
            if slot >= 0:
                if self._capacity_lines is not None:
                    del slot_of[line]
                    slot_of[line] = slot
                state_col = kern[1]
                if state_col[slot] == EXCLUSIVE:
                    return
                # UPGRADE: present but SHARED -> invalidate other sharers.
                ctr.upgrade_misses += 1
                others = (dtable.get(line, 0) >> 2) & ~(1 << cluster)
                if others:
                    self._invalidate_bits(line, others)
                    directory.invalidations_sent += others.bit_count()
                dtable[line] = (4 << cluster) | DIR_EXCLUSIVE
                state_col[slot] = EXCLUSIVE
                return
        else:
            kern = None
            cache = self.caches[cluster]
            slot = cache.lookup(line)
            if slot >= 0:
                if cache.state[slot] == EXCLUSIVE:
                    return
                ctr.upgrade_misses += 1
                others = (dtable.get(line, 0) >> 2) & ~(1 << cluster)
                if others:
                    self._invalidate_bits(line, others)
                    directory.invalidations_sent += others.bit_count()
                dtable[line] = (4 << cluster) | DIR_EXCLUSIVE
                cache.state[slot] = EXCLUSIVE
                return

        # ---- WRITE miss: fetch exclusive; latency hidden, line pending.
        history = self._history[cluster]
        cause = history.get(line, _COLD)
        page_home = self._page_home.get(line // self._lines_per_page)
        home = (page_home if page_home is not None
                else self.allocator.home_of_line(line))
        packed = dtable.get(line, 0)
        if packed & 3 == DIR_EXCLUSIVE:
            owner = packed.bit_length() - 3
            if self._flat:
                if owner == cluster:
                    raise ValueError(
                        "requesting cluster cannot be the dirty owner on a miss")
                if cluster == home:
                    latency = self._local_dirty_remote
                elif owner == home:
                    latency = self._remote_clean
                else:
                    latency = self._remote_dirty_3p
            else:
                latency = self.latency.miss_cycles(cluster, home, owner, now)
        else:
            if self._flat:
                latency = (self._local_clean if cluster == home
                           else self._remote_clean)
            else:
                latency = self.latency.miss_cycles(cluster, home, None, now)
        others = (packed >> 2) & ~(1 << cluster)
        if others:
            self._invalidate_bits(line, others)
        directory.invalidations_sent += others.bit_count()
        dtable[line] = (4 << cluster) | DIR_EXCLUSIVE
        if kern is not None:
            cache = self.caches[cluster]
            state_col = kern[1]
            cap = self._capacity_lines
            if cap is not None and len(slot_of) >= cap:
                vline = next(iter(slot_of))
                slot = slot_of.pop(vline)
                vstate = state_col[slot]
                cache.evictions += 1
                state_col[slot] = EXCLUSIVE
                kern[2][slot] = now + latency
                kern[3][slot] = processor
                cache.tag[slot] = line
                slot_of[line] = slot
                cache.inserts += 1
                history[vline] = _CAPACITY
                if vstate == EXCLUSIVE:
                    if dtable.get(vline, 0) == (4 << cluster) | DIR_EXCLUSIVE:
                        del dtable[vline]
                        self.directory.writebacks += 1
                else:
                    vpacked = dtable.get(vline)
                    if vpacked is not None:
                        vpacked &= ~(4 << cluster)
                        self.directory.replacement_hints += 1
                        if vpacked >> 2:
                            dtable[vline] = vpacked
                        else:
                            del dtable[vline]
            else:
                free = kern[4]
                slot = free.pop() if free else cache._grow()
                state_col[slot] = EXCLUSIVE
                kern[2][slot] = now + latency
                kern[3][slot] = processor
                cache.tag[slot] = line
                slot_of[line] = slot
                cache.inserts += 1
        else:
            victim = cache.insert(line, EXCLUSIVE, now + latency, processor)
            if victim is not None:
                self._retire_inline(cluster, victim.line, victim.state,
                                    history, dtable)
        ctr.write_misses += 1
        ctr.by_cause[cause] += 1

    # -------------------------------------------------- miss-path helpers
    def _retire_inline(self, cluster: int, vline: int, vstate: int,
                       history: dict, dtable: dict) -> None:
        """Directory bookkeeping for an evicted line (uncommon subpath)."""
        history[vline] = _CAPACITY
        if vstate == EXCLUSIVE:
            # writeback: data returns home, line NOT_CACHED (pruned)
            if dtable.get(vline, 0) == (4 << cluster) | DIR_EXCLUSIVE:
                del dtable[vline]
                self.directory.writebacks += 1
        else:
            # replacement hint: clear the sharer bit so the directory never
            # sends a useless invalidation later; prune when the mask empties
            vpacked = dtable.get(vline)
            if vpacked is not None:
                vpacked &= ~(4 << cluster)
                self.directory.replacement_hints += 1
                if vpacked >> 2:
                    dtable[vline] = vpacked
                else:
                    del dtable[vline]

    def _invalidate_bits(self, line: int, bits: int) -> None:
        """Instantaneously invalidate the cached copies named by ``bits``.

        Pending lines are invalidated too (paper §3.1); a reader merged on
        such a line re-fetches when it retries.

        Iterates set bits via lowest-bit extraction (ascending cluster
        order, same as the old shift-scan) so a write to a line shared by
        few of many clusters doesn't walk every bit position.
        """
        history = self._history
        kernels = self._kernels
        if kernels is not None:
            while bits:
                low = bits & -bits
                bits ^= low
                cluster = low.bit_length() - 1
                kern = kernels[cluster]
                slot = kern[0].pop(line, -1)
                if slot >= 0:
                    kern[4].append(slot)
                    history[cluster][line] = _COHERENCE
        else:
            caches = self.caches
            while bits:
                low = bits & -bits
                bits ^= low
                cluster = low.bit_length() - 1
                if caches[cluster].invalidate(line):
                    history[cluster][line] = _COHERENCE

    # ---------------------------------------------------------------- query
    def aggregate_counters(self) -> MissCounters:
        """Miss counters summed over all clusters."""
        total = MissCounters()
        for ctr in self.counters:
            ctr.merged_into(total)
        return total

    def network_stats(self) -> NetworkStats | None:
        """Interconnect counters (``None`` under the flat-table provider)."""
        return self.latency.stats()

    def check_invariants(self) -> None:
        """Cross-check cache and directory state; raises on inconsistency.

        Used by tests and (cheaply) by long-running debug builds:

        * every live directory entry has a non-empty sharer mask (pruning
          means NOT_CACHED entries simply do not exist);
        * a line EXCLUSIVE at the directory is EXCLUSIVE in exactly the
          owner's cache and nowhere else;
        * a line SHARED at the directory is SHARED in every cache whose bit
          is set (hints guarantee no stale bits);
        * a line without an entry is nowhere;
        * no cache exceeds its capacity, and slab slot accounting balances
          (every slot is either mapped by one line or on the free list).
        """
        directory = self.directory
        seen = set()
        for line in directory.lines():
            seen.add(line)
            state = directory.state_of(line)
            if state == NOT_CACHED or directory.sharer_mask(line) == 0:
                raise AssertionError(
                    f"line {line:#x} has a live entry with no sharers "
                    f"(pruning failed)")
            for cluster, cache in enumerate(self.caches):
                cstate = cache.state_of(line)
                if state == DIR_SHARED:
                    if directory.is_sharer(line, cluster) and cstate != SHARED:
                        raise AssertionError(
                            f"line {line:#x} SHARED at dir, cluster {cluster} "
                            f"bit set, cache state {cstate}")
                    if not directory.is_sharer(line, cluster) and cstate is not None:
                        raise AssertionError(
                            f"line {line:#x} cached at {cluster} without "
                            f"a sharer bit")
                else:  # DIR_EXCLUSIVE
                    owner = directory.owner_of(line)
                    if cluster == owner and cstate != EXCLUSIVE:
                        raise AssertionError(
                            f"line {line:#x} EXCL at dir, owner {cluster} "
                            f"cache state {cstate}")
                    if cluster != owner and cstate is not None:
                        raise AssertionError(
                            f"line {line:#x} EXCL owned by {owner} "
                            f"but cached at {cluster}")
        for cluster, cache in enumerate(self.caches):
            if cache.capacity_lines is not None and len(cache) > cache.capacity_lines:
                raise AssertionError(
                    f"cache {cluster} over capacity: {len(cache)} > "
                    f"{cache.capacity_lines}")
            for line in cache.resident_lines():
                if line not in seen:
                    raise AssertionError(
                        f"line {line:#x} cached at {cluster} but pruned "
                        f"from the directory")
            if type(cache) is FullyAssociativeCache:
                if len(cache.slot_of) + len(cache.free) != len(cache.state):
                    raise AssertionError(
                        f"cache {cluster} slot leak: {len(cache.slot_of)} "
                        f"mapped + {len(cache.free)} free != "
                        f"{len(cache.state)} slots")
