"""Directory-based invalidation coherence over shared-cache clusters.

This is the protocol of the paper's simulated architecture (§3.1, Figure 1):
nodes of processors clustered around one shared cache, distributed memory,
full-bit-vector directories with replacement hints, invalidation-based
coherence with cache states INVALID / SHARED / EXCLUSIVE and directory
states NOT_CACHED / SHARED / EXCLUSIVE.

Semantics implemented verbatim from the paper:

* READ misses fetch the line SHARED and are the only misses that stall the
  processor; WRITE and UPGRADE miss latencies are assumed hidden by store
  buffers and relaxed consistency, but their fills still leave the line
  *pending* in the cache.
* A READ to a pending line is a **MERGE MISS**: the reader blocks until the
  outstanding fill returns.  If the line is invalidated while pending, the
  reader must fetch it again (a *merge refetch*).
* Invalidations are instantaneous and may invalidate pending lines.
* SHARED evictions send replacement hints; EXCLUSIVE evictions write back.

The protocol operates at *cluster* granularity: all processors behind one
shared cache are a single coherence participant, which is exactly the
mechanism by which clustering obviates communication.

The two hot entry points, :meth:`CoherentMemorySystem.read` and
:meth:`CoherentMemorySystem.write`, take line numbers (the simulation engine
divides byte addresses by the line size once).
"""

from __future__ import annotations

from ..core.config import MachineConfig
from ..core.metrics import MissCause, MissCounters, NetworkStats
from ..network.latency import make_latency_provider
from .allocation import PageAllocator
from .cache import EXCLUSIVE, SHARED, Eviction, make_cache
from .directory import DIR_EXCLUSIVE, DIR_SHARED, NOT_CACHED, Directory

__all__ = ["READ_HIT", "READ_MERGE", "READ_MISS", "CoherentMemorySystem"]

#: read() outcome tags (plain ints for speed on the hot path)
READ_HIT = 0
READ_MERGE = 1
READ_MISS = 2

# line-history markers for miss-cause classification
_RESIDENT = 0
_EVICTED = 1
_INVALIDATED = 2


class CoherentMemorySystem:
    """One coherent memory system: cluster caches + directory + allocator.

    Parameters
    ----------
    config:
        Machine organisation (cluster geometry, cache sizing, latencies).
    allocator:
        Page-home policy; a fresh first-touch round-robin allocator is built
        if not supplied (applications that place data pass their own).
    """

    def __init__(self, config: MachineConfig,
                 allocator: PageAllocator | None = None) -> None:
        self.config = config
        self.allocator = allocator if allocator is not None else PageAllocator(
            config.n_clusters, config.page_size, config.line_size)
        if self.allocator.n_clusters != config.n_clusters:
            raise ValueError(
                f"allocator built for {self.allocator.n_clusters} clusters, "
                f"machine has {config.n_clusters}")
        self.directory = Directory(config.n_clusters)
        # miss pricing goes through a pluggable provider; the default
        # flat-table provider is bit-identical to config.latency
        self.latency = make_latency_provider(config)
        capacity = config.cluster_cache_lines
        self.caches = [make_cache(capacity, config.associativity)
                       for _ in range(config.n_clusters)]
        self.counters = [MissCounters() for _ in range(config.n_clusters)]
        # Per-cluster line history for cold/coherence/capacity classification:
        # absent = never touched, else one of the marker constants above.
        self._history: list[dict[int, int]] = [dict() for _ in range(config.n_clusters)]
        self._cluster_shift = (config.cluster_size.bit_length() - 1
                               if config.cluster_size & (config.cluster_size - 1) == 0
                               else None)

    # ------------------------------------------------------------------ hot
    def cluster_of(self, processor: int) -> int:
        """Cluster id for a processor (shift when cluster size is a power of 2)."""
        if self._cluster_shift is not None:
            return processor >> self._cluster_shift
        return processor // self.config.cluster_size

    def read(self, processor: int, line: int, now: int,
             is_retry: bool = False) -> tuple[int, int]:
        """Process a read by ``processor`` to ``line`` at time ``now``.

        Returns ``(outcome, stall_cycles)`` where outcome is one of
        ``READ_HIT`` (stall 0), ``READ_MERGE`` (stall until the outstanding
        fill returns; the caller must *retry* the read at ``now + stall``
        with ``is_retry=True``), or ``READ_MISS`` (stall = Table-1 latency;
        the line is installed pending).

        ``is_retry`` suppresses double-counting of the reference when the
        engine re-issues a merged read.
        """
        cluster = self.cluster_of(processor)
        ctr = self.counters[cluster]
        if not is_retry:
            ctr.references += 1
            ctr.reads += 1
        entry = self.caches[cluster].lookup(line)
        if entry is not None:
            if entry.pending_until > now:
                ctr.merges += 1
                return READ_MERGE, entry.pending_until - now
            ctr.hits += 1
            if entry.fetcher not in (-1, processor):
                # first touch by someone other than the fetching processor:
                # the fetch acted as a prefetch for this cluster mate
                ctr.prefetch_hits += 1
                entry.fetcher = -1
            return READ_HIT, 0
        if is_retry:
            # Line was invalidated while we were merged on its fill.
            ctr.merge_refetches += 1
        cause = self._classify(cluster, line)
        latency = self._read_fill(cluster, line, now, processor)
        ctr.read_misses += 1
        ctr.record_cause(cause)
        return READ_MISS, latency

    def write(self, processor: int, line: int, now: int) -> None:
        """Process a write by ``processor`` to ``line`` at time ``now``.

        Writes never stall (store buffer + relaxed consistency); they update
        protocol state, classify the miss, and leave missing lines pending.
        """
        cluster = self.cluster_of(processor)
        ctr = self.counters[cluster]
        ctr.references += 1
        ctr.writes += 1
        cache = self.caches[cluster]
        entry = cache.lookup(line)
        if entry is not None:
            if entry.state == EXCLUSIVE:
                ctr.hits += 1
                return
            # UPGRADE: present but SHARED -> invalidate other sharers.
            ctr.upgrade_misses += 1
            self._invalidate_others(line, cluster)
            self.directory.record_exclusive(line, cluster)
            entry.state = EXCLUSIVE
            return
        # WRITE miss: fetch exclusive; latency hidden but line is pending.
        cause = self._classify(cluster, line)
        latency = self._write_fill(cluster, line, now, processor)
        ctr.write_misses += 1
        ctr.record_cause(cause)
        del latency  # latency fully hidden from the processor

    # ----------------------------------------------------------- fill paths
    def _read_fill(self, cluster: int, line: int, now: int,
                   processor: int) -> int:
        """Service a read miss: directory transaction + SHARED install."""
        home = self.allocator.home_of_line(line)
        dentry = self.directory.entry(line)
        if dentry.state == DIR_EXCLUSIVE:
            owner = dentry.owner
            latency = self.latency.miss_cycles(cluster, home, owner, now)
            # Owner keeps the data but downgrades; reader joins the sharers.
            self.caches[owner].downgrade(line)
            self.directory.downgrade_owner(line, cluster)
        else:
            latency = self.latency.miss_cycles(cluster, home, None, now)
            self.directory.record_read_fill(line, cluster)
        self._install(cluster, line, SHARED, now + latency, processor)
        return latency

    def _write_fill(self, cluster: int, line: int, now: int,
                    processor: int) -> int:
        """Service a write miss: invalidate everyone else, install EXCLUSIVE."""
        home = self.allocator.home_of_line(line)
        dentry = self.directory.entry(line)
        if dentry.state == DIR_EXCLUSIVE:
            latency = self.latency.miss_cycles(cluster, home, dentry.owner,
                                               now)
        else:
            latency = self.latency.miss_cycles(cluster, home, None, now)
        self._invalidate_others(line, cluster)
        self.directory.record_exclusive(line, cluster)
        self._install(cluster, line, EXCLUSIVE, now + latency, processor)
        return latency

    def _install(self, cluster: int, line: int, state: int,
                 pending_until: int, fetcher: int = -1) -> None:
        """Insert a freshly fetched line, handling the victim's protocol exit."""
        victim = self.caches[cluster].insert(line, state, pending_until,
                                             fetcher)
        self._history[cluster][line] = _RESIDENT
        if victim is not None:
            self._retire(cluster, victim)

    def _retire(self, cluster: int, victim: Eviction) -> None:
        """Directory bookkeeping for an evicted line."""
        self._history[cluster][victim.line] = _EVICTED
        if victim.state == EXCLUSIVE:
            self.directory.writeback(victim.line, cluster)
        else:
            self.directory.replacement_hint(victim.line, cluster)

    def _invalidate_others(self, line: int, keeper: int) -> None:
        """Instantaneously invalidate every cached copy except ``keeper``'s.

        Pending lines are invalidated too (paper §3.1); a reader merged on
        such a line re-fetches when it retries.
        """
        dentry = self.directory.peek(line)
        if dentry is None or dentry.sharers == 0:
            return
        bits = dentry.sharers & ~(1 << keeper)
        cluster = 0
        while bits:
            if bits & 1:
                if self.caches[cluster].invalidate(line):
                    self._history[cluster][line] = _INVALIDATED
            bits >>= 1
            cluster += 1

    def _classify(self, cluster: int, line: int) -> MissCause:
        """Cold / coherence / capacity classification for a miss."""
        mark = self._history[cluster].get(line)
        if mark is None:
            return MissCause.COLD
        if mark == _INVALIDATED:
            return MissCause.COHERENCE
        return MissCause.CAPACITY

    # ---------------------------------------------------------------- query
    def aggregate_counters(self) -> MissCounters:
        """Miss counters summed over all clusters."""
        total = MissCounters()
        for ctr in self.counters:
            ctr.merged_into(total)
        return total

    def network_stats(self) -> NetworkStats | None:
        """Interconnect counters (``None`` under the flat-table provider)."""
        return self.latency.stats()

    def check_invariants(self) -> None:
        """Cross-check cache and directory state; raises on inconsistency.

        Used by tests and (cheaply) by long-running debug builds:

        * a line EXCLUSIVE at the directory is EXCLUSIVE in exactly the
          owner's cache and nowhere else;
        * a line SHARED at the directory is SHARED in every cache whose bit
          is set (hints guarantee no stale bits);
        * a line NOT_CACHED is nowhere;
        * no cache exceeds its capacity.
        """
        for line in self.directory.lines():
            dentry = self.directory.peek(line)
            assert dentry is not None
            for cluster, cache in enumerate(self.caches):
                state = cache.state_of(line)
                if dentry.state == NOT_CACHED:
                    if state is not None:
                        raise AssertionError(
                            f"line {line:#x} NOT_CACHED but in cache {cluster}")
                elif dentry.state == DIR_SHARED:
                    if dentry.is_sharer(cluster) and state != SHARED:
                        raise AssertionError(
                            f"line {line:#x} SHARED at dir, cluster {cluster} "
                            f"bit set, cache state {state}")
                    if not dentry.is_sharer(cluster) and state is not None:
                        raise AssertionError(
                            f"line {line:#x} cached at {cluster} without "
                            f"a sharer bit")
                else:  # DIR_EXCLUSIVE
                    if cluster == dentry.owner and state != EXCLUSIVE:
                        raise AssertionError(
                            f"line {line:#x} EXCL at dir, owner {cluster} "
                            f"cache state {state}")
                    if cluster != dentry.owner and state is not None:
                        raise AssertionError(
                            f"line {line:#x} EXCL owned by {dentry.owner} "
                            f"but cached at {cluster}")
        for cluster, cache in enumerate(self.caches):
            if cache.capacity_lines is not None and len(cache) > cache.capacity_lines:
                raise AssertionError(
                    f"cache {cluster} over capacity: {len(cache)} > "
                    f"{cache.capacity_lines}")
