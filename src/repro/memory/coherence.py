"""Directory-based invalidation coherence over shared-cache clusters.

This is the protocol of the paper's simulated architecture (§3.1, Figure 1):
nodes of processors clustered around one shared cache, distributed memory,
full-bit-vector directories with replacement hints, invalidation-based
coherence with cache states INVALID / SHARED / EXCLUSIVE and directory
states NOT_CACHED / SHARED / EXCLUSIVE.

Semantics implemented verbatim from the paper:

* READ misses fetch the line SHARED and are the only misses that stall the
  processor; WRITE and UPGRADE miss latencies are assumed hidden by store
  buffers and relaxed consistency, but their fills still leave the line
  *pending* in the cache.
* A READ to a pending line is a **MERGE MISS**: the reader blocks until the
  outstanding fill returns.  If the line is invalidated while pending, the
  reader must fetch it again (a *merge refetch*).
* Invalidations are instantaneous and may invalidate pending lines.
* SHARED evictions send replacement hints; EXCLUSIVE evictions write back.

The protocol operates at *cluster* granularity: all processors behind one
shared cache are a single coherence participant, which is exactly the
mechanism by which clustering obviates communication.

The two hot entry points, :meth:`CoherentMemorySystem.read` and
:meth:`CoherentMemorySystem.write`, take line numbers (the simulation engine
divides byte addresses by the line size once).
"""

from __future__ import annotations

from ..core.config import MachineConfig
from ..core.metrics import MissCause, MissCounters, NetworkStats
from ..network.latency import TableLatency, make_latency_provider
from .allocation import PageAllocator
from .cache import (EXCLUSIVE, SHARED, FullyAssociativeCache, LineEntry,
                    make_cache)
from .directory import (DIR_EXCLUSIVE, DIR_SHARED, NOT_CACHED, DirEntry,
                        Directory)

__all__ = ["READ_HIT", "READ_MERGE", "READ_MISS", "CoherentMemorySystem"]

#: read() outcome tags (plain ints for speed on the hot path)
READ_HIT = 0
READ_MERGE = 1
READ_MISS = 2

# Per-cluster line history for cold/coherence/capacity classification.  The
# history dict stores, for each line a cluster has ever lost, the MissCause a
# future miss on that line will carry: evictions write CAPACITY, invalidations
# write COHERENCE, and a line never seen classifies COLD via the dict-get
# default.  (Installs need no history write: a resident line cannot miss, and
# every way of losing a line — eviction or invalidation — records its cause.)
_COLD = MissCause.COLD
_CAPACITY = MissCause.CAPACITY
_COHERENCE = MissCause.COHERENCE

#: preallocated hit result — read() returns this once per hit, the single
#: most common outcome of a simulation, and callers only ever unpack it
_HIT = (READ_HIT, 0)


class CoherentMemorySystem:
    """One coherent memory system: cluster caches + directory + allocator.

    Parameters
    ----------
    config:
        Machine organisation (cluster geometry, cache sizing, latencies).
    allocator:
        Page-home policy; a fresh first-touch round-robin allocator is built
        if not supplied (applications that place data pass their own).
    """

    def __init__(self, config: MachineConfig,
                 allocator: PageAllocator | None = None) -> None:
        self.config = config
        self.allocator = allocator if allocator is not None else PageAllocator(
            config.n_clusters, config.page_size, config.line_size)
        if self.allocator.n_clusters != config.n_clusters:
            raise ValueError(
                f"allocator built for {self.allocator.n_clusters} clusters, "
                f"machine has {config.n_clusters}")
        self.directory = Directory(config.n_clusters)
        # miss pricing goes through a pluggable provider; the default
        # flat-table provider is bit-identical to config.latency
        self.latency = make_latency_provider(config)
        capacity = config.cluster_cache_lines
        self.caches = [make_cache(capacity, config.associativity)
                       for _ in range(config.n_clusters)]
        self.counters = [MissCounters() for _ in range(config.n_clusters)]
        # Per-cluster line history for cold/coherence/capacity classification
        # (see the module-level comment above _COLD for the encoding).
        self._history: list[dict[int, MissCause]] = [dict() for _ in range(config.n_clusters)]
        self._cluster_shift = (config.cluster_size.bit_length() - 1
                               if config.cluster_size & (config.cluster_size - 1) == 0
                               else None)
        # --- hot-path precomputation ----------------------------------
        # The flat Table-1 latencies are inlined on the miss path (the
        # dominant per-op cost of a simulation); a hop-based provider
        # (MeshLatency) is stateful — contention queues, counters — so it
        # keeps the miss_cycles call.
        self._flat = isinstance(self.latency, TableLatency)
        model = config.latency
        self._local_clean = model.local_clean
        self._remote_clean = model.remote_clean
        self._local_dirty_remote = model.local_dirty_remote
        self._remote_dirty_3p = model.remote_dirty_third_party
        # live views of allocator page bindings for the in-line home lookup
        # (first touch of a page still goes through the allocator)
        self._page_home = self.allocator._page_home
        self._lines_per_page = self.allocator._lines_per_page
        # Fully associative caches (the paper's model) expose their line
        # dicts so lookup / LRU touch / install run as plain dict ops with
        # no method call and no Eviction allocation; the set-associative
        # extension keeps the polymorphic calls.
        self._line_maps = ([c._lines for c in self.caches]
                           if all(type(c) is FullyAssociativeCache
                                  for c in self.caches) else None)
        self._capacity_lines = capacity

    # ------------------------------------------------------------------ hot
    def cluster_of(self, processor: int) -> int:
        """Cluster id for a processor (shift when cluster size is a power of 2)."""
        if self._cluster_shift is not None:
            return processor >> self._cluster_shift
        return processor // self.config.cluster_size

    def read(self, processor: int, line: int, now: int,
             is_retry: bool = False) -> tuple[int, int]:
        """Process a read by ``processor`` to ``line`` at time ``now``.

        Returns ``(outcome, stall_cycles)`` where outcome is one of
        ``READ_HIT`` (stall 0), ``READ_MERGE`` (stall until the outstanding
        fill returns; the caller must *retry* the read at ``now + stall``
        with ``is_retry=True``), or ``READ_MISS`` (stall = Table-1 latency;
        the line is installed pending).

        ``is_retry`` suppresses double-counting of the reference when the
        engine re-issues a merged read.

        The miss path inlines what used to be ``_classify`` / ``_read_fill``
        / ``_install`` / ``_retire`` helper calls: it runs once per miss —
        the dominant per-op cost of a whole simulation — and the ~8 Python
        frames it saves are worth the longer method body.  The state
        transitions are the same, in the same order.
        """
        shift = self._cluster_shift
        cluster = (processor >> shift if shift is not None
                   else processor // self.config.cluster_size)
        ctr = self.counters[cluster]
        if not is_retry:
            ctr.references += 1
            ctr.reads += 1
        line_maps = self._line_maps
        if line_maps is not None:
            lines = line_maps[cluster]
            entry = lines.get(line)
            if entry is not None and self._capacity_lines is not None:
                # LRU touch: delete + reinsert keeps dict order = LRU order
                del lines[line]
                lines[line] = entry
        else:
            lines = None
            entry = self.caches[cluster].lookup(line)
        if entry is not None:
            if entry.pending_until > now:
                ctr.merges += 1
                return READ_MERGE, entry.pending_until - now
            ctr.hits += 1
            fetcher = entry.fetcher
            if fetcher != -1 and fetcher != processor:
                # first touch by someone other than the fetching processor:
                # the fetch acted as a prefetch for this cluster mate
                ctr.prefetch_hits += 1
                entry.fetcher = -1
            return _HIT
        if is_retry:
            # Line was invalidated while we were merged on its fill.
            ctr.merge_refetches += 1

        # ---- read miss: classify, directory transaction, SHARED install
        history = self._history[cluster]
        cause = history.get(line, _COLD)
        page_home = self._page_home.get(line // self._lines_per_page)
        home = (page_home if page_home is not None
                else self.allocator.home_of_line(line))
        dentries = self.directory._entries
        dentry = dentries.get(line)
        if dentry is None:
            dentry = DirEntry()
            dentries[line] = dentry
        if dentry.state == DIR_EXCLUSIVE:
            sharers = dentry.sharers
            owner = sharers.bit_length() - 1
            if self._flat:
                if owner == cluster:
                    raise ValueError(
                        "requesting cluster cannot be the dirty owner on a miss")
                if cluster == home:
                    latency = self._local_dirty_remote
                elif owner == home:
                    latency = self._remote_clean
                else:
                    latency = self._remote_dirty_3p
            else:
                latency = self.latency.miss_cycles(cluster, home, owner, now)
            # Owner keeps the data but downgrades; reader joins the sharers.
            if line_maps is not None:
                line_maps[owner][line].state = SHARED
            else:
                self.caches[owner].downgrade(line)
            dentry.state = DIR_SHARED
            dentry.sharers = sharers | (1 << cluster)
        else:
            if self._flat:
                latency = (self._local_clean if cluster == home
                           else self._remote_clean)
            else:
                latency = self.latency.miss_cycles(cluster, home, None, now)
            dentry.state = DIR_SHARED
            dentry.sharers |= 1 << cluster
        if lines is not None:
            cache = self.caches[cluster]
            cap = self._capacity_lines
            if cap is not None and len(lines) >= cap:
                vline = next(iter(lines))
                ventry = lines.pop(vline)
                vstate = ventry.state
                cache.evictions += 1
                # recycle the victim's LineEntry for the incoming line
                ventry.state = SHARED
                ventry.pending_until = now + latency
                ventry.fetcher = processor
                lines[line] = ventry
                cache.inserts += 1
                # retire the victim (the body of _retire_inline, saved a
                # call on what is the common case of every capacity miss)
                history[vline] = _CAPACITY
                vdentry = dentries.get(vline)
                if vstate == EXCLUSIVE:
                    if (vdentry is not None
                            and vdentry.state == DIR_EXCLUSIVE
                            and vdentry.sharers == 1 << cluster):
                        vdentry.state = NOT_CACHED
                        vdentry.sharers = 0
                        self.directory.writebacks += 1
                elif vdentry is not None:
                    vdentry.sharers &= ~(1 << cluster)
                    self.directory.replacement_hints += 1
                    if vdentry.sharers == 0:
                        vdentry.state = NOT_CACHED
            else:
                lines[line] = LineEntry(SHARED, now + latency, processor)
                cache.inserts += 1
        else:
            victim = self.caches[cluster].insert(line, SHARED, now + latency,
                                                 processor)
            if victim is not None:
                self._retire_inline(cluster, victim.line, victim.state,
                                    history, dentries)
        ctr.read_misses += 1
        ctr.by_cause[cause] += 1
        return READ_MISS, latency

    def write(self, processor: int, line: int, now: int) -> None:
        """Process a write by ``processor`` to ``line`` at time ``now``.

        Writes never stall (store buffer + relaxed consistency); they update
        protocol state, classify the miss, and leave missing lines pending.
        Like :meth:`read`, the miss and upgrade paths are inlined.
        """
        shift = self._cluster_shift
        cluster = (processor >> shift if shift is not None
                   else processor // self.config.cluster_size)
        ctr = self.counters[cluster]
        ctr.references += 1
        ctr.writes += 1
        cache = self.caches[cluster]
        line_maps = self._line_maps
        if line_maps is not None:
            lines = line_maps[cluster]
            entry = lines.get(line)
            if entry is not None and self._capacity_lines is not None:
                del lines[line]
                lines[line] = entry
        else:
            lines = None
            entry = cache.lookup(line)
        directory = self.directory
        dentries = directory._entries
        if entry is not None:
            if entry.state == EXCLUSIVE:
                ctr.hits += 1
                return
            # UPGRADE: present but SHARED -> invalidate other sharers.
            ctr.upgrade_misses += 1
            dentry = dentries.get(line)
            if dentry is None:
                dentry = DirEntry()
                dentries[line] = dentry
            others = dentry.sharers & ~(1 << cluster)
            if others:
                self._invalidate_bits(line, others)
                directory.invalidations_sent += others.bit_count()
            dentry.state = DIR_EXCLUSIVE
            dentry.sharers = 1 << cluster
            entry.state = EXCLUSIVE
            return

        # ---- WRITE miss: fetch exclusive; latency hidden, line pending.
        history = self._history[cluster]
        cause = history.get(line, _COLD)
        page_home = self._page_home.get(line // self._lines_per_page)
        home = (page_home if page_home is not None
                else self.allocator.home_of_line(line))
        dentry = dentries.get(line)
        if dentry is None:
            dentry = DirEntry()
            dentries[line] = dentry
        if dentry.state == DIR_EXCLUSIVE:
            owner = dentry.sharers.bit_length() - 1
            if self._flat:
                if owner == cluster:
                    raise ValueError(
                        "requesting cluster cannot be the dirty owner on a miss")
                if cluster == home:
                    latency = self._local_dirty_remote
                elif owner == home:
                    latency = self._remote_clean
                else:
                    latency = self._remote_dirty_3p
            else:
                latency = self.latency.miss_cycles(cluster, home, owner, now)
        else:
            if self._flat:
                latency = (self._local_clean if cluster == home
                           else self._remote_clean)
            else:
                latency = self.latency.miss_cycles(cluster, home, None, now)
        others = dentry.sharers & ~(1 << cluster)
        if others:
            self._invalidate_bits(line, others)
        directory.invalidations_sent += others.bit_count()
        dentry.state = DIR_EXCLUSIVE
        dentry.sharers = 1 << cluster
        if lines is not None:
            cap = self._capacity_lines
            if cap is not None and len(lines) >= cap:
                vline = next(iter(lines))
                ventry = lines.pop(vline)
                vstate = ventry.state
                cache.evictions += 1
                ventry.state = EXCLUSIVE
                ventry.pending_until = now + latency
                ventry.fetcher = processor
                lines[line] = ventry
                cache.inserts += 1
                history[vline] = _CAPACITY
                vdentry = dentries.get(vline)
                if vstate == EXCLUSIVE:
                    if (vdentry is not None
                            and vdentry.state == DIR_EXCLUSIVE
                            and vdentry.sharers == 1 << cluster):
                        vdentry.state = NOT_CACHED
                        vdentry.sharers = 0
                        self.directory.writebacks += 1
                elif vdentry is not None:
                    vdentry.sharers &= ~(1 << cluster)
                    self.directory.replacement_hints += 1
                    if vdentry.sharers == 0:
                        vdentry.state = NOT_CACHED
            else:
                lines[line] = LineEntry(EXCLUSIVE, now + latency, processor)
                cache.inserts += 1
        else:
            victim = cache.insert(line, EXCLUSIVE, now + latency, processor)
            if victim is not None:
                self._retire_inline(cluster, victim.line, victim.state,
                                    history, dentries)
        ctr.write_misses += 1
        ctr.by_cause[cause] += 1

    # -------------------------------------------------- miss-path helpers
    def _retire_inline(self, cluster: int, vline: int, vstate: int,
                       history: dict, dentries: dict) -> None:
        """Directory bookkeeping for an evicted line (uncommon subpath)."""
        history[vline] = _CAPACITY
        dentry = dentries.get(vline)
        if vstate == EXCLUSIVE:
            # writeback: data returns home, line NOT_CACHED
            if (dentry is not None and dentry.state == DIR_EXCLUSIVE
                    and dentry.sharers == 1 << cluster):
                dentry.state = NOT_CACHED
                dentry.sharers = 0
                self.directory.writebacks += 1
        elif dentry is not None:
            # replacement hint: clear the sharer bit so the directory never
            # sends a useless invalidation later
            dentry.sharers &= ~(1 << cluster)
            self.directory.replacement_hints += 1
            if dentry.sharers == 0:
                dentry.state = NOT_CACHED

    def _invalidate_bits(self, line: int, bits: int) -> None:
        """Instantaneously invalidate the cached copies named by ``bits``.

        Pending lines are invalidated too (paper §3.1); a reader merged on
        such a line re-fetches when it retries.

        Iterates set bits via lowest-bit extraction (ascending cluster
        order, same as the old shift-scan) so a write to a line shared by
        few of many clusters doesn't walk every bit position.
        """
        history = self._history
        line_maps = self._line_maps
        if line_maps is not None:
            while bits:
                low = bits & -bits
                bits ^= low
                cluster = low.bit_length() - 1
                if line_maps[cluster].pop(line, None) is not None:
                    history[cluster][line] = _COHERENCE
        else:
            caches = self.caches
            while bits:
                low = bits & -bits
                bits ^= low
                cluster = low.bit_length() - 1
                if caches[cluster].invalidate(line):
                    history[cluster][line] = _COHERENCE

    # ---------------------------------------------------------------- query
    def aggregate_counters(self) -> MissCounters:
        """Miss counters summed over all clusters."""
        total = MissCounters()
        for ctr in self.counters:
            ctr.merged_into(total)
        return total

    def network_stats(self) -> NetworkStats | None:
        """Interconnect counters (``None`` under the flat-table provider)."""
        return self.latency.stats()

    def check_invariants(self) -> None:
        """Cross-check cache and directory state; raises on inconsistency.

        Used by tests and (cheaply) by long-running debug builds:

        * a line EXCLUSIVE at the directory is EXCLUSIVE in exactly the
          owner's cache and nowhere else;
        * a line SHARED at the directory is SHARED in every cache whose bit
          is set (hints guarantee no stale bits);
        * a line NOT_CACHED is nowhere;
        * no cache exceeds its capacity.
        """
        for line in self.directory.lines():
            dentry = self.directory.peek(line)
            assert dentry is not None
            for cluster, cache in enumerate(self.caches):
                state = cache.state_of(line)
                if dentry.state == NOT_CACHED:
                    if state is not None:
                        raise AssertionError(
                            f"line {line:#x} NOT_CACHED but in cache {cluster}")
                elif dentry.state == DIR_SHARED:
                    if dentry.is_sharer(cluster) and state != SHARED:
                        raise AssertionError(
                            f"line {line:#x} SHARED at dir, cluster {cluster} "
                            f"bit set, cache state {state}")
                    if not dentry.is_sharer(cluster) and state is not None:
                        raise AssertionError(
                            f"line {line:#x} cached at {cluster} without "
                            f"a sharer bit")
                else:  # DIR_EXCLUSIVE
                    if cluster == dentry.owner and state != EXCLUSIVE:
                        raise AssertionError(
                            f"line {line:#x} EXCL at dir, owner {cluster} "
                            f"cache state {state}")
                    if cluster != dentry.owner and state is not None:
                        raise AssertionError(
                            f"line {line:#x} EXCL owned by {dentry.owner} "
                            f"but cached at {cluster}")
        for cluster, cache in enumerate(self.caches):
            if cache.capacity_lines is not None and len(cache) > cache.capacity_lines:
                raise AssertionError(
                    f"cache {cluster} over capacity: {len(cache)} > "
                    f"{cache.capacity_lines}")
