"""Page-to-home-cluster allocation policy.

The paper (§3.1): *"Memory is allocated to clusters when first touched on a
round robin basis.  Some application programs explicitly place data when such
placement improves performance.  All stack references are allocated
locally."*

:class:`PageAllocator` implements exactly that:

* the first reference to a page binds it to a home cluster, cycling
  round-robin over clusters;
* an application may *explicitly place* a page (or a whole region) at a
  chosen cluster before any reference touches it, overriding round-robin;
* per-processor stack segments are pre-bound to the owning processor's
  cluster.

Home lookup is on the critical path of every miss, so the hot method
:meth:`PageAllocator.home_of_line` does a single dict probe in the common
case.
"""

from __future__ import annotations

from .address import DEFAULT_LINE_SIZE, DEFAULT_PAGE_SIZE, Region

__all__ = ["PageAllocator"]


class PageAllocator:
    """First-touch round-robin page placement with explicit override.

    Parameters
    ----------
    n_clusters:
        Number of clusters (home candidates) in the machine.
    page_size, line_size:
        Geometry; both in bytes, page a multiple of line.
    """

    __slots__ = ("n_clusters", "page_size", "line_size", "_lines_per_page",
                 "_page_home", "_rr_next", "first_touch_pages", "placed_pages")

    def __init__(
        self,
        n_clusters: int,
        page_size: int = DEFAULT_PAGE_SIZE,
        line_size: int = DEFAULT_LINE_SIZE,
    ) -> None:
        if n_clusters <= 0:
            raise ValueError(f"n_clusters must be positive, got {n_clusters}")
        if page_size % line_size != 0:
            raise ValueError("page size must be a multiple of line size")
        self.n_clusters = n_clusters
        self.page_size = page_size
        self.line_size = line_size
        self._lines_per_page = page_size // line_size
        self._page_home: dict[int, int] = {}
        self._rr_next = 0
        #: statistics: pages bound by first touch vs. explicit placement
        self.first_touch_pages = 0
        self.placed_pages = 0

    # ------------------------------------------------------------------ hot
    def home_of_line(self, line: int) -> int:
        """Home cluster of cache line ``line``, binding its page on first touch.

        Called on every directory access.  ``line`` is a line *number*, not a
        byte address.
        """
        page = line // self._lines_per_page
        home = self._page_home.get(page)
        if home is None:
            home = self._rr_next
            self._page_home[page] = home
            self._rr_next = (home + 1) % self.n_clusters
            self.first_touch_pages += 1
        return home

    # ---------------------------------------------------------------- setup
    def place_page(self, page: int, cluster: int) -> None:
        """Explicitly bind ``page`` to ``cluster`` (must precede first touch)."""
        self._check_cluster(cluster)
        if page in self._page_home:
            raise ValueError(f"page {page} already bound to cluster "
                             f"{self._page_home[page]}")
        self._page_home[page] = cluster
        self.placed_pages += 1

    def place_range(self, start_addr: int, size: int, cluster: int) -> None:
        """Explicitly place every page overlapping ``[start, start+size)``.

        Pages already bound (e.g. by an earlier overlapping placement) are
        left alone — applications place adjacent partitions and partitions
        may share boundary pages.
        """
        self._check_cluster(cluster)
        if size <= 0:
            return
        first = start_addr // self.page_size
        last = (start_addr + size - 1) // self.page_size
        for page in range(first, last + 1):
            if page not in self._page_home:
                self._page_home[page] = cluster
                self.placed_pages += 1

    def place_region(self, region: Region, cluster: int) -> None:
        """Explicitly place an entire :class:`~repro.memory.address.Region`."""
        self.place_range(region.base, region.size, cluster)

    def place_region_blocked(self, region: Region, n_partitions: int) -> None:
        """Distribute a region over clusters in ``n_partitions`` equal blocks.

        Partition ``i`` goes to cluster ``i % n_clusters``.  This is the
        idiom the SPLASH codes use for "each processor's partition lives in
        its local memory"; with clustering, partitions of co-clustered
        processors land at the same home.
        """
        if n_partitions <= 0:
            raise ValueError("n_partitions must be positive")
        chunk = region.size // n_partitions
        if chunk == 0:
            # Degenerate: region smaller than partition count; place whole
            # region at cluster 0 rather than emitting zero-size placements.
            self.place_region(region, 0)
            return
        for i in range(n_partitions):
            start = region.base + i * chunk
            size = chunk if i < n_partitions - 1 else region.end - start
            self.place_range(start, size, i % self.n_clusters)

    def make_stack(self, processor: int, cluster: int, base: int, size: int) -> None:
        """Bind a processor's stack segment to its own cluster.

        The paper: "All stack references are allocated locally."  The
        ``processor`` argument is accepted for traceability only.
        """
        self.place_range(base, size, cluster)

    # ---------------------------------------------------------------- query
    def bound_home(self, page: int) -> int | None:
        """Home of ``page`` if already bound, else ``None`` (no side effects)."""
        return self._page_home.get(page)

    @property
    def pages_bound(self) -> int:
        """Total number of pages with an assigned home."""
        return len(self._page_home)

    def home_histogram(self) -> list[int]:
        """Number of pages homed at each cluster (index = cluster id)."""
        hist = [0] * self.n_clusters
        for home in self._page_home.values():
            hist[home] += 1
        return hist

    def _check_cluster(self, cluster: int) -> None:
        if not (0 <= cluster < self.n_clusters):
            raise ValueError(
                f"cluster {cluster} out of range [0, {self.n_clusters})"
            )
