"""Memory-system substrate: address space, page placement, cluster caches,
full-bit-vector directory, and the invalidation coherence protocol."""

from .address import AddressSpace, Region, line_of, page_of
from .allocation import PageAllocator
from .cache import (EXCLUSIVE, SHARED, Eviction, FullyAssociativeCache,
                    LineEntry, SetAssociativeCache, make_cache)
from .coherence import (READ_HIT, READ_MERGE, READ_MISS,
                        CoherentMemorySystem)
from .directory import (DIR_EXCLUSIVE, DIR_SHARED, NOT_CACHED, DirEntry,
                        Directory)
from .snoopy import SnoopyClusterMemorySystem

__all__ = [
    "AddressSpace", "Region", "line_of", "page_of",
    "PageAllocator",
    "SHARED", "EXCLUSIVE", "LineEntry", "Eviction",
    "FullyAssociativeCache", "SetAssociativeCache", "make_cache",
    "NOT_CACHED", "DIR_SHARED", "DIR_EXCLUSIVE", "DirEntry", "Directory",
    "READ_HIT", "READ_MERGE", "READ_MISS", "CoherentMemorySystem",
    "SnoopyClusterMemorySystem",
]
