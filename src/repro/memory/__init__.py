"""Memory-system substrate: address space, page placement, cluster caches,
full-bit-vector directory, and the invalidation coherence protocol.

Cache and directory state is slab-allocated (flat ``array('q')`` columns,
packed-int directory entries); the object-per-line reference
implementations live on in :mod:`repro.memory.refmodel` for the property
test suite.
"""

from .address import AddressSpace, Region, line_of, page_of
from .allocation import PageAllocator
from .cache import (EXCLUSIVE, SHARED, Eviction, FullyAssociativeCache,
                    SetAssociativeCache, make_cache)
from .coherence import (READ_HIT, READ_MERGE, READ_MISS,
                        CoherentMemorySystem)
from .directory import (DIR_EXCLUSIVE, DIR_SHARED, NOT_CACHED, SHARER_SHIFT,
                        Directory)
from .snoopy import SnoopyClusterMemorySystem

__all__ = [
    "AddressSpace", "Region", "line_of", "page_of",
    "PageAllocator",
    "SHARED", "EXCLUSIVE", "Eviction",
    "FullyAssociativeCache", "SetAssociativeCache", "make_cache",
    "NOT_CACHED", "DIR_SHARED", "DIR_EXCLUSIVE", "SHARER_SHIFT", "Directory",
    "READ_HIT", "READ_MERGE", "READ_MISS", "CoherentMemorySystem",
    "SnoopyClusterMemorySystem",
]
