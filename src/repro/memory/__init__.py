"""Memory-system substrate: address space, page placement, cluster caches,
full-bit-vector directory, and the pluggable coherence-protocol backends.

Cache and directory state is slab-allocated (flat ``array('q')`` columns,
packed-int directory entries); the object-per-line reference
implementations live on in :mod:`repro.memory.refmodel` for the property
test suite.

Protocol registry
-----------------
Which backend a run uses is a :class:`~repro.core.config.MachineConfig`
axis (``config.protocol``), realised here: :data:`PROTOCOL_REGISTRY` maps
every name in :data:`repro.core.config.PROTOCOLS` to a memory-system
factory, and :func:`make_memory_system` is the one construction seam the
execution layers (``apps.base``, ``runtime.session``, ``sim.batch``) go
through.  Constructing a concrete class directly still works for probes
and tests, but bypasses protocol selection — the package-level
``SnoopyClusterMemorySystem`` alias warns about exactly that.
"""

from typing import TYPE_CHECKING, Callable
import warnings

from ..core.config import PROTOCOLS, MachineConfig
from .address import AddressSpace, Region, line_of, page_of
from .allocation import PageAllocator
from .cache import (EXCLUSIVE, SHARED, Eviction, FullyAssociativeCache,
                    SetAssociativeCache, make_cache)
from .coherence import (READ_HIT, READ_MERGE, READ_MISS,
                        CoherentMemorySystem)
from .directory import (DIR_EXCLUSIVE, DIR_SHARED, NOT_CACHED, SHARER_SHIFT,
                        Directory)
from .dls import DLSMemorySystem
from .snoopy import SnoopyClusterMemorySystem as _SnoopyClusterMemorySystem

__all__ = [
    "AddressSpace", "Region", "line_of", "page_of",
    "PageAllocator",
    "SHARED", "EXCLUSIVE", "Eviction",
    "FullyAssociativeCache", "SetAssociativeCache", "make_cache",
    "NOT_CACHED", "DIR_SHARED", "DIR_EXCLUSIVE", "SHARER_SHIFT", "Directory",
    "READ_HIT", "READ_MERGE", "READ_MISS", "CoherentMemorySystem",
    "DLSMemorySystem", "SnoopyClusterMemorySystem",
    "PROTOCOL_REGISTRY", "make_memory_system", "register_protocol",
]

if TYPE_CHECKING:  # pragma: no cover
    MemoryFactory = Callable[[MachineConfig, PageAllocator | None], object]

#: protocol name -> ``factory(config, allocator) -> memory system``.
#: Covers every name in :data:`repro.core.config.PROTOCOLS`; the config
#: layer validates names, this table realises them.
PROTOCOL_REGISTRY: "dict[str, MemoryFactory]" = {
    "directory": CoherentMemorySystem,
    "snoopy": _SnoopyClusterMemorySystem,
    "dls": DLSMemorySystem,
}

assert set(PROTOCOL_REGISTRY) == set(PROTOCOLS), \
    "protocol registry out of sync with repro.core.config.PROTOCOLS"


def register_protocol(name: str, factory: "MemoryFactory") -> None:
    """Install (or replace) a protocol factory under ``name``.

    The name must already be declared in
    :data:`repro.core.config.PROTOCOLS` — configs validate against that
    tuple, so a factory registered under an undeclared name could never
    be selected.  The hook exists for experiments that substitute an
    instrumented or variant backend for a declared protocol.
    """
    if name not in PROTOCOLS:
        raise ValueError(f"protocol {name!r} is not declared in "
                         f"repro.core.config.PROTOCOLS {PROTOCOLS}")
    PROTOCOL_REGISTRY[name] = factory


def make_memory_system(config: MachineConfig,
                       allocator: PageAllocator | None = None):
    """Build the memory system ``config.protocol`` selects.

    The single construction seam every execution layer uses: the default
    ``"directory"`` protocol returns the historical
    :class:`CoherentMemorySystem` (bit-identical results), any other
    name returns its registered backend.  All backends share the hot
    duck interface (``read``/``write``/``cluster_of``/``counters``/
    ``aggregate_counters``/``network_stats``).
    """
    factory = PROTOCOL_REGISTRY.get(config.protocol)
    if factory is None:  # pragma: no cover - config validation precedes
        raise ValueError(f"no memory-system factory registered for "
                         f"protocol {config.protocol!r}")
    return factory(config, allocator)


class SnoopyClusterMemorySystem(_SnoopyClusterMemorySystem):
    """Deprecated package-level alias; construct through the registry.

    Direct construction bypasses the protocol seam (``config.protocol``
    is ignored), so the package-level name now warns.  Import
    :class:`repro.memory.snoopy.SnoopyClusterMemorySystem` for probes
    that genuinely want explicit wiring, or — almost always better —
    select the backend with ``config.with_protocol("snoopy")`` and
    :func:`make_memory_system`.
    """

    def __init__(self, *args, **kwargs) -> None:
        warnings.warn(
            "constructing repro.memory.SnoopyClusterMemorySystem directly "
            "is deprecated; use make_memory_system(config.with_protocol"
            "('snoopy'), allocator) or import the class from "
            "repro.memory.snoopy",
            DeprecationWarning, stacklevel=2)
        super().__init__(*args, **kwargs)
