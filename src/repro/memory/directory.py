"""Full-bit-vector directory with replacement hints.

Paper §3.1: *"The directory is implemented as a full bit vector with
replacement hints."* and *"The directory supports three cache states for a
line, NOT CACHED, EXCLUSIVE, and SHARED."*

Physically the directory is distributed — each cluster holds the entries for
the lines whose home it is (the :class:`~repro.memory.allocation.PageAllocator`
decides homes).  Logically it is a single map from line number to
:class:`DirEntry`; the protocol layer computes the home separately to assign
network latencies, so nothing is lost by the centralised representation.

Sharer sets are integer bitmasks over *clusters* (not processors): in a
shared-cache cluster the processors behind one cache are indistinguishable
to the directory, which is precisely the coherence benefit of clustering.
"""

from __future__ import annotations

__all__ = ["NOT_CACHED", "DIR_SHARED", "DIR_EXCLUSIVE", "DirEntry", "Directory"]

#: No cluster caches the line.
NOT_CACHED = 0
#: One or more clusters hold the line read-only.
DIR_SHARED = 1
#: Exactly one cluster owns the line with write permission.
DIR_EXCLUSIVE = 2

_STATE_NAMES = {NOT_CACHED: "NOT_CACHED", DIR_SHARED: "SHARED",
                DIR_EXCLUSIVE: "EXCLUSIVE"}


class DirEntry:
    """Directory state for one line: state + sharer bit vector.

    For ``DIR_EXCLUSIVE`` the bit vector has exactly one bit set — the owner.
    For ``NOT_CACHED`` it is zero.
    """

    __slots__ = ("state", "sharers")

    def __init__(self) -> None:
        self.state = NOT_CACHED
        self.sharers = 0

    # -- sharer-set helpers (bit twiddling kept in one place) --------------
    def add_sharer(self, cluster: int) -> None:
        self.sharers |= 1 << cluster

    def remove_sharer(self, cluster: int) -> None:
        self.sharers &= ~(1 << cluster)

    def is_sharer(self, cluster: int) -> bool:
        return bool(self.sharers >> cluster & 1)

    def only_sharer_is(self, cluster: int) -> bool:
        return self.sharers == 1 << cluster

    def sharer_list(self) -> list[int]:
        """Cluster ids with their bit set, ascending."""
        out = []
        bits = self.sharers
        cluster = 0
        while bits:
            if bits & 1:
                out.append(cluster)
            bits >>= 1
            cluster += 1
        return out

    @property
    def owner(self) -> int:
        """Owning cluster; only meaningful when state is ``DIR_EXCLUSIVE``."""
        if self.state != DIR_EXCLUSIVE:
            raise ValueError("owner undefined unless directory state is EXCLUSIVE")
        return self.sharers.bit_length() - 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"DirEntry({_STATE_NAMES[self.state]}, "
                f"sharers={self.sharer_list()})")


class Directory:
    """Map from line number to :class:`DirEntry`, created on demand.

    Bookkeeping counters track protocol traffic that the analysis layer
    reports (invalidations sent, replacement hints received, writebacks).
    """

    __slots__ = ("n_clusters", "_entries", "invalidations_sent",
                 "replacement_hints", "writebacks")

    def __init__(self, n_clusters: int) -> None:
        if n_clusters <= 0:
            raise ValueError(f"n_clusters must be positive, got {n_clusters}")
        self.n_clusters = n_clusters
        self._entries: dict[int, DirEntry] = {}
        self.invalidations_sent = 0
        self.replacement_hints = 0
        self.writebacks = 0

    def entry(self, line: int) -> DirEntry:
        """Entry for ``line``, default-created as NOT_CACHED."""
        e = self._entries.get(line)
        if e is None:
            e = DirEntry()
            self._entries[line] = e
        return e

    def peek(self, line: int) -> DirEntry | None:
        """Entry for ``line`` if it exists, without creating it."""
        return self._entries.get(line)

    # -- transitions driven by the protocol layer ---------------------------
    def record_read_fill(self, line: int, cluster: int) -> None:
        """A read fill completed: cluster now shares the line."""
        e = self.entry(line)
        e.state = DIR_SHARED
        e.add_sharer(cluster)

    def record_exclusive(self, line: int, cluster: int) -> int:
        """Grant exclusive ownership of ``line`` to ``cluster``.

        Returns the number of *other* clusters that had to be invalidated
        (the paper's invalidation count; invalidations are instantaneous).
        """
        e = self.entry(line)
        others = e.sharers & ~(1 << cluster)
        n_inval = others.bit_count()
        self.invalidations_sent += n_inval
        e.state = DIR_EXCLUSIVE
        e.sharers = 1 << cluster
        return n_inval

    def replacement_hint(self, line: int, cluster: int) -> None:
        """A SHARED line was evicted from ``cluster``'s cache.

        The full-bit-vector-with-hints directory clears the sharer bit so it
        never sends a useless invalidation later.  If the last sharer leaves,
        the line returns to NOT_CACHED.
        """
        e = self._entries.get(line)
        if e is None:
            return
        e.remove_sharer(cluster)
        self.replacement_hints += 1
        if e.sharers == 0:
            e.state = NOT_CACHED

    def writeback(self, line: int, cluster: int) -> None:
        """An EXCLUSIVE line was evicted: data returns home, line NOT_CACHED."""
        e = self._entries.get(line)
        if e is None:
            return
        if e.state == DIR_EXCLUSIVE and e.only_sharer_is(cluster):
            e.state = NOT_CACHED
            e.sharers = 0
            self.writebacks += 1

    def downgrade_owner(self, line: int, reader: int) -> None:
        """Remote read hit a dirty line: owner downgrades, reader joins.

        Resulting state is DIR_SHARED with {old owner, reader} as sharers.
        """
        e = self.entry(line)
        if e.state != DIR_EXCLUSIVE:
            raise ValueError(f"line {line:#x} not exclusive at directory")
        e.state = DIR_SHARED
        e.add_sharer(reader)

    # -- inspection ----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def lines(self) -> list[int]:
        """All lines with a (possibly NOT_CACHED) directory entry."""
        return list(self._entries)
