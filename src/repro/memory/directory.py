"""Full-bit-vector directory with replacement hints, packed-int storage.

Paper §3.1: *"The directory is implemented as a full bit vector with
replacement hints."* and *"The directory supports three cache states for a
line, NOT CACHED, EXCLUSIVE, and SHARED."*

Physically the directory is distributed — each cluster holds the entries for
the lines whose home it is (the :class:`~repro.memory.allocation.PageAllocator`
decides homes).  Logically it is a single map from line number to a packed
entry; the protocol layer computes the home separately to assign network
latencies, so nothing is lost by the centralised representation.

Packed entry encoding
---------------------
One Python int per line holds the whole entry::

    packed = (sharer_mask << 2) | state        # state in the low 2 bits
    bit (cluster + 2)  set  ⇔  cluster shares the line

so the common transitions are single int operations: *add sharer* is
``packed | (4 << cluster) ...``, *sole-owner writeback eligibility* is the
one comparison ``packed == (4 << cluster) | DIR_EXCLUSIVE``, and the owner
of an EXCLUSIVE line is ``packed.bit_length() - 3``.  Sharer bits count
*clusters* (not processors): in a shared-cache cluster the processors
behind one cache are indistinguishable to the directory, which is precisely
the coherence benefit of clustering.

An **absent** table entry encodes NOT_CACHED with no sharers, and every
transition that empties the sharer mask deletes the entry (*pruning*).
Long runs therefore stop accumulating dead per-line state — the previous
implementation kept a ``DirEntry`` object forever for every line ever
cached, which both leaked memory on streaming access patterns and made
``lines()``/``len()`` over-report dead lines.
"""

from __future__ import annotations

__all__ = ["NOT_CACHED", "DIR_SHARED", "DIR_EXCLUSIVE", "SHARER_SHIFT",
           "Directory"]

#: No cluster caches the line.
NOT_CACHED = 0
#: One or more clusters hold the line read-only.
DIR_SHARED = 1
#: Exactly one cluster owns the line with write permission.
DIR_EXCLUSIVE = 2

#: bit position of cluster 0's sharer bit in a packed entry
SHARER_SHIFT = 2

_STATE_NAMES = {NOT_CACHED: "NOT_CACHED", DIR_SHARED: "SHARED",
                DIR_EXCLUSIVE: "EXCLUSIVE"}


class Directory:
    """Map from line number to packed entry int; absent means NOT_CACHED.

    The table (``packed``) is a plain ``dict[int, int]`` and is public on
    purpose: the coherence layer's miss path reads and writes entries as
    single dict/int operations.  All multi-step transitions live here;
    bookkeeping counters track protocol traffic that the analysis layer
    reports (invalidations sent, replacement hints received, writebacks).
    """

    __slots__ = ("n_clusters", "packed", "invalidations_sent",
                 "replacement_hints", "writebacks")

    def __init__(self, n_clusters: int) -> None:
        if n_clusters <= 0:
            raise ValueError(f"n_clusters must be positive, got {n_clusters}")
        self.n_clusters = n_clusters
        #: line -> (sharer_mask << 2) | state; pruned when the mask empties
        self.packed: dict[int, int] = {}
        self.invalidations_sent = 0
        self.replacement_hints = 0
        self.writebacks = 0

    # -- accessors over the packed encoding ---------------------------------
    def state_of(self, line: int) -> int:
        """Directory state of ``line`` (NOT_CACHED when the entry is pruned)."""
        return self.packed.get(line, 0) & 3

    def sharer_mask(self, line: int) -> int:
        """Cluster bit-mask of sharers (bit ``c`` set ⇔ cluster ``c`` shares)."""
        return self.packed.get(line, 0) >> SHARER_SHIFT

    def is_sharer(self, line: int, cluster: int) -> bool:
        return bool(self.packed.get(line, 0) >> (cluster + SHARER_SHIFT) & 1)

    def only_sharer_is(self, line: int, cluster: int) -> bool:
        return self.packed.get(line, 0) >> SHARER_SHIFT == 1 << cluster

    def sharer_list(self, line: int) -> list[int]:
        """Cluster ids with their bit set, ascending."""
        out = []
        bits = self.packed.get(line, 0) >> SHARER_SHIFT
        while bits:
            low = bits & -bits
            bits ^= low
            out.append(low.bit_length() - 1)
        return out

    def owner_of(self, line: int) -> int:
        """Owning cluster; only meaningful when the state is DIR_EXCLUSIVE."""
        packed = self.packed.get(line, 0)
        if packed & 3 != DIR_EXCLUSIVE:
            raise ValueError("owner undefined unless directory state is EXCLUSIVE")
        return packed.bit_length() - 1 - SHARER_SHIFT

    # -- transitions driven by the protocol layer ---------------------------
    def record_read_fill(self, line: int, cluster: int) -> None:
        """A read fill completed: cluster now shares the line."""
        table = self.packed
        table[line] = (table.get(line, 0) & -4) | (4 << cluster) | DIR_SHARED

    def record_exclusive(self, line: int, cluster: int) -> int:
        """Grant exclusive ownership of ``line`` to ``cluster``.

        Returns the number of *other* clusters that had to be invalidated
        (the paper's invalidation count; invalidations are instantaneous).
        """
        table = self.packed
        others = (table.get(line, 0) >> SHARER_SHIFT) & ~(1 << cluster)
        n_inval = others.bit_count()
        self.invalidations_sent += n_inval
        table[line] = (4 << cluster) | DIR_EXCLUSIVE
        return n_inval

    def replacement_hint(self, line: int, cluster: int) -> None:
        """A SHARED line was evicted from ``cluster``'s cache.

        The full-bit-vector-with-hints directory clears the sharer bit so it
        never sends a useless invalidation later.  If the last sharer
        leaves, the entry is pruned — NOT_CACHED with no sharers is the
        encoding of absence.
        """
        table = self.packed
        packed = table.get(line)
        if packed is None:
            return
        packed &= ~(4 << cluster)
        self.replacement_hints += 1
        if packed >> SHARER_SHIFT == 0:
            del table[line]
        else:
            table[line] = packed

    def writeback(self, line: int, cluster: int) -> None:
        """An EXCLUSIVE line was evicted: data returns home, line NOT_CACHED.

        Only the sole owner's eviction writes back; the whole eligibility
        check is one comparison against the packed sole-owner pattern.
        """
        table = self.packed
        if table.get(line) == (4 << cluster) | DIR_EXCLUSIVE:
            del table[line]
            self.writebacks += 1

    def downgrade_owner(self, line: int, reader: int) -> None:
        """Remote read hit a dirty line: owner downgrades, reader joins.

        Resulting state is DIR_SHARED with {old owner, reader} as sharers.
        """
        table = self.packed
        packed = table.get(line, 0)
        if packed & 3 != DIR_EXCLUSIVE:
            raise ValueError(f"line {line:#x} not exclusive at directory")
        table[line] = (packed & -4) | (4 << reader) | DIR_SHARED

    # -- inspection ----------------------------------------------------------
    def __len__(self) -> int:
        return len(self.packed)

    def lines(self) -> list[int]:
        """All lines with a live (non-pruned) directory entry.

        Every returned line has at least one sharer bit set: entries whose
        mask empties are deleted on the spot, so — unlike the previous
        object-per-line directory — this never reports dead lines.
        """
        return list(self.packed)

    def describe(self, line: int) -> str:  # pragma: no cover - debug aid
        packed = self.packed.get(line, 0)
        return (f"DirEntry({_STATE_NAMES[packed & 3]}, "
                f"sharers={self.sharer_list(line)})")
