"""Directoryless shared-LLC coherence (protocol ``"dls"``).

A DLS-style organisation (Liu et al., arXiv 1206.4753): the machine keeps
one last-level-cache *slice* per cluster, and a line may be cached **only
in the slice of its home cluster**.  That single location is the
coherence point — there are no sharer bit-masks, no directory, and no
invalidations, because no line ever has two cached copies:

* an access whose home is the local cluster probes the local slice —
  hits cost the ordinary cache hit time, misses fill from the local
  memory (Table 1 ``local_clean``);
* an access whose home is remote is a network transaction to the home
  slice every time (Table 1 ``remote_clean``); if the home slice misses
  too, the home's memory fill (``local_clean``) is added and the line is
  installed in the home slice on the way through;
* writes never stall (store buffer + relaxed consistency, as in the
  directory protocol); a write marks the home-slice line dirty
  (EXCLUSIVE), remote writes are write-through to the home slice, and
  dirty evictions count as :attr:`DLSMemorySystem.writebacks`;
* destructive interference and classic coherence misses are gone — the
  protocol trades them for mandatory remote traffic: a cluster's first
  touch of a remote-homed line classifies COLD, every later one
  COHERENCE (steady-state communication), and home-slice evictions
  classify CAPACITY exactly like the shared-cache protocol.

The class exposes the same hot interface as
:class:`~repro.memory.coherence.CoherentMemorySystem` (``read`` /
``write`` / ``cluster_of`` / ``counters`` / ``aggregate_counters`` /
``network_stats`` / ``check_invariants``), so the engine, the stats
assembler, and the study driver accept it interchangeably; runs select
it through the protocol registry (``MachineConfig.protocol = "dls"``).
Like the other backends it runs on the slab cache columns via kernel
tuples — no per-line objects on the hot path — and interns the flat
Table-1 transition tuples.  The object-per-line oracle it is pinned
against lives in :class:`repro.memory.refmodel.RefDLSMemorySystem`.
"""

from __future__ import annotations

from ..core.config import MachineConfig
from ..core.metrics import MissCause, MissCounters, NetworkStats
from ..network.latency import TableLatency, make_latency_provider
from .allocation import PageAllocator
from .cache import EXCLUSIVE, SHARED, FullyAssociativeCache, make_cache
from .coherence import READ_HIT, READ_MERGE, READ_MISS

__all__ = ["DLSMemorySystem"]

_COLD = MissCause.COLD
_CAPACITY = MissCause.CAPACITY
_COHERENCE = MissCause.COHERENCE

#: preallocated hit result (see coherence._HIT)
_HIT = (READ_HIT, 0)


class DLSMemorySystem:
    """Directoryless shared last-level cache: one slice per cluster.

    Parameters
    ----------
    config:
        Machine organisation.  ``cache_kb_per_processor`` sizes each
        cluster's LLC slice exactly as it sizes the shared cluster cache
        of the directory protocol (per-processor share × cluster size).
    allocator:
        Page-home policy; the home cluster of a line decides the one
        slice that may cache it.
    """

    def __init__(self, config: MachineConfig,
                 allocator: PageAllocator | None = None) -> None:
        self.config = config
        self.allocator = allocator if allocator is not None else PageAllocator(
            config.n_clusters, config.page_size, config.line_size)
        if self.allocator.n_clusters != config.n_clusters:
            raise ValueError(
                f"allocator built for {self.allocator.n_clusters} clusters, "
                f"machine has {config.n_clusters}")
        self.latency = make_latency_provider(config)
        capacity = config.cluster_cache_lines
        self.caches = [make_cache(capacity, config.associativity)
                       for _ in range(config.n_clusters)]
        self.counters = [MissCounters() for _ in range(config.n_clusters)]
        #: dirty home-slice evictions (the protocol's only write-back
        #: traffic; there is no directory to count them)
        self.writebacks = 0
        # Per-cluster classification history.  For lines homed at the
        # cluster it records CAPACITY on slice eviction; for remote-homed
        # lines it records COHERENCE after the cluster's first touch.
        # The two line sets are disjoint per cluster, so one dict serves.
        self._history: list[dict[int, MissCause]] = [
            dict() for _ in range(config.n_clusters)]
        self._cluster_shift = config.cluster_shift
        # --- hot-path precomputation (mirrors coherence.py) -----------
        self._flat = isinstance(self.latency, TableLatency)
        model = config.latency
        self._local_clean = model.local_clean
        self._remote_clean = model.remote_clean
        self._t_local = (READ_MISS, model.local_clean)
        self._t_remote = (READ_MISS, model.remote_clean)
        self._t_remote_fill = (READ_MISS,
                               model.remote_clean + model.local_clean)
        self._page_home = self.allocator._page_home
        self._lines_per_page = self.allocator._lines_per_page
        self._kernels = (
            [(c.slot_of, c.state, c.pending, c.fetcher, c.free)
             for c in self.caches]
            if all(type(c) is FullyAssociativeCache for c in self.caches)
            else None)
        self._capacity_lines = capacity

    # ------------------------------------------------------------------ hot
    def cluster_of(self, processor: int) -> int:
        """Cluster id for a processor (shift when cluster size is a power of 2)."""
        if self._cluster_shift is not None:
            return processor >> self._cluster_shift
        return processor // self.config.cluster_size

    def read(self, processor: int, line: int, now: int,
             is_retry: bool = False) -> tuple[int, int]:
        """Process a read by ``processor`` to ``line`` at time ``now``.

        Local-home reads behave like the shared-cache protocol's hit /
        merge / miss triple against the local slice.  Remote-home reads
        are always a miss-priced transaction to the home slice; they
        never merge — a request arriving while the home fill is in
        flight queues behind it (the wait is folded into the returned
        stall), so the engine's retry machinery is local-only.
        """
        shift = self._cluster_shift
        cluster = (processor >> shift if shift is not None
                   else processor // self.config.cluster_size)
        ctr = self.counters[cluster]
        if not is_retry:
            ctr.reads += 1
        page_home = self._page_home.get(line // self._lines_per_page)
        home = (page_home if page_home is not None
                else self.allocator.home_of_line(line))
        kernels = self._kernels
        history = self._history[cluster]

        if home == cluster:
            # ---- local slice: hit / merge / local fill
            if kernels is not None:
                kern = kernels[cluster]
                slot_of = kern[0]
                slot = slot_of.get(line, -1)
                if slot >= 0:
                    if self._capacity_lines is not None:
                        del slot_of[line]
                        slot_of[line] = slot
                    pending_until = kern[2][slot]
                    if pending_until > now:
                        ctr.merges += 1
                        return READ_MERGE, pending_until - now
                    fetcher = kern[3][slot]
                    if fetcher != -1 and fetcher != processor:
                        ctr.prefetch_hits += 1
                        kern[3][slot] = -1
                    return _HIT
            else:
                kern = None
                cache = self.caches[cluster]
                slot = cache.lookup(line)
                if slot >= 0:
                    pending_until = cache.pending[slot]
                    if pending_until > now:
                        ctr.merges += 1
                        return READ_MERGE, pending_until - now
                    fetcher = cache.fetcher[slot]
                    if fetcher != -1 and fetcher != processor:
                        ctr.prefetch_hits += 1
                        cache.fetcher[slot] = -1
                    return _HIT
            if is_retry:
                # pending line was evicted before the merged reader
                # retried; it pays a fresh (capacity) miss
                ctr.merge_refetches += 1
            cause = history.get(line, _COLD)
            if self._flat:
                result = self._t_local
                latency = self._local_clean
            else:
                latency = self.latency.miss_cycles(cluster, home, None, now)
                result = (READ_MISS, latency)
            self._install(cluster, line, SHARED, now + latency, processor)
            ctr.read_misses += 1
            ctr.by_cause[cause] += 1
            return result

        # ---- remote home: network transaction to the home slice
        cause = history.get(line, _COLD)
        history[line] = _COHERENCE
        if kernels is not None:
            hkern = kernels[home]
            hslot_of = hkern[0]
            hslot = hslot_of.get(line, -1)
        else:
            hslot = self.caches[home].lookup(line)
        if hslot >= 0:
            # home slice serves the line (touch its LRU position)
            if kernels is not None and self._capacity_lines is not None:
                del hslot_of[line]
                hslot_of[line] = hslot
            pending_until = (hkern[2][hslot] if kernels is not None
                             else self.caches[home].pending[hslot])
            queue = pending_until - now
            if self._flat:
                if queue > 0:
                    result = (READ_MISS, self._remote_clean + queue)
                else:
                    result = self._t_remote
            else:
                latency = self.latency.miss_cycles(cluster, home, None, now)
                result = (READ_MISS, latency + max(queue, 0))
        else:
            # home slice misses too: memory fill at home, then forward;
            # the line installs in the home slice on the way through
            if self._flat:
                fill = self._local_clean
                result = self._t_remote_fill
            else:
                fill = self.latency.miss_cycles(home, home, None, now)
                result = (READ_MISS,
                          self.latency.miss_cycles(cluster, home, None, now)
                          + fill)
            self._install(home, line, SHARED, now + fill, processor)
        ctr.read_misses += 1
        ctr.by_cause[cause] += 1
        return result

    def write(self, processor: int, line: int, now: int) -> None:
        """Process a write by ``processor`` to ``line`` at time ``now``.

        Writes never stall.  A local-home write dirties (or
        write-allocates) the local slice line; a remote-home write is a
        write-through transaction to the home slice, counted as a write
        miss because it leaves the cluster.  With a single cached copy
        there is nothing to invalidate, so there are no upgrade misses.
        """
        shift = self._cluster_shift
        cluster = (processor >> shift if shift is not None
                   else processor // self.config.cluster_size)
        ctr = self.counters[cluster]
        ctr.writes += 1
        page_home = self._page_home.get(line // self._lines_per_page)
        home = (page_home if page_home is not None
                else self.allocator.home_of_line(line))
        kernels = self._kernels
        history = self._history[cluster]

        if home == cluster:
            if kernels is not None:
                kern = kernels[cluster]
                slot_of = kern[0]
                slot = slot_of.get(line, -1)
                if slot >= 0:
                    if self._capacity_lines is not None:
                        del slot_of[line]
                        slot_of[line] = slot
                    kern[1][slot] = EXCLUSIVE
                    return
            else:
                cache = self.caches[cluster]
                slot = cache.lookup(line)
                if slot >= 0:
                    cache.state[slot] = EXCLUSIVE
                    return
            cause = history.get(line, _COLD)
            latency = (self._local_clean if self._flat
                       else self.latency.miss_cycles(cluster, home, None, now))
            self._install(cluster, line, EXCLUSIVE, now + latency, processor)
            ctr.write_misses += 1
            ctr.by_cause[cause] += 1
            return

        # ---- remote home: write-through to the home slice
        cause = history.get(line, _COLD)
        history[line] = _COHERENCE
        ctr.write_misses += 1
        ctr.by_cause[cause] += 1
        if kernels is not None:
            hkern = kernels[home]
            hslot_of = hkern[0]
            hslot = hslot_of.get(line, -1)
            if hslot >= 0:
                if self._capacity_lines is not None:
                    del hslot_of[line]
                    hslot_of[line] = hslot
                hkern[1][hslot] = EXCLUSIVE
                return
        else:
            cache = self.caches[home]
            hslot = cache.lookup(line)
            if hslot >= 0:
                cache.state[hslot] = EXCLUSIVE
                return
        # write-allocate at the home slice (memory fill at home)
        fill = (self._local_clean if self._flat
                else self.latency.miss_cycles(home, home, None, now))
        self._install(home, line, EXCLUSIVE, now + fill, processor)

    # ------------------------------------------------------------- internals
    def _install(self, cluster: int, line: int, state: int,
                 pending_until: int, fetcher: int) -> None:
        """Install ``line`` in ``cluster``'s slice, retiring any victim.

        Slices only ever hold lines homed at their cluster, so victim
        bookkeeping is purely local: the eviction writes CAPACITY into
        this cluster's history and a dirty victim counts a write-back.
        """
        kernels = self._kernels
        if kernels is not None:
            kern = kernels[cluster]
            slot_of = kern[0]
            state_col = kern[1]
            cache = self.caches[cluster]
            cap = self._capacity_lines
            if cap is not None and len(slot_of) >= cap:
                vline = next(iter(slot_of))
                slot = slot_of.pop(vline)
                vstate = state_col[slot]
                cache.evictions += 1
                self._history[cluster][vline] = _CAPACITY
                if vstate == EXCLUSIVE:
                    self.writebacks += 1
            else:
                free = kern[4]
                slot = free.pop() if free else cache._grow()
            state_col[slot] = state
            kern[2][slot] = pending_until
            kern[3][slot] = fetcher
            cache.tag[slot] = line
            slot_of[line] = slot
            cache.inserts += 1
        else:
            victim = self.caches[cluster].insert(line, state, pending_until,
                                                 fetcher)
            if victim is not None:
                self._history[cluster][victim.line] = _CAPACITY
                if victim.state == EXCLUSIVE:
                    self.writebacks += 1

    # ---------------------------------------------------------------- query
    def aggregate_counters(self) -> MissCounters:
        """Miss counters summed over all clusters."""
        total = MissCounters()
        for ctr in self.counters:
            ctr.merged_into(total)
        return total

    def network_stats(self) -> NetworkStats | None:
        """Interconnect counters (``None`` under the flat-table provider)."""
        return self.latency.stats()

    def check_invariants(self) -> None:
        """Cross-check slice contents; raises on inconsistency.

        * every resident line lives in the slice of its home cluster
          (the protocol's defining invariant — a violation means two
          copies could exist);
        * no slice exceeds its capacity, and slab slot accounting
          balances (every slot mapped by one line or on the free list).
        """
        for cluster, cache in enumerate(self.caches):
            for line in cache.resident_lines():
                home = self.allocator.home_of_line(line)
                if home != cluster:
                    raise AssertionError(
                        f"line {line:#x} homed at {home} is cached in "
                        f"slice {cluster}")
            if (cache.capacity_lines is not None
                    and len(cache) > cache.capacity_lines):
                raise AssertionError(
                    f"slice {cluster} over capacity: {len(cache)} > "
                    f"{cache.capacity_lines}")
            if type(cache) is FullyAssociativeCache:
                if len(cache.slot_of) + len(cache.free) != len(cache.state):
                    raise AssertionError(
                        f"slice {cluster} slot leak: {len(cache.slot_of)} "
                        f"mapped + {len(cache.free)} free != "
                        f"{len(cache.state)} slots")
