"""Shared-main-memory clusters (extension E-X2, paper §2's second cluster
type).

The paper's §2 contrasts two clusterings: the **shared cache cluster** its
evaluation uses (processors behind one cache — :mod:`repro.memory.coherence`)
and the **shared main memory cluster**: *"individual processor caches
connected by a snoopy bus with the backing shared main memory"*.  The
differences the paper calls out, all modelled here:

* working sets are still duplicated per processor, *but* "the parts of the
  working set replaced by one processor may not have been replaced by other
  processors, providing cache to cache sharing opportunities" — a miss that
  snoops a copy in a cluster-mate's cache is served by a fast
  **cache-to-cache transfer** instead of a directory transaction;
* "destructive interference does not exist, since the caches are separate";
* the snoopy bus adds arbitration/queueing/electrical delay to every
  cluster-memory access (``snoop_penalty``).

Intra-cluster coherence is write-invalidate over the snoopy bus; inter-
cluster coherence uses the same full-bit-vector directory as the shared-
cache system (the directory tracks *clusters*; within a cluster any
processor's cached copy makes the cluster a sharer).

The class exposes the same hot interface as
:class:`~repro.memory.coherence.CoherentMemorySystem` (``read``/``write``/
``aggregate_counters``/``counters``), so the engine and the study driver
accept either interchangeably.
"""

from __future__ import annotations

from ..core.config import MachineConfig
from ..core.metrics import MissCause, MissCounters, NetworkStats
from ..network.latency import make_latency_provider
from .allocation import PageAllocator
from .cache import EXCLUSIVE, SHARED, Eviction, make_cache
from .coherence import READ_HIT, READ_MERGE, READ_MISS
from .directory import DIR_EXCLUSIVE, Directory

__all__ = ["SnoopyClusterMemorySystem", "DEFAULT_SNOOP_PENALTY",
           "DEFAULT_C2C_LATENCY"]

#: extra cycles a snoopy bus adds to any miss that leaves the processor
#: cache (paper: "arbitration, queueing and electrical delays")
DEFAULT_SNOOP_PENALTY = 6

#: latency of an intra-cluster cache-to-cache transfer (bus + SRAM array);
#: far cheaper than the 30-cycle local-memory access, let alone remote.
DEFAULT_C2C_LATENCY = 10

_RESIDENT = 0
_EVICTED = 1
_INVALIDATED = 2


class SnoopyClusterMemorySystem:
    """Per-processor caches + intra-cluster snooping + inter-cluster
    directory.

    Parameters
    ----------
    config:
        Machine organisation.  ``cache_kb_per_processor`` sizes each
        *processor* cache (there is no shared cache in this organisation).
    allocator:
        Page-home policy, as for the shared-cache system.
    snoop_penalty, c2c_latency:
        Bus cost knobs (see module docstring).
    """

    def __init__(self, config: MachineConfig,
                 allocator: PageAllocator | None = None,
                 snoop_penalty: int = DEFAULT_SNOOP_PENALTY,
                 c2c_latency: int = DEFAULT_C2C_LATENCY) -> None:
        self.config = config
        self.allocator = allocator if allocator is not None else PageAllocator(
            config.n_clusters, config.page_size, config.line_size)
        if self.allocator.n_clusters != config.n_clusters:
            raise ValueError("allocator cluster count mismatch")
        self.directory = Directory(config.n_clusters)
        self.latency = make_latency_provider(config)
        per_proc_lines = (None if config.cache_kb_per_processor is None
                          else max(int(config.cache_kb_per_processor * 1024
                                       // config.line_size), 1))
        self.caches = [make_cache(per_proc_lines, config.associativity)
                       for _ in range(config.n_processors)]
        self.counters = [MissCounters() for _ in range(config.n_clusters)]
        self.snoop_penalty = snoop_penalty
        self.c2c_latency = c2c_latency
        self.c2c_transfers = 0
        self._history: list[dict[int, int]] = [dict()
                                               for _ in range(config.n_processors)]

    # ------------------------------------------------------------------ hot
    def cluster_of(self, processor: int) -> int:
        return processor // self.config.cluster_size

    def _snoop(self, line: int, cluster: int, exclude: int) -> int | None:
        """Find a cluster-mate (≠ exclude) holding ``line``; returns its id."""
        for q in self.config.processors_of(cluster):
            if q != exclude and self.caches[q].peek(line) is not None:
                return q
        return None

    def read(self, processor: int, line: int, now: int,
             is_retry: bool = False) -> tuple[int, int]:
        """Read with snooping: own-cache hit, cache-to-cache transfer, or
        directory transaction (+ bus penalty)."""
        cluster = self.cluster_of(processor)
        ctr = self.counters[cluster]
        if not is_retry:
            ctr.references += 1
            ctr.reads += 1
        cache = self.caches[processor]
        entry = cache.lookup(line)
        if entry is not None:
            if entry.pending_until > now:
                ctr.merges += 1
                return READ_MERGE, entry.pending_until - now
            ctr.hits += 1
            return READ_HIT, 0
        if is_retry:
            ctr.merge_refetches += 1
        cause = self._classify(processor, line)
        # Snoop the cluster bus first: cache-to-cache sharing opportunity.
        holder = self._snoop(line, cluster, processor)
        if holder is not None:
            holder_entry = self.caches[holder].peek(line)
            assert holder_entry is not None
            if holder_entry.state == EXCLUSIVE:
                holder_entry.state = SHARED  # intra-cluster downgrade
            latency = self.c2c_latency
            self.c2c_transfers += 1
            # directory already lists this cluster; no global transaction
        else:
            home = self.allocator.home_of_line(line)
            dentry = self.directory.entry(line)
            if dentry.state == DIR_EXCLUSIVE and not dentry.only_sharer_is(cluster):
                owner = dentry.owner
                latency = self.latency.miss_cycles(cluster, home, owner, now)
                self._downgrade_cluster(owner, line)
                self.directory.downgrade_owner(line, cluster)
            else:
                latency = self.latency.miss_cycles(cluster, home, None, now)
                self.directory.record_read_fill(line, cluster)
            latency += self.snoop_penalty
        self._install(processor, line, SHARED, now + latency)
        ctr.read_misses += 1
        ctr.record_cause(cause)
        return READ_MISS, latency

    def write(self, processor: int, line: int, now: int) -> None:
        """Write: invalidate every other copy (bus upstream + directory)."""
        cluster = self.cluster_of(processor)
        ctr = self.counters[cluster]
        ctr.references += 1
        ctr.writes += 1
        cache = self.caches[processor]
        entry = cache.lookup(line)
        if entry is not None and entry.state == EXCLUSIVE:
            ctr.hits += 1
            return
        if entry is not None:
            ctr.upgrade_misses += 1
        else:
            ctr.write_misses += 1
            ctr.record_cause(self._classify(processor, line))
        # invalidate cluster-mates (bus) and other clusters (directory)
        for q in self.config.processors_of(cluster):
            if q != processor and self.caches[q].invalidate(line):
                self._history[q][line] = _INVALIDATED
        self._invalidate_other_clusters(line, cluster)
        self.directory.record_exclusive(line, cluster)
        if entry is not None:
            entry.state = EXCLUSIVE
        else:
            home = self.allocator.home_of_line(line)
            latency = self.latency.miss_cycles(cluster, home, None, now) \
                + self.snoop_penalty
            self._install(processor, line, EXCLUSIVE, now + latency)

    # ------------------------------------------------------------- internals
    def _install(self, processor: int, line: int, state: int,
                 pending_until: int) -> None:
        victim = self.caches[processor].insert(line, state, pending_until)
        self._history[processor][line] = _RESIDENT
        if victim is not None:
            self._retire(processor, victim)

    def _retire(self, processor: int, victim: Eviction) -> None:
        """Eviction: hint/writeback only if no cluster-mate still holds it."""
        self._history[processor][victim.line] = _EVICTED
        cluster = self.cluster_of(processor)
        if self._snoop(victim.line, cluster, processor) is not None:
            return  # cluster still caches the line; sharer bit stays
        if victim.state == EXCLUSIVE:
            self.directory.writeback(victim.line, cluster)
        else:
            self.directory.replacement_hint(victim.line, cluster)

    def _downgrade_cluster(self, cluster: int, line: int) -> None:
        for q in self.config.processors_of(cluster):
            entry = self.caches[q].peek(line)
            if entry is not None and entry.state == EXCLUSIVE:
                entry.state = SHARED

    def _invalidate_other_clusters(self, line: int, keeper: int) -> None:
        dentry = self.directory.peek(line)
        if dentry is None or dentry.sharers == 0:
            return
        bits = dentry.sharers & ~(1 << keeper)
        cluster = 0
        while bits:
            if bits & 1:
                for q in self.config.processors_of(cluster):
                    if self.caches[q].invalidate(line):
                        self._history[q][line] = _INVALIDATED
            bits >>= 1
            cluster += 1

    def _classify(self, processor: int, line: int) -> MissCause:
        mark = self._history[processor].get(line)
        if mark is None:
            return MissCause.COLD
        if mark == _INVALIDATED:
            return MissCause.COHERENCE
        return MissCause.CAPACITY

    # ---------------------------------------------------------------- query
    def aggregate_counters(self) -> MissCounters:
        total = MissCounters()
        for ctr in self.counters:
            ctr.merged_into(total)
        return total

    def network_stats(self) -> NetworkStats | None:
        """Interconnect counters (``None`` under the flat-table provider)."""
        return self.latency.stats()

    def check_invariants(self) -> None:
        """Cross-check processor caches against the directory.

        * A line EXCLUSIVE at the directory is cached only inside the owner
          cluster, and at most one processor holds it EXCLUSIVE; no copy of
          it exists in any other cluster.
        * A cluster without its sharer bit set caches the line nowhere.
        * A sharer cluster holds at least one copy (hints fire only when
          the whole cluster drops the line).
        """
        from .directory import DIR_EXCLUSIVE as _EXCL
        from .directory import NOT_CACHED as _NC
        for line in self.directory.lines():
            dentry = self.directory.peek(line)
            assert dentry is not None
            for cluster in range(self.config.n_clusters):
                holders = [q for q in self.config.processors_of(cluster)
                           if self.caches[q].state_of(line) is not None]
                excl = [q for q in self.config.processors_of(cluster)
                        if self.caches[q].state_of(line) == EXCLUSIVE]
                if dentry.state == _NC or not dentry.is_sharer(cluster):
                    if holders:
                        raise AssertionError(
                            f"line {line:#x}: cluster {cluster} caches it "
                            f"without a sharer bit (procs {holders})")
                    continue
                if not holders:
                    raise AssertionError(
                        f"line {line:#x}: sharer bit set for cluster "
                        f"{cluster} but no processor caches it")
                if dentry.state == _EXCL:
                    if cluster != dentry.owner:
                        raise AssertionError(
                            f"line {line:#x}: cached outside owner cluster")
                    if len(excl) > 1:
                        raise AssertionError(
                            f"line {line:#x}: {len(excl)} EXCLUSIVE copies")
                elif excl:
                    raise AssertionError(
                        f"line {line:#x}: EXCLUSIVE copy under a SHARED "
                        f"directory state")
