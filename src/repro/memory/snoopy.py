"""Shared-main-memory clusters (extension E-X2, paper §2's second cluster
type).

The paper's §2 contrasts two clusterings: the **shared cache cluster** its
evaluation uses (processors behind one cache — :mod:`repro.memory.coherence`)
and the **shared main memory cluster**: *"individual processor caches
connected by a snoopy bus with the backing shared main memory"*.  The
differences the paper calls out, all modelled here:

* working sets are still duplicated per processor, *but* "the parts of the
  working set replaced by one processor may not have been replaced by other
  processors, providing cache to cache sharing opportunities" — a miss that
  snoops a copy in a cluster-mate's cache is served by a fast
  **cache-to-cache transfer** instead of a directory transaction;
* "destructive interference does not exist, since the caches are separate";
* the snoopy bus adds arbitration/queueing/electrical delay to every
  cluster-memory access (``snoop_penalty``).

Intra-cluster coherence is write-invalidate over the snoopy bus; inter-
cluster coherence uses the same full-bit-vector directory as the shared-
cache system (the directory tracks *clusters*; within a cluster any
processor's cached copy makes the cluster a sharer).

The class exposes the same hot interface as
:class:`~repro.memory.coherence.CoherentMemorySystem` (``read``/``write``/
``aggregate_counters``/``counters``), so the engine and the study driver
accept either interchangeably.  Like the shared-cache system it runs on the
slab cache columns (slot-indexed state, no per-line objects), derives
``hits``/``references`` on :class:`~repro.core.metrics.MissCounters`
instead of incrementing them, precomputes each cluster's processor range
once (``_snoop`` walks the bus on every miss), and interns the
cache-to-cache transition tuple.
"""

from __future__ import annotations

from ..core.config import MachineConfig
from ..core.metrics import MissCause, MissCounters, NetworkStats
from ..network.latency import make_latency_provider
from .allocation import PageAllocator
from .cache import EXCLUSIVE, SHARED, Eviction, make_cache
from .coherence import READ_HIT, READ_MERGE, READ_MISS
from .directory import DIR_EXCLUSIVE, Directory

__all__ = ["SnoopyClusterMemorySystem", "DEFAULT_SNOOP_PENALTY",
           "DEFAULT_C2C_LATENCY"]

#: extra cycles a snoopy bus adds to any miss that leaves the processor
#: cache (paper: "arbitration, queueing and electrical delays")
DEFAULT_SNOOP_PENALTY = 6

#: latency of an intra-cluster cache-to-cache transfer (bus + SRAM array);
#: far cheaper than the 30-cycle local-memory access, let alone remote.
DEFAULT_C2C_LATENCY = 10

_RESIDENT = 0
_EVICTED = 1
_INVALIDATED = 2

#: preallocated hit result (see coherence._HIT)
_HIT = (READ_HIT, 0)


class SnoopyClusterMemorySystem:
    """Per-processor caches + intra-cluster snooping + inter-cluster
    directory.

    Parameters
    ----------
    config:
        Machine organisation.  ``cache_kb_per_processor`` sizes each
        *processor* cache (there is no shared cache in this organisation).
    allocator:
        Page-home policy, as for the shared-cache system.
    snoop_penalty, c2c_latency:
        Bus cost knobs (see module docstring).
    """

    def __init__(self, config: MachineConfig,
                 allocator: PageAllocator | None = None,
                 snoop_penalty: int = DEFAULT_SNOOP_PENALTY,
                 c2c_latency: int = DEFAULT_C2C_LATENCY) -> None:
        self.config = config
        self.allocator = allocator if allocator is not None else PageAllocator(
            config.n_clusters, config.page_size, config.line_size)
        if self.allocator.n_clusters != config.n_clusters:
            raise ValueError("allocator cluster count mismatch")
        self.directory = Directory(config.n_clusters)
        self.latency = make_latency_provider(config)
        per_proc_lines = (None if config.cache_kb_per_processor is None
                          else max(int(config.cache_kb_per_processor * 1024
                                       // config.line_size), 1))
        self.caches = [make_cache(per_proc_lines, config.associativity)
                       for _ in range(config.n_processors)]
        self.counters = [MissCounters() for _ in range(config.n_clusters)]
        self.snoop_penalty = snoop_penalty
        self.c2c_latency = c2c_latency
        self.c2c_transfers = 0
        self._history: list[dict[int, int]] = [dict()
                                               for _ in range(config.n_processors)]
        self._cluster_shift = config.cluster_shift
        # each cluster's processor ids, computed once — _snoop walks this
        # on every miss, and range objects are reusable
        self._procs = [config.processors_of(c)
                       for c in range(config.n_clusters)]
        self._t_c2c = (READ_MISS, c2c_latency)
        # residency probes during snooping are plain dict-membership tests
        # when every cache is fully associative (the usual organisation)
        from .cache import FullyAssociativeCache
        self._slot_maps = ([c.slot_of for c in self.caches]
                           if all(type(c) is FullyAssociativeCache
                                  for c in self.caches) else None)

    # ------------------------------------------------------------------ hot
    def cluster_of(self, processor: int) -> int:
        if self._cluster_shift is not None:
            return processor >> self._cluster_shift
        return processor // self.config.cluster_size

    def _snoop(self, line: int, cluster: int, exclude: int) -> int | None:
        """Find a cluster-mate (≠ exclude) holding ``line``; returns its id."""
        slot_maps = self._slot_maps
        if slot_maps is not None:
            for q in self._procs[cluster]:
                if q != exclude and line in slot_maps[q]:
                    return q
            return None
        caches = self.caches
        for q in self._procs[cluster]:
            if q != exclude and caches[q].peek(line) >= 0:
                return q
        return None

    def read(self, processor: int, line: int, now: int,
             is_retry: bool = False) -> tuple[int, int]:
        """Read with snooping: own-cache hit, cache-to-cache transfer, or
        directory transaction (+ bus penalty)."""
        shift = self._cluster_shift
        cluster = (processor >> shift if shift is not None
                   else processor // self.config.cluster_size)
        ctr = self.counters[cluster]
        if not is_retry:
            ctr.reads += 1
        cache = self.caches[processor]
        slot = cache.lookup(line)
        if slot >= 0:
            pending_until = cache.pending[slot]
            if pending_until > now:
                ctr.merges += 1
                return READ_MERGE, pending_until - now
            return _HIT
        if is_retry:
            ctr.merge_refetches += 1
        cause = self._classify(processor, line)
        # Snoop the cluster bus first: cache-to-cache sharing opportunity.
        holder = self._snoop(line, cluster, processor)
        if holder is not None:
            holder_cache = self.caches[holder]
            hslot = holder_cache.peek(line)
            assert hslot >= 0
            if holder_cache.state[hslot] == EXCLUSIVE:
                holder_cache.state[hslot] = SHARED  # intra-cluster downgrade
            result = self._t_c2c
            latency = result[1]
            self.c2c_transfers += 1
            # directory already lists this cluster; no global transaction
        else:
            home = self.allocator.home_of_line(line)
            directory = self.directory
            if (directory.state_of(line) == DIR_EXCLUSIVE
                    and not directory.only_sharer_is(line, cluster)):
                owner = directory.owner_of(line)
                latency = self.latency.miss_cycles(cluster, home, owner, now)
                self._downgrade_cluster(owner, line)
                directory.downgrade_owner(line, cluster)
            else:
                latency = self.latency.miss_cycles(cluster, home, None, now)
                directory.record_read_fill(line, cluster)
            latency += self.snoop_penalty
            result = (READ_MISS, latency)
        self._install(processor, line, SHARED, now + latency)
        ctr.read_misses += 1
        ctr.by_cause[cause] += 1
        return result

    def write(self, processor: int, line: int, now: int) -> None:
        """Write: invalidate every other copy (bus upstream + directory)."""
        shift = self._cluster_shift
        cluster = (processor >> shift if shift is not None
                   else processor // self.config.cluster_size)
        ctr = self.counters[cluster]
        ctr.writes += 1
        cache = self.caches[processor]
        slot = cache.lookup(line)
        if slot >= 0 and cache.state[slot] == EXCLUSIVE:
            return
        if slot >= 0:
            ctr.upgrade_misses += 1
        else:
            ctr.write_misses += 1
            ctr.by_cause[self._classify(processor, line)] += 1
        # invalidate cluster-mates (bus) and other clusters (directory)
        caches = self.caches
        for q in self._procs[cluster]:
            if q != processor and caches[q].invalidate(line):
                self._history[q][line] = _INVALIDATED
        self._invalidate_other_clusters(line, cluster)
        self.directory.record_exclusive(line, cluster)
        if slot >= 0:
            cache.state[slot] = EXCLUSIVE
        else:
            home = self.allocator.home_of_line(line)
            latency = self.latency.miss_cycles(cluster, home, None, now) \
                + self.snoop_penalty
            self._install(processor, line, EXCLUSIVE, now + latency)

    # ------------------------------------------------------------- internals
    def _install(self, processor: int, line: int, state: int,
                 pending_until: int) -> None:
        victim = self.caches[processor].insert(line, state, pending_until)
        self._history[processor][line] = _RESIDENT
        if victim is not None:
            self._retire(processor, victim)

    def _retire(self, processor: int, victim: Eviction) -> None:
        """Eviction: hint/writeback only if no cluster-mate still holds it."""
        self._history[processor][victim.line] = _EVICTED
        cluster = self.cluster_of(processor)
        if self._snoop(victim.line, cluster, processor) is not None:
            return  # cluster still caches the line; sharer bit stays
        if victim.state == EXCLUSIVE:
            self.directory.writeback(victim.line, cluster)
        else:
            self.directory.replacement_hint(victim.line, cluster)

    def _downgrade_cluster(self, cluster: int, line: int) -> None:
        for q in self._procs[cluster]:
            cache = self.caches[q]
            slot = cache.peek(line)
            if slot >= 0 and cache.state[slot] == EXCLUSIVE:
                cache.state[slot] = SHARED

    def _invalidate_other_clusters(self, line: int, keeper: int) -> None:
        bits = self.directory.sharer_mask(line) & ~(1 << keeper)
        while bits:
            low = bits & -bits
            bits ^= low
            cluster = low.bit_length() - 1
            for q in self._procs[cluster]:
                if self.caches[q].invalidate(line):
                    self._history[q][line] = _INVALIDATED

    def _classify(self, processor: int, line: int) -> MissCause:
        mark = self._history[processor].get(line)
        if mark is None:
            return MissCause.COLD
        if mark == _INVALIDATED:
            return MissCause.COHERENCE
        return MissCause.CAPACITY

    # ---------------------------------------------------------------- query
    def aggregate_counters(self) -> MissCounters:
        total = MissCounters()
        for ctr in self.counters:
            ctr.merged_into(total)
        return total

    def network_stats(self) -> NetworkStats | None:
        """Interconnect counters (``None`` under the flat-table provider)."""
        return self.latency.stats()

    def check_invariants(self) -> None:
        """Cross-check processor caches against the directory.

        * A line EXCLUSIVE at the directory is cached only inside the owner
          cluster, and at most one processor holds it EXCLUSIVE; no copy of
          it exists in any other cluster.
        * A cluster without its sharer bit set caches the line nowhere.
        * A sharer cluster holds at least one copy (hints fire only when
          the whole cluster drops the line).
        """
        from .directory import DIR_EXCLUSIVE as _EXCL
        directory = self.directory
        for line in directory.lines():
            state = directory.state_of(line)
            for cluster in range(self.config.n_clusters):
                holders = [q for q in self._procs[cluster]
                           if self.caches[q].state_of(line) is not None]
                excl = [q for q in self._procs[cluster]
                        if self.caches[q].state_of(line) == EXCLUSIVE]
                if not directory.is_sharer(line, cluster):
                    if holders:
                        raise AssertionError(
                            f"line {line:#x}: cluster {cluster} caches it "
                            f"without a sharer bit (procs {holders})")
                    continue
                if not holders:
                    raise AssertionError(
                        f"line {line:#x}: sharer bit set for cluster "
                        f"{cluster} but no processor caches it")
                if state == _EXCL:
                    if cluster != directory.owner_of(line):
                        raise AssertionError(
                            f"line {line:#x}: cached outside owner cluster")
                    if len(excl) > 1:
                        raise AssertionError(
                            f"line {line:#x}: {len(excl)} EXCLUSIVE copies")
                elif excl:
                    raise AssertionError(
                        f"line {line:#x}: EXCLUSIVE copy under a SHARED "
                        f"directory state")
