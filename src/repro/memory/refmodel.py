"""Reference (object-per-line) memory-state models for property testing.

These are the pre-kernelization implementations of the cache and directory
state stores, retained verbatim in behaviour: one heap object per resident
line / per directory entry, with the same LRU discipline (dict insertion
order) and the same transition semantics as the flat-array versions in
:mod:`repro.memory.cache` and :mod:`repro.memory.directory`.

They exist so the hypothesis property suite (``tests/test_memcore_properties
.py``) can drive both implementations with identical random access streams
and require identical observable behaviour — victim choice, states, pending
times, counters.  They are **not** used on any simulation path.

The one intended divergence: :class:`RefDirectory` keeps a (dead)
``NOT_CACHED`` entry for every line ever cached, while the production
directory prunes them.  The property suite checks that the production
table equals the reference's *live* entries exactly.
"""

from __future__ import annotations

from typing import NamedTuple

from .cache import EXCLUSIVE, SHARED
from .directory import DIR_EXCLUSIVE, DIR_SHARED, NOT_CACHED

__all__ = ["LineEntry", "RefEviction", "RefFullyAssociativeCache",
           "RefSetAssociativeCache", "DirEntry", "RefDirectory",
           "RefDLSMemorySystem"]


class LineEntry:
    """Mutable per-line cache metadata (reference implementation).

    ``fetcher`` records which processor's miss brought the line in; the
    protocol layer uses it to count *cluster prefetch hits*.  It is set to
    ``-1`` once counted.
    """

    __slots__ = ("state", "pending_until", "fetcher")

    def __init__(self, state: int, pending_until: int = 0,
                 fetcher: int = -1) -> None:
        self.state = state
        self.pending_until = pending_until
        self.fetcher = fetcher

    def is_pending(self, now: int) -> bool:
        return self.pending_until > now


class RefEviction(NamedTuple):
    line: int
    state: int


class RefFullyAssociativeCache:
    """Fully associative LRU cache over per-line objects (reference)."""

    __slots__ = ("capacity_lines", "_lines", "evictions", "inserts")

    def __init__(self, capacity_lines: int | None) -> None:
        if capacity_lines is not None and capacity_lines <= 0:
            raise ValueError(
                f"capacity_lines must be positive or None, got {capacity_lines}"
            )
        self.capacity_lines = capacity_lines
        self._lines: dict[int, LineEntry] = {}
        self.evictions = 0
        self.inserts = 0

    def lookup(self, line: int) -> LineEntry | None:
        entry = self._lines.get(line)
        if entry is not None and self.capacity_lines is not None:
            del self._lines[line]
            self._lines[line] = entry
        return entry

    def peek(self, line: int) -> LineEntry | None:
        return self._lines.get(line)

    def insert(self, line: int, state: int, pending_until: int = 0,
               fetcher: int = -1) -> RefEviction | None:
        if line in self._lines:
            raise ValueError(f"line {line:#x} already resident")
        victim: RefEviction | None = None
        if (self.capacity_lines is not None
                and len(self._lines) >= self.capacity_lines):
            victim_line = next(iter(self._lines))
            victim_entry = self._lines.pop(victim_line)
            victim = RefEviction(victim_line, victim_entry.state)
            self.evictions += 1
        self._lines[line] = LineEntry(state, pending_until, fetcher)
        self.inserts += 1
        return victim

    def invalidate(self, line: int) -> bool:
        return self._lines.pop(line, None) is not None

    def downgrade(self, line: int) -> None:
        entry = self._lines.get(line)
        if entry is None:
            raise KeyError(f"line {line:#x} not resident; cannot downgrade")
        entry.state = SHARED

    def __len__(self) -> int:
        return len(self._lines)

    def __contains__(self, line: int) -> bool:
        return line in self._lines

    @property
    def is_infinite(self) -> bool:
        return self.capacity_lines is None

    def resident_lines(self) -> list[int]:
        return list(self._lines)

    def resident_lines_by_set(self) -> list[list[int]]:
        return [list(self._lines)]

    def state_of(self, line: int) -> int | None:
        entry = self._lines.get(line)
        return None if entry is None else entry.state

    def pending_until_of(self, line: int) -> int | None:
        entry = self._lines.get(line)
        return None if entry is None else entry.pending_until


class RefSetAssociativeCache:
    """Set-associative LRU cache over per-line objects (reference)."""

    __slots__ = ("capacity_lines", "associativity", "n_sets", "_sets",
                 "evictions", "inserts")

    def __init__(self, capacity_lines: int, associativity: int) -> None:
        if capacity_lines <= 0:
            raise ValueError("capacity_lines must be positive")
        if associativity <= 0:
            raise ValueError("associativity must be positive")
        if capacity_lines % associativity != 0:
            raise ValueError(
                f"capacity {capacity_lines} not divisible by "
                f"associativity {associativity}"
            )
        self.capacity_lines = capacity_lines
        self.associativity = associativity
        self.n_sets = capacity_lines // associativity
        self._sets: list[dict[int, LineEntry]] = [dict()
                                                  for _ in range(self.n_sets)]
        self.evictions = 0
        self.inserts = 0

    def _set_for(self, line: int) -> dict[int, LineEntry]:
        return self._sets[line % self.n_sets]

    def lookup(self, line: int) -> LineEntry | None:
        s = self._set_for(line)
        entry = s.get(line)
        if entry is not None:
            del s[line]
            s[line] = entry
        return entry

    def peek(self, line: int) -> LineEntry | None:
        return self._set_for(line).get(line)

    def insert(self, line: int, state: int, pending_until: int = 0,
               fetcher: int = -1) -> RefEviction | None:
        s = self._set_for(line)
        if line in s:
            raise ValueError(f"line {line:#x} already resident")
        victim: RefEviction | None = None
        if len(s) >= self.associativity:
            victim_line = next(iter(s))
            victim_entry = s.pop(victim_line)
            victim = RefEviction(victim_line, victim_entry.state)
            self.evictions += 1
        s[line] = LineEntry(state, pending_until, fetcher)
        self.inserts += 1
        return victim

    def invalidate(self, line: int) -> bool:
        return self._set_for(line).pop(line, None) is not None

    def downgrade(self, line: int) -> None:
        entry = self._set_for(line).get(line)
        if entry is None:
            raise KeyError(f"line {line:#x} not resident; cannot downgrade")
        entry.state = SHARED

    def __len__(self) -> int:
        return sum(len(s) for s in self._sets)

    def __contains__(self, line: int) -> bool:
        return line in self._set_for(line)

    @property
    def is_infinite(self) -> bool:
        return False

    def resident_lines(self) -> list[int]:
        out: list[int] = []
        for s in self._sets:
            out.extend(s)
        return out

    def resident_lines_by_set(self) -> list[list[int]]:
        return [list(s) for s in self._sets]

    def state_of(self, line: int) -> int | None:
        entry = self._set_for(line).get(line)
        return None if entry is None else entry.state

    def pending_until_of(self, line: int) -> int | None:
        entry = self._set_for(line).get(line)
        return None if entry is None else entry.pending_until


class DirEntry:
    """Directory state for one line: state + sharer bit vector (reference)."""

    __slots__ = ("state", "sharers")

    def __init__(self) -> None:
        self.state = NOT_CACHED
        self.sharers = 0

    def add_sharer(self, cluster: int) -> None:
        self.sharers |= 1 << cluster

    def remove_sharer(self, cluster: int) -> None:
        self.sharers &= ~(1 << cluster)

    def is_sharer(self, cluster: int) -> bool:
        return bool(self.sharers >> cluster & 1)

    def only_sharer_is(self, cluster: int) -> bool:
        return self.sharers == 1 << cluster

    def sharer_list(self) -> list[int]:
        out = []
        bits = self.sharers
        cluster = 0
        while bits:
            if bits & 1:
                out.append(cluster)
            bits >>= 1
            cluster += 1
        return out

    @property
    def owner(self) -> int:
        if self.state != DIR_EXCLUSIVE:
            raise ValueError("owner undefined unless directory state is EXCLUSIVE")
        return self.sharers.bit_length() - 1


class RefDirectory:
    """Map from line number to :class:`DirEntry`, created on demand.

    Unlike the production directory this keeps dead (NOT_CACHED, empty
    mask) entries forever — the unbounded-growth behaviour the packed
    directory's pruning fixes.  :meth:`live_lines` exposes the pruned view
    for cross-checking.
    """

    __slots__ = ("n_clusters", "_entries", "invalidations_sent",
                 "replacement_hints", "writebacks")

    def __init__(self, n_clusters: int) -> None:
        if n_clusters <= 0:
            raise ValueError(f"n_clusters must be positive, got {n_clusters}")
        self.n_clusters = n_clusters
        self._entries: dict[int, DirEntry] = {}
        self.invalidations_sent = 0
        self.replacement_hints = 0
        self.writebacks = 0

    def entry(self, line: int) -> DirEntry:
        e = self._entries.get(line)
        if e is None:
            e = DirEntry()
            self._entries[line] = e
        return e

    def peek(self, line: int) -> DirEntry | None:
        return self._entries.get(line)

    def record_read_fill(self, line: int, cluster: int) -> None:
        e = self.entry(line)
        e.state = DIR_SHARED
        e.add_sharer(cluster)

    def record_exclusive(self, line: int, cluster: int) -> int:
        e = self.entry(line)
        others = e.sharers & ~(1 << cluster)
        n_inval = others.bit_count()
        self.invalidations_sent += n_inval
        e.state = DIR_EXCLUSIVE
        e.sharers = 1 << cluster
        return n_inval

    def replacement_hint(self, line: int, cluster: int) -> None:
        e = self._entries.get(line)
        if e is None:
            return
        e.remove_sharer(cluster)
        self.replacement_hints += 1
        if e.sharers == 0:
            e.state = NOT_CACHED

    def writeback(self, line: int, cluster: int) -> None:
        e = self._entries.get(line)
        if e is None:
            return
        if e.state == DIR_EXCLUSIVE and e.only_sharer_is(cluster):
            e.state = NOT_CACHED
            e.sharers = 0
            self.writebacks += 1

    def downgrade_owner(self, line: int, reader: int) -> None:
        e = self.entry(line)
        if e.state != DIR_EXCLUSIVE:
            raise ValueError(f"line {line:#x} not exclusive at directory")
        e.state = DIR_SHARED
        e.add_sharer(reader)

    def __len__(self) -> int:
        return len(self._entries)

    def lines(self) -> list[int]:
        return list(self._entries)

    def live_lines(self) -> list[int]:
        """Lines with at least one sharer bit — what pruning would keep."""
        return [line for line, e in self._entries.items() if e.sharers]


class RefDLSMemorySystem:
    """Object-per-line oracle for the ``"dls"`` protocol backend.

    The reference twin of :class:`repro.memory.dls.DLSMemorySystem`: one
    :class:`RefFullyAssociativeCache` slice per cluster (home lines
    only), per-cluster miss counters kept as plain dicts, and the same
    observable contract — ``read`` / ``write`` outcomes and stalls,
    classification, prefetch-hit consumption, write-back counts, and
    victim choice.  The hypothesis suite drives both implementations
    with identical random access streams and requires them to agree
    step for step (``tests/test_memcore_properties.py``).
    """

    #: mirror of MissCause values, import-free (COLD/COHERENCE/CAPACITY)
    _CAUSES = ("cold", "coherence", "capacity")

    def __init__(self, config, allocator) -> None:
        self.config = config
        self.allocator = allocator
        self.local_clean = config.latency.local_clean
        self.remote_clean = config.latency.remote_clean
        self.slices = [RefFullyAssociativeCache(config.cluster_cache_lines)
                       for _ in range(config.n_clusters)]
        self.counters = [dict(reads=0, writes=0, read_misses=0,
                              write_misses=0, merges=0, merge_refetches=0,
                              prefetch_hits=0, cold=0, coherence=0,
                              capacity=0)
                         for _ in range(config.n_clusters)]
        self.writebacks = 0
        self._history: list[dict[int, str]] = [
            dict() for _ in range(config.n_clusters)]

    def cluster_of(self, processor: int) -> int:
        return processor // self.config.cluster_size

    def _install(self, cluster: int, line: int, state: int,
                 pending_until: int, fetcher: int) -> None:
        victim = self.slices[cluster].insert(line, state, pending_until,
                                             fetcher)
        if victim is not None:
            self._history[cluster][victim.line] = "capacity"
            if victim.state == EXCLUSIVE:
                self.writebacks += 1

    def read(self, processor: int, line: int, now: int,
             is_retry: bool = False) -> tuple[int, int]:
        """Same outcome tags as the production system (READ_* ints 0/1/2)."""
        cluster = self.cluster_of(processor)
        ctr = self.counters[cluster]
        if not is_retry:
            ctr["reads"] += 1
        home = self.allocator.home_of_line(line)
        history = self._history[cluster]
        if home == cluster:
            entry = self.slices[cluster].lookup(line)
            if entry is not None:
                if entry.is_pending(now):
                    ctr["merges"] += 1
                    return 1, entry.pending_until - now  # READ_MERGE
                if entry.fetcher != -1 and entry.fetcher != processor:
                    ctr["prefetch_hits"] += 1
                    entry.fetcher = -1
                return 0, 0  # READ_HIT
            if is_retry:
                ctr["merge_refetches"] += 1
            cause = history.get(line, "cold")
            latency = self.local_clean
            self._install(cluster, line, SHARED, now + latency, processor)
            ctr["read_misses"] += 1
            ctr[cause] += 1
            return 2, latency  # READ_MISS
        cause = history.get(line, "cold")
        history[line] = "coherence"
        entry = self.slices[home].lookup(line)
        if entry is not None:
            queue = max(entry.pending_until - now, 0)
            latency = self.remote_clean + queue
        else:
            latency = self.remote_clean + self.local_clean
            self._install(home, line, SHARED, now + self.local_clean,
                          processor)
        ctr["read_misses"] += 1
        ctr[cause] += 1
        return 2, latency  # READ_MISS

    def write(self, processor: int, line: int, now: int) -> None:
        cluster = self.cluster_of(processor)
        ctr = self.counters[cluster]
        ctr["writes"] += 1
        home = self.allocator.home_of_line(line)
        history = self._history[cluster]
        if home == cluster:
            entry = self.slices[cluster].lookup(line)
            if entry is not None:
                entry.state = EXCLUSIVE
                return
            cause = history.get(line, "cold")
            self._install(cluster, line, EXCLUSIVE,
                          now + self.local_clean, processor)
            ctr["write_misses"] += 1
            ctr[cause] += 1
            return
        cause = history.get(line, "cold")
        history[line] = "coherence"
        ctr["write_misses"] += 1
        ctr[cause] += 1
        entry = self.slices[home].lookup(line)
        if entry is not None:
            entry.state = EXCLUSIVE
            return
        self._install(home, line, EXCLUSIVE, now + self.local_clean,
                      processor)
