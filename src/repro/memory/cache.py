"""Cluster caches: fully associative LRU (the paper's model) and a
set-associative variant (the paper's stated future work on destructive
interference under limited associativity).

Paper §3.1: *"the caches that are simulated are fully associative caches with
an LRU replacement policy ... we do not want to include the effect of
conflict misses that are due to limited associativity."*

A cache holds *lines* (line numbers, not byte addresses).  Each resident line
carries

* a coherence state — ``SHARED`` or ``EXCLUSIVE`` (absence is INVALID), and
* a ``pending_until`` timestamp: the simulated time at which an outstanding
  fill for the line returns.  A read that finds the line pending is the
  paper's **merge miss** and stalls until that time.

The fully associative cache exploits CPython dict ordering for LRU: dicts
iterate in insertion order, so re-inserting a line on every touch makes the
first key the least recently used.  This gives O(1) lookup, touch and
eviction with no auxiliary list.

Infinite caches (``capacity_lines is None``) never evict; the paper uses them
to isolate cold and coherence misses.
"""

from __future__ import annotations

from typing import NamedTuple

__all__ = [
    "SHARED",
    "EXCLUSIVE",
    "LineEntry",
    "Eviction",
    "FullyAssociativeCache",
    "SetAssociativeCache",
    "make_cache",
]

#: Coherence state: line readable, possibly cached by other clusters too.
SHARED = 1
#: Coherence state: line writable, this cluster is the sole owner.
EXCLUSIVE = 2

_STATE_NAMES = {SHARED: "SHARED", EXCLUSIVE: "EXCLUSIVE"}


class LineEntry:
    """Mutable per-line cache metadata.

    ``fetcher`` records which processor's miss brought the line in; the
    protocol layer uses it to count *cluster prefetch hits* — the first
    access by a different processor of the same cluster, which is exactly
    the prefetching benefit of the paper's §2.  It is set to ``-1`` once
    counted (or when the notion stops being meaningful, e.g. upgrades).
    """

    __slots__ = ("state", "pending_until", "fetcher")

    def __init__(self, state: int, pending_until: int = 0,
                 fetcher: int = -1) -> None:
        self.state = state
        self.pending_until = pending_until
        self.fetcher = fetcher

    def is_pending(self, now: int) -> bool:
        """Whether an outstanding fill for this line is still in flight."""
        return self.pending_until > now

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"LineEntry({_STATE_NAMES.get(self.state, self.state)}, "
                f"pending_until={self.pending_until})")


class Eviction(NamedTuple):
    """A line pushed out of the cache; the protocol layer notifies the
    directory (replacement hint for SHARED, writeback for EXCLUSIVE).

    A named tuple rather than a frozen dataclass: one is allocated per
    eviction on the miss path, and tuple construction is C-level while a
    frozen dataclass pays two ``object.__setattr__`` calls.
    """

    line: int
    state: int


class FullyAssociativeCache:
    """Fully associative LRU cache over whole lines.

    Parameters
    ----------
    capacity_lines:
        Number of lines the cache holds, or ``None`` for an infinite cache.
    """

    __slots__ = ("capacity_lines", "_lines", "evictions", "inserts")

    def __init__(self, capacity_lines: int | None) -> None:
        if capacity_lines is not None and capacity_lines <= 0:
            raise ValueError(
                f"capacity_lines must be positive or None, got {capacity_lines}"
            )
        self.capacity_lines = capacity_lines
        self._lines: dict[int, LineEntry] = {}
        #: lifetime counters, used by tests and the working-set profiler
        self.evictions = 0
        self.inserts = 0

    # ------------------------------------------------------------------ hot
    def lookup(self, line: int) -> LineEntry | None:
        """Return the entry for ``line`` and refresh its LRU position."""
        entry = self._lines.get(line)
        if entry is not None and self.capacity_lines is not None:
            # Move to MRU position: delete + reinsert keeps dict order = LRU.
            del self._lines[line]
            self._lines[line] = entry
        return entry

    def peek(self, line: int) -> LineEntry | None:
        """Return the entry for ``line`` without touching LRU order."""
        return self._lines.get(line)

    def insert(self, line: int, state: int, pending_until: int = 0,
               fetcher: int = -1) -> Eviction | None:
        """Install ``line``; return the victim eviction if one was needed.

        The line being inserted must not already be resident (the protocol
        layer upgrades in place via the returned :class:`LineEntry` of
        :meth:`lookup` instead of re-inserting).
        """
        if line in self._lines:
            raise ValueError(f"line {line:#x} already resident")
        victim: Eviction | None = None
        if self.capacity_lines is not None and len(self._lines) >= self.capacity_lines:
            victim_line = next(iter(self._lines))
            victim_entry = self._lines.pop(victim_line)
            victim = Eviction(victim_line, victim_entry.state)
            self.evictions += 1
        self._lines[line] = LineEntry(state, pending_until, fetcher)
        self.inserts += 1
        return victim

    def invalidate(self, line: int) -> bool:
        """Drop ``line`` (even if pending).  True if it was resident."""
        return self._lines.pop(line, None) is not None

    def downgrade(self, line: int) -> None:
        """EXCLUSIVE → SHARED in place (remote read to a dirty line)."""
        entry = self._lines.get(line)
        if entry is None:
            raise KeyError(f"line {line:#x} not resident; cannot downgrade")
        entry.state = SHARED

    # ---------------------------------------------------------------- query
    def __len__(self) -> int:
        return len(self._lines)

    def __contains__(self, line: int) -> bool:
        return line in self._lines

    @property
    def is_infinite(self) -> bool:
        """Whether this cache never evicts."""
        return self.capacity_lines is None

    def resident_lines(self) -> list[int]:
        """All resident line numbers.

        For a *finite* cache the order is LRU → MRU (dict order is LRU
        order; see the module docstring).  An infinite cache never reorders
        on touch — :meth:`lookup` skips the delete/reinsert because no
        eviction can ever consult the order — so there the order is simply
        insertion order.
        """
        return list(self._lines)

    def resident_lines_by_set(self) -> list[list[int]]:
        """Residency grouped by set: one pseudo-set holding every line.

        A fully associative cache *is* a single set; this mirrors
        :meth:`SetAssociativeCache.resident_lines_by_set` so residency
        analyses can treat both cache kinds uniformly.  Within-set order
        follows :meth:`resident_lines` (LRU → MRU when finite).
        """
        return [list(self._lines)]

    def state_of(self, line: int) -> int | None:
        """Coherence state of ``line`` or ``None`` if absent (no LRU touch)."""
        entry = self._lines.get(line)
        return None if entry is None else entry.state


class SetAssociativeCache:
    """Set-associative LRU cache (extension E-X1: destructive interference).

    The paper's §7 names "the destructive interference due to limited
    associativity" as follow-on work; this class lets the same protocol
    engine run with realistic associativity.  Sets are indexed by
    ``line % n_sets``, each set an independent LRU dict.

    The public surface mirrors :class:`FullyAssociativeCache` so the
    coherence engine is agnostic to which is plugged in.
    """

    __slots__ = ("capacity_lines", "associativity", "n_sets", "_sets",
                 "evictions", "inserts")

    def __init__(self, capacity_lines: int, associativity: int) -> None:
        if capacity_lines <= 0:
            raise ValueError("capacity_lines must be positive")
        if associativity <= 0:
            raise ValueError("associativity must be positive")
        if capacity_lines % associativity != 0:
            raise ValueError(
                f"capacity {capacity_lines} not divisible by "
                f"associativity {associativity}"
            )
        self.capacity_lines = capacity_lines
        self.associativity = associativity
        self.n_sets = capacity_lines // associativity
        self._sets: list[dict[int, LineEntry]] = [dict() for _ in range(self.n_sets)]
        self.evictions = 0
        self.inserts = 0

    def _set_for(self, line: int) -> dict[int, LineEntry]:
        return self._sets[line % self.n_sets]

    def lookup(self, line: int) -> LineEntry | None:
        s = self._set_for(line)
        entry = s.get(line)
        if entry is not None:
            del s[line]
            s[line] = entry
        return entry

    def peek(self, line: int) -> LineEntry | None:
        return self._set_for(line).get(line)

    def insert(self, line: int, state: int, pending_until: int = 0,
               fetcher: int = -1) -> Eviction | None:
        s = self._set_for(line)
        if line in s:
            raise ValueError(f"line {line:#x} already resident")
        victim: Eviction | None = None
        if len(s) >= self.associativity:
            victim_line = next(iter(s))
            victim_entry = s.pop(victim_line)
            victim = Eviction(victim_line, victim_entry.state)
            self.evictions += 1
        s[line] = LineEntry(state, pending_until, fetcher)
        self.inserts += 1
        return victim

    def invalidate(self, line: int) -> bool:
        return self._set_for(line).pop(line, None) is not None

    def downgrade(self, line: int) -> None:
        entry = self._set_for(line).get(line)
        if entry is None:
            raise KeyError(f"line {line:#x} not resident; cannot downgrade")
        entry.state = SHARED

    def __len__(self) -> int:
        return sum(len(s) for s in self._sets)

    def __contains__(self, line: int) -> bool:
        return line in self._set_for(line)

    @property
    def is_infinite(self) -> bool:
        return False

    def resident_lines(self) -> list[int]:
        """All resident line numbers, set by set.

        The order is **set-concatenation order** — set 0's lines (LRU →
        MRU within the set), then set 1's, and so on — *not* a global LRU
        ordering: sets age independently, so no global recency order
        exists.  Use :meth:`resident_lines_by_set` when set boundaries
        matter (e.g. measuring per-set conflict pressure).
        """
        out: list[int] = []
        for s in self._sets:
            out.extend(s)
        return out

    def resident_lines_by_set(self) -> list[list[int]]:
        """Residency grouped by set, LRU → MRU within each set.

        ``result[i]`` lists set ``i``'s resident lines in recency order
        (dict order is LRU order, exactly as in the fully associative
        cache).  This is the primitive behind per-set occupancy analyses:
        a skewed occupancy distribution at equal total residency is the
        signature of conflict (not capacity) pressure.
        """
        return [list(s) for s in self._sets]

    def state_of(self, line: int) -> int | None:
        entry = self._set_for(line).get(line)
        return None if entry is None else entry.state


def make_cache(capacity_lines: int | None, associativity: int | None = None):
    """Build the cache the configuration asks for.

    ``associativity=None`` (the paper's setting) gives a fully associative
    cache; an integer gives the set-associative extension.  Infinite caches
    are necessarily fully associative.
    """
    if associativity is None or capacity_lines is None:
        return FullyAssociativeCache(capacity_lines)
    if associativity >= capacity_lines:
        return FullyAssociativeCache(capacity_lines)
    return SetAssociativeCache(capacity_lines, associativity)
