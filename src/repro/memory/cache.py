"""Cluster caches: fully associative LRU (the paper's model) and a
set-associative variant (the paper's stated future work on destructive
interference under limited associativity).

Paper §3.1: *"the caches that are simulated are fully associative caches with
an LRU replacement policy ... we do not want to include the effect of
conflict misses that are due to limited associativity."*

A cache holds *lines* (line numbers, not byte addresses).  Each resident line
carries

* a coherence state — ``SHARED`` or ``EXCLUSIVE`` (absence is INVALID), and
* a ``pending_until`` timestamp: the simulated time at which an outstanding
  fill for the line returns.  A read that finds the line pending is the
  paper's **merge miss** and stalls until that time.

State layout — slab columns, not per-line objects
-------------------------------------------------
Per-line metadata lives in preallocated flat **columns** indexed by a slot
number::

    slot_of : dict line -> slot          (residency + LRU order)
    state   : array('q')  per-slot coherence state (SHARED/EXCLUSIVE)
    pending : list[int]   per-slot fill-return timestamp ("pending until")
    fetcher : list[int]   per-slot fetching processor (-1 once the
                          prefetch benefit has been counted)
    tag     : array('q')  per-slot line number (reverse map / debugging)
    free    : list[int]   recycled slot numbers

The two values read on *every hit* — the pending timestamp and the fetcher
id — live in **plain lists indexed directly by the slot**, for two reasons.
Plain list, because a list load returns the stored int object where an
``array('q')`` read would materialise a fresh int per probe (timestamps
exceed the small-int cache).  Direct slot indexing, because any index
arithmetic (a stride-2 ``2*s`` / ``2*s + 1`` encoding was tried) allocates
an int object per probe for slots past the small-int range — measurably
slower on hit-heavy streams than touching two parallel columns.  The
state/tag columns keep the machine-word ``array('q')`` layout (their values
are small or read only on misses).

Nothing is allocated per access: a hit is one dict probe (plus the LRU
touch), a miss reuses the victim's slot or pops the free list, and an
invalidation pushes the slot back.  The columns are machine-word arrays, so
a 64-cluster simulation's cache state is a handful of flat buffers instead
of tens of thousands of heap objects — cheaper to touch, cheaper for the
fork-server sweep workers to inherit copy-on-write, and invisible to the
garbage collector's cycle detector.

LRU comes from the *slot index dict*, not from the columns: CPython dicts
iterate in insertion order, so deleting + reinserting a line's slot mapping
on every touch makes the first key the least recently used.  This gives
O(1) lookup, touch and eviction with no auxiliary list and — crucially —
the exact same victim sequence as the previous per-line-object
implementation (the contract for bit-identical simulation results).

Infinite caches (``capacity_lines is None``) never evict; the paper uses them
to isolate cold and coherence misses.  Their columns grow geometrically and
are extended **in place** so references bound before growth stay valid.
"""

from __future__ import annotations

from array import array
from typing import NamedTuple

__all__ = [
    "SHARED",
    "EXCLUSIVE",
    "Eviction",
    "FullyAssociativeCache",
    "SetAssociativeCache",
    "make_cache",
]

#: Coherence state: line readable, possibly cached by other clusters too.
SHARED = 1
#: Coherence state: line writable, this cluster is the sole owner.
EXCLUSIVE = 2

_STATE_NAMES = {SHARED: "SHARED", EXCLUSIVE: "EXCLUSIVE"}

#: initial column length for caches that start empty (infinite caches)
_INITIAL_SLOTS = 1024


class Eviction(NamedTuple):
    """A line pushed out of the cache; the protocol layer notifies the
    directory (replacement hint for SHARED, writeback for EXCLUSIVE).

    A named tuple rather than a frozen dataclass: one is allocated per
    eviction on the miss path, and tuple construction is C-level while a
    frozen dataclass pays two ``object.__setattr__`` calls.
    """

    line: int
    state: int


class FullyAssociativeCache:
    """Fully associative LRU cache over whole lines, slab-allocated.

    Parameters
    ----------
    capacity_lines:
        Number of lines the cache holds, or ``None`` for an infinite cache.

    The per-line columns (``state``/``meta``/``tag``) and the ``slot_of``
    index are public on purpose: the coherence layer binds them once per
    cluster and runs its hot path as plain dict/array operations.  All
    invariants (slot lifecycle, LRU order) are maintained by the methods
    here; external writers must only mutate *values* of live slots, never
    the slot lifecycle itself.
    """

    __slots__ = ("capacity_lines", "slot_of", "state", "pending", "fetcher",
                 "tag", "free", "evictions", "inserts")

    def __init__(self, capacity_lines: int | None) -> None:
        if capacity_lines is not None and capacity_lines <= 0:
            raise ValueError(
                f"capacity_lines must be positive or None, got {capacity_lines}"
            )
        self.capacity_lines = capacity_lines
        #: line -> slot; dict order is LRU order (finite caches only)
        self.slot_of: dict[int, int] = {}
        n = capacity_lines if capacity_lines is not None else 0
        zeros = bytes(8 * n)
        self.state = array("q", zeros)
        self.pending = [0] * n
        self.fetcher = [-1] * n
        self.tag = array("q", zeros)
        #: recycled slots, popped LIFO (finite caches are preallocated)
        self.free: list[int] = list(range(n - 1, -1, -1))
        #: lifetime counters, used by tests and the working-set profiler
        self.evictions = 0
        self.inserts = 0

    def _grow(self) -> int:
        """Extend all columns in place; returns a fresh slot.

        Every column is extended **in place** (``frombytes``/``extend``
        mutate the existing buffers), so column references bound by the
        coherence kernel before growth remain valid.
        """
        n = len(self.state)
        add = n if n else _INITIAL_SLOTS
        zeros = bytes(8 * add)
        self.state.frombytes(zeros)
        self.pending.extend([0] * add)
        self.fetcher.extend([-1] * add)
        self.tag.frombytes(zeros)
        free = self.free
        free.extend(range(n + add - 1, n, -1))
        return n

    # ------------------------------------------------------------------ hot
    def lookup(self, line: int) -> int:
        """Slot of ``line`` (refreshing its LRU position) or ``-1``."""
        slot = self.slot_of.get(line, -1)
        if slot >= 0 and self.capacity_lines is not None:
            # Move to MRU position: delete + reinsert keeps dict order = LRU.
            del self.slot_of[line]
            self.slot_of[line] = slot
        return slot

    def peek(self, line: int) -> int:
        """Slot of ``line`` without touching LRU order, or ``-1``."""
        return self.slot_of.get(line, -1)

    def insert(self, line: int, state: int, pending_until: int = 0,
               fetcher: int = -1) -> Eviction | None:
        """Install ``line``; return the victim eviction if one was needed.

        The line being inserted must not already be resident (the protocol
        layer upgrades in place via the slot returned by :meth:`lookup`
        instead of re-inserting).  An evicted victim's slot is reused
        directly for the incoming line — no free-list round trip.
        """
        slot_of = self.slot_of
        if line in slot_of:
            raise ValueError(f"line {line:#x} already resident")
        victim: Eviction | None = None
        cap = self.capacity_lines
        if cap is not None and len(slot_of) >= cap:
            victim_line = next(iter(slot_of))
            slot = slot_of.pop(victim_line)
            victim = Eviction(victim_line, self.state[slot])
            self.evictions += 1
        else:
            free = self.free
            slot = free.pop() if free else self._grow()
        self.state[slot] = state
        self.pending[slot] = pending_until
        self.fetcher[slot] = fetcher
        self.tag[slot] = line
        slot_of[line] = slot
        self.inserts += 1
        return victim

    def invalidate(self, line: int) -> bool:
        """Drop ``line`` (even if pending).  True if it was resident."""
        slot = self.slot_of.pop(line, -1)
        if slot < 0:
            return False
        self.free.append(slot)
        return True

    def downgrade(self, line: int) -> None:
        """EXCLUSIVE → SHARED in place (remote read to a dirty line)."""
        slot = self.slot_of.get(line, -1)
        if slot < 0:
            raise KeyError(f"line {line:#x} not resident; cannot downgrade")
        self.state[slot] = SHARED

    # ---------------------------------------------------------------- query
    def __len__(self) -> int:
        return len(self.slot_of)

    def __contains__(self, line: int) -> bool:
        return line in self.slot_of

    @property
    def is_infinite(self) -> bool:
        """Whether this cache never evicts."""
        return self.capacity_lines is None

    def state_of(self, line: int) -> int | None:
        """Coherence state of ``line`` or ``None`` if absent (no LRU touch)."""
        slot = self.slot_of.get(line, -1)
        return None if slot < 0 else self.state[slot]

    def pending_until_of(self, line: int) -> int | None:
        """Fill-return time of ``line`` or ``None`` if absent (no LRU touch)."""
        slot = self.slot_of.get(line, -1)
        return None if slot < 0 else self.pending[slot]

    def fetcher_of(self, line: int) -> int | None:
        """Fetching processor of ``line`` or ``None`` if absent."""
        slot = self.slot_of.get(line, -1)
        return None if slot < 0 else self.fetcher[slot]

    def resident_lines(self) -> list[int]:
        """All resident line numbers.

        For a *finite* cache the order is LRU → MRU (dict order is LRU
        order; see the module docstring).  An infinite cache never reorders
        on touch — :meth:`lookup` skips the delete/reinsert because no
        eviction can ever consult the order — so there the order is simply
        insertion order.
        """
        return list(self.slot_of)

    def resident_lines_by_set(self) -> list[list[int]]:
        """Residency grouped by set: one pseudo-set holding every line.

        A fully associative cache *is* a single set; this mirrors
        :meth:`SetAssociativeCache.resident_lines_by_set` so residency
        analyses can treat both cache kinds uniformly.  Within-set order
        follows :meth:`resident_lines` (LRU → MRU when finite).
        """
        return [list(self.slot_of)]


class SetAssociativeCache:
    """Set-associative LRU cache (extension E-X1: destructive interference).

    The paper's §7 names "the destructive interference due to limited
    associativity" as follow-on work; this class lets the same protocol
    engine run with realistic associativity.  Sets are indexed by
    ``line % n_sets``; set ``i`` owns the slot range
    ``[i * associativity, (i + 1) * associativity)`` of one shared slab, and
    each set's LRU order is its index dict's insertion order (exactly as in
    the fully associative cache).

    The public surface mirrors :class:`FullyAssociativeCache` so the
    coherence engine is agnostic to which is plugged in.
    """

    __slots__ = ("capacity_lines", "associativity", "n_sets", "slot_of",
                 "state", "pending", "fetcher", "tag", "_set_free",
                 "evictions", "inserts")

    def __init__(self, capacity_lines: int, associativity: int) -> None:
        if capacity_lines <= 0:
            raise ValueError("capacity_lines must be positive")
        if associativity <= 0:
            raise ValueError("associativity must be positive")
        if capacity_lines % associativity != 0:
            raise ValueError(
                f"capacity {capacity_lines} not divisible by "
                f"associativity {associativity}"
            )
        self.capacity_lines = capacity_lines
        self.associativity = associativity
        self.n_sets = capacity_lines // associativity
        zeros = bytes(8 * capacity_lines)
        self.state = array("q", zeros)
        self.pending = [0] * capacity_lines
        self.fetcher = [-1] * capacity_lines
        self.tag = array("q", zeros)
        #: per-set line -> slot index dicts; dict order is the set's LRU order
        self.slot_of: list[dict[int, int]] = [dict() for _ in range(self.n_sets)]
        self._set_free: list[list[int]] = [
            list(range((i + 1) * associativity - 1, i * associativity - 1, -1))
            for i in range(self.n_sets)]
        self.evictions = 0
        self.inserts = 0

    def lookup(self, line: int) -> int:
        s = self.slot_of[line % self.n_sets]
        slot = s.get(line, -1)
        if slot >= 0:
            del s[line]
            s[line] = slot
        return slot

    def peek(self, line: int) -> int:
        return self.slot_of[line % self.n_sets].get(line, -1)

    def insert(self, line: int, state: int, pending_until: int = 0,
               fetcher: int = -1) -> Eviction | None:
        idx = line % self.n_sets
        s = self.slot_of[idx]
        if line in s:
            raise ValueError(f"line {line:#x} already resident")
        victim: Eviction | None = None
        if len(s) >= self.associativity:
            victim_line = next(iter(s))
            slot = s.pop(victim_line)
            victim = Eviction(victim_line, self.state[slot])
            self.evictions += 1
        else:
            slot = self._set_free[idx].pop()
        self.state[slot] = state
        self.pending[slot] = pending_until
        self.fetcher[slot] = fetcher
        self.tag[slot] = line
        s[line] = slot
        self.inserts += 1
        return victim

    def invalidate(self, line: int) -> bool:
        idx = line % self.n_sets
        slot = self.slot_of[idx].pop(line, -1)
        if slot < 0:
            return False
        self._set_free[idx].append(slot)
        return True

    def downgrade(self, line: int) -> None:
        slot = self.slot_of[line % self.n_sets].get(line, -1)
        if slot < 0:
            raise KeyError(f"line {line:#x} not resident; cannot downgrade")
        self.state[slot] = SHARED

    def __len__(self) -> int:
        return sum(len(s) for s in self.slot_of)

    def __contains__(self, line: int) -> bool:
        return line in self.slot_of[line % self.n_sets]

    @property
    def is_infinite(self) -> bool:
        return False

    def state_of(self, line: int) -> int | None:
        slot = self.slot_of[line % self.n_sets].get(line, -1)
        return None if slot < 0 else self.state[slot]

    def pending_until_of(self, line: int) -> int | None:
        slot = self.slot_of[line % self.n_sets].get(line, -1)
        return None if slot < 0 else self.pending[slot]

    def fetcher_of(self, line: int) -> int | None:
        slot = self.slot_of[line % self.n_sets].get(line, -1)
        return None if slot < 0 else self.fetcher[slot]

    def resident_lines(self) -> list[int]:
        """All resident line numbers, set by set.

        The order is **set-concatenation order** — set 0's lines (LRU →
        MRU within the set), then set 1's, and so on — *not* a global LRU
        ordering: sets age independently, so no global recency order
        exists.  Use :meth:`resident_lines_by_set` when set boundaries
        matter (e.g. measuring per-set conflict pressure).
        """
        out: list[int] = []
        for s in self.slot_of:
            out.extend(s)
        return out

    def resident_lines_by_set(self) -> list[list[int]]:
        """Residency grouped by set, LRU → MRU within each set.

        ``result[i]`` lists set ``i``'s resident lines in recency order
        (dict order is LRU order, exactly as in the fully associative
        cache).  This is the primitive behind per-set occupancy analyses:
        a skewed occupancy distribution at equal total residency is the
        signature of conflict (not capacity) pressure.
        """
        return [list(s) for s in self.slot_of]


def make_cache(capacity_lines: int | None, associativity: int | None = None):
    """Build the cache the configuration asks for.

    ``associativity=None`` (the paper's setting) gives a fully associative
    cache; an integer gives the set-associative extension.  Infinite caches
    are necessarily fully associative.
    """
    if associativity is None or capacity_lines is None:
        return FullyAssociativeCache(capacity_lines)
    if associativity >= capacity_lines:
        return FullyAssociativeCache(capacity_lines)
    return SetAssociativeCache(capacity_lines, associativity)
