"""Address arithmetic and shared-address-space layout.

The simulated machine exposes a single flat shared address space, exactly as
in the paper's architecture (Figure 1 of CSL-TR-94-632): memory is physically
distributed among clusters but globally addressable.  This module provides

* line/page arithmetic used throughout the memory system, and
* :class:`AddressSpace`, a bump allocator that hands out named, page-aligned
  *regions* of the address space to applications.

Applications allocate one region per logical data structure (a grid, a
particle array, an octree pool, ...) and then translate element indices to
byte addresses with :meth:`Region.element`.  Keeping structures in distinct
page-aligned regions mirrors how the SPLASH codes lay out their shared heaps
and keeps first-touch page placement meaningful.

All addresses are plain Python ints (byte addresses); the memory system only
ever looks at their line and page numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.config import DEFAULT_LINE_SIZE, DEFAULT_PAGE_SIZE

__all__ = [
    "DEFAULT_LINE_SIZE",
    "DEFAULT_PAGE_SIZE",
    "line_of",
    "page_of",
    "align_up",
    "Region",
    "AddressSpace",
]


def line_of(addr: int, line_size: int = DEFAULT_LINE_SIZE) -> int:
    """Return the cache-line number containing byte address ``addr``."""
    return addr // line_size


def page_of(addr: int, page_size: int = DEFAULT_PAGE_SIZE) -> int:
    """Return the page number containing byte address ``addr``."""
    return addr // page_size


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to the next multiple of ``alignment``."""
    if alignment <= 0:
        raise ValueError(f"alignment must be positive, got {alignment}")
    return -(-value // alignment) * alignment


@dataclass(frozen=True)
class Region:
    """A named, contiguous, page-aligned chunk of the shared address space.

    Attributes
    ----------
    name:
        Human-readable label (used in traces and debugging output).
    base:
        First byte address of the region.
    size:
        Size in bytes.
    element_size:
        Size of one logical element; :meth:`element` scales indices by it.
    """

    name: str
    base: int
    size: int
    element_size: int = 8

    def element(self, index: int) -> int:
        """Byte address of logical element ``index`` (bounds-checked)."""
        addr = self.base + index * self.element_size
        if not (self.base <= addr < self.base + self.size):
            raise IndexError(
                f"element {index} out of range for region {self.name!r} "
                f"({self.size // self.element_size} elements)"
            )
        return addr

    @property
    def end(self) -> int:
        """One past the last byte address of the region."""
        return self.base + self.size

    @property
    def n_elements(self) -> int:
        """Number of whole elements that fit in the region."""
        return self.size // self.element_size

    def contains(self, addr: int) -> bool:
        """Whether byte address ``addr`` falls inside this region."""
        return self.base <= addr < self.end

    def lines(self, line_size: int = DEFAULT_LINE_SIZE) -> range:
        """Range of line numbers spanned by this region."""
        return range(self.base // line_size, -(-self.end // line_size))


@dataclass
class AddressSpace:
    """Bump allocator for page-aligned shared regions.

    A fresh address space starts allocating at ``base``; every region is
    aligned to ``page_size`` so that regions never share a page (and thus
    first-touch placement of one structure never drags along another).
    """

    page_size: int = DEFAULT_PAGE_SIZE
    line_size: int = DEFAULT_LINE_SIZE
    base: int = 0
    _next: int = field(init=False)
    _regions: dict[str, Region] = field(init=False, default_factory=dict)

    def __post_init__(self) -> None:
        if self.page_size % self.line_size != 0:
            raise ValueError(
                f"page size {self.page_size} must be a multiple of the "
                f"line size {self.line_size}"
            )
        self._next = align_up(self.base, self.page_size)

    def allocate(self, name: str, n_elements: int, element_size: int = 8) -> Region:
        """Allocate a new region of ``n_elements`` elements.

        Region names must be unique within one address space; this catches
        accidental double allocation in application code.
        """
        if name in self._regions:
            raise ValueError(f"region {name!r} already allocated")
        if n_elements <= 0:
            raise ValueError(f"n_elements must be positive, got {n_elements}")
        if element_size <= 0:
            raise ValueError(f"element_size must be positive, got {element_size}")
        size = align_up(n_elements * element_size, self.page_size)
        region = Region(name=name, base=self._next, size=size, element_size=element_size)
        self._next = region.end
        self._regions[name] = region
        return region

    def region(self, name: str) -> Region:
        """Look up a previously allocated region by name."""
        return self._regions[name]

    def regions(self) -> list[Region]:
        """All regions in allocation order."""
        return sorted(self._regions.values(), key=lambda r: r.base)

    def find(self, addr: int) -> Region | None:
        """Region containing ``addr``, or ``None`` (linear scan; debug aid)."""
        for region in self._regions.values():
            if region.contains(addr):
                return region
        return None

    @property
    def bytes_allocated(self) -> int:
        """Total bytes handed out so far (including alignment padding)."""
        return self._next - align_up(self.base, self.page_size)
