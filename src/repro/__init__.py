"""repro — reproduction of *The Benefits of Clustering in Shared Address
Space Multiprocessors: An Applications-Driven Investigation* (Erlichson,
Nayfeh, Singh & Olukotun; Stanford CSL-TR-94-632 / SC'95).

The package is an execution-driven simulator for clustered shared-memory
multiprocessors plus the paper's full experimental apparatus:

* :mod:`repro.memory` — shared-cache clusters, full-bit-vector directory,
  invalidation coherence, first-touch round-robin page placement;
* :mod:`repro.sim` — the event-driven multiprocessor engine (Tango-lite
  analog) with cpu/load/merge/sync time accounting;
* :mod:`repro.apps` — nine SPLASH-style applications (Barnes, FMM, FFT, LU,
  MP3D, Ocean, Radix, Raytrace, Volrend) that really compute and emit
  shared-reference streams;
* :mod:`repro.core` — machine configs (Table 1), sweep driver, the §6
  shared-cache cost model (Tables 4-7), and working-set profiling;
* :mod:`repro.network` — interconnect models behind a pluggable latency
  provider: mesh/crossbar topologies, hop-based Table-1-calibrated
  latencies, and M/D/1 queueing contention;
* :mod:`repro.analysis` — the paper's figures and tables, regenerated.

Quickstart::

    from repro import MachineConfig, run_app
    result = run_app("ocean", MachineConfig(n_processors=64, cluster_size=4))
    print(result.breakdown.fractions())
"""

from .core.config import (PAPER_CACHE_SIZES_KB, PAPER_CLUSTER_SIZES,
                          PAPER_NETWORK_LOADS, LatencyModel, MachineConfig,
                          NetworkConfig)
from .core.metrics import (MissCause, MissCounters, MissKind, NetworkStats,
                           RunResult, TimeBreakdown)
from .memory.coherence import CoherentMemorySystem
from .sim.engine import Engine, PerfectMemory, run_program
from .sim.program import Barrier, Lock, Read, Unlock, Work, Write
from .sim.stats import summarize
from ._version import __version__

__all__ = [
    "MachineConfig", "LatencyModel", "NetworkConfig",
    "PAPER_CLUSTER_SIZES", "PAPER_CACHE_SIZES_KB", "PAPER_NETWORK_LOADS",
    "MissKind", "MissCause", "MissCounters", "NetworkStats",
    "TimeBreakdown", "RunResult",
    "CoherentMemorySystem", "Engine", "PerfectMemory", "run_program",
    "Work", "Read", "Write", "Barrier", "Lock", "Unlock",
    "summarize", "run_app", "__version__",
]


def run_app(name: str, config: MachineConfig, **app_kwargs):
    """Run one named application on one machine configuration.

    ``app_kwargs`` override the application's default (scaled-down) problem
    size; see :mod:`repro.apps.registry` for the knobs of each application.
    """
    from .apps.registry import build_app

    app = build_app(name, config, **app_kwargs)
    return app.run()
