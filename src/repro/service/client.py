"""Clients for the sweep service daemon: blocking and asyncio flavours.

:class:`ServiceClient` is the synchronous driver built on stdlib
:mod:`http.client` — what tools, tests, and CI smoke steps use::

    client = ServiceClient(port=8642)
    client.wait_ready(10.0)
    report = client.run_point(RunRequest.make("ocean", 4, 16.0))
    print(report.result.execution_time, report.cached, report.coalesced)
    for line in client.iter_sweep(grid):        # completion order
        print(line["index"], line.get("error"))

:class:`AsyncServiceClient` is the asyncio twin (one connection per
call, no shared state) for callers already inside an event loop.

Both raise :class:`ServiceError` on any non-2xx response; the exception
carries the HTTP status and the daemon's structured ``{"error": ...}``
body, so callers can branch on ``err.kind`` (``"bad-request"``,
``"execution-error"``, ``"timeout"``, …) instead of parsing prose.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import socket
import time
from typing import Any, AsyncIterator, Iterable, Iterator

from ..runtime.plan import RunRequest
from .http import format_request, iter_chunks, read_response
from .protocol import (PointReport, encode_point_payload,
                       encode_sweep_payload)

__all__ = ["AsyncServiceClient", "ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """A non-2xx daemon response, with its structured error body."""

    def __init__(self, status: int, payload: Any) -> None:
        self.status = status
        self.payload = payload if isinstance(payload, dict) else {}
        error = self.payload.get("error", {})
        self.kind = error.get("type", "unknown")
        self.message = error.get("message", str(payload))
        super().__init__(f"HTTP {status} [{self.kind}]: {self.message}")


def _check(status: int, payload: Any) -> Any:
    if not 200 <= status < 300:
        raise ServiceError(status, payload)
    return payload


class ServiceClient:
    """Blocking HTTP client for one daemon (not thread-safe: one
    underlying keep-alive connection — give each thread its own client).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8642,
                 timeout: float = 300.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: http.client.HTTPConnection | None = None

    # -------------------------------------------------------------- plumbing
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout)
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _raw(self, method: str, path: str,
             obj: Any = None) -> http.client.HTTPResponse:
        body = None
        headers = {"Accept": "application/json"}
        if obj is not None:
            body = json.dumps(obj, sort_keys=True,
                              separators=(",", ":")).encode("utf-8")
            headers["Content-Type"] = "application/json"
        # one retry on a stale keep-alive connection: the daemon may have
        # closed it between requests (e.g. after a chunked sweep response)
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers)
                return conn.getresponse()
            except (http.client.BadStatusLine, http.client.CannotSendRequest,
                    BrokenPipeError, ConnectionResetError):
                self.close()
                if attempt:
                    raise
        raise AssertionError("unreachable")  # pragma: no cover

    def _request(self, method: str, path: str, obj: Any = None) -> Any:
        response = self._raw(method, path, obj)
        raw = response.read()
        try:
            payload = json.loads(raw.decode("utf-8")) if raw else {}
        except (UnicodeDecodeError, json.JSONDecodeError):
            payload = {"error": {"type": "malformed-response",
                                 "message": raw[:200].decode("latin-1")}}
        return _check(response.status, payload)

    # ------------------------------------------------------------- endpoints
    def healthz(self) -> dict[str, Any]:
        return self._request("GET", "/healthz")

    def stats(self) -> dict[str, Any]:
        return self._request("GET", "/stats")

    def resolve(self, request: RunRequest) -> dict[str, Any]:
        """Validate + resolve without executing; returns key/request/config."""
        return self._request("POST", "/resolve",
                             encode_point_payload(request))

    def run_point(self, request: RunRequest,
                  timeout: float | None = None) -> PointReport:
        """Evaluate one point; blocks until the daemon answers."""
        payload = self._request("POST", "/run",
                                encode_point_payload(request, timeout))
        return PointReport.from_dict(payload)

    def iter_sweep(self, requests: Iterable[RunRequest],
                   timeout: float | None = None
                   ) -> Iterator[dict[str, Any]]:
        """Stream a sweep's JSON lines as points complete.

        Each yielded dict carries ``index`` (position in the submitted
        grid) plus either a :class:`PointReport` encoding or an
        ``error`` object; arrival order is completion order.
        """
        response = self._raw("POST", "/sweep",
                             encode_sweep_payload(list(requests), timeout))
        if not 200 <= response.status < 300:
            raw = response.read()
            try:
                payload = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                payload = {}
            raise ServiceError(response.status, payload)
        try:
            # http.client strips the chunk framing; what is left is
            # exactly the daemon's newline-delimited JSON stream
            for line in response:
                line = line.strip()
                if line:
                    yield json.loads(line.decode("utf-8"))
        finally:
            # the daemon closes the connection after a sweep stream
            self.close()

    def run_sweep(self, requests: Iterable[RunRequest],
                  timeout: float | None = None) -> list[PointReport]:
        """Evaluate a grid; reports come back in *submission* order.

        Any failed point raises :class:`ServiceError` carrying that
        point's error object (use :meth:`iter_sweep` to handle partial
        failure point by point).
        """
        requests = list(requests)
        reports: list[PointReport | None] = [None] * len(requests)
        for line in self.iter_sweep(requests, timeout):
            if "error" in line:
                raise ServiceError(500, {"error": line["error"]})
            reports[line["index"]] = PointReport.from_dict(line)
        missing = [i for i, r in enumerate(reports) if r is None]
        if missing:
            raise ServiceError(500, {"error": {
                "type": "incomplete-stream",
                "message": f"no result for point(s) {missing}"}})
        return reports  # type: ignore[return-value]

    def shutdown(self) -> dict[str, Any]:
        """Ask the daemon to drain and exit."""
        payload = self._request("POST", "/shutdown")
        self.close()
        return payload

    # ------------------------------------------------------------- readiness
    def wait_ready(self, deadline_s: float = 10.0,
                   interval_s: float = 0.05) -> dict[str, Any]:
        """Poll ``/healthz`` until the daemon answers (or raise)."""
        deadline = time.monotonic() + deadline_s
        last: Exception | None = None
        while time.monotonic() < deadline:
            try:
                return self.healthz()
            except (OSError, http.client.HTTPException,
                    ServiceError) as exc:
                last = exc
                self.close()
                time.sleep(interval_s)
        raise TimeoutError(
            f"daemon at {self.host}:{self.port} not ready after "
            f"{deadline_s:g}s: {last}")


class AsyncServiceClient:
    """Asyncio client: one short-lived connection per call."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8642) -> None:
        self.host = host
        self.port = port

    async def _open(self) -> tuple[asyncio.StreamReader,
                                   asyncio.StreamWriter]:
        return await asyncio.open_connection(self.host, self.port)

    async def _request(self, method: str, path: str,
                       obj: Any = None) -> Any:
        body = b""
        if obj is not None:
            body = json.dumps(obj, sort_keys=True,
                              separators=(",", ":")).encode("utf-8")
        reader, writer = await self._open()
        try:
            writer.write(format_request(method, path,
                                        f"{self.host}:{self.port}",
                                        body, close=True))
            await writer.drain()
            response = await read_response(reader)
            payload = response.json() if response.body else {}
            return _check(response.status, payload)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, socket.error):
                pass

    # ------------------------------------------------------------- endpoints
    async def healthz(self) -> dict[str, Any]:
        return await self._request("GET", "/healthz")

    async def stats(self) -> dict[str, Any]:
        return await self._request("GET", "/stats")

    async def resolve(self, request: RunRequest) -> dict[str, Any]:
        return await self._request("POST", "/resolve",
                                   encode_point_payload(request))

    async def run_point(self, request: RunRequest,
                        timeout: float | None = None) -> PointReport:
        payload = await self._request(
            "POST", "/run", encode_point_payload(request, timeout))
        return PointReport.from_dict(payload)

    async def iter_sweep(self, requests: Iterable[RunRequest],
                         timeout: float | None = None
                         ) -> AsyncIterator[dict[str, Any]]:
        body = json.dumps(encode_sweep_payload(list(requests), timeout),
                          sort_keys=True,
                          separators=(",", ":")).encode("utf-8")
        reader, writer = await self._open()
        try:
            writer.write(format_request("POST", "/sweep",
                                        f"{self.host}:{self.port}",
                                        body, close=False))
            await writer.drain()
            response = await read_response(reader)
            if not 200 <= response.status < 300:
                raise ServiceError(response.status,
                                   response.json() if response.body else {})
            buffer = b""
            async for chunk in iter_chunks(reader):
                buffer += chunk
                while b"\n" in buffer:
                    line, buffer = buffer.split(b"\n", 1)
                    if line.strip():
                        yield json.loads(line.decode("utf-8"))
            if buffer.strip():
                yield json.loads(buffer.decode("utf-8"))
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, socket.error):
                pass

    async def shutdown(self) -> dict[str, Any]:
        return await self._request("POST", "/shutdown")
