"""The sweep service: a persistent HTTP+JSON simulation daemon.

This package turns the repo's warm-state machinery (compiled-trace LRU,
fork-server worker pools, content-hash result cache) into a long-lived,
addressable service — ``repro-clustering serve`` — with single-flight
coalescing of identical in-flight requests.  See ``docs/SERVICE.md`` for
endpoints, wire format, and semantics.

Layout:

* :mod:`~repro.service.protocol` — JSON wire codecs and validation;
* :mod:`~repro.service.http` — the minimal asyncio HTTP/1.1 layer;
* :mod:`~repro.service.daemon` — :class:`SweepService` (single-flight
  core), :class:`ServiceDaemon` (server), :class:`DaemonThread`
  (background-thread host for tests and embedding);
* :mod:`~repro.service.client` — blocking and async clients.
"""

from .client import AsyncServiceClient, ServiceClient, ServiceError
from .daemon import (DaemonThread, PointExecutionError, ServiceDaemon,
                     ServiceStats, SweepService)
from .protocol import (PROTOCOL_VERSION, PointReport, ProtocolError,
                       decode_point_payload, decode_run_request,
                       decode_sweep_payload, encode_point_payload,
                       encode_run_request, encode_sweep_payload, error_body)

__all__ = [
    "PROTOCOL_VERSION",
    "AsyncServiceClient",
    "DaemonThread",
    "PointExecutionError",
    "PointReport",
    "ProtocolError",
    "ServiceClient",
    "ServiceDaemon",
    "ServiceError",
    "ServiceStats",
    "SweepService",
    "decode_point_payload",
    "decode_run_request",
    "decode_sweep_payload",
    "encode_point_payload",
    "encode_run_request",
    "encode_sweep_payload",
    "error_body",
]
