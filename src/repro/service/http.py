"""A deliberately small HTTP/1.1 layer over :mod:`asyncio` streams.

The sweep service speaks plain HTTP+JSON with zero third-party
dependencies, so this module implements exactly the subset the daemon
and the async client need and nothing more:

* request parsing (request line, headers, ``Content-Length`` bodies)
  with hard size limits — an oversized or malformed request raises
  :class:`HTTPParseError` and becomes a 400, never a hung connection;
* fixed-length JSON responses (``Content-Length``) and chunked
  streaming responses (``Transfer-Encoding: chunked``) for the
  JSON-lines sweep stream;
* response parsing for the async client, including chunk de-framing.

Connections are HTTP/1.1 keep-alive by default; a handler (or the
client) closes by sending ``Connection: close``.  Anything fancier —
TLS, compression, HTTP/2, multipart — is out of scope on purpose: the
daemon binds to localhost and trusts its reverse proxy for the rest.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, AsyncIterator, Mapping

__all__ = ["HTTPParseError", "HTTPRequest", "HTTPResponse", "JSONLineWriter",
           "REASONS", "format_request", "iter_chunks", "read_request",
           "read_response", "response_bytes", "send_json"]

#: request-line + one header line limit (bytes)
MAX_LINE = 8192
#: header count limit per message
MAX_HEADERS = 100
#: request body limit (bytes) — a sweep of thousands of points fits easily
MAX_BODY = 8 * 1024 * 1024

REASONS = {200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
           405: "Method Not Allowed", 408: "Request Timeout",
           413: "Payload Too Large", 500: "Internal Server Error",
           503: "Service Unavailable", 504: "Gateway Timeout"}


class HTTPParseError(ValueError):
    """The peer sent something that is not the HTTP we speak."""


@dataclass
class HTTPRequest:
    """One parsed request: method, split target, lowercased headers, body."""

    method: str
    path: str
    query: str
    headers: dict[str, str]
    body: bytes

    def json(self) -> Any:
        """The body parsed as JSON; :class:`HTTPParseError` if it isn't."""
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HTTPParseError(f"body is not valid JSON: {exc}") from exc

    @property
    def wants_close(self) -> bool:
        return self.headers.get("connection", "").lower() == "close"


@dataclass
class HTTPResponse:
    """One parsed response (client side).

    ``body`` is ``None`` while a chunked payload is still on the wire —
    drain it with :func:`iter_chunks`.
    """

    status: int
    headers: dict[str, str]
    body: bytes | None = None

    @property
    def chunked(self) -> bool:
        return (self.headers.get("transfer-encoding", "").lower()
                == "chunked")

    def json(self) -> Any:
        if self.body is None:
            raise HTTPParseError("chunked response has no eager body")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HTTPParseError(f"body is not valid JSON: {exc}") from exc


# ------------------------------------------------------------------ parsing
async def _read_headers(reader: asyncio.StreamReader) -> dict[str, str]:
    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n"):
            return headers
        if not line:
            raise HTTPParseError("connection closed inside headers")
        if len(line) > MAX_LINE:
            raise HTTPParseError("header line too long")
        if len(headers) >= MAX_HEADERS:
            raise HTTPParseError("too many headers")
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise HTTPParseError(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()


def _body_length(headers: Mapping[str, str]) -> int:
    raw = headers.get("content-length", "0") or "0"
    try:
        length = int(raw)
    except ValueError:
        raise HTTPParseError(f"bad Content-Length {raw!r}") from None
    if length < 0:
        raise HTTPParseError("negative Content-Length")
    if length > MAX_BODY:
        raise HTTPParseError(f"body of {length} bytes exceeds the "
                             f"{MAX_BODY}-byte limit")
    return length


async def read_request(reader: asyncio.StreamReader) -> HTTPRequest | None:
    """Parse one request; ``None`` on clean EOF before the request line."""
    try:
        line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError) as exc:
        raise HTTPParseError(str(exc)) from exc
    if not line:
        return None
    if len(line) > MAX_LINE:
        raise HTTPParseError("request line too long")
    parts = line.decode("latin-1").split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HTTPParseError(f"malformed request line {line!r}")
    method, target, _version = parts
    headers = await _read_headers(reader)
    length = _body_length(headers)
    try:
        body = await reader.readexactly(length) if length else b""
    except asyncio.IncompleteReadError as exc:
        raise HTTPParseError("connection closed inside body") from exc
    path, _, query = target.partition("?")
    return HTTPRequest(method.upper(), path, query, headers, body)


async def read_response(reader: asyncio.StreamReader) -> HTTPResponse:
    """Parse a status line + headers (+ body unless chunked)."""
    line = await reader.readline()
    if not line:
        raise HTTPParseError("connection closed before status line")
    parts = line.decode("latin-1").split(None, 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
        raise HTTPParseError(f"malformed status line {line!r}")
    try:
        status = int(parts[1])
    except ValueError:
        raise HTTPParseError(f"malformed status {parts[1]!r}") from None
    headers = await _read_headers(reader)
    response = HTTPResponse(status, headers)
    if not response.chunked:
        length = _body_length(headers)
        try:
            response.body = (await reader.readexactly(length)
                             if length else b"")
        except asyncio.IncompleteReadError as exc:
            raise HTTPParseError("connection closed inside body") from exc
    return response


async def iter_chunks(reader: asyncio.StreamReader) -> AsyncIterator[bytes]:
    """Yield the payload of each chunk until the terminating 0-chunk."""
    while True:
        line = await reader.readline()
        if not line:
            raise HTTPParseError("connection closed inside chunked body")
        try:
            size = int(line.strip().split(b";")[0], 16)
        except ValueError:
            raise HTTPParseError(f"bad chunk size {line!r}") from None
        if size > MAX_BODY:
            raise HTTPParseError("oversized chunk")
        try:
            data = await reader.readexactly(size)
            trailer = await reader.readexactly(2)
        except asyncio.IncompleteReadError as exc:
            raise HTTPParseError("connection closed inside chunk") from exc
        if trailer != b"\r\n":
            raise HTTPParseError("missing chunk terminator")
        if size == 0:
            return
        yield data


# ------------------------------------------------------------------ writing
def _head(status: int, headers: list[tuple[str, str]]) -> bytes:
    reason = REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}"]
    lines += [f"{name}: {value}" for name, value in headers]
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


def response_bytes(status: int, body: bytes,
                   content_type: str = "application/json") -> bytes:
    """A complete fixed-length response as one buffer."""
    return _head(status, [("Content-Type", content_type),
                          ("Content-Length", str(len(body)))]) + body


def send_json(writer: asyncio.StreamWriter, status: int, obj: Any) -> None:
    """Queue one JSON response on ``writer`` (caller drains)."""
    body = json.dumps(obj, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")
    writer.write(response_bytes(status, body))


def format_request(method: str, path: str, host: str,
                   body: bytes = b"", close: bool = False) -> bytes:
    """A complete client request as one buffer (client side)."""
    headers = [("Host", host), ("Accept", "application/json")]
    if body:
        headers += [("Content-Type", "application/json"),
                    ("Content-Length", str(len(body)))]
    if close:
        headers.append(("Connection", "close"))
    lines = [f"{method} {path} HTTP/1.1"]
    lines += [f"{name}: {value}" for name, value in headers]
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


@dataclass
class JSONLineWriter:
    """Chunked-encoding writer streaming one JSON object per line.

    The sweep endpoint's transport: each finished point goes out as its
    own chunk the moment it lands, so a client sees results in
    completion order without waiting for the grid.
    """

    writer: asyncio.StreamWriter
    started: bool = field(default=False, init=False)

    def start(self, status: int = 200) -> None:
        self.writer.write(_head(status, [
            ("Content-Type", "application/x-ndjson"),
            ("Transfer-Encoding", "chunked")]))
        self.started = True

    async def send(self, obj: Any) -> None:
        line = (json.dumps(obj, sort_keys=True, separators=(",", ":"))
                .encode("utf-8") + b"\n")
        self.writer.write(f"{len(line):x}\r\n".encode("latin-1")
                          + line + b"\r\n")
        await self.writer.drain()

    async def finish(self) -> None:
        self.writer.write(b"0\r\n\r\n")
        await self.writer.drain()
