"""Wire format of the sweep service: JSON codecs and validation.

One :class:`~repro.runtime.plan.RunRequest` is one JSON object::

    {"app": "ocean", "cluster_size": 4, "cache_kb": 16,
     "app_kwargs": {"n": 64}, "network": {...NetworkConfig...},
     "protocol": "dls"}

``cache_kb`` is ``null`` for infinite caches; ``network`` is ``null`` (or
absent) to inherit the daemon's base interconnect model; ``protocol`` is
``null`` (or absent) to inherit the daemon's base coherence protocol,
else one of :data:`repro.core.config.PROTOCOLS`.  The codec is a
strict inverse pair — :func:`decode_run_request` rejects unknown fields
and wrong types with a :class:`ProtocolError` whose message is safe to
put in an HTTP 400 body — and round-trips every representable request
(``decode(encode(r)) == r``, pinned by hypothesis in
``tests/test_service_protocol.py``).

A finished point comes back as a :class:`PointReport`::

    {"key": "<sha256 point key>", "cached": false, "coalesced": false,
     "elapsed": 0.41, "result": {...RunResult.to_dict()...}}

``result`` is the canonical :class:`~repro.core.metrics.RunResult`
encoding — the same bytes the result cache stores and the determinism
suite compares — so daemon-served results can be diffed against direct
:class:`~repro.runtime.session.RunSession` execution byte for byte.

Errors travel as ``{"error": {"type": ..., "message": ...}}`` (see
:func:`error_body`); the daemon never puts a traceback on the wire.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Mapping

from ..core.config import PROTOCOLS, NetworkConfig
from ..core.metrics import RunResult
from ..runtime.plan import RunRequest

__all__ = ["PROTOCOL_VERSION", "PointReport", "ProtocolError",
           "decode_point_payload", "decode_run_request",
           "decode_sweep_payload", "encode_point_payload",
           "encode_run_request", "encode_sweep_payload", "error_body"]

#: bumped on incompatible wire-format changes; reported by ``/healthz``
PROTOCOL_VERSION = 1

#: the JSON scalar types an ``app_kwargs`` value may take
_SCALARS = (bool, int, float, str)

_REQUEST_FIELDS = frozenset(
    {"app", "cluster_size", "cache_kb", "app_kwargs", "network",
     "protocol"})


class ProtocolError(ValueError):
    """A malformed wire payload; the message is the client-facing text."""


# --------------------------------------------------------------- RunRequest
def encode_run_request(request: RunRequest) -> dict[str, Any]:
    """The JSON-safe wire form of one sweep point."""
    out: dict[str, Any] = {
        "app": request.app,
        "cluster_size": request.cluster_size,
        "cache_kb": request.cache_kb,
        "app_kwargs": dict(request.app_kwargs),
    }
    if request.network is not None:
        out["network"] = request.network.to_dict()
    if request.protocol is not None:
        out["protocol"] = request.protocol
    return out


def decode_run_request(obj: Any) -> RunRequest:
    """Parse and validate one wire-form sweep point.

    Strict by design: unknown fields, wrong types, and out-of-range
    values all raise :class:`ProtocolError` — a daemon must answer a bad
    payload with a clear 400, not run something the client did not ask
    for (or crash trying).
    """
    if not isinstance(obj, Mapping):
        raise ProtocolError("request must be a JSON object")
    unknown = sorted(set(obj) - _REQUEST_FIELDS)
    if unknown:
        raise ProtocolError(f"unknown request field(s): {', '.join(unknown)}")

    app = obj.get("app")
    if not isinstance(app, str) or not app:
        raise ProtocolError("'app' must be a non-empty string")

    cluster = obj.get("cluster_size", 1)
    if isinstance(cluster, bool) or not isinstance(cluster, int):
        raise ProtocolError("'cluster_size' must be an integer")
    if cluster < 1:
        raise ProtocolError("'cluster_size' must be >= 1")

    cache_kb = obj.get("cache_kb")
    if cache_kb is not None:
        if isinstance(cache_kb, bool) or not isinstance(cache_kb,
                                                        (int, float)):
            raise ProtocolError("'cache_kb' must be a number or null")
        if not cache_kb > 0:
            raise ProtocolError("'cache_kb' must be positive (null = "
                                "infinite caches)")

    kwargs = obj.get("app_kwargs") or {}
    if not isinstance(kwargs, Mapping):
        raise ProtocolError("'app_kwargs' must be a JSON object")
    for key, value in kwargs.items():
        if not isinstance(key, str):
            raise ProtocolError("'app_kwargs' keys must be strings")
        if value is not None and not isinstance(value, _SCALARS):
            raise ProtocolError(
                f"'app_kwargs' value for {key!r} must be a JSON scalar")

    network = obj.get("network")
    if network is not None:
        if not isinstance(network, Mapping):
            raise ProtocolError("'network' must be a JSON object or null")
        try:
            network = NetworkConfig.from_dict(network)
        except ValueError as exc:
            raise ProtocolError(f"bad 'network' config: {exc}") from exc

    protocol = obj.get("protocol")
    if protocol is not None:
        if not isinstance(protocol, str):
            raise ProtocolError("'protocol' must be a string or null")
        if protocol not in PROTOCOLS:
            raise ProtocolError(
                f"unknown 'protocol' {protocol!r}; choose from "
                f"{', '.join(PROTOCOLS)} (null = daemon default)")

    return RunRequest.make(app, cluster, cache_kb, kwargs, network, protocol)


# ---------------------------------------------------------------- envelopes
def _decode_timeout(obj: Mapping) -> float | None:
    timeout = obj.get("timeout")
    if timeout is None:
        return None
    if isinstance(timeout, bool) or not isinstance(timeout, (int, float)):
        raise ProtocolError("'timeout' must be a number of seconds")
    if timeout <= 0:
        raise ProtocolError("'timeout' must be positive")
    return float(timeout)


def encode_point_payload(request: RunRequest,
                         timeout: float | None = None) -> dict[str, Any]:
    """The ``POST /run`` request body."""
    out: dict[str, Any] = {"request": encode_run_request(request)}
    if timeout is not None:
        out["timeout"] = timeout
    return out


def decode_point_payload(obj: Any) -> tuple[RunRequest, float | None]:
    """Parse a ``POST /run`` body into (request, per-request timeout)."""
    if not isinstance(obj, Mapping):
        raise ProtocolError("payload must be a JSON object")
    unknown = sorted(set(obj) - {"request", "timeout"})
    if unknown:
        raise ProtocolError(f"unknown payload field(s): {', '.join(unknown)}")
    if "request" not in obj:
        raise ProtocolError("payload is missing 'request'")
    return decode_run_request(obj["request"]), _decode_timeout(obj)


def encode_sweep_payload(requests: list[RunRequest],
                         timeout: float | None = None) -> dict[str, Any]:
    """The ``POST /sweep`` request body."""
    out: dict[str, Any] = {
        "requests": [encode_run_request(r) for r in requests]}
    if timeout is not None:
        out["timeout"] = timeout
    return out


def decode_sweep_payload(obj: Any) -> tuple[list[RunRequest], float | None]:
    """Parse a ``POST /sweep`` body into (requests, per-point timeout)."""
    if not isinstance(obj, Mapping):
        raise ProtocolError("payload must be a JSON object")
    unknown = sorted(set(obj) - {"requests", "timeout"})
    if unknown:
        raise ProtocolError(f"unknown payload field(s): {', '.join(unknown)}")
    raw = obj.get("requests")
    if not isinstance(raw, list) or not raw:
        raise ProtocolError("'requests' must be a non-empty JSON array")
    return ([decode_run_request(r) for r in raw], _decode_timeout(obj))


# -------------------------------------------------------------- PointReport
@dataclass(frozen=True)
class PointReport:
    """One finished point as the daemon reports it.

    ``cached`` marks results served from the persistent result cache;
    ``coalesced`` marks requests that piggybacked on an identical
    in-flight execution (single-flight).  ``elapsed`` is the execution
    wall-clock in seconds — 0.0 for cache hits, and the *shared*
    execution's time for coalesced followers.
    """

    key: str
    result: RunResult
    cached: bool = False
    coalesced: bool = False
    elapsed: float = 0.0

    def to_dict(self) -> dict[str, Any]:
        return {"key": self.key, "cached": self.cached,
                "coalesced": self.coalesced,
                "elapsed": round(self.elapsed, 6),
                "result": self.result.to_dict()}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PointReport":
        try:
            return cls(key=data["key"],
                       result=RunResult.from_dict(data["result"]),
                       cached=bool(data.get("cached", False)),
                       coalesced=bool(data.get("coalesced", False)),
                       elapsed=float(data.get("elapsed", 0.0)))
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(
                f"malformed point report: {exc}") from exc

    def as_coalesced(self) -> "PointReport":
        """A copy marked as served by an in-flight execution."""
        return replace(self, coalesced=True)


# -------------------------------------------------------------------- errors
def error_body(kind: str, message: str) -> dict[str, Any]:
    """The uniform error envelope — never carries a traceback."""
    return {"error": {"type": kind, "message": message}}
