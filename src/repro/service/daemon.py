"""The sweep service daemon: a long-lived simulation server.

``repro-clustering serve`` turns the repo's warm-state machinery — the
process-wide compiled-trace LRU, the fork-server worker pool, the
content-hash result cache — from per-invocation optimizations into a
shared, persistent service.  Two classes split the work:

:class:`SweepService`
    The transport-free core.  It owns the :class:`~repro.core.executor.
    SweepExecutor`, the optional :class:`~repro.core.resultcache.
    ResultCache`, and the **single-flight table**: a map from content-hash
    point key (:func:`~repro.core.resultcache.point_key` — the exact key
    the result cache uses) to the in-flight :class:`asyncio.Task`
    computing that point.  N concurrent identical requests find the same
    task and await it together — one simulation, N answers — and the
    finished result lands in the result cache so request N+1 is a disk
    hit.  Execution itself goes through
    :meth:`SweepExecutor.submit_one`, whose worker path is the canonical
    :class:`~repro.runtime.session.RunSession` pipeline; the daemon adds
    no second way to run a simulation.

:class:`ServiceDaemon`
    The asyncio HTTP front end (see :mod:`repro.service.http`): routing,
    keep-alive connections, the JSON-lines sweep stream, per-request
    timeouts (``asyncio.wait_for`` around a *shielded* flight, so one
    impatient client never cancels a computation other clients share),
    and graceful shutdown that stops accepting, drains in-flight points
    up to a deadline, then cancels stragglers and closes the pools.

Endpoints (wire format in ``docs/SERVICE.md``):

=========  ======  ====================================================
path       method  behaviour
=========  ======  ====================================================
/healthz   GET     liveness + protocol version + in-flight count
/stats     GET     counters: cache hit rate, coalesced, pool warmth, …
/resolve   POST    validate + resolve a request; returns key & config
/run       POST    evaluate one point; 200 with a PointReport
/sweep     POST    evaluate many; chunked JSON-lines, completion order
/shutdown  POST    graceful drain + stop (also SIGINT/SIGTERM)
=========  ======  ====================================================

Failures are structured: malformed payloads are 400s with an
``{"error": ...}`` body, a point that dies (including a killed worker
process poisoning the pool) is a 500 whose message is the exception
summary — never a traceback — and the daemon itself stays healthy, with
the executor reopening its pool on the next request.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from ..apps.registry import APP_NAMES
from ..core.config import MachineConfig
from ..core.executor import PointOutcome, SweepExecutor
from ..core.resultcache import ResultCache, point_key
from .http import (HTTPParseError, HTTPRequest, JSONLineWriter, read_request,
                   response_bytes, send_json)
from .protocol import (PROTOCOL_VERSION, PointReport, ProtocolError,
                       decode_point_payload, decode_sweep_payload,
                       encode_run_request, error_body)

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.plan import RunRequest

__all__ = ["DaemonThread", "PointExecutionError", "ServiceDaemon",
           "ServiceStats", "SweepService"]


def _native_status() -> dict[str, Any]:
    """The replay-kernel selection snapshot for ``/stats``.

    :func:`repro.native.status` plus nothing — kept as a seam so the
    daemon never triggers a compile while answering a stats poll.
    """
    import repro.native as native

    return native.status()


def _trace_cache_status() -> dict[str, Any]:
    """The process-wide trace-LRU accounting for ``/stats``.

    Byte-budget occupancy of the in-memory compiled-trace tier
    (:func:`repro.sim.compiled.trace_cache_info`): live entries, how many
    are memory-mapped (charged ≈ 0 resident bytes), resident vs payload
    bytes, and the configured budget — the numbers an operator needs to
    tell "the daemon is holding traces" from "the traces are mapped and
    the page cache is holding them".
    """
    from ..sim.compiled import trace_cache_info

    return trace_cache_info()


class PointExecutionError(RuntimeError):
    """A point failed to execute; carries the client-safe summary.

    ``detail`` is the executor's full error text (which may include a
    worker traceback) for the daemon's own logs; ``message`` is the last
    non-empty line — the exception summary — and is all that ever
    reaches the wire.
    """

    def __init__(self, key: str, detail: str) -> None:
        lines = [ln for ln in (detail or "").strip().splitlines() if ln]
        self.key = key
        self.detail = detail
        self.message = lines[-1] if lines else "point execution failed"
        super().__init__(self.message)


@dataclass
class ServiceStats:
    """Monotonic service counters (reported by ``GET /stats``)."""

    requests: int = 0      # HTTP requests accepted (any endpoint)
    points: int = 0        # point evaluations asked for (run + sweep)
    executed: int = 0      # simulations actually run to completion
    cache_hits: int = 0    # points served from the persistent result cache
    coalesced: int = 0     # points that joined an identical in-flight run
    errors: int = 0        # executions that failed
    timeouts: int = 0      # per-request deadlines that expired


class SweepService:
    """Transport-free service core: single-flight memoized evaluation.

    Parameters
    ----------
    executor:
        The :class:`SweepExecutor` evaluations are dispatched to.  Its
        backend decides the daemon's shape: ``fork``/``process`` for a
        warm worker pool, ``serial`` for in-process (thread) execution.
        The executor's own result cache is ignored — the service owns
        memoization so it composes with single-flight.
    base_config:
        Machine template every request resolves against.
    cache:
        Optional persistent :class:`ResultCache`.  ``None`` disables
        memoization (every distinct request executes).
    """

    def __init__(self, executor: SweepExecutor,
                 base_config: MachineConfig | None = None,
                 cache: ResultCache | None = None) -> None:
        self.executor = executor
        self.base_config = base_config or MachineConfig()
        self.cache = cache
        self.stats = ServiceStats()
        self.started_at = time.monotonic()
        self._inflight: dict[str, asyncio.Task] = {}
        # keys whose flight was started by batch_prefetch and not yet
        # claimed by their own sweep's evaluate() — the first join of
        # such a key is the group member taking its seat, not a coalesce
        self._batch_primary: set[str] = set()

    # ------------------------------------------------------------ resolution
    def resolve(self, request: "RunRequest") -> tuple[str, MachineConfig]:
        """Validate + bind a request; returns (point key, concrete config).

        Raises :class:`ProtocolError` for anything the daemon can reject
        before spending a worker on it: unknown applications and
        machine shapes the base config cannot take (e.g. a cluster size
        that does not divide the processor count).
        """
        if request.app not in APP_NAMES:
            raise ProtocolError(
                f"unknown application {request.app!r}; expected one of "
                f"{', '.join(APP_NAMES)}")
        try:
            config = request.config_for(self.base_config)
        except ValueError as exc:
            raise ProtocolError(str(exc)) from exc
        return point_key(request.app, request.kwargs, config), config

    # ------------------------------------------------------------ evaluation
    @property
    def in_flight(self) -> int:
        return len(self._inflight)

    async def evaluate(self, request: "RunRequest",
                       timeout: float | None = None) -> PointReport:
        """Evaluate one point: cache → single-flight → execute.

        The order is the whole contract: an identical in-flight
        execution is joined *before* the cache is consulted (the flight
        will populate the cache anyway), a cached result short-circuits
        execution, and only a genuinely new key starts a simulation.
        Everything between the in-flight lookup and the table insert is
        synchronous, so two coroutines can never both miss and both
        submit the same key.
        """
        self.stats.points += 1
        key, _config = self.resolve(request)

        flight = self._inflight.get(key)
        if flight is not None:
            if key in self._batch_primary:
                self._batch_primary.discard(key)
                return await self._await_flight(flight, timeout)
            self.stats.coalesced += 1
            report = await self._await_flight(flight, timeout)
            return report.as_coalesced()

        if self.cache is not None:
            hit = self.cache.get(key)
            if hit is not None:
                self.stats.cache_hits += 1
                return PointReport(key, hit, cached=True)

        flight = asyncio.get_running_loop().create_task(
            self._execute(key, request))
        self._inflight[key] = flight
        return await self._await_flight(flight, timeout)

    async def _await_flight(self, flight: "asyncio.Task[PointReport]",
                            timeout: float | None) -> PointReport:
        # shield: a per-request timeout or client disconnect abandons
        # *this waiter*, never the shared computation — other coalesced
        # waiters keep their flight, and the result still reaches the
        # cache for the retry
        try:
            return await asyncio.wait_for(asyncio.shield(flight), timeout)
        except asyncio.TimeoutError:
            self.stats.timeouts += 1
            raise

    async def _execute(self, key: str, request: "RunRequest") -> PointReport:
        try:
            outcome: PointOutcome = await asyncio.wrap_future(
                self.executor.submit_one(request, self.base_config))
        finally:
            self._inflight.pop(key, None)
        if outcome.error is not None:
            self.stats.errors += 1
            raise PointExecutionError(key, outcome.error)
        self.stats.executed += 1
        if self.cache is not None:
            self.cache.put(key, outcome.result)
        return PointReport(key, outcome.result, elapsed=outcome.elapsed)

    # --------------------------------------------------------------- batching
    def batch_prefetch(self, specs: "list[RunRequest]") -> int:
        """Start group flights for a sweep's batchable points.

        With a batching executor (``repro-clustering serve --batch``),
        the sweep's fresh points — not in flight, not cached — are
        grouped by compiled-trace key and each group is dispatched once
        via :meth:`SweepExecutor.submit_group`.  Every member point is
        pre-registered in the single-flight table, so the per-point
        evaluations that follow (this sweep's own, and any concurrent
        ``/run`` for the same key) join the group's flight exactly like
        coalesced duplicates do.  Returns the number of points batched;
        a non-batching executor makes this a no-op.
        """
        if not getattr(self.executor, "batch", False):
            return 0
        fresh: list[tuple[str, "RunRequest"]] = []
        seen: set[str] = set()
        for spec in specs:
            key, _config = self.resolve(spec)
            if key in self._inflight or key in seen:
                continue
            if self.cache is not None and self.cache.get(key) is not None:
                continue
            seen.add(key)
            fresh.append((key, spec))
        if len(fresh) < 2:
            return 0

        from ..sim.batch.planner import BatchPlanner  # deferred: keep cheap

        plan = BatchPlanner().plan([s for _, s in fresh], self.base_config)
        self.executor.batch_stats.observe_plan(plan)
        loop = asyncio.get_running_loop()
        batched = 0
        for group in plan.groups:
            members = [fresh[p] for p in group.indices]
            future = self.executor.submit_group([s for _, s in members],
                                                self.base_config)
            shared = asyncio.wrap_future(future)
            for pos, (key, _spec) in enumerate(members):
                flight = loop.create_task(
                    self._execute_batched(key, pos, shared))
                self._inflight[key] = flight
                self._batch_primary.add(key)
                batched += 1
        return batched

    async def _execute_batched(self, key: str, pos: int,
                               shared: "asyncio.Future") -> PointReport:
        try:
            outcomes = await shared
        finally:
            self._inflight.pop(key, None)
            self._batch_primary.discard(key)
        outcome = outcomes[pos]
        if outcome.error is not None:
            self.stats.errors += 1
            raise PointExecutionError(key, outcome.error)
        self.stats.executed += 1
        if self.cache is not None:
            self.cache.put(key, outcome.result)
        return PointReport(key, outcome.result, elapsed=outcome.elapsed)

    # --------------------------------------------------------------- reports
    def stats_dict(self) -> dict[str, Any]:
        s = self.stats
        cache = None
        if self.cache is not None:
            cache = {"hits": self.cache.hits, "misses": self.cache.misses,
                     "directory": str(self.cache.directory)}
        return {
            "uptime_s": round(time.monotonic() - self.started_at, 3),
            "requests": s.requests,
            "points": s.points,
            "executed": s.executed,
            "cache_hits": s.cache_hits,
            "cache_hit_rate": round(s.cache_hits / s.points, 4)
            if s.points else 0.0,
            "coalesced": s.coalesced,
            "errors": s.errors,
            "timeouts": s.timeouts,
            "in_flight": self.in_flight,
            "result_cache": cache,
            "batch": {
                "enabled": bool(getattr(self.executor, "batch", False)),
                **self.executor.batch_stats.to_dict(),
            },
            "native": _native_status(),
            "trace_cache": _trace_cache_status(),
            "pool": {
                "backend": self.executor.backend,
                "max_workers": self.executor.max_workers,
                "warm": bool(self.executor.worker_pids()),
                "workers": self.executor.worker_pids(),
            },
        }

    async def drain(self, deadline: float | None) -> int:
        """Wait for in-flight points (up to ``deadline`` seconds).

        Returns how many flights were still pending at the deadline and
        got cancelled — 0 is the graceful outcome.
        """
        pending = [t for t in self._inflight.values() if not t.done()]
        if pending:
            await asyncio.wait(pending, timeout=deadline)
        stragglers = [t for t in self._inflight.values() if not t.done()]
        for task in stragglers:
            task.cancel()
        return len(stragglers)

    def close(self) -> None:
        """Shut the executor's worker pools down (idempotent)."""
        self.executor.close()


class ServiceDaemon:
    """Asyncio HTTP front end around a :class:`SweepService`."""

    def __init__(self, service: SweepService, host: str = "127.0.0.1",
                 port: int = 0, drain_deadline: float = 10.0) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.drain_deadline = drain_deadline
        self._server: asyncio.AbstractServer | None = None
        self._stopped: asyncio.Event | None = None
        self._stopping = False
        self._shutdown_task: asyncio.Task | None = None

    # ------------------------------------------------------------- lifecycle
    async def start(self) -> tuple[str, int]:
        """Bind and start serving; returns (host, actual port)."""
        self._stopped = asyncio.Event()
        self._stopping = False
        self._server = await asyncio.start_server(self._handle, self.host,
                                                  self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self.host, self.port

    async def stop(self, drain_deadline: float | None = None) -> None:
        """Graceful shutdown: stop accepting, drain, cancel, close pools."""
        if self._stopping:
            if self._stopped is not None:
                await self._stopped.wait()
            return
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        deadline = (self.drain_deadline if drain_deadline is None
                    else drain_deadline)
        await self.service.drain(deadline)
        self.service.close()
        if self._stopped is not None:
            self._stopped.set()

    async def wait_stopped(self) -> None:
        if self._stopped is not None:
            await self._stopped.wait()

    def run_blocking(self, announce: bool = False) -> int:
        """Serve until SIGINT/SIGTERM or ``POST /shutdown`` (CLI entry)."""
        import contextlib
        import signal
        import sys

        async def _main() -> None:
            host, port = await self.start()
            if announce:
                print(f"repro-clustering serve: listening on "
                      f"http://{host}:{port} "
                      f"(backend={self.service.executor.backend}, "
                      # `is not None`: an empty ResultCache is falsy (len 0)
                      f"cache="
                      f"{'on' if self.service.cache is not None else 'off'})",
                      file=sys.stderr)
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGINT, signal.SIGTERM):
                with contextlib.suppress(NotImplementedError):
                    loop.add_signal_handler(
                        sig, lambda: loop.create_task(self.stop()))
            await self.wait_stopped()

        try:
            asyncio.run(_main())
        except KeyboardInterrupt:  # platforms without signal handlers
            pass
        return 0

    # ------------------------------------------------------------ connection
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader)
                except HTTPParseError as exc:
                    send_json(writer, 400, error_body("bad-request", str(exc)))
                    await writer.drain()
                    break
                if request is None:
                    break
                self.service.stats.requests += 1
                close_after = await self._dispatch(request, writer)
                await writer.drain()
                if close_after or request.wants_close:
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass  # client went away (or we are shutting down): fine
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    # --------------------------------------------------------------- routing
    async def _dispatch(self, request: HTTPRequest,
                        writer: asyncio.StreamWriter) -> bool:
        """Route one request; returns True when the connection must close."""
        route = (request.method, request.path)
        try:
            if route == ("GET", "/healthz"):
                send_json(writer, 200, {
                    "status": "ok", "protocol": PROTOCOL_VERSION,
                    "in_flight": self.service.in_flight})
            elif route == ("GET", "/stats"):
                send_json(writer, 200, self.service.stats_dict())
            elif route == ("POST", "/resolve"):
                self._handle_resolve(request, writer)
            elif route == ("POST", "/run"):
                await self._handle_run(request, writer)
            elif route == ("POST", "/sweep"):
                return await self._handle_sweep(request, writer)
            elif route == ("POST", "/shutdown"):
                send_json(writer, 200, {
                    "ok": True, "draining": self.service.in_flight})
                # respond first, then stop: the task keeps a reference so
                # the shutdown survives this connection closing
                self._shutdown_task = asyncio.get_running_loop().create_task(
                    self.stop())
                return True
            elif request.path in ("/healthz", "/stats", "/resolve", "/run",
                                  "/sweep", "/shutdown"):
                send_json(writer, 405, error_body(
                    "method-not-allowed",
                    f"{request.method} is not supported on {request.path}"))
            else:
                send_json(writer, 404, error_body(
                    "not-found", f"no such endpoint {request.path!r}"))
        except (HTTPParseError, ProtocolError) as exc:
            send_json(writer, 400, error_body("bad-request", str(exc)))
        except PointExecutionError as exc:
            send_json(writer, 500, error_body("execution-error", exc.message))
        except asyncio.TimeoutError:
            send_json(writer, 504, error_body(
                "timeout", "the point did not finish within the "
                "request's deadline; it keeps running and will be "
                "served from cache when done"))
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 — last-resort 500, no trace
            send_json(writer, 500, error_body(
                "internal", f"{type(exc).__name__}: {exc}"))
        return False

    # -------------------------------------------------------------- handlers
    def _handle_resolve(self, request: HTTPRequest,
                        writer: asyncio.StreamWriter) -> None:
        spec, _timeout = decode_point_payload(request.json())
        key, config = self.service.resolve(spec)
        send_json(writer, 200, {"key": key,
                                "request": encode_run_request(spec),
                                "config": config.to_dict()})

    async def _handle_run(self, request: HTTPRequest,
                          writer: asyncio.StreamWriter) -> None:
        spec, timeout = decode_point_payload(request.json())
        report = await self.service.evaluate(spec, timeout=timeout)
        send_json(writer, 200, report.to_dict())

    async def _handle_sweep(self, request: HTTPRequest,
                            writer: asyncio.StreamWriter) -> bool:
        specs, timeout = decode_sweep_payload(request.json())
        for spec in specs:  # reject the whole grid before streaming any of it
            self.service.resolve(spec)
        # batching executor: dispatch trace-key groups up front; the
        # per-point evaluations below join their group's flight
        self.service.batch_prefetch(specs)

        async def one(index: int, spec: "RunRequest") -> dict[str, Any]:
            try:
                report = await self.service.evaluate(spec, timeout=timeout)
            except PointExecutionError as exc:
                return {"index": index,
                        **error_body("execution-error", exc.message)}
            except asyncio.TimeoutError:
                return {"index": index,
                        **error_body("timeout", "point deadline expired")}
            return {"index": index, **report.to_dict()}

        stream = JSONLineWriter(writer)
        stream.start(200)
        tasks = [asyncio.create_task(one(i, s)) for i, s in enumerate(specs)]
        try:
            for next_done in asyncio.as_completed(tasks):
                await stream.send(await next_done)
            await stream.finish()
        except ConnectionError:
            for task in tasks:
                task.cancel()
            raise
        # chunked responses end cleanly, so keep-alive would be legal —
        # but closing keeps client-side framing state trivially simple
        return True


class DaemonThread:
    """A daemon hosted on a background thread (tests, fixtures, embedding).

    Owns the full stack: builds the executor (and, with ``cache_dir``, a
    persistent result cache), runs an event loop on a dedicated thread,
    and tears everything down — drain, pool shutdown, loop close — in
    :meth:`stop`.  The ``serve_daemon`` pytest fixture wraps one of
    these so the whole service suite shares a single warm daemon.
    """

    def __init__(self, *, base_config: MachineConfig | None = None,
                 backend: str = "serial", max_workers: int | None = None,
                 cache_dir: Any = None, host: str = "127.0.0.1",
                 port: int = 0, drain_deadline: float = 10.0,
                 observer: Any = None, batch: bool = False) -> None:
        cache = None if cache_dir is None else ResultCache(cache_dir)
        self.executor = SweepExecutor(backend=backend,
                                      max_workers=max_workers,
                                      observer=observer, batch=batch)
        self.service = SweepService(self.executor, base_config=base_config,
                                    cache=cache)
        self.daemon = ServiceDaemon(self.service, host=host, port=port,
                                    drain_deadline=drain_deadline)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    # ------------------------------------------------------------- lifecycle
    def start(self, timeout: float = 30.0) -> "DaemonThread":
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-serve")
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("service daemon did not start in time")
        if self._startup_error is not None:
            raise RuntimeError("service daemon failed to start") \
                from self._startup_error
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self.daemon.start())
        except BaseException as exc:  # noqa: BLE001 — surfaced in start()
            self._startup_error = exc
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True))
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    def stop(self, drain_deadline: float | None = None,
             timeout: float = 30.0) -> None:
        if self._loop is None or self._thread is None:
            return
        if self._thread.is_alive():
            future = asyncio.run_coroutine_threadsafe(
                self.daemon.stop(drain_deadline), self._loop)
            future.result(timeout)
            self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout)
        if self._thread.is_alive():  # pragma: no cover — hung teardown
            raise RuntimeError("service daemon thread did not stop")
        self._loop = None
        self._thread = None

    # --------------------------------------------------------------- queries
    @property
    def port(self) -> int:
        return self.daemon.port

    @property
    def host(self) -> str:
        return self.daemon.host

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def worker_processes(self) -> list:
        """Live pool worker processes (for leak checks in teardown)."""
        return self.executor.worker_processes()

    def client(self, **kwargs: Any):
        """A blocking :class:`~repro.service.client.ServiceClient`."""
        from .client import ServiceClient  # deferred: keep import cheap

        return ServiceClient(host=self.host, port=self.port, **kwargs)
