"""Package version, in a foundation-layer module of its own.

Lives at the bottom of the layer DAG so that low layers needing the
version for cache keying (:mod:`repro.core.resultcache`,
:mod:`repro.sim.compiled`) can read it without importing the package
facade — ``repro/__init__`` sits at the *top* of the DAG, and reaching
up to it would invert the layering (enforced by
``tools/check_layering.py``).
"""

__version__ = "1.1.0"
