"""Persistent on-disk caches: simulation results and compiled traces.

Every sweep point the paper needs is a pure function of (package version,
application name, application kwargs, full :class:`MachineConfig`) — the
simulator is deterministic by construction — so finished points can be
memoized across processes and across invocations.  :class:`ResultCache`
stores each :class:`~repro.core.metrics.RunResult` as one JSON file named
by a SHA-256 content hash of exactly those inputs.

:class:`TraceStore` is the binary sibling used by the compiled-trace layer
(:mod:`repro.sim.compiled`): an opaque content-addressed blob store living
in a ``traces/`` subdirectory of the same cache root, with the same
location resolution, atomic writes, and corruption-degrades-to-miss
robustness rules.

Location resolution (first match wins):

1. an explicit ``directory`` argument (the CLI's ``--cache-dir``);
2. the ``REPRO_CACHE_DIR`` environment variable;
3. ``~/.cache/repro-clustering/``.

Robustness rules:

* a corrupted, truncated, or unreadable cache file is a **miss** — the
  point is re-run and the file rewritten, never a crash;
* writes are atomic (temp file + ``os.replace``) so a killed run cannot
  leave a truncated entry behind;
* the package version participates in the key, so upgrading the simulator
  invalidates every stale entry automatically.

``hits`` / ``misses`` counters accumulate over the cache's lifetime and are
reported by the CLI after each command.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Mapping

from .config import MachineConfig
from .metrics import RunResult

__all__ = ["ENV_CACHE_DIR", "ResultCache", "TraceStore", "default_cache_dir",
           "point_key"]

#: environment variable overriding the cache directory
ENV_CACHE_DIR = "REPRO_CACHE_DIR"

_DEFAULT_DIR = "~/.cache/repro-clustering"


def default_cache_dir() -> Path:
    """Cache directory honouring ``REPRO_CACHE_DIR``."""
    env = os.environ.get(ENV_CACHE_DIR)
    return Path(env if env else _DEFAULT_DIR).expanduser()


def _atomic_write(directory: Path, path: Path, data: bytes) -> None:
    """Atomically persist ``data`` at ``path`` (temp file + ``os.replace``).

    Storage failures (read-only filesystem, disk full) are swallowed: a
    cache that cannot write behaves like a cache that forgets.
    """
    try:
        directory.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
            os.replace(tmp, path)
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)
    except OSError:
        pass


def _package_version() -> str:
    from .._version import __version__

    return __version__


def point_key(app: str, app_kwargs: Mapping[str, Any],
              config: MachineConfig, version: str | None = None) -> str:
    """Content hash identifying one sweep point.

    The hash covers the package version, the application name, its problem
    kwargs, and the *complete* machine configuration
    (:meth:`MachineConfig.to_dict`), so any input that could change the
    simulation outcome changes the key.
    """
    payload = {
        "version": _package_version() if version is None else version,
        "app": app,
        "app_kwargs": dict(app_kwargs),
        "config": config.to_dict(),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """Content-addressed store of :class:`RunResult` JSON files.

    Parameters
    ----------
    directory:
        Storage root; ``None`` resolves via :func:`default_cache_dir`.
    """

    def __init__(self, directory: str | Path | None = None) -> None:
        self.directory = (Path(directory).expanduser() if directory
                          else default_cache_dir())
        self.hits = 0
        self.misses = 0

    # ----------------------------------------------------------------- keys
    def key(self, app: str, app_kwargs: Mapping[str, Any],
            config: MachineConfig) -> str:
        """Cache key for one (app, kwargs, machine) point."""
        return point_key(app, app_kwargs, config)

    def path_for(self, key: str) -> Path:
        """On-disk location of a key's entry."""
        return self.directory / f"{key}.json"

    # -------------------------------------------------------------- get/put
    def get(self, key: str) -> RunResult | None:
        """Stored result for ``key``, or ``None`` (counted as a miss).

        Any failure to read or parse the entry — missing file, truncated
        write from a killed process, hand-edited garbage — degrades to a
        miss; the caller re-runs the point and :meth:`put` overwrites the
        bad entry.
        """
        path = self.path_for(key)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            result = RunResult.from_dict(payload["result"])
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, result: RunResult) -> None:
        """Atomically persist ``result`` under ``key``.

        Storage failures (read-only filesystem, disk full) are swallowed:
        a cache that cannot write behaves like a cache that forgets.
        """
        payload = {"key": key, "result": result.to_dict()}
        text = json.dumps(payload, sort_keys=True)
        _atomic_write(self.directory, self.path_for(key),
                      text.encode("utf-8"))

    # ------------------------------------------------------------- plumbing
    def __contains__(self, key: str) -> bool:
        return self.path_for(key).is_file()

    def __len__(self) -> int:
        try:
            return sum(1 for _ in self.directory.glob("*.json"))
        except OSError:
            return 0

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in self.directory.glob("*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def stats(self) -> str:
        """``'N hits, M misses'`` summary for logs."""
        return f"{self.hits} hits, {self.misses} misses"

    def __repr__(self) -> str:  # pragma: no cover
        return (f"ResultCache({str(self.directory)!r}, hits={self.hits}, "
                f"misses={self.misses})")


class TraceStore:
    """Content-addressed store of opaque binary blobs (compiled traces).

    Lives in a subdirectory of the cache root so ``ResultCache`` JSON
    entries and trace blobs never collide and can be cleared independently.
    Decoding is the caller's business (:mod:`repro.sim.compiled` adds a
    checksum and treats undecodable blobs as misses); this class only
    guarantees the same robustness rules as :class:`ResultCache` — reads
    never raise, writes are atomic, storage failures are swallowed.

    Parameters
    ----------
    directory:
        Cache **root**; ``None`` resolves via :func:`default_cache_dir`.
        Blobs live under ``<root>/<subdir>/``.
    subdir:
        Subdirectory name (default ``"traces"``).
    """

    SUFFIX = ".trace"

    def __init__(self, directory: str | Path | None = None,
                 subdir: str = "traces") -> None:
        root = (Path(directory).expanduser() if directory
                else default_cache_dir())
        self.directory = root / subdir
        self.hits = 0
        self.misses = 0

    def path_for(self, key: str) -> Path:
        """On-disk location of a key's blob."""
        return self.directory / f"{key}{self.SUFFIX}"

    def get_bytes(self, key: str) -> bytes | None:
        """Stored blob for ``key``, or ``None`` (counted as a miss)."""
        try:
            blob = self.path_for(key).read_bytes()
        except OSError:
            self.misses += 1
            return None
        self.hits += 1
        return blob

    def put_bytes(self, key: str, data: bytes) -> None:
        """Atomically persist ``data`` under ``key`` (failures swallowed)."""
        _atomic_write(self.directory, self.path_for(key), data)

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).is_file()

    def __len__(self) -> int:
        try:
            return sum(1 for _ in self.directory.glob(f"*{self.SUFFIX}"))
        except OSError:
            return 0

    def clear(self) -> int:
        """Delete every blob; returns the number removed."""
        removed = 0
        for path in self.directory.glob(f"*{self.SUFFIX}"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def stats(self) -> str:
        """``'N hits, M misses'`` summary for logs."""
        return f"{self.hits} hits, {self.misses} misses"

    def __repr__(self) -> str:  # pragma: no cover
        return (f"TraceStore({str(self.directory)!r}, hits={self.hits}, "
                f"misses={self.misses})")
