"""Sweep execution engine: serial or multi-process, with result caching.

Every figure and table of the paper is a grid of *fully independent*
simulations, so the sweep harness — not the simulator — decides wall-clock
time.  :class:`SweepExecutor` evaluates an iterable of
:class:`PointSpec`\\ s (``(app, cluster_size, cache_kb, app_kwargs)``) with
a pluggable backend:

* ``serial``  — in-process, point after point (the default; identical to
  the historical behaviour of :class:`~repro.core.study.ClusteringStudy`);
* ``process`` — fan-out over a ``concurrent.futures.ProcessPoolExecutor``
  with ``max_workers`` control and a per-point ``timeout``;
* ``fork``    — the process backend in **fork-server mode** (Linux/POSIX
  only): the pool is created with the ``multiprocessing`` *fork* start
  method after the parent has preloaded every disk-resident compiled
  trace — decoded programs **and** their materialised replay columns —
  into the process-wide LRU, so workers inherit warm state copy-on-write
  instead of each re-reading and re-decompressing the on-disk
  :class:`~repro.core.resultcache.TraceStore` per point.

Guarantees:

* **Determinism** — the simulator is seeded and side-effect free, so both
  backends produce byte-identical :class:`RunResult`\\ s for the same spec
  (covered by ``tests/test_determinism.py``).
* **Failure isolation** — one diverging or crashing point yields a
  :class:`PointOutcome` carrying the error; the other points of the sweep
  still complete.  Callers that want the historical fail-fast behaviour
  raise :class:`SweepExecutionError` via :func:`raise_failures`.
* **Transparent memoization** — with a
  :class:`~repro.core.resultcache.ResultCache` attached, finished points
  are served from disk and fresh points are written back, keyed by content
  hash of (version, app, kwargs, full machine config).
* **Trace reuse** — points are evaluated through the compiled-trace layer
  (:mod:`repro.sim.compiled`) by default: the app's reference stream is
  captured once per (app, kwargs, seed, processor-count/line-size) and
  replayed at every other point of the grid — cluster size, cache size,
  and network model do not invalidate it.  Replay is bit-identical to
  generator execution.  The in-memory tier is process-wide; attach a
  :class:`~repro.core.resultcache.TraceStore`-backed cache to share traces
  across ``--jobs`` worker processes and CLI invocations via disk.
"""

from __future__ import annotations

import time
import traceback
import warnings
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Sequence

from ..runtime.hooks import RunObserver
from ..runtime.plan import RunRequest
from .config import MachineConfig
from .metrics import RunResult
from .resultcache import ResultCache

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.batch.runner import BatchStats
    from ..sim.compiled import TraceCache

__all__ = ["BACKENDS", "PointSpec", "PointOutcome", "SweepExecutor",
           "SweepExecutionError", "as_point_spec", "evaluate_point",
           "fork_available", "raise_failures"]

#: the recognised execution backends
BACKENDS = ("serial", "process", "fork")


def fork_available() -> bool:
    """Whether the ``fork`` backend can run on this platform."""
    import multiprocessing

    return "fork" in multiprocessing.get_all_start_methods()


#: the canonical sweep-point type now lives in :mod:`repro.runtime.plan`;
#: the historical name remains the supported spelling at this layer
PointSpec = RunRequest


def as_point_spec(obj: Any) -> PointSpec:
    """Return ``obj`` as a :class:`PointSpec` (= :class:`RunRequest`).

    Loose ``(app, cluster, cache[, kwargs])`` tuples are still coerced
    for now, but that spelling is deprecated: build requests explicitly
    with :meth:`PointSpec.make` instead, which validates eagerly and
    keeps sweep construction greppable.
    """
    if isinstance(obj, PointSpec):
        return obj
    if isinstance(obj, (tuple, list)) and len(obj) in (3, 4):
        warnings.warn(
            "passing loose (app, cluster, cache[, kwargs]) sequences as "
            "sweep points is deprecated; build a PointSpec/RunRequest with "
            "PointSpec.make(...)", DeprecationWarning, stacklevel=3)
        app, cluster_size, cache_kb = obj[0], obj[1], obj[2]
        kwargs = obj[3] if len(obj) == 4 else None
        return PointSpec.make(app, cluster_size, cache_kb, kwargs)
    raise TypeError(
        f"cannot interpret {obj!r} as a sweep point; expected PointSpec or "
        f"(app, cluster_size, cache_kb[, app_kwargs])")


@dataclass
class PointOutcome:
    """What happened to one dispatched point.

    Exactly one of ``result`` / ``error`` is set.  ``cached`` marks results
    served from the persistent cache; ``elapsed`` is the evaluation
    wall-clock in seconds (0.0 for cache hits).
    """

    spec: PointSpec
    result: RunResult | None = None
    error: str | None = None
    cached: bool = False
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None


class SweepExecutionError(RuntimeError):
    """One or more sweep points failed; carries every failed outcome."""

    def __init__(self, failures: Sequence[PointOutcome]) -> None:
        self.failures = list(failures)
        lines = [f"{len(self.failures)} sweep point(s) failed:"]
        for f in self.failures:
            first = (f.error or "").strip().splitlines()
            lines.append(f"  - {f.spec.describe()}: "
                         f"{first[-1] if first else 'unknown error'}")
        super().__init__("\n".join(lines))


def evaluate_point(spec: PointSpec, base_config: MachineConfig,
                   trace_cache: "TraceCache | None" = None,
                   use_compiled: bool = True,
                   observer: RunObserver | None = None) -> RunResult:
    """Run one point to completion (the process-pool worker function).

    Builds a fresh application instance so every configuration solves the
    identical, deterministically-seeded problem.  With ``use_compiled``
    (the default) the reference stream is captured into a
    :class:`~repro.sim.compiled.CompiledProgram` and replayed — served from
    ``trace_cache`` when one is attached, so grid neighbours sharing the
    same stream skip generation entirely.  Setup always runs: data
    placement depends on cluster geometry even though the stream does not.

    This is a thin wrapper over the canonical
    :class:`~repro.runtime.session.RunSession` pipeline; it exists so the
    process-pool workers have a picklable module-level entry point.
    """
    from ..runtime.session import RunSession  # deferred: avoids import cycle

    session = RunSession(base_config=base_config, trace_cache=trace_cache,
                         use_compiled=use_compiled, observer=observer)
    return session.run(spec)


def _evaluate_timed(spec: PointSpec, base_config: MachineConfig,
                    trace_cache: "TraceCache | None" = None,
                    use_compiled: bool = True,
                    observer: RunObserver | None = None
                    ) -> tuple[RunResult, float]:
    t0 = time.perf_counter()
    result = evaluate_point(spec, base_config, trace_cache, use_compiled,
                            observer)
    return result, time.perf_counter() - t0


def _evaluate_group_timed(specs: Sequence[PointSpec],
                          base_config: MachineConfig,
                          trace_cache: "TraceCache | None" = None,
                          observer: RunObserver | None = None):
    """Run one batch group (the process-pool group worker function).

    Returns ``(items, counters)`` where ``items`` are the per-point
    :class:`~repro.sim.batch.runner.BatchItem`\\ s in input order and
    ``counters`` carries the group's native/fused/fallback kernel split
    back across the pickle boundary for the parent's :class:`BatchStats`.
    """
    from ..sim.batch.runner import BatchStats, run_group  # deferred: cycle

    stats = BatchStats()
    items = run_group(specs, base_config, trace_cache, observer, stats)
    return items, {"native_points": stats.native_points,
                   "fused_points": stats.fused_points,
                   "fallback_points": stats.fallback_points}


def raise_failures(outcomes: Iterable[PointOutcome]) -> None:
    """Raise :class:`SweepExecutionError` if any outcome failed."""
    failures = [o for o in outcomes if not o.ok]
    if failures:
        raise SweepExecutionError(failures)


@dataclass
class SweepExecutor:
    """Evaluates sweep points with a configurable backend and cache.

    Parameters
    ----------
    backend:
        ``"serial"`` (default), ``"process"``, or ``"fork"`` (the process
        backend in fork-server mode — POSIX only; the first ``run`` call
        preloads disk-resident traces in the parent, then forks workers
        that inherit them copy-on-write).
    max_workers:
        Process-pool width; ``None`` lets the pool pick (CPU count).
        Ignored by the serial backend.
    timeout:
        Per-point wall-clock limit in seconds.  Enforced by the process
        backend (a late point becomes an error outcome, the rest of the
        sweep survives; its worker finishes the stale computation in the
        background).  The serial backend cannot preempt a running
        simulation and ignores it.
    cache:
        Optional :class:`ResultCache`.  ``None`` disables both reads and
        writes (the CLI's ``--no-cache``).
    trace_cache:
        Compiled-trace cache (:class:`~repro.sim.compiled.TraceCache`).
        ``None`` (the default) builds an LRU-only cache — traces are
        reused within the process but not persisted; pass a
        :class:`~repro.core.resultcache.TraceStore`-backed cache to share
        across processes and invocations.  Ignored when ``use_compiled``
        is off.
    use_compiled:
        Evaluate points by compiled-trace replay (default).  Off = drive
        the generators directly on every point, the historical behaviour
        (bit-identical, only slower).
    observer:
        Optional :class:`~repro.runtime.hooks.RunObserver` attached to
        every in-process evaluation (serial backend and
        :meth:`submit_one`'s thread path).  Worker *processes* never see
        it — hook state could not come back across the pickle boundary —
        so the process/fork backends ignore it.  Observed runs are
        bit-identical to detached ones (the runtime parity suite pins
        this), so attaching a counter or timer never perturbs results.
    batch:
        Evaluate sweeps in **batched lockstep replay** mode (the CLI's
        ``--batch``): a :class:`~repro.sim.batch.planner.BatchPlanner`
        groups the pending points by compiled-trace key and each group
        runs through the fused replay kernel over one shared decode of
        its trace (:mod:`repro.sim.batch`).  Dynamic apps and lone trace
        keys fall through to the per-point path.  Composes with the
        process/fork backends by sharding *groups* across workers.
        Results are byte-identical to per-point execution; only
        wall-clock changes.  Requires ``use_compiled``.  The per-point
        ``timeout`` is scaled by group size (a group is one dispatch).
    native:
        Replay-kernel selection (the CLI's ``--native/--no-native``):
        ``True`` forces the native C kernel (raising up front when it
        cannot be built), ``False`` forces pure python, ``None`` (the
        default) leaves the process-wide auto-detection — native when a
        compiler or cached artifact exists — untouched.  The selection
        is written to the ``REPRO_NATIVE`` environment variable so
        process/fork workers inherit it.  Byte-identical either way.
    """

    backend: str = "serial"
    max_workers: int | None = None
    timeout: float | None = None
    cache: ResultCache | None = field(default=None, repr=False)
    trace_cache: "TraceCache | None" = field(default=None, repr=False)
    use_compiled: bool = True
    observer: RunObserver | None = field(default=None, repr=False)
    batch: bool = False
    native: bool | None = None
    #: batch counters (groups formed, batched vs fallthrough points,
    #: fused vs fallback replays) accumulated across every run/submit
    batch_stats: "BatchStats" = field(default=None, init=False,  # type: ignore[assignment]
                                      repr=False, compare=False)
    # the process pool outlives individual run() calls: worker startup
    # (interpreter + numpy import) costs ~1s, which would otherwise be
    # paid again by every figure's sweep in a multi-figure command
    _pool: ProcessPoolExecutor | None = field(default=None, init=False,
                                              repr=False, compare=False)
    # lazily-created thread pool backing submit_one() under the serial
    # backend: the simulator is pure python (GIL-bound), so threads add
    # no parallelism — they exist to give callers a non-blocking handle
    _threads: ThreadPoolExecutor | None = field(default=None, init=False,
                                                repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; choose from {BACKENDS}")
        if self.backend == "fork" and not fork_available():
            raise ValueError(
                "the fork backend needs the 'fork' start method, which this "
                "platform does not provide; use backend='process'")
        if self.max_workers is not None and self.max_workers < 1:
            raise ValueError("max_workers must be positive or None")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive or None")
        if self.batch and not self.use_compiled:
            raise ValueError(
                "batched execution replays compiled traces; it cannot be "
                "combined with use_compiled=False")
        if self.native is not None:
            import repro.native as _native  # deferred: keep import light

            _native.set_native(self.native)
            if self.native:
                _native.kernel()  # force-on must fail here, not mid-sweep
        if self.use_compiled and self.trace_cache is None:
            from ..sim.compiled import TraceCache  # deferred: import cycle

            self.trace_cache = TraceCache()
        from ..sim.batch.runner import BatchStats  # deferred: import cycle

        self.batch_stats = BatchStats()

    # ------------------------------------------------------------------ API
    def run(self, specs: Iterable[Any],
            base_config: MachineConfig | None = None) -> list[PointOutcome]:
        """Evaluate every spec; outcomes come back in input order.

        Cache hits are resolved up front; only misses are dispatched to the
        backend.  Identical pending specs are evaluated once — the first
        occurrence runs, the duplicates share its :class:`RunResult`
        object (``elapsed`` 0.0).  A point that raises (or times out
        under the process backend) produces an error outcome instead of
        aborting the sweep.
        """
        base = base_config or MachineConfig()
        specs = [as_point_spec(s) for s in specs]
        outcomes: list[PointOutcome | None] = [None] * len(specs)
        keys: list[str | None] = [None] * len(specs)

        pending: list[int] = []
        for i, spec in enumerate(specs):
            if self.cache is not None:
                keys[i] = self.cache.key(spec.app, spec.kwargs,
                                         spec.config_for(base))
                hit = self.cache.get(keys[i])
                if hit is not None:
                    outcomes[i] = PointOutcome(spec, result=hit, cached=True)
                    continue
            pending.append(i)

        # dedupe before submission: RunRequest is frozen and hashable, so
        # two identical specs in one sweep (same app, geometry, kwargs,
        # network) collapse into one evaluation even with the result
        # cache off; only unique points reach the backend
        primary_of: dict[PointSpec, int] = {}
        duplicate_of: dict[int, int] = {}
        unique: list[int] = []
        for i in pending:
            j = primary_of.setdefault(specs[i], i)
            if j == i:
                unique.append(i)
            else:
                duplicate_of[i] = j

        if unique:
            if self.batch:
                self._run_batched(specs, unique, base, outcomes)
            elif self.backend == "fork":
                # fork-server mode: warm the trace LRU before the pool
                # exists so the forked workers inherit it copy-on-write
                if self._pool is None:
                    self.preload_traces([specs[i] for i in unique], base)
                self._run_process(specs, unique, base, outcomes)
            elif self.backend == "process":
                self._run_process(specs, unique, base, outcomes)
            else:
                self._run_serial(specs, unique, base, outcomes)

        for i, j in duplicate_of.items():
            src = outcomes[j]
            if src is not None:
                outcomes[i] = PointOutcome(specs[i], result=src.result,
                                           error=src.error, cached=src.cached,
                                           elapsed=0.0)

        if self.cache is not None:
            for i in unique:
                out = outcomes[i]
                if out is not None and out.ok and out.result is not None:
                    self.cache.put(keys[i], out.result)
        return [o for o in outcomes if o is not None]

    def run_one(self, spec: Any,
                base_config: MachineConfig | None = None) -> PointOutcome:
        """Evaluate a single point (always serial, still cached)."""
        base = base_config or MachineConfig()
        spec = as_point_spec(spec)
        key = None
        if self.cache is not None:
            key = self.cache.key(spec.app, spec.kwargs,
                                 spec.config_for(base))
            hit = self.cache.get(key)
            if hit is not None:
                return PointOutcome(spec, result=hit, cached=True)
        outcome = self._evaluate_isolated(spec, base)
        if key is not None and outcome.ok and outcome.result is not None:
            self.cache.put(key, outcome.result)
        return outcome

    # ------------------------------------------------------------- backends
    def _evaluate_isolated(self, spec: PointSpec,
                           base: MachineConfig) -> PointOutcome:
        try:
            result, elapsed = _evaluate_timed(spec, base, self.trace_cache,
                                              self.use_compiled, self.observer)
        except Exception:
            return PointOutcome(spec, error=traceback.format_exc())
        return PointOutcome(spec, result=result, elapsed=elapsed)

    def _run_serial(self, specs: list[PointSpec], pending: list[int],
                    base: MachineConfig,
                    outcomes: list[PointOutcome | None]) -> None:
        for i in pending:
            outcomes[i] = self._evaluate_isolated(specs[i], base)

    def _run_batched(self, specs: list[PointSpec], pending: list[int],
                     base: MachineConfig,
                     outcomes: list[PointOutcome | None]) -> None:
        """Plan trace-key groups and dispatch them to the backend.

        Groups run through :func:`~repro.sim.batch.runner.run_group` —
        in-process under the serial backend, one pool task per group
        under process/fork (groups shard across workers; points of one
        group share a worker so they share the decode).  Fallthrough
        singles take the exact per-point path they always did.
        """
        from ..sim.batch.planner import BatchPlanner  # deferred: cycle

        plan = BatchPlanner().plan([specs[i] for i in pending], base)
        self.batch_stats.observe_plan(plan)
        singles = [pending[p] for p in plan.singles]
        groups = [[pending[p] for p in g.indices] for g in plan.groups]

        if self.backend in ("process", "fork"):
            if self.backend == "fork" and self._pool is None:
                self.preload_traces([specs[i] for i in pending], base)
            if singles:
                self._run_process(specs, singles, base, outcomes)
            self._run_groups_process(specs, groups, base, outcomes)
        else:
            from ..sim.batch.runner import run_group  # deferred: cycle

            if singles:
                # fallthrough points get no shared decode, but the serial
                # backend still replays them through the fused interpreter
                # (a dynamic app's recorded trace fuses exactly like a
                # batched one); stats=None keeps the fused/fallback
                # counters meaning "points served from a group replay"
                sspecs = [specs[i] for i in singles]
                try:
                    items = run_group(sspecs, base, self.trace_cache,
                                      self.observer, stats=None)
                except Exception:
                    self._run_serial(specs, singles, base, outcomes)
                else:
                    for i, item in zip(singles, items):
                        outcomes[i] = PointOutcome(
                            specs[i], result=item.result, error=item.error,
                            elapsed=item.elapsed)

            for group in groups:
                gspecs = [specs[i] for i in group]
                try:
                    items = run_group(gspecs, base, self.trace_cache,
                                      self.observer, self.batch_stats)
                except Exception:
                    err = traceback.format_exc()
                    for i in group:
                        outcomes[i] = PointOutcome(specs[i], error=err)
                else:
                    for i, item in zip(group, items):
                        outcomes[i] = PointOutcome(
                            specs[i], result=item.result, error=item.error,
                            elapsed=item.elapsed)

    def _run_groups_process(self, specs: list[PointSpec],
                            groups: list[list[int]], base: MachineConfig,
                            outcomes: list[PointOutcome | None]) -> None:
        if not groups:
            return
        pool = self._process_pool()
        futures = [(group, pool.submit(_evaluate_group_timed,
                                       [specs[i] for i in group], base,
                                       self.trace_cache))
                   for group in groups]
        for group, future in futures:
            # one group is one dispatch: the per-point budget scales
            timeout = (None if self.timeout is None
                       else self.timeout * len(group))
            try:
                items, counters = future.result(timeout=timeout)
            except _FuturesTimeout:
                future.cancel()
                for i in group:
                    outcomes[i] = PointOutcome(
                        specs[i],
                        error=f"batch group timed out after {timeout:g}s")
            except Exception as exc:
                if isinstance(exc, BrokenProcessPool):
                    self.close()
                err = self._exc_text(exc)
                for i in group:
                    outcomes[i] = PointOutcome(specs[i], error=err)
            else:
                self._merge_counters(counters)
                for i, item in zip(group, items):
                    outcomes[i] = PointOutcome(
                        specs[i], result=item.result, error=item.error,
                        elapsed=item.elapsed)

    def submit_group(self, specs: Sequence[Any],
                     base_config: MachineConfig | None = None
                     ) -> "Future[list[PointOutcome]]":
        """Dispatch one batch group; resolves to outcomes in input order.

        The group-shaped sibling of :meth:`submit_one` (the service
        daemon's ``/sweep`` batching path): the returned future always
        resolves to one :class:`PointOutcome` per spec — a failing point
        (or a dead worker) becomes error outcomes, never an exception on
        the future.  Like :meth:`submit_one`, neither the result cache
        nor ``timeout`` is consulted; the caller owns both.
        """
        base = base_config or MachineConfig()
        specs = [as_point_spec(s) for s in specs]
        out: "Future[list[PointOutcome]]" = Future()
        try:
            if self.backend in ("process", "fork"):
                inner = self._process_pool().submit(
                    _evaluate_group_timed, specs, base, self.trace_cache)
            else:
                inner = self._thread_pool().submit(
                    _evaluate_group_timed, specs, base, self.trace_cache,
                    self.observer)
        except Exception as exc:
            if isinstance(exc, BrokenProcessPool):
                self.close()
            err = self._exc_text(exc)
            out.set_result([PointOutcome(s, error=err) for s in specs])
            return out

        def _done(f: Future) -> None:
            try:
                items, counters = f.result()
            except BaseException as exc:  # noqa: BLE001 — becomes outcomes
                if isinstance(exc, BrokenProcessPool):
                    self.close()
                err = self._exc_text(exc)
                result = [PointOutcome(s, error=err) for s in specs]
            else:
                self._merge_counters(counters)
                result = [PointOutcome(s, result=it.result, error=it.error,
                                       elapsed=it.elapsed)
                          for s, it in zip(specs, items)]
            if not out.cancelled():
                try:
                    out.set_result(result)
                except Exception:  # pragma: no cover — racing cancellation
                    pass

        inner.add_done_callback(_done)
        return out

    def submit_one(self, spec: Any,
                   base_config: MachineConfig | None = None
                   ) -> "Future[PointOutcome]":
        """Dispatch one point; returns a future resolving to its outcome.

        The async-friendly single-point API (the sweep-service daemon's
        execution path): the returned :class:`concurrent.futures.Future`
        always resolves to a :class:`PointOutcome` — evaluation failures
        become error outcomes, never exceptions on the future.  Process
        and fork backends submit to the shared worker pool; the serial
        backend runs on a lazily-created thread (same process, so an
        attached :attr:`observer` hears the run).

        Unlike :meth:`run_one`, neither the result cache nor the
        per-point ``timeout`` is consulted: the caller owns memoization,
        coalescing, and deadlines (the daemon implements all three on
        top of this primitive).
        """
        base = base_config or MachineConfig()
        spec = as_point_spec(spec)
        out: "Future[PointOutcome]" = Future()
        try:
            if self.backend in ("process", "fork"):
                inner = self._process_pool().submit(
                    _evaluate_timed, spec, base, self.trace_cache,
                    self.use_compiled)
            else:
                inner = self._thread_pool().submit(
                    _evaluate_timed, spec, base, self.trace_cache,
                    self.use_compiled, self.observer)
        except Exception as exc:  # e.g. submitting to an already-broken pool
            if isinstance(exc, BrokenProcessPool):
                self.close()
            out.set_result(PointOutcome(spec, error=self._exc_text(exc)))
            return out

        def _done(f: Future) -> None:
            try:
                result, elapsed = f.result()
            except BaseException as exc:  # noqa: BLE001 — becomes an outcome
                if isinstance(exc, BrokenProcessPool):
                    # a dead worker poisons the pool; reopen it next submit
                    self.close()
                outcome = PointOutcome(spec, error=self._exc_text(exc))
            else:
                outcome = PointOutcome(spec, result=result, elapsed=elapsed)
            if not out.cancelled():
                try:
                    out.set_result(outcome)
                except Exception:  # pragma: no cover — racing cancellation
                    pass

        inner.add_done_callback(_done)
        return out

    def _merge_counters(self, counters: dict) -> None:
        """Fold one group worker's kernel split into :attr:`batch_stats`."""
        self.batch_stats.native_points += counters.get("native_points", 0)
        self.batch_stats.fused_points += counters["fused_points"]
        self.batch_stats.fallback_points += counters["fallback_points"]

    @staticmethod
    def _exc_text(exc: BaseException) -> str:
        return ("".join(traceback.format_exception_only(type(exc), exc))
                .strip() or repr(exc))

    def worker_processes(self) -> list:
        """The pool's live worker processes (empty for serial/thread)."""
        pool = self._pool
        if pool is None:
            return []
        return list(getattr(pool, "_processes", {}).values())

    def worker_pids(self) -> list[int]:
        """PIDs of the pool's worker processes (empty for serial/thread)."""
        return [p.pid for p in self.worker_processes() if p.pid is not None]

    def close(self) -> None:
        """Shut down the worker pools (idempotent; a later run reopens them)."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        if self._threads is not None:
            self._threads.shutdown(wait=False, cancel_futures=True)
            self._threads = None

    def __enter__(self) -> "SweepExecutor":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def preload_traces(self, specs: Iterable[Any],
                       base_config: MachineConfig | None = None) -> int:
        """Warm the in-memory trace tier for ``specs`` in *this* process.

        Fork-server preparation: resolves each spec's trace key, pulls
        every disk-resident compiled program into the process-wide LRU
        (:meth:`TraceCache.preload` — no hit/miss accounting) and
        materialises its replay columns, so a pool forked afterwards
        inherits ready-to-replay traces copy-on-write.  Traces that are
        neither in memory nor on disk are left for the workers to compile
        on demand — preloading never generates streams.  Returns the
        number of programs made resident.
        """
        if not self.use_compiled or self.trace_cache is None:
            return 0
        from ..apps.registry import build_app  # deferred: import cycle
        from ..sim.compiled import trace_key  # deferred: import cycle

        base = base_config or MachineConfig()
        seen: set[str] = set()
        resident = 0
        for spec in map(as_point_spec, specs):
            config = spec.config_for(base)
            app = build_app(spec.app, config, **spec.kwargs)
            key = trace_key(spec.app, spec.kwargs, config, app.seed,
                            stream_invariant=app.stream_invariant)
            if key in seen:
                continue
            seen.add(key)
            program = self.trace_cache.preload(key)
            if program is not None:
                program.runtime_columns()
                resident += 1
        return resident

    def _thread_pool(self) -> ThreadPoolExecutor:
        if self._threads is None:
            self._threads = ThreadPoolExecutor(
                max_workers=self.max_workers or 1,
                thread_name_prefix="repro-point")
        return self._threads

    def _process_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            mp_context = None
            if self.backend == "fork":
                import multiprocessing

                mp_context = multiprocessing.get_context("fork")
            self._pool = ProcessPoolExecutor(max_workers=self.max_workers,
                                             mp_context=mp_context)
        return self._pool

    def _run_process(self, specs: list[PointSpec], pending: list[int],
                     base: MachineConfig,
                     outcomes: list[PointOutcome | None]) -> None:
        pool = self._process_pool()
        # the TraceCache pickles cheaply (the LRU is module state, the
        # store carries only a path); each worker re-hydrates its own
        # in-memory tier and shares compilations with siblings via disk
        futures = {i: pool.submit(_evaluate_timed, specs[i], base,
                                  self.trace_cache, self.use_compiled)
                   for i in pending}
        for i, future in futures.items():
            try:
                result, elapsed = future.result(timeout=self.timeout)
            except _FuturesTimeout:
                future.cancel()
                outcomes[i] = PointOutcome(
                    specs[i],
                    error=f"timed out after {self.timeout:g}s")
            except Exception as exc:
                if isinstance(exc, BrokenProcessPool):
                    # a dead worker poisons the pool; reopen it next run
                    self.close()
                outcomes[i] = PointOutcome(
                    specs[i],
                    error="".join(traceback.format_exception_only(
                        type(exc), exc)).strip() or repr(exc))
            else:
                outcomes[i] = PointOutcome(specs[i], result=result,
                                           elapsed=elapsed)
