"""Engine throughput and sweep benchmarking (``repro-clustering bench``).

Four measurements, all written to ``BENCH_engine.json``:

* **Engine throughput** (:func:`bench_engine`) — simulated operations per
  second for one application on one machine, along three paths: the
  legacy engine path (generator execution, heap fast path off — the
  closest in-tree stand-in for the pre-optimization engine), the current
  generator path (heap fast path on), and compiled-trace replay.  The
  replay/legacy ratio is the per-run speedup of this package's
  compiled-trace layer.
* **End-to-end sweep** (:func:`bench_sweep`) — wall-clock for an
  apps × cluster-sizes grid in four modes: ``legacy`` (fast path off),
  ``generator`` (fast path only), ``cold`` (compiled execution, empty
  trace cache) and ``warm`` (trace cache pre-populated).  ``cold`` pays
  one capture per app; ``warm`` replays everything.
* **Memory-system microbench** (:func:`bench_memory`) — protocol
  operations per second of the coherence layer alone, on synthetic
  streams that isolate the three hot paths of the slab-allocated memory
  core: pure cache hits, capacity eviction/refill, and cross-cluster
  sharing (directory invalidations).  No engine, no applications — this
  is the number the kernelized cache/directory state layout moves.
* **Jobs backend comparison** (:func:`bench_jobs`) — wall-clock for a
  multi-process sweep under the ``process`` backend vs the ``fork``
  backend (fork-server mode: traces preloaded in the parent, inherited
  copy-on-write), pool startup included.  POSIX only; on platforms
  without ``fork`` the comparison is skipped.
* **Trace streaming A/B** (:func:`bench_trace`) — decode latency,
  first-point latency and peak RSS of one pre-captured paper-scale trace
  consumed *materialized* (``REPRO_TRACE_MMAP=0``: full read + boxed
  columns) vs *memory-mapped* (chunked streaming windows / zero-copy
  native columns).  Each mode runs in a fresh subprocess because peak
  RSS (``ru_maxrss``) is process-lifetime-maximal — two modes sharing a
  process would see each other's high-water mark.

Note the in-tree ``legacy`` mode still benefits from shared-path work
(coherence inlining, scheduling-loop restructure), so replay/legacy
ratios *understate* the speedup over historical releases; cross-version
comparisons belong in the ``extra`` section of the report.

The JSON layout is stable (``schema`` key) so CI can diff runs; the
:func:`check_floor` helper enforces a checked-in throughput floor
(``benchmarks/perf/floor.json``) with a relative tolerance, which is what
the CI bench smoke step fails on.

Timing uses ``time.perf_counter`` around complete engine runs; problem
setup (allocation, placement, input generation) is excluded from the
per-engine numbers but *included* in the sweep numbers — a sweep user
waits for setup too.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from .config import MachineConfig
from .executor import PointSpec, evaluate_point

__all__ = ["AppBenchResult", "SweepBenchResult", "MemoryBenchResult",
           "JobsBenchResult", "BatchBenchResult", "NativeBenchResult",
           "TraceBenchResult", "bench_engine", "bench_sweep", "bench_memory",
           "bench_jobs", "bench_batch", "bench_native", "bench_trace",
           "check_floor", "write_report", "SCHEMA_VERSION"]

SCHEMA_VERSION = 1


@dataclass
class AppBenchResult:
    """Engine throughput for one application on one machine."""

    app: str
    n_processors: int
    cluster_size: int
    #: operations the generators yield (pre-fusion; the engine-visible work)
    source_ops: int
    #: operations stored after WORK fusion
    stored_ops: int
    #: seconds for one legacy-path run (generators, no heap fast path)
    legacy_s: float
    #: seconds for one generator run with the heap fast path
    generator_s: float
    #: seconds for one compiled-trace replay
    replay_s: float
    #: seconds to capture the trace (drain or recorded run)
    capture_s: float

    @property
    def legacy_ops_per_s(self) -> float:
        return self.source_ops / self.legacy_s if self.legacy_s else 0.0

    @property
    def generator_ops_per_s(self) -> float:
        return self.source_ops / self.generator_s if self.generator_s else 0.0

    @property
    def replay_ops_per_s(self) -> float:
        return self.source_ops / self.replay_s if self.replay_s else 0.0

    @property
    def replay_speedup(self) -> float:
        """Replay time improvement over the legacy (fast-path-off) run."""
        return self.legacy_s / self.replay_s if self.replay_s else 0.0

    def to_dict(self) -> dict[str, Any]:
        out = asdict(self)
        out.update(
            legacy_ops_per_s=round(self.legacy_ops_per_s, 1),
            generator_ops_per_s=round(self.generator_ops_per_s, 1),
            replay_ops_per_s=round(self.replay_ops_per_s, 1),
            replay_speedup=round(self.replay_speedup, 3),
        )
        return out


@dataclass
class SweepBenchResult:
    """End-to-end wall-clock of one sweep grid in every execution mode."""

    apps: list[str]
    cluster_sizes: list[int]
    cache_kb: float | None
    n_points: int
    legacy_s: float
    generator_s: float
    cold_s: float
    warm_s: float
    identical: bool = True  # every mode produced byte-identical results

    @property
    def cold_speedup(self) -> float:
        return self.legacy_s / self.cold_s if self.cold_s else 0.0

    @property
    def warm_speedup(self) -> float:
        return self.legacy_s / self.warm_s if self.warm_s else 0.0

    def to_dict(self) -> dict[str, Any]:
        out = asdict(self)
        out.update(cold_speedup=round(self.cold_speedup, 3),
                   warm_speedup=round(self.warm_speedup, 3))
        return out


def bench_engine(app_name: str, config: MachineConfig,
                 app_kwargs: Mapping[str, Any] | None = None,
                 repeats: int = 1) -> AppBenchResult:
    """Measure one application's engine throughput along all three paths.

    ``repeats`` > 1 re-runs each path and keeps the *fastest* time (the
    usual microbenchmark convention — slower samples are scheduler noise).
    Timings come from the runtime pipeline's ``execute`` phase (memory
    system construction + engine run), observed by a
    :class:`~repro.runtime.hooks.TimingObserver` — application build and
    problem setup stay outside the measured region, as they always did.
    """
    from ..apps.registry import build_app
    from ..runtime import RunRequest, RunSession, TimingObserver

    kwargs = dict(app_kwargs or {})
    request = RunRequest.make(app_name, config.cluster_size,
                              config.cache_kb_per_processor, kwargs)

    # a new app instance per run: some apps (e.g. barnes' cell pool)
    # consume internal state as program() executes, so instances are
    # single-shot — run_detailed builds its own fresh instance each call
    app = build_app(app_name, config, **kwargs)
    app.ensure_setup()
    t0 = time.perf_counter()
    if app.stream_invariant:
        program = app.compiled_program()
    else:
        _, program = app.run_recorded()
    capture_s = time.perf_counter() - t0

    observer = TimingObserver()
    session = RunSession(base_config=config, observer=observer)

    def best(**run_kwargs: Any) -> float:
        times = []
        for _ in range(max(1, repeats)):
            observer.reset()
            session.run_detailed(request, **run_kwargs)
            times.append(observer.elapsed("execute"))
        return min(times)

    legacy_s = best(heap_fast_path=False)
    generator_s = best()
    replay_s = best(program=program)

    return AppBenchResult(
        app=app_name,
        n_processors=config.n_processors,
        cluster_size=config.cluster_size,
        source_ops=program.source_ops,
        stored_ops=program.total_ops,
        legacy_s=legacy_s,
        generator_s=generator_s,
        replay_s=replay_s,
        capture_s=capture_s,
    )


def bench_sweep(apps: Sequence[str], config: MachineConfig,
                cluster_sizes: Iterable[int] = (1, 2, 4, 8),
                cache_kb: float | None = 4.0,
                kwargs_of: Mapping[str, Mapping[str, Any]] | None = None,
                ) -> SweepBenchResult:
    """Time an apps × cluster-sizes grid in all four execution modes.

    The grid is evaluated serially (one process) so mode comparisons
    measure the execution layer, not pool scheduling.  Every mode's
    results are compared byte-for-byte; ``identical=False`` in the result
    marks a correctness failure (and should never happen).
    """
    from ..runtime import RunSession
    from ..sim.compiled import TraceCache, clear_memory_cache

    kwargs_of = kwargs_of or {}
    cluster_sizes = list(cluster_sizes)
    specs = [PointSpec.make(app, cs, cache_kb, dict(kwargs_of.get(app, {})))
             for app in apps for cs in cluster_sizes]

    session = RunSession(base_config=config)

    def run_legacy(spec: PointSpec):
        return session.run_detailed(spec, heap_fast_path=False).result

    t0 = time.perf_counter()
    reference = [run_legacy(s).to_json() for s in specs]
    legacy_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    generator = [evaluate_point(s, config, use_compiled=False).to_json()
                 for s in specs]
    generator_s = time.perf_counter() - t0

    clear_memory_cache()
    cache = TraceCache()
    t0 = time.perf_counter()
    cold = [evaluate_point(s, config, trace_cache=cache).to_json()
            for s in specs]
    cold_s = time.perf_counter() - t0

    # same cache, now fully populated: the steady state of a repeated sweep
    t0 = time.perf_counter()
    warm = [evaluate_point(s, config, trace_cache=cache).to_json()
            for s in specs]
    warm_s = time.perf_counter() - t0

    identical = reference == generator == cold == warm
    return SweepBenchResult(
        apps=list(apps), cluster_sizes=cluster_sizes, cache_kb=cache_kb,
        n_points=len(specs), legacy_s=legacy_s, generator_s=generator_s,
        cold_s=cold_s, warm_s=warm_s, identical=identical,
    )


@dataclass
class MemoryBenchResult:
    """Protocol throughput of the memory system on one synthetic stream."""

    stream: str  # "hit" | "capacity" | "sharing"
    n_ops: int
    elapsed_s: float

    @property
    def ops_per_s(self) -> float:
        return self.n_ops / self.elapsed_s if self.elapsed_s else 0.0

    def to_dict(self) -> dict[str, Any]:
        out = asdict(self)
        out.update(ops_per_s=round(self.ops_per_s, 1))
        return out


def _memory_streams(config: MachineConfig,
                    n_ops: int) -> dict[str, list[tuple[int, int, int]]]:
    """Precomputed ``(processor, line, is_write)`` access streams.

    Built outside the timed region so the measurement sees only protocol
    work.  Three streams, one per hot path of the memory core:

    * ``hit``      — every processor cycles through a small per-cluster
      working set that fits its cache: pure hit-path traffic (dict probe,
      LRU touch, pending/fetcher checks);
    * ``capacity`` — each processor strides through a footprint several
      times its cache: the eviction/refill path (victim selection, slot
      recycling, directory replacement hints);
    * ``sharing``  — processors in different clusters alternately write
      the same lines: the coherence path (directory bit-mask updates,
      invalidations, ownership transfer).
    """
    n = config.n_processors
    cluster_size = config.cluster_size
    lines_per_cache = config.cluster_cache_lines or 64
    streams: dict[str, list[tuple[int, int, int]]] = {}

    # distinct per-cluster line ranges so clusters do not interfere
    hit: list[tuple[int, int, int]] = []
    ws = max(1, min(lines_per_cache // 2, 32))
    for i in range(n_ops):
        proc = i % n
        line = (proc // cluster_size) * 10_000 + i % ws
        hit.append((proc, line, 0))
    streams["hit"] = hit

    cap: list[tuple[int, int, int]] = []
    footprint = lines_per_cache * 4
    for i in range(n_ops):
        proc = i % n
        line = (proc // cluster_size) * 100_000 + (i // n) % footprint
        cap.append((proc, line, 0))
    streams["capacity"] = cap

    shr: list[tuple[int, int, int]] = []
    shared_lines = 64
    for i in range(n_ops):
        # stride by cluster_size so consecutive touches of a line come
        # from different clusters — every write invalidates remote copies
        proc = (i * cluster_size) % n
        shr.append((proc, i % shared_lines, i & 1))
    streams["sharing"] = shr
    return streams


def bench_memory(config: MachineConfig | None = None, n_ops: int = 200_000,
                 repeats: int = 3) -> list[MemoryBenchResult]:
    """Measure raw memory-system (coherence-layer) throughput.

    Drives :class:`~repro.memory.coherence.CoherentMemorySystem` directly
    with precomputed synthetic streams — no engine, no event loop — so the
    number isolates the slab cache/directory hot paths.  Simulated time
    advances ~200 cycles per op (enough that every pending fill resolves
    before its next touch).  ``repeats`` keeps the fastest pass per
    stream; a fresh memory system per pass keeps passes independent.
    """
    from ..memory.coherence import CoherentMemorySystem

    if config is None:
        config = MachineConfig(n_processors=8, cluster_size=4,
                               cache_kb_per_processor=4.0)
    results = []
    for stream, accesses in _memory_streams(config, n_ops).items():
        best = None
        for _ in range(max(1, repeats)):
            memory = CoherentMemorySystem(config)
            read = memory.read
            write = memory.write
            now = 0
            t0 = time.perf_counter()
            for proc, line, is_write in accesses:
                if is_write:
                    write(proc, line, now)
                else:
                    read(proc, line, now)
                now += 200
            elapsed = time.perf_counter() - t0
            best = elapsed if best is None else min(best, elapsed)
        results.append(MemoryBenchResult(stream, len(accesses), best or 0.0))
    return results


@dataclass
class JobsBenchResult:
    """Multi-process sweep wall-clock: ``process`` vs ``fork`` backend.

    ``fork_s`` is ``None`` on platforms without the fork start method.
    Both timings include pool startup — that is where fork-server mode
    wins (workers inherit the parent's warm trace LRU copy-on-write
    instead of importing + re-reading the disk store).
    """

    apps: list[str]
    cluster_sizes: list[int]
    n_points: int
    jobs: int
    process_s: float
    fork_s: float | None
    identical: bool = True

    @property
    def fork_speedup(self) -> float:
        if not self.fork_s:
            return 0.0
        return self.process_s / self.fork_s

    def to_dict(self) -> dict[str, Any]:
        out = asdict(self)
        out.update(fork_speedup=round(self.fork_speedup, 3))
        return out


def bench_jobs(apps: Sequence[str], config: MachineConfig,
               cluster_sizes: Iterable[int] = (1, 2, 4, 8),
               cache_kb: float | None = 4.0, jobs: int = 2,
               kwargs_of: Mapping[str, Mapping[str, Any]] | None = None,
               ) -> JobsBenchResult:
    """Time one multi-process sweep under each process backend.

    The disk :class:`~repro.core.resultcache.TraceStore` is pre-populated
    by a serial warmup pass (both backends start from the same steady
    state: traces on disk, nothing in memory), then each backend runs the
    grid with ``jobs`` workers and a cold in-memory LRU, pool startup
    included.  The result cache stays off — every point is evaluated.
    """
    import tempfile

    from ..core.resultcache import TraceStore
    from ..sim.compiled import TraceCache, clear_memory_cache
    from .executor import SweepExecutor, fork_available

    kwargs_of = kwargs_of or {}
    cluster_sizes = list(cluster_sizes)
    specs = [PointSpec.make(app, cs, cache_kb, dict(kwargs_of.get(app, {})))
             for app in apps for cs in cluster_sizes]

    with tempfile.TemporaryDirectory(prefix="repro-bench-jobs-") as tmp:
        store = TraceStore(tmp)
        clear_memory_cache()
        warm = SweepExecutor(backend="serial", trace_cache=TraceCache(store))
        reference = [o.result.to_json() for o in warm.run(specs, config)]

        timings: dict[str, float | None] = {"process": None, "fork": None}
        payloads: dict[str, list[str]] = {}
        for backend in ("process", "fork"):
            if backend == "fork" and not fork_available():
                continue
            clear_memory_cache()
            executor = SweepExecutor(backend=backend, max_workers=jobs,
                                     trace_cache=TraceCache(store))
            t0 = time.perf_counter()
            with executor:
                outcomes = executor.run(specs, config)
            timings[backend] = time.perf_counter() - t0
            payloads[backend] = [o.result.to_json() if o.ok else o.error
                                 for o in outcomes]

    identical = all(p == reference for p in payloads.values())
    return JobsBenchResult(
        apps=list(apps), cluster_sizes=cluster_sizes, n_points=len(specs),
        jobs=jobs, process_s=timings["process"] or 0.0,
        fork_s=timings["fork"], identical=identical,
    )


@dataclass
class BatchBenchResult:
    """Same-session A/B: per-point warm replay vs batched lockstep replay.

    ``warm_s`` is the per-point warm sweep (the exact measurement behind
    :class:`SweepBenchResult.warm_s`); ``batched_s`` is the identical
    grid through ``SweepExecutor(batch=True)`` — trace-key groups over
    one shared decode, fused replay kernel — in the same process against
    the same warm cache.  Passes interleave A,B,A,B,… and the fastest
    pass per side is kept, so machine noise hits both sides
    symmetrically.  ``identical`` compares both sides' full RunResult
    JSON byte-for-byte and should never be False.
    """

    apps: list[str]
    cluster_sizes: list[int]
    cache_kb: float | None
    n_points: int
    repeats: int
    warm_s: float
    batched_s: float
    groups: int
    fused_points: int
    fallback_points: int
    fallthrough_points: int
    identical: bool = True

    @property
    def batch_speedup(self) -> float:
        """Warm-sweep wall-clock improvement of batched over per-point."""
        return self.warm_s / self.batched_s if self.batched_s else 0.0

    @property
    def points_per_s(self) -> float:
        """Sweep points retired per second under batched replay."""
        return self.n_points / self.batched_s if self.batched_s else 0.0

    def to_dict(self) -> dict[str, Any]:
        out = asdict(self)
        out.update(batch_speedup=round(self.batch_speedup, 3),
                   points_per_s=round(self.points_per_s, 3))
        return out


def bench_batch(apps: Sequence[str], config: MachineConfig,
                cluster_sizes: Iterable[int] = (1, 2, 4, 8),
                cache_kb: float | None = 4.0,
                kwargs_of: Mapping[str, Mapping[str, Any]] | None = None,
                repeats: int = 3) -> BatchBenchResult:
    """Time the warm sweep per-point vs batched, in one session.

    A cold, untimed pass first captures every trace into a throwaway
    disk store so both timed sides replay from the same fully-warm
    cache.  The A side is the per-point warm sweep (``evaluate_point``
    per spec, exactly :func:`bench_sweep`'s ``warm`` mode); the B side
    is the same grid through a serial batching executor.  A fresh
    executor per B pass keeps the reported group counters single-pass.
    """
    import tempfile

    from ..core.resultcache import TraceStore
    from ..sim.compiled import TraceCache, clear_memory_cache
    from .executor import SweepExecutor

    kwargs_of = kwargs_of or {}
    cluster_sizes = list(cluster_sizes)
    specs = [PointSpec.make(app, cs, cache_kb, dict(kwargs_of.get(app, {})))
             for app in apps for cs in cluster_sizes]

    with tempfile.TemporaryDirectory(prefix="repro-bench-batch-") as tmp:
        clear_memory_cache()
        cache = TraceCache(TraceStore(tmp))
        reference = [evaluate_point(s, config, trace_cache=cache).to_json()
                     for s in specs]

        warm_s: float | None = None
        batched_s: float | None = None
        identical = True
        stats = None
        for _ in range(max(1, repeats)):
            t0 = time.perf_counter()
            warm = [evaluate_point(s, config, trace_cache=cache).to_json()
                    for s in specs]
            elapsed = time.perf_counter() - t0
            warm_s = elapsed if warm_s is None else min(warm_s, elapsed)

            executor = SweepExecutor(backend="serial", batch=True,
                                     trace_cache=cache)
            t0 = time.perf_counter()
            outcomes = executor.run(specs, config)
            elapsed = time.perf_counter() - t0
            batched_s = elapsed if batched_s is None else min(batched_s,
                                                              elapsed)
            batched = [o.result.to_json() if o.ok else o.error
                       for o in outcomes]
            identical = identical and warm == reference \
                and batched == reference
            stats = executor.batch_stats

    return BatchBenchResult(
        apps=list(apps), cluster_sizes=cluster_sizes, cache_kb=cache_kb,
        n_points=len(specs), repeats=max(1, repeats),
        warm_s=warm_s or 0.0, batched_s=batched_s or 0.0,
        groups=stats.groups, fused_points=stats.fused_points,
        fallback_points=stats.fallback_points,
        fallthrough_points=stats.fallthrough_points, identical=identical,
    )


@dataclass
class NativeBenchResult:
    """Same-session A/B: pure-python replay kernels vs the native C kernel.

    Four timed sides over one fully-warm trace cache, interleaved
    python-warm, native-warm, python-batched, native-batched per repeat
    (fastest pass per side kept): the ``warm`` pair is the per-point
    sweep (``evaluate_point`` per spec, native serving each point through
    the session's replay seam), the ``batched`` pair is the identical
    grid through ``SweepExecutor(batch=True)`` — so ``batch_speedup`` is
    *C kernel vs the python fused kernel*, not vs unbatched replay.
    ``identical`` compares every side's full RunResult JSON
    byte-for-byte and should never be False.
    """

    apps: list[str]
    cluster_sizes: list[int]
    cache_kb: float | None
    n_points: int
    repeats: int
    python_warm_s: float
    native_warm_s: float
    python_batched_s: float
    native_batched_s: float
    groups: int
    native_points: int
    identical: bool = True

    @property
    def warm_speedup(self) -> float:
        """Per-point warm-sweep improvement of native over pure python."""
        return (self.python_warm_s / self.native_warm_s
                if self.native_warm_s else 0.0)

    @property
    def batch_speedup(self) -> float:
        """Batched-sweep improvement of native over the python fused kernel."""
        return (self.python_batched_s / self.native_batched_s
                if self.native_batched_s else 0.0)

    @property
    def points_per_s(self) -> float:
        """Sweep points retired per second under native batched replay."""
        return (self.n_points / self.native_batched_s
                if self.native_batched_s else 0.0)

    def to_dict(self) -> dict[str, Any]:
        out = asdict(self)
        out.update(warm_speedup=round(self.warm_speedup, 3),
                   batch_speedup=round(self.batch_speedup, 3),
                   points_per_s=round(self.points_per_s, 3))
        return out


def bench_native(apps: Sequence[str], config: MachineConfig,
                 cluster_sizes: Iterable[int] = (1, 2, 4, 8),
                 cache_kb: float | None = 4.0,
                 kwargs_of: Mapping[str, Mapping[str, Any]] | None = None,
                 repeats: int = 3) -> NativeBenchResult:
    """Time the warm and batched sweeps under each replay kernel.

    Mirrors :func:`bench_batch`'s protocol — cold untimed capture pass
    into a throwaway disk store, then interleaved timed passes against
    the same warm cache — but the A/B axis is the kernel selection
    (:func:`repro.native.set_native`), toggled around each pass and
    restored afterwards.  Raises up front when the native kernel cannot
    be built; callers gate on availability.
    """
    import tempfile

    import repro.native as native

    from ..core.resultcache import TraceStore
    from ..sim.compiled import TraceCache, clear_memory_cache
    from .executor import SweepExecutor

    kwargs_of = kwargs_of or {}
    cluster_sizes = list(cluster_sizes)
    specs = [PointSpec.make(app, cs, cache_kb, dict(kwargs_of.get(app, {})))
             for app in apps for cs in cluster_sizes]

    prev = os.environ.get("REPRO_NATIVE")
    try:
        native.set_native(True)
        native.kernel()  # fail here, not mid-measurement

        with tempfile.TemporaryDirectory(prefix="repro-bench-native-") as tmp:
            clear_memory_cache()
            cache = TraceCache(TraceStore(tmp))
            native.set_native(False)
            reference = [evaluate_point(s, config,
                                        trace_cache=cache).to_json()
                         for s in specs]

            best: dict[str, float | None] = {
                "python_warm": None, "native_warm": None,
                "python_batched": None, "native_batched": None}
            identical = True
            stats = None

            def warm_pass(use_native: bool) -> list[str]:
                native.set_native(use_native)
                key = "native_warm" if use_native else "python_warm"
                t0 = time.perf_counter()
                out = [evaluate_point(s, config,
                                      trace_cache=cache).to_json()
                       for s in specs]
                elapsed = time.perf_counter() - t0
                best[key] = (elapsed if best[key] is None
                             else min(best[key], elapsed))
                return out

            def batched_pass(use_native: bool):
                native.set_native(use_native)
                key = "native_batched" if use_native else "python_batched"
                executor = SweepExecutor(backend="serial", batch=True,
                                         trace_cache=cache)
                t0 = time.perf_counter()
                outcomes = executor.run(specs, config)
                elapsed = time.perf_counter() - t0
                best[key] = (elapsed if best[key] is None
                             else min(best[key], elapsed))
                out = [o.result.to_json() if o.ok else o.error
                       for o in outcomes]
                return out, executor.batch_stats

            for _ in range(max(1, repeats)):
                pw = warm_pass(False)
                nw = warm_pass(True)
                pb, _pstats = batched_pass(False)
                nb, stats = batched_pass(True)
                identical = (identical and pw == reference
                             and nw == reference and pb == reference
                             and nb == reference)
    finally:
        if prev is None:
            os.environ.pop("REPRO_NATIVE", None)
        else:
            os.environ["REPRO_NATIVE"] = prev

    return NativeBenchResult(
        apps=list(apps), cluster_sizes=cluster_sizes, cache_kb=cache_kb,
        n_points=len(specs), repeats=max(1, repeats),
        python_warm_s=best["python_warm"] or 0.0,
        native_warm_s=best["native_warm"] or 0.0,
        python_batched_s=best["python_batched"] or 0.0,
        native_batched_s=best["native_batched"] or 0.0,
        groups=stats.groups, native_points=stats.native_points,
        identical=identical,
    )


@dataclass
class TraceBenchResult:
    """Subprocess A/B: materialized vs memory-mapped trace consumption.

    One paper-scale trace is captured to a disk store once, then each
    *mode* — ``materialized-python``, ``mapped-python`` and (when the C
    kernel is available) ``materialized-native``, ``mapped-native`` —
    replays it in a **fresh child process** with the matching
    ``REPRO_TRACE_MMAP`` / ``REPRO_NATIVE`` environment.  Per mode:

    * ``decode_s`` — loading the blob into a usable program (full read +
      column copy when materialized; header validation + ``mmap`` setup
      when mapped, pages faulting in lazily later);
    * ``first_point_s`` — cold-LRU ``evaluate_point`` end to end, the
      latency from disk-resident trace to first sweep result;
    * ``maxrss_kb`` — the child's ``ru_maxrss`` at exit.

    ``first_point_speedup`` and ``maxrss_ratio`` compare the python pair
    (materialized / mapped; both >1 means mapping wins) and back the
    ``trace:*`` keys of :func:`check_floor`.
    """

    app: str
    n_processors: int
    cluster_size: int
    cache_kb: float | None
    app_kwargs: dict[str, Any]
    trace_nbytes: int
    source_ops: int
    capture_s: float
    #: mode name -> {"decode_s", "first_point_s", "maxrss_kb"}
    modes: dict[str, dict[str, float]]
    identical: bool = True

    @property
    def first_point_speedup(self) -> float:
        """Materialized / mapped first-point latency (python kernels)."""
        mat = self.modes.get("materialized-python", {}).get("first_point_s")
        mapped = self.modes.get("mapped-python", {}).get("first_point_s")
        return mat / mapped if mat and mapped else 0.0

    @property
    def maxrss_ratio(self) -> float:
        """Materialized / mapped peak RSS (python kernels)."""
        mat = self.modes.get("materialized-python", {}).get("maxrss_kb")
        mapped = self.modes.get("mapped-python", {}).get("maxrss_kb")
        return mat / mapped if mat and mapped else 0.0

    def to_dict(self) -> dict[str, Any]:
        out = asdict(self)
        out.update(first_point_speedup=round(self.first_point_speedup, 3),
                   maxrss_ratio=round(self.maxrss_ratio, 3))
        return out


def _trace_child(payload: Mapping[str, Any]) -> dict[str, Any]:
    """One :func:`bench_trace` measurement, inside a fresh process.

    ``mode == "capture"`` evaluates the point cold so the trace lands in
    the disk store; every other mode measures the pre-captured blob under
    whatever ``REPRO_TRACE_MMAP`` / ``REPRO_NATIVE`` environment the
    parent installed before spawning this child.
    """
    import resource

    from ..sim.compiled import TraceCache, clear_memory_cache
    from .resultcache import TraceStore

    spec = PointSpec.make(payload["app"], payload["cluster_size"],
                          payload["cache_kb"], dict(payload["kwargs"]))
    config = MachineConfig(n_processors=payload["n_processors"])
    store = TraceStore(payload["store_dir"])
    out: dict[str, Any] = {}

    if payload["mode"] == "capture":
        t0 = time.perf_counter()
        result = evaluate_point(spec, config, trace_cache=TraceCache(store))
        out["capture_s"] = time.perf_counter() - t0
    else:
        # the blob's filename stem is its trace key (TraceStore layout)
        key = Path(payload["blob"]).stem
        cache = TraceCache(store)
        t0 = time.perf_counter()
        program = cache.preload(key)
        out["decode_s"] = time.perf_counter() - t0
        if program is None:
            raise RuntimeError(f"trace {key} vanished from {store.directory}")
        clear_memory_cache()  # first_point_s must pay the decode again
        t0 = time.perf_counter()
        result = evaluate_point(spec, config, trace_cache=TraceCache(store))
        out["first_point_s"] = time.perf_counter() - t0
    out["result"] = result.to_json()
    out["maxrss_kb"] = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return out


def _spawn_trace_child(payload: Mapping[str, Any],
                       env_overrides: Mapping[str, str]) -> dict[str, Any]:
    """Run :func:`_trace_child` in a subprocess and parse its JSON reply."""
    import subprocess
    import sys

    env = os.environ.copy()
    src_root = str(Path(__file__).resolve().parents[2])
    prior = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (src_root if not prior
                         else src_root + os.pathsep + prior)
    env.update(env_overrides)
    proc = subprocess.run(
        [sys.executable, "-m", "repro.core.bench", "--trace-child",
         json.dumps(dict(payload))],
        capture_output=True, text=True, env=env)
    if proc.returncode != 0:
        raise RuntimeError(
            f"bench_trace child {payload.get('mode')} failed "
            f"(exit {proc.returncode}):\n{proc.stderr.strip()}")
    return json.loads(proc.stdout)


def bench_trace(app: str = "lu", config: MachineConfig | None = None,
                cluster_size: int = 4, cache_kb: float | None = 4.0,
                app_kwargs: Mapping[str, Any] | None = None,
                include_native: bool = False) -> TraceBenchResult:
    """Measure materialized vs memory-mapped consumption of one trace.

    Defaults to the paper-scale LU decomposition (512×512, the streaming
    layer's motivating workload); pass ``app_kwargs`` to rescale for CI.
    A capture child first persists the trace, then one child per mode
    measures decode latency, cold first-point latency, and peak RSS —
    every child re-reads the same blob, so the A/B isolates the
    consumption path.  ``include_native`` adds the C-kernel pair (the
    caller gates on kernel availability).
    """
    import tempfile

    from ..apps.registry import PAPER_PROBLEM_SIZES
    from ..sim.compiled import CompiledProgram

    if config is None:
        config = MachineConfig(n_processors=64)
    kwargs = dict(app_kwargs if app_kwargs is not None
                  else PAPER_PROBLEM_SIZES.get(app, {}))

    with tempfile.TemporaryDirectory(prefix="repro-bench-trace-") as tmp:
        payload = {"app": app, "cluster_size": cluster_size,
                   "cache_kb": cache_kb, "kwargs": kwargs,
                   "n_processors": config.n_processors, "store_dir": tmp,
                   "mode": "capture"}
        captured = _spawn_trace_child(
            payload, {"REPRO_TRACE_MMAP": "1", "REPRO_NATIVE": "0"})
        reference = captured["result"]

        blobs = sorted(Path(tmp, "traces").glob("*.trace"))
        if len(blobs) != 1:
            raise RuntimeError(
                f"expected exactly one captured trace, found {len(blobs)}")
        blob = blobs[0]
        header_probe = CompiledProgram.from_file(blob)

        mode_envs = [
            ("materialized-python", {"REPRO_TRACE_MMAP": "0",
                                     "REPRO_NATIVE": "0"}),
            ("mapped-python", {"REPRO_TRACE_MMAP": "1",
                               "REPRO_NATIVE": "0"}),
        ]
        if include_native:
            mode_envs += [
                ("materialized-native", {"REPRO_TRACE_MMAP": "0",
                                         "REPRO_NATIVE": "1"}),
                ("mapped-native", {"REPRO_TRACE_MMAP": "1",
                                   "REPRO_NATIVE": "1"}),
            ]

        payload["mode"] = "measure"
        payload["blob"] = str(blob)
        modes: dict[str, dict[str, float]] = {}
        identical = True
        for name, overrides in mode_envs:
            reply = _spawn_trace_child(payload, overrides)
            identical = identical and reply["result"] == reference
            modes[name] = {"decode_s": reply["decode_s"],
                           "first_point_s": reply["first_point_s"],
                           "maxrss_kb": reply["maxrss_kb"]}
        trace_nbytes = blob.stat().st_size

    return TraceBenchResult(
        app=app, n_processors=config.n_processors,
        cluster_size=cluster_size, cache_kb=cache_kb, app_kwargs=kwargs,
        trace_nbytes=trace_nbytes, source_ops=header_probe.source_ops,
        capture_s=captured["capture_s"], modes=modes, identical=identical,
    )


def write_report(path: str | Path,
                 engine: Sequence[AppBenchResult],
                 sweep: SweepBenchResult | None = None,
                 config: MachineConfig | None = None,
                 extra: Mapping[str, Any] | None = None,
                 memory: Sequence[MemoryBenchResult] | None = None,
                 jobs: JobsBenchResult | None = None,
                 batch: BatchBenchResult | None = None,
                 native: NativeBenchResult | None = None,
                 trace: TraceBenchResult | None = None) -> dict[str, Any]:
    """Assemble and write ``BENCH_engine.json``; returns the payload."""
    payload: dict[str, Any] = {
        "schema": SCHEMA_VERSION,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "engine": {r.app: r.to_dict() for r in engine},
    }
    if config is not None:
        payload["config"] = config.to_dict()
    if sweep is not None:
        payload["sweep"] = sweep.to_dict()
    if memory is not None:
        payload["memory"] = {r.stream: r.to_dict() for r in memory}
    if jobs is not None:
        payload["jobs"] = jobs.to_dict()
    if batch is not None:
        payload["batch"] = batch.to_dict()
    if native is not None:
        payload["native"] = native.to_dict()
    if trace is not None:
        payload["trace"] = trace.to_dict()
    if extra:
        payload.update(extra)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return payload


def check_floor(engine: Sequence[AppBenchResult],
                floor: Mapping[str, float],
                tolerance: float = 0.30,
                memory: Sequence[MemoryBenchResult] | None = None,
                batch: BatchBenchResult | None = None,
                native: NativeBenchResult | None = None,
                trace: TraceBenchResult | None = None,
                ) -> list[str]:
    """Compare measured throughput against a checked-in floor.

    ``floor`` maps app name → minimum acceptable replay ops/sec; keys of
    the form ``"memory:<stream>"`` (e.g. ``"memory:hit"``) instead floor
    the :func:`bench_memory` streams, ``"batch:points_per_s"`` /
    ``"batch:speedup"`` floor the :func:`bench_batch` A/B, and
    ``"native:points_per_s"`` / ``"native:batch_speedup"`` /
    ``"native:warm_speedup"`` floor the :func:`bench_native` kernel
    A/B, and ``"trace:first_point_speedup"`` / ``"trace:maxrss_ratio"``
    floor the :func:`bench_trace` streaming A/B (both are
    materialized/mapped ratios — higher means mapping wins more).  A
    measurement
    below ``floor * (1 - tolerance)`` is a regression.  Returns
    human-readable failure lines (empty = all good).  Entries absent from
    the floor are ignored, so the floor file can cover a subset.
    """
    if not (0.0 <= tolerance < 1.0):
        raise ValueError("tolerance must be in [0, 1)")
    failures = []
    measured = [(r.app, "replay throughput", r.replay_ops_per_s, "ops/s")
                for r in engine]
    measured += [(f"memory:{r.stream}", "protocol throughput",
                  r.ops_per_s, "ops/s")
                 for r in (memory or ())]
    if batch is not None:
        measured += [
            ("batch:points_per_s", "batched-sweep throughput",
             batch.points_per_s, "points/s"),
            ("batch:speedup", "batched-vs-warm speedup",
             batch.batch_speedup, "x"),
        ]
    if native is not None:
        measured += [
            ("native:points_per_s", "native batched-sweep throughput",
             native.points_per_s, "points/s"),
            ("native:batch_speedup", "native-vs-python batched speedup",
             native.batch_speedup, "x"),
            ("native:warm_speedup", "native-vs-python warm speedup",
             native.warm_speedup, "x"),
        ]
    if trace is not None:
        measured += [
            ("trace:first_point_speedup",
             "mapped-vs-materialized first-point speedup",
             trace.first_point_speedup, "x"),
            ("trace:maxrss_ratio", "materialized-vs-mapped peak-RSS ratio",
             trace.maxrss_ratio, "x"),
        ]
    for name, what, got, unit in measured:
        want = floor.get(name)
        if want is None:
            continue
        limit = want * (1.0 - tolerance)
        if got < limit:
            if unit == "x":
                failures.append(
                    f"{name}: {what} {got:.2f}x is below "
                    f"floor {want:.2f} - {tolerance:.0%} = {limit:.2f}")
            else:
                failures.append(
                    f"{name}: {what} {got:,.0f} {unit} is below "
                    f"floor {want:,.0f} - {tolerance:.0%} = {limit:,.0f}")
    return failures


if __name__ == "__main__":  # pragma: no cover - bench_trace child entry
    import sys

    if len(sys.argv) == 3 and sys.argv[1] == "--trace-child":
        print(json.dumps(_trace_child(json.loads(sys.argv[2]))))
        raise SystemExit(0)
    raise SystemExit("repro.core.bench is not a standalone CLI; "
                     "use `repro-clustering bench`")
