"""Processor-count scaling: does clustering "push out" usable parallelism?

The paper's §4 closes its Ocean discussion with a forward-looking claim it
never quantifies: *"clustering may push out the number of processors that
can be used effectively on a fixed problem size"*, and repeats it in §4's
summary ("the best argument that can be made for clustering ... is that it
pushes out the number of processors that can be used effectively").

This module measures exactly that.  For a fixed problem, sweep the total
processor count with and without clustering and compare

* the **speedup curve** T(P₀)/T(P) (anchored at the smallest P), and
* the **effective processor count**: the largest P whose marginal speedup
  from the previous point still exceeds a threshold (beyond it, adding
  processors is no longer "effective").

If the paper's claim holds, the clustered machine's speedup curve rolls
over later — its effective processor count is ≥ the unclustered one.

Every point runs through the canonical
:class:`~repro.runtime.session.RunSession` pipeline, so scaling curves get
compiled-trace replay, the shared trace cache (one capture per processor
count serves the clustered *and* unclustered curve of a stream-invariant
app), memory-mapped paper-scale traces, the native C kernel when selected,
and optional :class:`~repro.core.resultcache.ResultCache` memoization —
exactly like every other entry layer.

:func:`scaling_study` packages the sweep into the repo's three problem
**tiers** — ``quick`` (CI-speed), ``medium`` (CI-runnable smoke at
intermediate sizes), ``paper`` (the paper's Table 2 sizes, which the
streaming-trace layer makes tractable) — with per-tier processor-count
presets for all nine applications, and :func:`compare_shapes` quantifies
how well a cheap tier's speedup-curve *shape* tracks an expensive one's
(the CI proxy for "the quick study predicts the paper-scale study").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping, Sequence

from ..apps.registry import (APP_NAMES, PAPER_PROBLEM_SIZES,
                             QUICK_PROBLEM_SIZES)
from ..runtime.plan import RunRequest
from ..runtime.session import RunSession
from .config import MachineConfig

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.compiled import TraceCache
    from .resultcache import ResultCache

__all__ = ["ScalingPoint", "ScalingCurve", "scaling_curve",
           "effective_processors", "pushout", "scaling_study",
           "compare_shapes", "scaling_problem", "scaling_processor_counts",
           "MEDIUM_PROBLEM_SIZES", "SCALING_TIERS"]

#: the default application seed (kept out of request kwargs so scaling
#: points share trace/result-cache keys with identically-specified sweeps)
_DEFAULT_SEED = 12345

#: intermediate problem sizes for the CI-runnable ``medium`` tier —
#: between the quick sanity sizes and the paper's Table 2 sizes, chosen
#: so a full scaling sweep of one app stays in tens of seconds
MEDIUM_PROBLEM_SIZES: dict[str, dict[str, Any]] = {
    "barnes": {"n_particles": 2048, "n_steps": 1},
    "fft": {"n_points": 32768},
    "fmm": {"n_particles": 2048, "levels": 4, "n_steps": 1},
    "lu": {"n": 256, "block": 16},
    "mp3d": {"n_particles": 20000, "n_steps": 2},
    "ocean": {"n": 128, "n_vcycles": 1},
    "radix": {"n_keys": 131072, "radix": 256},
    "raytrace": {"width": 48, "height": 48, "n_spheres": 48},
    "volrend": {"volume_side": 64, "width": 48, "height": 48},
}

#: recognised study tiers, cheapest first
SCALING_TIERS = ("quick", "medium", "paper")

_TIER_PROBLEMS: dict[str, dict[str, dict[str, Any]]] = {
    "quick": QUICK_PROBLEM_SIZES,
    "medium": MEDIUM_PROBLEM_SIZES,
    "paper": PAPER_PROBLEM_SIZES,
}

# Processor-count grids per tier.  Every entry is divisible by the paper
# cluster sizes (2, 4, 8) so one grid serves any clustered/unclustered
# comparison; larger problems keep scaling further, so richer tiers sweep
# higher before the curve rolls over.
_TIER_COUNTS: dict[str, tuple[int, ...]] = {
    "quick": (8, 16, 32, 64),
    "medium": (8, 16, 32, 64),
    "paper": (8, 16, 32, 64, 128),
}


def scaling_problem(app: str, tier: str = "quick") -> dict[str, Any]:
    """Problem kwargs for ``app`` at ``tier`` (copy; safe to mutate)."""
    if tier not in _TIER_PROBLEMS:
        raise ValueError(f"unknown scaling tier {tier!r}; "
                         f"expected one of {SCALING_TIERS}")
    if app not in APP_NAMES:
        raise ValueError(f"unknown application {app!r}")
    return dict(_TIER_PROBLEMS[tier].get(app, {}))


def scaling_processor_counts(tier: str = "quick") -> tuple[int, ...]:
    """The preset processor-count grid for ``tier``."""
    try:
        return _TIER_COUNTS[tier]
    except KeyError:
        raise ValueError(f"unknown scaling tier {tier!r}; "
                         f"expected one of {SCALING_TIERS}") from None


@dataclass(frozen=True)
class ScalingPoint:
    """One processor count on a scaling curve."""

    n_processors: int
    execution_time: int

    def speedup_over(self, base: "ScalingPoint") -> float:
        """Wall-clock speedup of this point relative to ``base``."""
        return base.execution_time / self.execution_time


@dataclass
class ScalingCurve:
    """Execution time vs processor count at a fixed cluster size."""

    app: str
    cluster_size: int
    points: list[ScalingPoint] = field(default_factory=list)

    def speedups(self) -> dict[int, float]:
        """Speedup relative to the smallest processor count measured."""
        if not self.points:
            return {}
        base = min(self.points, key=lambda p: p.n_processors)
        return {p.n_processors: base.execution_time / p.execution_time
                for p in sorted(self.points, key=lambda p: p.n_processors)}


def _run_point(request: RunRequest, n_processors: int,
               trace_cache: "TraceCache | None",
               result_cache: "ResultCache | None") -> int:
    """One scaling point through the canonical pipeline; returns T(P)."""
    session = RunSession(base_config=MachineConfig(n_processors=n_processors),
                         trace_cache=trace_cache)
    plan = session.resolve(request)
    key = None
    if result_cache is not None:
        key = result_cache.key(request.app, request.kwargs, plan.config)
        cached = result_cache.get(key)
        if cached is not None:
            return cached.execution_time
    result = session.run_plan(plan).result
    if result_cache is not None:
        result_cache.put(key, result)
    return result.execution_time


def scaling_curve(app: str, processor_counts: Sequence[int],
                  cluster_size: int = 1,
                  cache_kb: float | None = None,
                  app_kwargs: dict[str, Any] | None = None,
                  seed: int = 12345, *,
                  trace_cache: "TraceCache | None" = None,
                  result_cache: "ResultCache | None" = None) -> ScalingCurve:
    """Measure T(P) for a fixed problem at one cluster size.

    ``cluster_size`` must divide every entry of ``processor_counts``.
    The same seed builds the identical problem at every point.  Points
    run through :class:`~repro.runtime.session.RunSession`; pass a
    ``trace_cache`` to share compiled streams with other curves of the
    same study (a stream-invariant app captures once per processor count
    and replays at every cluster size) and a ``result_cache`` to memoize
    finished points across invocations.
    """
    kwargs = dict(app_kwargs or {})
    if seed != _DEFAULT_SEED:
        kwargs["seed"] = seed
    if trace_cache is None:
        from ..sim.compiled import TraceCache
        trace_cache = TraceCache()
    request = RunRequest.make(app, cluster_size, cache_kb, kwargs)
    curve = ScalingCurve(app, cluster_size)
    for n in processor_counts:
        if n % cluster_size:
            raise ValueError(
                f"cluster size {cluster_size} does not divide P={n}")
        curve.points.append(
            ScalingPoint(n, _run_point(request, n, trace_cache,
                                       result_cache)))
    return curve


def effective_processors(curve: ScalingCurve,
                         marginal_threshold: float = 1.15) -> int:
    """Largest P still delivering a worthwhile marginal speedup.

    Walking the curve in increasing P, stop before the first doubling-step
    whose speedup ratio falls below ``marginal_threshold`` (1.15 ⇒ a
    doubling must buy at least 15% to count as effective).
    """
    ordered = sorted(curve.points, key=lambda p: p.n_processors)
    if not ordered:
        raise ValueError("empty scaling curve")
    effective = ordered[0].n_processors
    for prev, cur in zip(ordered, ordered[1:]):
        if prev.execution_time / cur.execution_time >= marginal_threshold:
            effective = cur.n_processors
        else:
            break
    return effective


def pushout(app: str, processor_counts: Sequence[int], cluster_size: int,
            cache_kb: float | None = None,
            app_kwargs: dict[str, Any] | None = None,
            marginal_threshold: float = 1.15, *,
            trace_cache: "TraceCache | None" = None,
            result_cache: "ResultCache | None" = None,
            ) -> dict[str, Any]:
    """The §4 claim, quantified: unclustered vs clustered scaling.

    Returns both curves' speedups and effective processor counts.  The
    two curves share one trace cache, so each processor count of a
    stream-invariant app is captured once and replayed clustered.
    """
    if trace_cache is None:
        from ..sim.compiled import TraceCache
        trace_cache = TraceCache()
    flat = scaling_curve(app, processor_counts, 1, cache_kb, app_kwargs,
                         trace_cache=trace_cache, result_cache=result_cache)
    clustered = scaling_curve(app, processor_counts, cluster_size,
                              cache_kb, app_kwargs,
                              trace_cache=trace_cache,
                              result_cache=result_cache)
    return {
        "app": app,
        "cluster_size": cluster_size,
        "processor_counts": sorted(processor_counts),
        "speedups_unclustered": flat.speedups(),
        "speedups_clustered": clustered.speedups(),
        "effective_unclustered": effective_processors(flat,
                                                      marginal_threshold),
        "effective_clustered": effective_processors(clustered,
                                                    marginal_threshold),
    }


def scaling_study(app: str, tier: str = "quick", cluster_size: int = 4,
                  cache_kb: float | None = None,
                  processor_counts: Sequence[int] | None = None,
                  marginal_threshold: float = 1.15, *,
                  trace_cache: "TraceCache | None" = None,
                  result_cache: "ResultCache | None" = None,
                  ) -> dict[str, Any]:
    """The full §4 pushout study for one app at one problem tier.

    A :func:`pushout` run at the tier's preset problem size and
    processor-count grid, annotated with the tier metadata the CLI and
    figure layer report.  ``processor_counts`` overrides the preset grid.
    """
    counts = tuple(processor_counts) if processor_counts \
        else scaling_processor_counts(tier)
    problem = scaling_problem(app, tier)
    study = pushout(app, counts, cluster_size, cache_kb, problem,
                    marginal_threshold, trace_cache=trace_cache,
                    result_cache=result_cache)
    study["tier"] = tier
    study["problem"] = problem
    study["cache_kb"] = cache_kb
    study["marginal_threshold"] = marginal_threshold
    return study


def compare_shapes(speedups_a: Mapping[int, float],
                   speedups_b: Mapping[int, float]) -> dict[str, Any]:
    """How closely two speedup curves agree in *shape*.

    Each curve is normalised to its own peak speedup over the common
    processor counts, removing the magnitude difference between problem
    sizes; ``max_divergence`` is the largest pointwise gap between the
    normalised curves (0 = identical shape, 1 = maximally different).
    The CI smoke asserts a quick-tier curve stays within a tolerance of
    the richer tier's shape.
    """
    common = sorted(set(speedups_a) & set(speedups_b))
    if not common:
        raise ValueError("speedup curves share no processor counts")
    peak_a = max(speedups_a[p] for p in common)
    peak_b = max(speedups_b[p] for p in common)
    norm_a = {p: speedups_a[p] / peak_a for p in common}
    norm_b = {p: speedups_b[p] / peak_b for p in common}
    return {
        "processor_counts": common,
        "normalised_a": norm_a,
        "normalised_b": norm_b,
        "max_divergence": max(abs(norm_a[p] - norm_b[p]) for p in common),
    }
