"""Processor-count scaling: does clustering "push out" usable parallelism?

The paper's §4 closes its Ocean discussion with a forward-looking claim it
never quantifies: *"clustering may push out the number of processors that
can be used effectively on a fixed problem size"*, and repeats it in §4's
summary ("the best argument that can be made for clustering ... is that it
pushes out the number of processors that can be used effectively").

This module measures exactly that.  For a fixed problem, sweep the total
processor count with and without clustering and compare

* the **speedup curve** T(P₀)/T(P) (anchored at the smallest P), and
* the **effective processor count**: the largest P whose marginal speedup
  from the previous point still exceeds a threshold (beyond it, adding
  processors is no longer "effective").

If the paper's claim holds, the clustered machine's speedup curve rolls
over later — its effective processor count is ≥ the unclustered one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from ..apps.registry import build_app
from .config import MachineConfig

__all__ = ["ScalingPoint", "ScalingCurve", "scaling_curve",
           "effective_processors", "pushout"]


@dataclass(frozen=True)
class ScalingPoint:
    """One processor count on a scaling curve."""

    n_processors: int
    execution_time: int

    def speedup_over(self, base: "ScalingPoint") -> float:
        """Wall-clock speedup of this point relative to ``base``."""
        return base.execution_time / self.execution_time


@dataclass
class ScalingCurve:
    """Execution time vs processor count at a fixed cluster size."""

    app: str
    cluster_size: int
    points: list[ScalingPoint] = field(default_factory=list)

    def speedups(self) -> dict[int, float]:
        """Speedup relative to the smallest processor count measured."""
        if not self.points:
            return {}
        base = min(self.points, key=lambda p: p.n_processors)
        return {p.n_processors: base.execution_time / p.execution_time
                for p in sorted(self.points, key=lambda p: p.n_processors)}


def scaling_curve(app: str, processor_counts: Sequence[int],
                  cluster_size: int = 1,
                  cache_kb: float | None = None,
                  app_kwargs: dict[str, Any] | None = None,
                  seed: int = 12345) -> ScalingCurve:
    """Measure T(P) for a fixed problem at one cluster size.

    ``cluster_size`` must divide every entry of ``processor_counts``.
    The same seed builds the identical problem at every point.
    """
    curve = ScalingCurve(app, cluster_size)
    for n in processor_counts:
        if n % cluster_size:
            raise ValueError(
                f"cluster size {cluster_size} does not divide P={n}")
        config = MachineConfig(n_processors=n, cluster_size=cluster_size,
                               cache_kb_per_processor=cache_kb)
        application = build_app(app, config, seed=seed,
                                **dict(app_kwargs or {}))
        curve.points.append(
            ScalingPoint(n, application.run().execution_time))
    return curve


def effective_processors(curve: ScalingCurve,
                         marginal_threshold: float = 1.15) -> int:
    """Largest P still delivering a worthwhile marginal speedup.

    Walking the curve in increasing P, stop before the first doubling-step
    whose speedup ratio falls below ``marginal_threshold`` (1.15 ⇒ a
    doubling must buy at least 15% to count as effective).
    """
    ordered = sorted(curve.points, key=lambda p: p.n_processors)
    if not ordered:
        raise ValueError("empty scaling curve")
    effective = ordered[0].n_processors
    for prev, cur in zip(ordered, ordered[1:]):
        if prev.execution_time / cur.execution_time >= marginal_threshold:
            effective = cur.n_processors
        else:
            break
    return effective


def pushout(app: str, processor_counts: Sequence[int], cluster_size: int,
            cache_kb: float | None = None,
            app_kwargs: dict[str, Any] | None = None,
            marginal_threshold: float = 1.15,
            ) -> dict[str, Any]:
    """The §4 claim, quantified: unclustered vs clustered scaling.

    Returns both curves' speedups and effective processor counts.
    """
    flat = scaling_curve(app, processor_counts, 1, cache_kb, app_kwargs)
    clustered = scaling_curve(app, processor_counts, cluster_size,
                              cache_kb, app_kwargs)
    return {
        "app": app,
        "cluster_size": cluster_size,
        "speedups_unclustered": flat.speedups(),
        "speedups_clustered": clustered.speedups(),
        "effective_unclustered": effective_processors(flat,
                                                      marginal_threshold),
        "effective_clustered": effective_processors(clustered,
                                                    marginal_threshold),
    }
