"""Shared first-level-cache cost model (paper §6, Tables 4-7).

The event-driven engine simulates single-cycle cache hits; sharing a first-
level cache costs more than that, in two ways the paper models analytically:

1. **Bank conflicts** (Table 4).  The shared cache has 4 banks per
   processor in the cluster (so an n-processor cluster is 4n-way
   interleaved); every processor issues a reference to a random bank each
   cycle and stalls a cycle on a conflict.  The probability that a
   reference conflicts with at least one other is::

       C = 1 - ((m - 1) / m) ** (n - 1)

   with m banks and n processors — 0.0 / 0.125 / 0.176 / 0.199 for the
   paper's cluster sizes.

2. **Longer hit time** (Table 1 rows 1-3 + Table 5).  A multi-ported,
   multi-banked cache has a 2-cycle (2-processor) or 3-cycle (4/8-
   processor) hit time.  The execution-time cost of adding load delay
   slots is far less than proportional — the compiler schedules
   independent work into the slots — so the paper measured per-application
   *execution-time expansion factors* with Pixie (Table 5).

The combined §6 estimator takes a simulated execution time and multiplies
by the conflict-weighted expansion factor::

    factor(n) = (1 - C)·E(hit(n)) + C·E(hit(n) + 1)

which applied to a cluster sweep reproduces Tables 6 and 7.

Our reproduction of Table 5 is two-fold: the paper's Pixie-measured factors
ship as :data:`PAPER_TABLE5` calibrated constants (we cannot re-run MIPS
basic-block scheduling), and :class:`LoadLatencyProfiler` performs the
analogous measurement on our own engine — re-running an application with
every read charged 1-4 cycles against a perfect memory — for the
measured-on-this-substrate variant (engine loads have no delay-slot
scheduling, so these factors are upper bounds; see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from ..sim.engine import PerfectMemory
from .config import PAPER_CLUSTER_SIZES, MachineConfig
from .executor import SweepExecutor
from .study import CacheKey, ClusteringStudy

__all__ = [
    "bank_conflict_probability", "banks_for_cluster", "conflict_table",
    "PAPER_TABLE5", "ExpansionTable", "LoadLatencyProfiler",
    "SharedCacheCostModel", "ClusteredCostResult",
]

#: banks per processor in the shared cache (paper §3.1: "four banks for
#: each processor in the cluster")
BANKS_PER_PROCESSOR = 4


def banks_for_cluster(n_processors: int,
                      banks_per_processor: int = BANKS_PER_PROCESSOR) -> int:
    """Interleave factor of an n-processor shared cache (4n banks)."""
    if n_processors <= 0:
        raise ValueError("n_processors must be positive")
    return banks_per_processor * n_processors


def bank_conflict_probability(n_processors: int, n_banks: int | None = None) -> float:
    """Paper §6: C = 1 − ((m−1)/m)^(n−1), the chance a reference collides.

    With one processor there is nobody to collide with, so C = 0 regardless
    of the bank count.
    """
    if n_processors <= 1:
        return 0.0
    m = banks_for_cluster(n_processors) if n_banks is None else n_banks
    if m <= 0:
        raise ValueError("n_banks must be positive")
    return 1.0 - ((m - 1) / m) ** (n_processors - 1)


def conflict_table(cluster_sizes: Iterable[int] = PAPER_CLUSTER_SIZES,
                   ) -> list[tuple[int, int, float]]:
    """Rows of the paper's Table 4: (processors, banks, P(collision))."""
    rows = []
    for n in cluster_sizes:
        m = banks_for_cluster(n) if n > 1 else 1
        rows.append((n, m, bank_conflict_probability(n, m)))
    return rows


#: The paper's Table 5 — Pixie-measured execution-time expansion factors
#: for load latencies of 1-4 cycles.
PAPER_TABLE5: dict[str, tuple[float, float, float, float]] = {
    "barnes": (1.0, 1.036, 1.078, 1.123),
    "lu": (1.0, 1.055, 1.114, 1.173),
    "ocean": (1.0, 1.061, 1.144, 1.243),
    "radix": (1.0, 1.051, 1.102, 1.162),
    "volrend": (1.0, 1.051, 1.106, 1.167),
    "mp3d": (1.0, 1.08, 1.14, 1.243),
}


@dataclass(frozen=True)
class ExpansionTable:
    """Execution-time expansion factors for load latencies 1..4 cycles."""

    factors: tuple[float, float, float, float]

    def __post_init__(self) -> None:
        if len(self.factors) != 4:
            raise ValueError("need factors for latencies 1, 2, 3 and 4")
        if abs(self.factors[0] - 1.0) > 1e-9:
            raise ValueError("latency-1 factor must be 1.0 (the baseline)")
        if any(b < a - 1e-12 for a, b in zip(self.factors, self.factors[1:])):
            raise ValueError("expansion factors must be non-decreasing")

    def at(self, latency: float) -> float:
        """Factor at a (possibly fractional) load latency in [1, 4]."""
        if latency < 1.0:
            raise ValueError("load latency below 1 cycle is meaningless")
        if latency >= 4.0:
            # linear extrapolation from the last segment
            slope = self.factors[3] - self.factors[2]
            return self.factors[3] + slope * (latency - 4.0)
        lo = int(latency)
        frac = latency - lo
        a = self.factors[lo - 1]
        b = self.factors[min(lo, 3)]
        return a + (b - a) * frac

    @classmethod
    def paper(cls, app: str) -> "ExpansionTable":
        """The paper's Table 5 entry for ``app`` (KeyError if absent)."""
        return cls(PAPER_TABLE5[app])


@dataclass
class LoadLatencyProfiler:
    """Measure Table-5-style expansion factors on our own engine.

    Runs the application on a 1-processor-per-cluster machine against a
    perfect memory (every reference hits), charging each read 1-4 cycles,
    and reports T(L)/T(1).  This plays Pixie's role for our substrate.
    """

    base_config: MachineConfig = field(default_factory=MachineConfig)
    app_kwargs: dict[str, Any] = field(default_factory=dict)

    def measure(self, app: str) -> ExpansionTable:
        from ..runtime import RunRequest, RunSession

        session = RunSession(base_config=self.base_config)
        request = RunRequest.make(
            app, 1, self.base_config.cache_kb_per_processor, self.app_kwargs)
        times = []
        for latency in (1, 2, 3, 4):
            outcome = session.run_detailed(
                request, memory_factory=lambda cfg, a: PerfectMemory(),
                read_hit_cycles=latency)
            times.append(outcome.result.execution_time)
        base = times[0]
        if base <= 0:
            raise RuntimeError(f"application {app!r} executed no cycles")
        return ExpansionTable(tuple(t / base for t in times))  # type: ignore[arg-type]


@dataclass(frozen=True)
class ClusteredCostResult:
    """One row of Table 6/7: relative execution time per cluster size."""

    app: str
    cache_kb: CacheKey
    relative_time: dict[int, float]  # cluster size -> relative exec time
    raw_time: dict[int, int]         # cluster size -> simulated cycles
    cost_factor: dict[int, float]    # cluster size -> §6 multiplier


class SharedCacheCostModel:
    """The full §6 pipeline: simulate, then charge shared-cache costs.

    Parameters
    ----------
    expansion:
        Per-application expansion tables; defaults to the paper's Table 5.
        Applications without a table fall back to ``default_expansion``.
    default_expansion:
        Used for the three applications the paper's Table 5 omits
        (fft, fmm, raytrace); defaults to the mean of the published rows.
    """

    def __init__(self,
                 expansion: Mapping[str, ExpansionTable] | None = None,
                 default_expansion: ExpansionTable | None = None) -> None:
        if expansion is None:
            expansion = {name: ExpansionTable(f)
                         for name, f in PAPER_TABLE5.items()}
        self.expansion = dict(expansion)
        if default_expansion is None:
            cols = list(zip(*(t.factors for t in self.expansion.values())))
            default_expansion = ExpansionTable(
                tuple(sum(c) / len(c) for c in cols))  # type: ignore[arg-type]
        self.default_expansion = default_expansion

    def table_for(self, app: str) -> ExpansionTable:
        return self.expansion.get(app, self.default_expansion)

    def cost_factor(self, app: str, cluster_size: int,
                    config: MachineConfig | None = None) -> float:
        """factor(n) = (1−C)·E(hit(n)) + C·E(hit(n)+1)."""
        latency_model = (config or MachineConfig()).latency
        hit = latency_model.hit_cycles(cluster_size)
        c = bank_conflict_probability(cluster_size)
        table = self.table_for(app)
        return (1.0 - c) * table.at(hit) + c * table.at(hit + 1)

    def evaluate(self, app: str, cache_kb: CacheKey,
                 base_config: MachineConfig | None = None,
                 cluster_sizes: Iterable[int] = PAPER_CLUSTER_SIZES,
                 app_kwargs: dict[str, Any] | None = None,
                 executor: "SweepExecutor | None" = None,
                 ) -> ClusteredCostResult:
        """Simulate a cluster sweep and apply the cost factors (Table 6/7).

        ``executor`` (optional) parallelizes/memoizes the underlying sweep.
        """
        base_config = base_config or MachineConfig()
        study = ClusteringStudy(app, base_config, dict(app_kwargs or {}),
                                executor=executor)
        sweep = study.cluster_sweep(cache_kb, cluster_sizes)
        raw = {c: p.result.execution_time for c, p in sweep.items()}
        factors = {c: self.cost_factor(app, c, base_config) for c in raw}
        base = raw[min(raw)] * factors[min(raw)]
        rel = {c: raw[c] * factors[c] / base for c in raw}
        return ClusteredCostResult(app, cache_kb, rel, raw, factors)
