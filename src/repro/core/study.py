"""Sweep driver: run one application across cluster sizes and cache sizes.

This module is the experimental harness behind every figure of the paper:

* :meth:`ClusteringStudy.cluster_sweep` — fix the per-processor cache size
  (or infinite), vary processors-per-cluster (Figures 2 and 3);
* :meth:`ClusteringStudy.capacity_sweep` — the full cache-size ×
  cluster-size grid (Figures 4-8);
* :func:`normalize_sweep` — the paper's normalization: every bar is
  expressed as a percentage of the 1-processor-per-cluster execution time
  *at the same cache size* ("The bars for every cache size ... are
  normalized to the 1 processor per cache time with that cache size").

Every point builds a **fresh application instance** (applications carry
their numerical state) with the same seed, so all configurations solve the
identical problem.

Execution is delegated to a :class:`~repro.core.executor.SweepExecutor`:
attach one to parallelize a sweep over processes and/or reuse finished
points from the persistent result cache.  Without one, a default serial,
uncached executor reproduces the historical behaviour exactly.  Either
way, points share compiled traces (:mod:`repro.sim.compiled`): an app's
reference stream is captured once and replayed at every other point of
the sweep, which is where most of a sweep's wall-clock used to go.
Each individual point is ultimately evaluated by the canonical runtime
pipeline, :class:`repro.runtime.RunSession` (``docs/INTERNALS.md`` §8).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Iterable, Mapping

from .config import (PAPER_CACHE_SIZES_KB, PAPER_CLUSTER_SIZES,
                     PAPER_NETWORK_LOADS, PROTOCOLS, MachineConfig)
from .executor import PointSpec, SweepExecutor, raise_failures
from .metrics import RunResult

__all__ = ["SweepPoint", "ClusteringStudy", "normalize_sweep",
           "CacheKey", "cache_label"]

#: a per-processor cache size in KB, or None for infinite
CacheKey = float | int | None


def cache_label(cache_kb: CacheKey) -> str:
    """Human label for a cache size key ('4k', '32k', 'inf')."""
    return "inf" if cache_kb is None else f"{cache_kb:g}k"


@dataclass(frozen=True)
class SweepPoint:
    """One simulated configuration and its outcome."""

    app: str
    cluster_size: int
    cache_kb: CacheKey
    result: RunResult

    @property
    def execution_time(self) -> int:
        return self.result.execution_time


@dataclass
class ClusteringStudy:
    """Runs one application over the paper's machine-organisation grid.

    Parameters
    ----------
    app:
        Registry name of the application.
    base_config:
        Machine template; cluster size and cache size are overridden per
        point.  Defaults to the paper's 64-processor machine.
    app_kwargs:
        Problem-size overrides forwarded to the application constructor.
    executor:
        Evaluation engine for the sweep points.  ``None`` means a fresh
        serial, uncached :class:`SweepExecutor` — the original in-process
        behaviour.  A ``process``-backend executor fans the grid out over
        cores; an attached result cache memoizes finished points.  Failed
        points raise :class:`~repro.core.executor.SweepExecutionError`.
    """

    app: str
    base_config: MachineConfig = field(default_factory=MachineConfig)
    app_kwargs: dict[str, Any] = field(default_factory=dict)
    executor: SweepExecutor | None = None

    def _executor(self) -> SweepExecutor:
        return self.executor if self.executor is not None else SweepExecutor()

    def _spec(self, cluster_size: int, cache_kb: CacheKey) -> PointSpec:
        return PointSpec.make(self.app, cluster_size, cache_kb,
                              self.app_kwargs)

    def run_point(self, cluster_size: int, cache_kb: CacheKey) -> SweepPoint:
        """Simulate one (cluster size, cache size) configuration."""
        outcome = self._executor().run_one(self._spec(cluster_size, cache_kb),
                                           self.base_config)
        raise_failures([outcome])
        return SweepPoint(self.app, cluster_size, cache_kb, outcome.result)

    def _run_grid(self, grid: list[tuple[Any, PointSpec]]) -> list[RunResult]:
        outcomes = self._executor().run([spec for _, spec in grid],
                                        self.base_config)
        raise_failures(outcomes)
        return [o.result for o in outcomes]

    def cluster_sweep(self, cache_kb: CacheKey = None,
                      cluster_sizes: Iterable[int] = PAPER_CLUSTER_SIZES,
                      ) -> dict[int, SweepPoint]:
        """Vary processors-per-cluster at one cache size (Figure 2/3 axis)."""
        grid = [(c, self._spec(c, cache_kb)) for c in cluster_sizes]
        results = self._run_grid(grid)
        return {c: SweepPoint(self.app, c, cache_kb, r)
                for (c, _), r in zip(grid, results)}

    def capacity_sweep(self, cache_sizes: Iterable[CacheKey] = PAPER_CACHE_SIZES_KB,
                       cluster_sizes: Iterable[int] = PAPER_CLUSTER_SIZES,
                       ) -> dict[tuple[CacheKey, int], SweepPoint]:
        """The cache-size × cluster-size grid of Figures 4-8."""
        grid = [((kb, c), self._spec(c, kb))
                for kb in cache_sizes for c in cluster_sizes]
        results = self._run_grid(grid)
        return {(kb, c): SweepPoint(self.app, c, kb, r)
                for ((kb, c), _), r in zip(grid, results)}

    def contention_sweep(self, loads: Iterable[float] = PAPER_NETWORK_LOADS,
                         cluster_sizes: Iterable[int] = PAPER_CLUSTER_SIZES,
                         cache_kb: CacheKey = None,
                         ) -> dict[tuple[float, int], SweepPoint]:
        """The network-load × cluster-size grid under the mesh provider.

        Every point runs with ``provider="mesh"`` and the given
        ``background_load``; topology and hop/directory costs come from
        the base config's ``network`` block.  Load 0.0 anchors the sweep
        with contention *off* — the pure calibrated hop model, which
        matches the flat Table 1 provider's execution times — so the
        degradation baseline and the Table-1 cross-check are the same
        point and every nonzero load measures queueing (the simulated
        traffic's own plus the synthetic background) against an
        uncontended network.

        Returns ``{(background_load, cluster_size): point}``;
        :func:`normalize_sweep` groups such keys by load, and
        :func:`repro.analysis.figures.figure_from_contention_sweep`
        renders execution time vs load at each cluster size.
        """
        grid = []
        for load in loads:
            net = replace(self.base_config.network, provider="mesh",
                          background_load=float(load),
                          contention=load > 0)
            for c in cluster_sizes:
                spec = PointSpec.make(self.app, c, cache_kb,
                                      self.app_kwargs, network=net)
                grid.append(((float(load), c), spec))
        results = self._run_grid(grid)
        return {key: SweepPoint(self.app, key[1], cache_kb, r)
                for (key, _), r in zip(grid, results)}

    def protocol_sweep(self, protocols: Iterable[str] = PROTOCOLS,
                       cluster_sizes: Iterable[int] = PAPER_CLUSTER_SIZES,
                       cache_kb: CacheKey = None,
                       ) -> dict[tuple[str, int], SweepPoint]:
        """The coherence-protocol × cluster-size grid.

        Every point overrides the base config's ``protocol`` through the
        registry seam (:func:`repro.memory.make_memory_system`), so the
        same compiled trace drives a full-bit-vector directory machine,
        a snoopy-bus cluster machine, and a directoryless shared-LLC
        machine over identical workloads.  Points under non-directory
        protocols run on the canonical python engine (the native kernel
        implements the directory protocol only) — correctness is
        unaffected, only speed.

        Returns ``{(protocol, cluster_size): point}``;
        :func:`repro.analysis.figures.figure_from_protocol_sweep`
        renders the cross-protocol comparison and
        :func:`repro.analysis.tables.render_protocol_comparison` the
        companion table.
        """
        grid = [((p, c), PointSpec.make(self.app, c, cache_kb,
                                        self.app_kwargs, protocol=p))
                for p in protocols for c in cluster_sizes]
        results = self._run_grid(grid)
        return {key: SweepPoint(self.app, key[1], cache_kb, r)
                for (key, _), r in zip(grid, results)}


def normalize_sweep(points: Mapping[tuple[CacheKey, int], SweepPoint] |
                    Mapping[int, SweepPoint],
                    baseline_cluster: int = 1,
                    ) -> dict[Any, dict[str, float]]:
    """Express every point's breakdown as % of its cache size's baseline.

    Accepts either a cluster sweep (``{cluster: point}``) or a capacity
    sweep (``{(cache_kb, cluster): point}``).  Each group of points sharing
    a cache size is normalized to the ``baseline_cluster`` member of that
    group, reproducing the paper's bar heights (baseline bar = 100.0).
    """
    items = list(points.items())
    if not items:
        return {}
    if isinstance(items[0][0], tuple):
        def group_of(key: Any) -> Any:
            return key[0]

        def cluster_of(key: Any) -> int:
            return key[1]
    else:
        def group_of(key: Any) -> Any:
            return None

        def cluster_of(key: Any) -> int:
            return key

    baselines: dict[Any, int] = {}
    for key, point in items:
        if cluster_of(key) == baseline_cluster:
            baselines[group_of(key)] = point.result.execution_time
    out: dict[Any, dict[str, float]] = {}
    for key, point in items:
        base = baselines.get(group_of(key))
        if base is None:
            raise ValueError(
                f"no baseline (cluster={baseline_cluster}) run for group "
                f"{group_of(key)!r}")
        out[key] = point.result.breakdown.normalized_to(base)
    return out
