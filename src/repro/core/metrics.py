"""Result metrics: execution-time breakdown and miss accounting.

The paper reports every experiment as a stacked bar of **normalized execution
time** split into four components (Figures 2-8):

* ``cpu``   — busy time: computation plus single-cycle cache hits,
* ``load``  — read-miss stall time (only READ misses stall; WRITE and
  UPGRADE latencies are hidden by store buffers + relaxed consistency, §3.1),
* ``merge`` — time blocked on a line already being fetched by a cluster-mate
  (the paper's *merge stall*, the signature of too-late prefetching),
* ``sync``  — barrier/lock wait time, including end-of-program slack.

Misses are classified along two axes: the paper's protocol kinds
(READ / WRITE / UPGRADE, §3.1) and the textbook cause classes the paper's
argument rests on (cold, coherence/communication, capacity — §2).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Mapping

__all__ = ["MissKind", "MissCause", "MissCounters", "NetworkStats",
           "TimeBreakdown", "RunResult"]


def _num(value: Any) -> int | float:
    """Validate a JSON number, preserving its exact type.

    Breakdown components are ints per processor but *means* over processors
    (floats) in :attr:`RunResult.breakdown`, so coercing to either int or
    float would break byte-identical round-trips.
    """
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValueError(f"expected a number, got {value!r}")
    return value


class MissKind(Enum):
    """Protocol-level miss taxonomy (paper §3.1)."""

    READ = "read"        #: read access, line absent — the only stalling miss
    WRITE = "write"      #: write access, line absent
    UPGRADE = "upgrade"  #: write access, line present but SHARED
    MERGE = "merge"      #: read to a line with an outstanding fill

    # members are singletons compared by identity, so the id-based C-level
    # hash is consistent with equality and avoids Enum.__hash__'s Python
    # frame on every by-kind dict access
    __hash__ = object.__hash__


class MissCause(Enum):
    """Cause-level miss taxonomy used in the paper's analysis (§2)."""

    COLD = "cold"            #: first access to the line by this cluster
    COHERENCE = "coherence"  #: line previously invalidated out of the cluster
    CAPACITY = "capacity"    #: line previously replaced (finite caches only)

    # hot: ``by_cause[cause] += 1`` runs once per miss — see MissKind
    __hash__ = object.__hash__


@dataclass(slots=True)
class MissCounters:
    """Counts of references, hits, and misses by kind and by cause.

    ``references`` and ``hits`` are **derived**, not stored: every access
    is a read or a write, and every access ultimately resolves as exactly
    one of hit / read miss / write miss / upgrade miss, so

    * ``references = reads + writes``
    * ``hits = reads + writes - read_misses - write_misses - upgrade_misses``

    The protocol layer therefore increments one counter per access instead
    of three — a real saving on the hit path, which dominates every
    simulation.  The identities are exact whenever no access is mid-flight
    (between a merge and its retry, a read is counted in ``reads`` but not
    yet in ``hits``/``read_misses``); end-of-run results, serialization and
    aggregation all satisfy them.  Serialized payloads still carry both
    keys, byte-identical to the stored-counter format.
    """

    reads: int = 0
    writes: int = 0
    read_misses: int = 0
    write_misses: int = 0
    upgrade_misses: int = 0
    merges: int = 0
    #: merged reads whose line was invalidated mid-flight and re-fetched
    merge_refetches: int = 0
    #: first hit by a processor other than the one whose miss fetched the
    #: line — the cluster *prefetching* benefit of the paper's §2
    prefetch_hits: int = 0
    by_cause: dict[MissCause, int] = field(
        default_factory=lambda: {c: 0 for c in MissCause})

    @property
    def references(self) -> int:
        """Total accesses (every reference is a read or a write)."""
        return self.reads + self.writes

    @property
    def hits(self) -> int:
        """Accesses that resolved in-cache (references minus all misses)."""
        return (self.reads + self.writes - self.read_misses
                - self.write_misses - self.upgrade_misses)

    @property
    def misses(self) -> int:
        """READ + WRITE misses (the paper's cluster-memory miss count).

        UPGRADEs are not data fetches and MERGEs piggyback on an existing
        fetch, so neither adds to the miss count.
        """
        return self.read_misses + self.write_misses

    @property
    def miss_rate(self) -> float:
        """Misses per reference (0.0 when nothing was referenced)."""
        return self.misses / self.references if self.references else 0.0

    def record_cause(self, cause: MissCause) -> None:
        """Attribute one miss to a cause class."""
        self.by_cause[cause] += 1

    def merged_into(self, other: "MissCounters") -> None:
        """Accumulate self into ``other`` (used to aggregate clusters).

        The derived ``references``/``hits`` need no accumulation: both are
        linear in the stored fields, so the sum's derived values equal the
        derived values' sum.
        """
        other.reads += self.reads
        other.writes += self.writes
        other.read_misses += self.read_misses
        other.write_misses += self.write_misses
        other.upgrade_misses += self.upgrade_misses
        other.merges += self.merges
        other.merge_refetches += self.merge_refetches
        other.prefetch_hits += self.prefetch_hits
        for cause, n in self.by_cause.items():
            other.by_cause[cause] += n

    # ------------------------------------------------------- serialization
    #: JSON keys, in the emitted order; references/hits are derived but
    #: still serialized so the payload format is unchanged
    _INT_FIELDS = ("references", "reads", "writes", "hits", "read_misses",
                   "write_misses", "upgrade_misses", "merges",
                   "merge_refetches", "prefetch_hits")
    #: the stored (non-derived) subset — what the constructor accepts
    _STORED_FIELDS = ("reads", "writes", "read_misses", "write_misses",
                      "upgrade_misses", "merges", "merge_refetches",
                      "prefetch_hits")

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON representation (cause keys become their strings)."""
        out: dict[str, Any] = {f: getattr(self, f) for f in self._INT_FIELDS}
        out["by_cause"] = {c.value: n for c, n in self.by_cause.items()}
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MissCounters":
        """Inverse of :meth:`to_dict`; raises ``ValueError`` on bad shape.

        ``references``/``hits`` must be present (every serialized payload
        carries them) and must satisfy the derivation identities — a
        mismatch means the payload was hand-edited or corrupted.
        """
        try:
            kwargs = {f: _num(data[f]) for f in cls._STORED_FIELDS}
            references = _num(data["references"])
            hits = _num(data["hits"])
            by_cause = {MissCause(k): _num(n)
                        for k, n in data["by_cause"].items()}
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise ValueError(f"malformed MissCounters payload: {exc}") from exc
        for cause in MissCause:  # absent causes count zero
            by_cause.setdefault(cause, 0)
        out = cls(by_cause=by_cause, **kwargs)
        if references != out.references or hits != out.hits:
            raise ValueError(
                f"inconsistent MissCounters payload: references={references} "
                f"hits={hits} but derived references={out.references} "
                f"hits={out.hits}")
        return out


@dataclass
class NetworkStats:
    """Interconnect counters accumulated by a hop-based latency provider.

    Filled in by :class:`repro.network.latency.MeshLatency`; runs under the
    default flat-table provider carry no network stats (``RunResult.network
    is None``).

    Attributes
    ----------
    messages:
        Directory transactions routed over the network (one per miss that
        reached the home node).
    hops:
        Total hops traversed by all transaction legs.
    link_busy_cycles:
        Cycles of link occupancy recorded by the contention model.
    directory_busy_cycles:
        Cycles of home-directory occupancy recorded by the contention model.
    queue_delay_cycles:
        Total queueing delay added on top of zero-load latencies.
    peak_link_utilization:
        Highest per-link utilization (including background load) observed
        when a transaction was routed.
    """

    messages: int = 0
    hops: int = 0
    link_busy_cycles: int = 0
    directory_busy_cycles: int = 0
    queue_delay_cycles: int = 0
    peak_link_utilization: float = 0.0

    # ------------------------------------------------------- serialization
    _INT_FIELDS = ("messages", "hops", "link_busy_cycles",
                   "directory_busy_cycles", "queue_delay_cycles")

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {f: getattr(self, f) for f in self._INT_FIELDS}
        out["peak_link_utilization"] = self.peak_link_utilization
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "NetworkStats":
        try:
            kwargs = {f: _num(data[f]) for f in cls._INT_FIELDS}
            peak = _num(data["peak_link_utilization"])
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise ValueError(f"malformed NetworkStats payload: {exc}") from exc
        return cls(peak_link_utilization=peak, **kwargs)


@dataclass(slots=True)
class TimeBreakdown:
    """Execution time split into the paper's four stacked components.

    ``slots=True``: the engine's replay loop increments components on every
    op, and slot descriptors make those attribute stores a fixed-offset
    write instead of an instance-dict update.
    """

    cpu: int = 0
    load: int = 0
    merge: int = 0
    sync: int = 0

    @property
    def total(self) -> int:
        """Sum of all components (for one processor: its wall-clock time)."""
        return self.cpu + self.load + self.merge + self.sync

    def add(self, other: "TimeBreakdown") -> None:
        """Accumulate another breakdown into this one."""
        self.cpu += other.cpu
        self.load += other.load
        self.merge += other.merge
        self.sync += other.sync

    def scaled(self, factor: float) -> "TimeBreakdown":
        """Breakdown with every component multiplied by ``factor``.

        Used by the §6 shared-cache cost estimator; components become
        floats conceptually but are kept as rounded ints to preserve the
        sum-to-total invariant approximately.
        """
        return TimeBreakdown(
            cpu=round(self.cpu * factor),
            load=round(self.load * factor),
            merge=round(self.merge * factor),
            sync=round(self.sync * factor),
        )

    def fractions(self) -> dict[str, float]:
        """Each component as a fraction of the total (zeros if empty)."""
        t = self.total
        if t == 0:
            return {"cpu": 0.0, "load": 0.0, "merge": 0.0, "sync": 0.0}
        return {"cpu": self.cpu / t, "load": self.load / t,
                "merge": self.merge / t, "sync": self.sync / t}

    def normalized_to(self, baseline_total: int) -> dict[str, float]:
        """Components as percentages of a baseline run's total time.

        This is exactly the paper's bar format: every bar is normalized to
        the 1-processor-per-cluster execution time, so the baseline bar
        reads 100.0 and the components stack to the bar height.
        """
        if baseline_total <= 0:
            raise ValueError("baseline_total must be positive")

        # multiply before dividing: 100.0 * t / t is exactly 100.0 for any
        # integer t below 2**46, while t * (100.0 / t) need not be
        def pct(value: float) -> float:
            return 100.0 * value / baseline_total

        return {"cpu": pct(self.cpu), "load": pct(self.load),
                "merge": pct(self.merge), "sync": pct(self.sync),
                "total": pct(self.total)}

    # ------------------------------------------------------- serialization
    def to_dict(self) -> dict[str, int]:
        return {"cpu": self.cpu, "load": self.load, "merge": self.merge,
                "sync": self.sync}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TimeBreakdown":
        try:
            return cls(cpu=_num(data["cpu"]), load=_num(data["load"]),
                       merge=_num(data["merge"]), sync=_num(data["sync"]))
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(
                f"malformed TimeBreakdown payload: {exc}") from exc


@dataclass
class RunResult:
    """Everything one simulation run produces.

    Attributes
    ----------
    execution_time:
        Global finish time in cycles (max over processors).
    breakdown:
        Mean per-processor time breakdown.  Its ``total`` equals
        ``execution_time`` because end-of-run slack is charged to ``sync``.
    per_processor:
        Each processor's own breakdown, in processor order.
    misses:
        Aggregate miss counters over all clusters.
    per_cluster_misses:
        Miss counters per cluster, in cluster order.
    network:
        Interconnect counters when a hop-based latency provider ran
        (``None`` under the default flat-table provider).
    """

    execution_time: int
    breakdown: TimeBreakdown
    per_processor: list[TimeBreakdown]
    misses: MissCounters
    per_cluster_misses: list[MissCounters]
    network: NetworkStats | None = None

    @property
    def n_processors(self) -> int:
        return len(self.per_processor)

    # ------------------------------------------------------- serialization
    # The JSON form is the persistent-result-cache storage format and the
    # determinism-test comparison format: ``to_json`` is canonical (sorted
    # keys, fixed separators), so byte-equal JSON ⟺ equal results.
    def to_dict(self) -> dict[str, Any]:
        out = {
            "execution_time": self.execution_time,
            "breakdown": self.breakdown.to_dict(),
            "per_processor": [b.to_dict() for b in self.per_processor],
            "misses": self.misses.to_dict(),
            "per_cluster_misses": [m.to_dict()
                                   for m in self.per_cluster_misses],
        }
        # absent (not null) when no network model ran: keeps the encoding of
        # flat-table runs — and therefore every golden fixture — unchanged
        if self.network is not None:
            out["network"] = self.network.to_dict()
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunResult":
        try:
            return cls(
                execution_time=_num(data["execution_time"]),
                breakdown=TimeBreakdown.from_dict(data["breakdown"]),
                per_processor=[TimeBreakdown.from_dict(d)
                               for d in data["per_processor"]],
                misses=MissCounters.from_dict(data["misses"]),
                per_cluster_misses=[MissCounters.from_dict(d)
                                    for d in data["per_cluster_misses"]],
                network=(NetworkStats.from_dict(data["network"])
                         if data.get("network") is not None else None),
            )
        except ValueError:
            raise
        except (KeyError, TypeError) as exc:
            raise ValueError(f"malformed RunResult payload: {exc}") from exc

    def to_json(self, indent: int | None = None) -> str:
        """Canonical JSON encoding (round-trips via :meth:`from_json`)."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":") if indent is None else None,
                          indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "RunResult":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"malformed RunResult JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise ValueError("malformed RunResult JSON: not an object")
        return cls.from_dict(data)
