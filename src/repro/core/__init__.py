"""Core of the clustering study: machine configuration, metrics, sweeps,
parallel execution with result caching, contention cost model, and
working-set profiling."""

from .config import (PAPER_CACHE_SIZES_KB, PAPER_CLUSTER_SIZES, LatencyModel,
                     MachineConfig)
from .metrics import (MissCause, MissCounters, MissKind, RunResult,
                      TimeBreakdown)

__all__ = [
    "MachineConfig", "LatencyModel",
    "PAPER_CLUSTER_SIZES", "PAPER_CACHE_SIZES_KB",
    "MissKind", "MissCause", "MissCounters", "TimeBreakdown", "RunResult",
    "ClusteringStudy", "SweepPoint", "normalize_sweep", "cache_label",
    "SweepExecutor", "PointSpec", "PointOutcome", "SweepExecutionError",
    "ResultCache", "TraceStore",
    "SharedCacheCostModel", "LoadLatencyProfiler", "ExpansionTable",
    "bank_conflict_probability", "banks_for_cluster", "conflict_table",
    "PAPER_TABLE5",
    "working_set_curve", "knee_of", "overlap_benefit", "WorkingSetCurve",
    "residency_profile", "occupancy_skew",
    "ScalingCurve", "ScalingPoint", "scaling_curve", "effective_processors",
    "pushout",
]

from .contention import (PAPER_TABLE5, ExpansionTable, LoadLatencyProfiler,
                         SharedCacheCostModel, bank_conflict_probability,
                         banks_for_cluster, conflict_table)
from .executor import (PointOutcome, PointSpec, SweepExecutionError,
                       SweepExecutor)
from .resultcache import ResultCache, TraceStore
from .scaling import (ScalingCurve, ScalingPoint, effective_processors,
                      pushout, scaling_curve)
from .study import ClusteringStudy, SweepPoint, cache_label, normalize_sweep
from .workingset import (WorkingSetCurve, knee_of, occupancy_skew,
                         overlap_benefit, residency_profile,
                         working_set_curve)
