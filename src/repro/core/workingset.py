"""Working-set profiling (paper §5 and Table 3).

The paper's finite-capacity argument rests on the applications' working-set
structure: "scientific and engineering applications often have sharply
defined working sets", and clustering pays off exactly when the *overlapped*
working set of a cluster fits a cache that the individual working sets did
not.  This module measures that directly:

* :func:`working_set_curve` — miss rate (or read-stall time) as a function
  of per-processor cache size at a fixed cluster size;
* :func:`knee_of` — the smallest cache size whose miss rate is within a
  tolerance of the infinite-cache (cold+coherence only) floor: the paper's
  "working set" size;
* :func:`overlap_benefit` — how much the knee shrinks per processor when
  processors share a cache: the quantitative form of "overlapping working
  sets make more efficient use of cache real estate".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from .config import MachineConfig
from .executor import SweepExecutor
from .study import CacheKey, ClusteringStudy

__all__ = ["WorkingSetPoint", "WorkingSetCurve", "working_set_curve",
           "knee_of", "overlap_benefit", "residency_profile",
           "occupancy_skew", "DEFAULT_WS_SIZES_KB"]

#: log-spaced per-processor cache sizes probed by default (KB; None = inf)
DEFAULT_WS_SIZES_KB: tuple[CacheKey, ...] = (1, 2, 4, 8, 16, 32, 64, None)


@dataclass(frozen=True)
class WorkingSetPoint:
    """Miss behaviour at one per-processor cache size."""

    cache_kb: CacheKey
    miss_rate: float
    capacity_misses: int
    execution_time: int


@dataclass
class WorkingSetCurve:
    """Miss rate vs cache size for one application/cluster configuration."""

    app: str
    cluster_size: int
    points: list[WorkingSetPoint] = field(default_factory=list)

    def finite_points(self) -> list[WorkingSetPoint]:
        return [p for p in self.points if p.cache_kb is not None]

    def infinite_point(self) -> WorkingSetPoint | None:
        for p in self.points:
            if p.cache_kb is None:
                return p
        return None

    def rows(self) -> list[tuple[str, float, int]]:
        """(label, miss rate, capacity misses) rows for display."""
        out = []
        for p in self.points:
            label = "inf" if p.cache_kb is None else f"{p.cache_kb:g}KB"
            out.append((label, p.miss_rate, p.capacity_misses))
        return out


def working_set_curve(app: str,
                      sizes_kb: Sequence[CacheKey] = DEFAULT_WS_SIZES_KB,
                      cluster_size: int = 1,
                      base_config: MachineConfig | None = None,
                      app_kwargs: dict[str, Any] | None = None,
                      executor: "SweepExecutor | None" = None,
                      ) -> WorkingSetCurve:
    """Measure the miss-rate-vs-cache-size curve of one application.

    ``executor`` (optional) evaluates the probe sizes in parallel and/or
    serves them from the persistent result cache.
    """
    from .metrics import MissCause

    study = ClusteringStudy(app, base_config or MachineConfig(),
                            dict(app_kwargs or {}), executor=executor)
    sweep = study.capacity_sweep(cache_sizes=list(sizes_kb),
                                 cluster_sizes=(cluster_size,))
    curve = WorkingSetCurve(app, cluster_size)
    for kb in sizes_kb:
        point = sweep[(kb, cluster_size)]
        m = point.result.misses
        curve.points.append(WorkingSetPoint(
            cache_kb=kb,
            miss_rate=m.miss_rate,
            capacity_misses=m.by_cause[MissCause.CAPACITY],
            execution_time=point.result.execution_time,
        ))
    return curve


def knee_of(curve: WorkingSetCurve, tolerance: float = 0.10) -> CacheKey:
    """Smallest cache whose miss rate is within ``tolerance`` of infinite.

    Returns ``None`` (infinite) if no finite probe reaches the floor —
    i.e. the working set is larger than every probed size (paper: Raytrace
    and MP3D have "large" working sets).
    """
    inf_point = curve.infinite_point()
    if inf_point is None:
        raise ValueError("curve has no infinite-cache point to anchor the knee")
    floor = inf_point.miss_rate
    ceiling = floor * (1.0 + tolerance) + 1e-12
    for p in sorted(curve.finite_points(), key=lambda p: p.cache_kb):
        if p.miss_rate <= ceiling:
            return p.cache_kb
    return None


def residency_profile(app: str, cache_kb: float,
                      associativity: int | None = None,
                      cluster_size: int = 1,
                      base_config: MachineConfig | None = None,
                      app_kwargs: dict[str, Any] | None = None,
                      ) -> list[list[list[int]]]:
    """End-of-run cache residency, per cluster and per set.

    Runs the application once and snapshots every cluster cache via
    ``resident_lines_by_set()`` — ``result[cluster][set_index]`` is that
    set's resident lines in LRU → MRU order (a fully associative cache
    reports one pseudo-set).  Feed per-cluster snapshots to
    :func:`occupancy_skew` to quantify conflict pressure under the
    set-associative extension: capacity pressure fills sets evenly, while
    address-conflict pressure piles lines into few sets.
    """
    from ..runtime import RunRequest, RunSession

    # associativity is a machine knob RunRequest does not carry, so it
    # goes into the session's base config; cluster/cache resolve per-point
    base = (base_config or MachineConfig()).with_associativity(associativity)
    session = RunSession(base_config=base)
    outcome = session.run_detailed(
        RunRequest.make(app, cluster_size, cache_kb, app_kwargs))
    return [cache.resident_lines_by_set()
            for cache in outcome.memory.caches]


def occupancy_skew(by_set: Sequence[Sequence[int]]) -> float:
    """Max-to-mean set occupancy of one cache snapshot (1.0 = balanced).

    Values well above 1.0 mean a few sets carry most of the residency —
    the destructive-interference signature the paper's §7 names as future
    work.  An empty cache (or a snapshot with no resident lines) skews 0.
    """
    if not by_set:
        return 0.0
    sizes = [len(s) for s in by_set]
    total = sum(sizes)
    if total == 0:
        return 0.0
    return max(sizes) / (total / len(sizes))


def overlap_benefit(app: str, cache_kb: float,
                    cluster_sizes: Iterable[int] = (1, 2, 4, 8),
                    base_config: MachineConfig | None = None,
                    app_kwargs: dict[str, Any] | None = None,
                    executor: "SweepExecutor | None" = None,
                    ) -> dict[int, float]:
    """Capacity misses per processor vs cluster size at fixed per-proc cache.

    A ratio well below 1.0 at large cluster sizes is working-set overlap:
    the shared cache holds one copy of read-shared data instead of one per
    processor.  (Disjoint working sets — LU, Ocean interiors — give ≈1.0.)
    """
    from .metrics import MissCause

    study = ClusteringStudy(app, base_config or MachineConfig(),
                            dict(app_kwargs or {}), executor=executor)
    cluster_sizes = list(cluster_sizes)
    sweep = study.cluster_sweep(cache_kb, cluster_sizes)
    out: dict[int, float] = {}
    baseline: float | None = None
    for c in cluster_sizes:
        point = sweep[c]
        cap = point.result.misses.by_cause[MissCause.CAPACITY]
        if baseline is None:
            baseline = float(cap) if cap else 1.0
        out[c] = cap / baseline if baseline else 0.0
    return out
