"""Machine configuration: cluster geometry, cache sizing, and the paper's
Table 1 latency model.

The paper's fixed experimental frame (§3.1):

* 64 processors total, clustered 1 / 2 / 4 / 8 per cluster (we also allow a
  64-way "one big cluster" used for the ``inf`` bar of Figure 3);
* one shared, fully associative, LRU cluster cache per cluster, 64-byte
  lines, sized *per processor* (so an 8-way cluster with 4 KB/processor has
  one 32 KB shared cache);
* distributed memory with full-bit-vector directories and the latencies of
  Table 1.

Everything the rest of the library needs to know about the machine lives in
:class:`MachineConfig`; experiments construct variants with
:meth:`MachineConfig.with_clusters` / :meth:`with_cache_kb`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Mapping

__all__ = ["DEFAULT_LINE_SIZE", "DEFAULT_PAGE_SIZE", "LatencyModel",
           "MachineConfig", "NetworkConfig", "NETWORK_PROVIDERS",
           "NETWORK_TOPOLOGIES", "PAPER_CLUSTER_SIZES",
           "PAPER_CACHE_SIZES_KB", "PAPER_NETWORK_LOADS", "PROTOCOLS"]

#: Cache line size used throughout the paper's experiments (bytes).
DEFAULT_LINE_SIZE = 64

#: Page size used for first-touch round-robin allocation (bytes).  The paper
#: does not state one; 4 KB is the canonical choice for DASH-era machines.
DEFAULT_PAGE_SIZE = 4096

#: Cluster sizes swept throughout the paper's evaluation.
PAPER_CLUSTER_SIZES = (1, 2, 4, 8)

#: Finite per-processor cache sizes of Figures 4-8, in KB (None = infinite).
PAPER_CACHE_SIZES_KB = (4, 16, 32, None)

#: Background network loads swept by the contention-sensitivity study
#: (extension: the paper models no contention, i.e. load 0 only).
PAPER_NETWORK_LOADS = (0.0, 0.3, 0.6, 0.8)


@dataclass(frozen=True)
class LatencyModel:
    """Memory-operation latencies in processor cycles (paper Table 1).

    ================================================================  ======
    Memory operation                                                  Cycles
    ================================================================  ======
    Hit in cache (1 processor per cluster)                                 1
    Hit in cache (2 processors per cluster)                                2
    Hit in cache (4 and 8 processors per cluster)                          3
    Miss to local home, satisfied by home (dir SHARED/NOT_CACHED)         30
    Miss to local home, satisfied by remote cluster (dir EXCL)           100
    Miss to remote home, satisfied by home (dir NOT_CACHED/SHARED)       100
    Miss to remote home, satisfied by third-party cluster (dir EXCL)     150
    ================================================================  ======

    The event-driven engine simulates with single-cycle hits (as the paper's
    Tango-lite runs did); the cluster-size-dependent hit time enters only
    through the §6 shared-cache cost estimator.
    """

    local_clean: int = 30
    local_dirty_remote: int = 100
    remote_clean: int = 100
    remote_dirty_third_party: int = 150
    #: hit latency by processors-per-cluster; larger clusters use the max.
    hit_by_cluster_size: tuple[tuple[int, int], ...] = ((1, 1), (2, 2), (4, 3), (8, 3))

    def hit_cycles(self, cluster_size: int) -> int:
        """Shared-cache hit time for a given cluster size (Table 1 rows 1-3).

        Cluster sizes beyond the table (e.g. the 64-way 'inf' configuration)
        use the largest tabulated value.  The row with the largest cluster
        size not exceeding ``cluster_size`` wins regardless of the order the
        rows are listed in, so custom tables need not be sorted.
        """
        if cluster_size <= 0:
            raise ValueError("cluster_size must be positive")
        best = None
        best_size = 0
        for size, cycles in self.hit_by_cluster_size:
            if size <= cluster_size and size >= best_size:
                best_size = size
                best = cycles
        if best is None:
            raise ValueError(f"no hit latency tabulated at or below {cluster_size}")
        return best

    def miss_cycles(self, requester: int, home: int, dirty_owner: int | None) -> int:
        """Latency of a miss serviced by the directory protocol.

        Parameters
        ----------
        requester:
            Cluster issuing the miss.
        home:
            Home cluster of the line.
        dirty_owner:
            Cluster holding the line EXCLUSIVE, or ``None`` when the
            directory can supply the data itself (NOT_CACHED / SHARED).
        """
        if dirty_owner is None:
            return self.local_clean if requester == home else self.remote_clean
        if dirty_owner == requester:
            raise ValueError("requesting cluster cannot be the dirty owner on a miss")
        if requester == home:
            # 2 hops: requester(=home) -> owner -> requester.
            return self.local_dirty_remote
        if dirty_owner == home:
            # Data dirty in the home cluster's own cache: satisfied by home.
            return self.remote_clean
        return self.remote_dirty_third_party

    def to_dict(self) -> dict:
        """JSON-stable representation (used in result-cache keys)."""
        return {
            "local_clean": self.local_clean,
            "local_dirty_remote": self.local_dirty_remote,
            "remote_clean": self.remote_clean,
            "remote_dirty_third_party": self.remote_dirty_third_party,
            "hit_by_cluster_size": [list(pair)
                                    for pair in self.hit_by_cluster_size],
        }


#: recognised coherence protocols.  The names are validated here (the
#: config layer must stay import-free of :mod:`repro.memory`); the
#: factories that realise them live in the ``repro.memory`` protocol
#: registry, which is required to cover exactly this tuple.
#:
#: * ``"directory"`` — the paper's full-bit-vector directory over shared
#:   cluster caches (§3.1; the default, bit-identical to history);
#: * ``"snoopy"`` — per-processor caches on an intra-cluster snoopy bus
#:   (paper §2's second cluster type, extension E-X2);
#: * ``"dls"`` — directoryless shared last-level cache: the home LLC
#:   slice is the coherence point, no sharer bit-masks (Liu et al.,
#:   arXiv 1206.4753).
PROTOCOLS = ("directory", "snoopy", "dls")

#: recognised interconnect latency providers
NETWORK_PROVIDERS = ("table", "mesh")

#: recognised interconnect topologies
NETWORK_TOPOLOGIES = ("mesh", "crossbar")


@dataclass(frozen=True)
class NetworkConfig:
    """Interconnect model selection and its cost knobs.

    The default (``provider="table"``) charges every miss the flat Table 1
    latency — the paper's §3.1 methodology, bit-identical to the historical
    behaviour.  ``provider="mesh"`` replaces the flat table with a
    hop-based model over a 2D mesh (or ideal crossbar) of cluster nodes:
    per-hop wire + router cycles, directory occupancy at the home node,
    and optional M/D/1 queueing delays driven by the simulated miss
    stream plus a synthetic ``background_load`` (see
    :mod:`repro.network`).

    Attributes
    ----------
    provider:
        ``"table"`` (flat Table 1 latencies) or ``"mesh"`` (hop-based).
    topology:
        ``"mesh"`` (2D, near-square, dimension-order routed) or
        ``"crossbar"`` (every distinct pair one hop apart, per-port
        contention) — only consulted by the mesh provider.
    wire_cycles:
        Wire traversal cycles per hop.
    router_cycles:
        Router pipeline cycles per hop.
    directory_cycles:
        Directory/memory occupancy per transaction at the home node (the
        service time of the home's queue under contention).
    background_load:
        Synthetic utilization in ``[0, 1)`` added to every link and
        directory — the "network load" axis of the contention sweep.
    contention:
        Model queueing delays at links and directories (mesh provider
        only).  With it off
        the mesh provider is a pure zero-load hop model.
    """

    provider: str = "table"
    topology: str = "mesh"
    wire_cycles: int = 1
    router_cycles: int = 1
    directory_cycles: int = 6
    background_load: float = 0.0
    contention: bool = True

    def __post_init__(self) -> None:
        if self.provider not in NETWORK_PROVIDERS:
            raise ValueError(f"unknown network provider {self.provider!r}; "
                             f"choose from {NETWORK_PROVIDERS}")
        if self.topology not in NETWORK_TOPOLOGIES:
            raise ValueError(f"unknown network topology {self.topology!r}; "
                             f"choose from {NETWORK_TOPOLOGIES}")
        if self.wire_cycles < 0 or self.router_cycles < 0:
            raise ValueError("wire_cycles and router_cycles must be >= 0")
        if self.wire_cycles + self.router_cycles <= 0:
            raise ValueError("wire_cycles + router_cycles must be positive")
        if self.directory_cycles <= 0:
            raise ValueError("directory_cycles must be positive")
        if not (0.0 <= self.background_load < 1.0):
            raise ValueError("background_load must be in [0, 1)")

    @property
    def hop_cycles(self) -> int:
        """Cost of one hop (wire + router)."""
        return self.wire_cycles + self.router_cycles

    def to_dict(self) -> dict:
        """JSON-stable representation (used in result-cache keys)."""
        return {
            "provider": self.provider,
            "topology": self.topology,
            "wire_cycles": self.wire_cycles,
            "router_cycles": self.router_cycles,
            "directory_cycles": self.directory_cycles,
            "background_load": self.background_load,
            "contention": self.contention,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "NetworkConfig":
        """Inverse of :meth:`to_dict`; raises ``ValueError`` on bad shape.

        Unknown keys are rejected rather than ignored so a misspelled
        knob in a wire payload or hand-written config surfaces as an
        error instead of silently running the default.
        """
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown NetworkConfig field(s): {unknown}")
        try:
            return cls(**dict(data))
        except TypeError as exc:
            raise ValueError(f"malformed NetworkConfig payload: {exc}") from exc


@dataclass(frozen=True)
class MachineConfig:
    """Complete description of one simulated machine organisation.

    Attributes
    ----------
    n_processors:
        Total processor count (the paper fixes 64).
    cluster_size:
        Processors sharing one cluster cache; must divide ``n_processors``.
    cache_kb_per_processor:
        Per-processor share of the cluster cache in KB, or ``None`` for
        infinite caches.  Cluster capacity = this × ``cluster_size``.
    associativity:
        ``None`` = fully associative (the paper's model); an int enables the
        set-associative extension.
    line_size, page_size:
        Geometry in bytes.
    latency:
        The Table 1 latency model.
    network:
        Interconnect model selection (:class:`NetworkConfig`).  The default
        flat-table provider reproduces the paper exactly; the mesh provider
        makes miss latency hop- and load-dependent.
    protocol:
        Coherence-protocol backend, one of :data:`PROTOCOLS`.  The default
        ``"directory"`` is the paper's protocol and reproduces the
        historical results bit for bit; the name selects a memory-system
        factory from the ``repro.memory`` protocol registry everywhere a
        run constructs its memory system.
    """

    n_processors: int = 64
    cluster_size: int = 1
    cache_kb_per_processor: float | None = None
    associativity: int | None = None
    line_size: int = DEFAULT_LINE_SIZE
    page_size: int = DEFAULT_PAGE_SIZE
    latency: LatencyModel = field(default_factory=LatencyModel)
    network: NetworkConfig = field(default_factory=NetworkConfig)
    protocol: str = "directory"

    def __post_init__(self) -> None:
        if self.protocol not in PROTOCOLS:
            raise ValueError(f"unknown coherence protocol {self.protocol!r}; "
                             f"choose from {PROTOCOLS}")
        if self.n_processors <= 0:
            raise ValueError("n_processors must be positive")
        if self.cluster_size <= 0:
            raise ValueError("cluster_size must be positive")
        if self.n_processors % self.cluster_size != 0:
            raise ValueError(
                f"cluster_size {self.cluster_size} does not divide "
                f"n_processors {self.n_processors}"
            )
        if self.cache_kb_per_processor is not None and self.cache_kb_per_processor <= 0:
            raise ValueError("cache_kb_per_processor must be positive or None")
        if self.line_size <= 0 or self.page_size % self.line_size != 0:
            raise ValueError("page_size must be a positive multiple of line_size")
        if self.associativity is not None and self.associativity <= 0:
            raise ValueError("associativity must be positive or None")

    # ---------------------------------------------------------------- derived
    @property
    def n_clusters(self) -> int:
        """Number of clusters (= directory/memory nodes) in the machine."""
        return self.n_processors // self.cluster_size

    @property
    def cluster_shift(self) -> int | None:
        """Right-shift turning a processor id into its cluster id, or ``None``.

        Defined only when ``cluster_size`` is a power of two (every paper
        configuration); the memory systems use it to replace the per-access
        division in ``cluster_of`` with a shift.
        """
        size = self.cluster_size
        if size & (size - 1) == 0:
            return size.bit_length() - 1
        return None

    @property
    def cluster_cache_lines(self) -> int | None:
        """Cluster cache capacity in lines (``None`` = infinite)."""
        if self.cache_kb_per_processor is None:
            return None
        total_bytes = self.cache_kb_per_processor * 1024 * self.cluster_size
        lines = int(total_bytes // self.line_size)
        return max(lines, 1)

    def cluster_of(self, processor: int) -> int:
        """Cluster that processor ``processor`` belongs to.

        Processors are assigned to clusters contiguously (0..k-1 in cluster
        0, ...), matching how SPLASH codes map neighbouring process ids to
        neighbouring partitions — this contiguity is what lets clustering
        capture near-neighbour communication (paper §4, Ocean discussion).
        """
        if not (0 <= processor < self.n_processors):
            raise ValueError(f"processor {processor} out of range")
        return processor // self.cluster_size

    def processors_of(self, cluster: int) -> range:
        """Processor ids belonging to ``cluster``."""
        if not (0 <= cluster < self.n_clusters):
            raise ValueError(f"cluster {cluster} out of range")
        lo = cluster * self.cluster_size
        return range(lo, lo + self.cluster_size)

    # ---------------------------------------------------------------- variants
    def with_clusters(self, cluster_size: int) -> "MachineConfig":
        """Copy of this config with a different cluster size."""
        return replace(self, cluster_size=cluster_size)

    def with_cache_kb(self, cache_kb_per_processor: float | None) -> "MachineConfig":
        """Copy of this config with a different per-processor cache size."""
        return replace(self, cache_kb_per_processor=cache_kb_per_processor)

    def with_associativity(self, associativity: int | None) -> "MachineConfig":
        """Copy of this config with a different cache associativity."""
        return replace(self, associativity=associativity)

    def with_network(self, network: NetworkConfig) -> "MachineConfig":
        """Copy of this config with a different interconnect model."""
        return replace(self, network=network)

    def with_protocol(self, protocol: str) -> "MachineConfig":
        """Copy of this config with a different coherence protocol."""
        return replace(self, protocol=protocol)

    def trace_signature(self) -> dict:
        """The machine fields the *reference stream* depends on.

        Applications consult the machine only for processor count (SPMD
        partitioning), line size (span emission granularity), and page size
        (region rounding) when generating their operation streams; cluster
        size, cache sizing, latencies, and the network model affect *timing
        and placement*, never the streams themselves.  The compiled-trace
        cache (:mod:`repro.sim.compiled`) keys on exactly this dict, which
        is what lets one captured trace replay across an entire
        clustering × cache-size sweep.
        """
        return {
            "n_processors": self.n_processors,
            "line_size": self.line_size,
            "page_size": self.page_size,
        }

    def to_dict(self) -> dict:
        """JSON-stable representation of the *complete* machine description.

        Every field that can change a simulation outcome appears here; the
        persistent result cache hashes this dict, so two configs with equal
        ``to_dict()`` are guaranteed interchangeable and any field change
        produces a different cache key.
        """
        return {
            "n_processors": self.n_processors,
            "cluster_size": self.cluster_size,
            "cache_kb_per_processor": self.cache_kb_per_processor,
            "associativity": self.associativity,
            "line_size": self.line_size,
            "page_size": self.page_size,
            "latency": self.latency.to_dict(),
            "network": self.network.to_dict(),
            "protocol": self.protocol,
        }

    def describe(self) -> str:
        """One-line human-readable summary."""
        cache = ("inf" if self.cache_kb_per_processor is None
                 else f"{self.cache_kb_per_processor:g}KB/proc")
        assoc = "full" if self.associativity is None else f"{self.associativity}-way"
        proto = "" if self.protocol == "directory" else f", {self.protocol}"
        return (f"{self.n_processors}p, {self.cluster_size}/cluster "
                f"({self.n_clusters} clusters), cache {cache} ({assoc}), "
                f"{self.line_size}B lines{proto}")
