"""Tests for working-set profiling."""

import pytest

from repro.core.config import MachineConfig
from repro.core.workingset import (WorkingSetCurve, WorkingSetPoint, knee_of,
                                   overlap_benefit, working_set_curve)

CFG = MachineConfig(n_processors=8)


@pytest.fixture(scope="module")
def fmm_curve():
    return working_set_curve(
        "fmm", sizes_kb=(0.5, 4, None), cluster_size=1, base_config=CFG,
        app_kwargs={"n_particles": 256, "levels": 3, "n_steps": 1})


class TestCurve:
    def test_points_in_order(self, fmm_curve):
        assert [p.cache_kb for p in fmm_curve.points] == [0.5, 4, None]

    def test_miss_rate_monotone_nonincreasing(self, fmm_curve):
        rates = [p.miss_rate for p in fmm_curve.points]
        assert rates[0] >= rates[1] >= rates[2]

    def test_infinite_point_has_no_capacity_misses(self, fmm_curve):
        assert fmm_curve.infinite_point().capacity_misses == 0

    def test_rows_labels(self, fmm_curve):
        labels = [r[0] for r in fmm_curve.rows()]
        assert labels == ["0.5KB", "4KB", "inf"]


class TestKnee:
    def _curve(self, rates):
        c = WorkingSetCurve("x", 1)
        sizes = [1, 4, 16, None]
        for kb, r in zip(sizes, rates):
            c.points.append(WorkingSetPoint(kb, r, 0, 100))
        return c

    def test_knee_found(self):
        c = self._curve([0.5, 0.3, 0.102, 0.10])
        assert knee_of(c, tolerance=0.10) == 16

    def test_knee_at_smallest(self):
        c = self._curve([0.10, 0.10, 0.10, 0.10])
        assert knee_of(c) == 1

    def test_knee_beyond_probes(self):
        c = self._curve([0.5, 0.4, 0.3, 0.1])
        assert knee_of(c) is None

    def test_requires_infinite_anchor(self):
        c = WorkingSetCurve("x", 1)
        c.points.append(WorkingSetPoint(4, 0.1, 0, 1))
        with pytest.raises(ValueError):
            knee_of(c)


class TestOverlap:
    def test_read_shared_app_overlaps(self):
        """Barnes' shared tree: clustering should cut capacity misses."""
        ratios = overlap_benefit(
            "barnes", cache_kb=1.0, cluster_sizes=(1, 4),
            base_config=CFG,
            app_kwargs={"n_particles": 256, "n_steps": 1})
        assert ratios[1] == pytest.approx(1.0)
        assert ratios[4] < 1.0
