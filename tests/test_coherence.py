"""Protocol-level tests: scripted reference streams with hand-computed
Table-1 latencies, miss classes, and state transitions."""

import pytest

from repro.core.config import MachineConfig
from repro.core.metrics import MissCause
from repro.memory.allocation import PageAllocator
from repro.memory.cache import EXCLUSIVE, SHARED
from repro.memory.coherence import (READ_HIT, READ_MERGE, READ_MISS,
                                    CoherentMemorySystem)
from repro.memory.directory import DIR_EXCLUSIVE, DIR_SHARED, NOT_CACHED

LINES_PER_PAGE = 4096 // 64


def make_system(n_processors=4, cluster_size=2, cache_kb=4.0,
                page_homes=None):
    """Memory system with explicitly controlled page homes."""
    cfg = MachineConfig(n_processors=n_processors, cluster_size=cluster_size,
                        cache_kb_per_processor=cache_kb)
    al = PageAllocator(cfg.n_clusters, cfg.page_size, cfg.line_size)
    for page, home in (page_homes or {}).items():
        al.place_page(page, home)
    return CoherentMemorySystem(cfg, al)


class TestReadLatencies:
    def test_cold_read_local_home_30(self):
        mem = make_system(page_homes={0: 0})
        outcome, stall = mem.read(processor=0, line=0, now=0)
        assert outcome == READ_MISS
        assert stall == 30

    def test_cold_read_remote_home_100(self):
        mem = make_system(page_homes={0: 1})
        outcome, stall = mem.read(processor=0, line=0, now=0)
        assert outcome == READ_MISS
        assert stall == 100

    def test_dirty_remote_local_home_100(self):
        # home is requester's cluster; dirty in the other cluster
        mem = make_system(page_homes={0: 0})
        mem.write(processor=2, line=0, now=0)      # cluster 1 takes EXCL
        outcome, stall = mem.read(processor=0, line=0, now=200)
        assert outcome == READ_MISS
        assert stall == 100

    def test_dirty_at_remote_home_100(self):
        # home cluster 1 itself owns the line dirty; requester cluster 0
        mem = make_system(page_homes={0: 1})
        mem.write(processor=2, line=0, now=0)
        outcome, stall = mem.read(processor=0, line=0, now=200)
        assert outcome == READ_MISS
        assert stall == 100

    def test_dirty_third_party_150(self):
        # 4 clusters: home=2, owner=1, requester=0 -> 3 hops
        mem = make_system(n_processors=8, cluster_size=2,
                          page_homes={0: 2})
        mem.write(processor=2, line=0, now=0)      # cluster 1 owns dirty
        outcome, stall = mem.read(processor=0, line=0, now=200)
        assert outcome == READ_MISS
        assert stall == 150

    def test_second_read_same_cluster_hits(self):
        mem = make_system(page_homes={0: 0})
        mem.read(0, 0, now=0)
        outcome, stall = mem.read(1, 0, now=100)   # cluster mate, fill done
        assert outcome == READ_HIT
        assert stall == 0

    def test_read_shared_from_other_cluster_uses_home(self):
        # line SHARED at dir (cached by cluster 0); cluster 1 reads: home
        # supplies data (SHARED dir state -> clean path)
        mem = make_system(page_homes={0: 0})
        mem.read(0, 0, now=0)
        outcome, stall = mem.read(2, 0, now=100)
        assert outcome == READ_MISS
        assert stall == 100  # remote home for cluster 1


class TestMergeSemantics:
    def test_merge_blocks_until_fill(self):
        mem = make_system(page_homes={0: 0})
        mem.read(0, 0, now=0)                      # pending until 30
        outcome, stall = mem.read(1, 0, now=5)     # cluster mate merges
        assert outcome == READ_MERGE
        assert stall == 25

    def test_merge_on_own_write_fill(self):
        mem = make_system(page_homes={0: 0})
        mem.write(0, 0, now=0)                     # pending until 30
        outcome, stall = mem.read(0, 0, now=10)
        assert outcome == READ_MERGE
        assert stall == 20

    def test_read_after_fill_complete_hits(self):
        mem = make_system(page_homes={0: 0})
        mem.read(0, 0, now=0)
        outcome, stall = mem.read(1, 0, now=30)
        assert outcome == READ_HIT

    def test_merge_retry_hits_normally(self):
        mem = make_system(page_homes={0: 0})
        mem.read(0, 0, now=0)
        mem.read(1, 0, now=5)
        outcome, stall = mem.read(1, 0, now=30, is_retry=True)
        assert outcome == READ_HIT
        # retry did not double count the reference
        assert mem.counters[0].reads == 2

    def test_merge_refetch_after_invalidation(self):
        mem = make_system(page_homes={0: 0})
        mem.read(0, 0, now=0)                      # c0 fill pending till 30
        out, stall = mem.read(1, 0, now=5)         # merge until 30
        assert out == READ_MERGE
        mem.write(2, 0, now=10)                    # c1 invalidates pending line
        out, stall = mem.read(1, 0, now=30, is_retry=True)
        assert out == READ_MISS
        assert mem.counters[0].merge_refetches == 1
        # the refetch sees the line dirty in cluster 1 (home = cluster 0)
        assert stall == 100


class TestWriteSemantics:
    def test_write_miss_installs_exclusive(self):
        mem = make_system(page_homes={0: 0})
        mem.write(0, 0, now=0)
        assert mem.caches[0].state_of(0) == EXCLUSIVE
        assert mem.directory.state_of(0) == DIR_EXCLUSIVE
        assert mem.counters[0].write_misses == 1

    def test_write_hit_on_exclusive(self):
        mem = make_system(page_homes={0: 0})
        mem.write(0, 0, now=0)
        mem.write(1, 0, now=50)                    # cluster mate, same cache
        assert mem.counters[0].hits == 1
        assert mem.counters[0].write_misses == 1

    def test_upgrade_from_shared(self):
        mem = make_system(page_homes={0: 0})
        mem.read(0, 0, now=0)
        mem.write(0, 0, now=50)
        assert mem.counters[0].upgrade_misses == 1
        assert mem.caches[0].state_of(0) == EXCLUSIVE

    def test_upgrade_invalidates_other_sharers(self):
        mem = make_system(page_homes={0: 0})
        mem.read(0, 0, now=0)
        mem.read(2, 0, now=50)                     # cluster 1 shares too
        mem.write(0, 0, now=200)
        assert mem.caches[1].state_of(0) is None
        assert mem.directory.invalidations_sent == 1
        assert mem.counters[1].by_cause[MissCause.COHERENCE] == 0  # not yet
        out, _ = mem.read(2, 0, now=300)
        assert out == READ_MISS
        assert mem.counters[1].by_cause[MissCause.COHERENCE] == 1

    def test_write_to_dirty_remote_takes_ownership(self):
        mem = make_system(page_homes={0: 0})
        mem.write(0, 0, now=0)
        mem.write(2, 0, now=100)
        assert mem.caches[0].state_of(0) is None
        assert mem.directory.owner_of(0) == 1

    def test_clustering_obviates_invalidation(self):
        """Two processors in ONE cluster: write after read causes no
        invalidation traffic at all (paper §2: eliminated entirely)."""
        mem = make_system(page_homes={0: 0})
        mem.read(0, 0, now=0)
        mem.write(1, 0, now=50)                    # same cluster: upgrade
        assert mem.directory.invalidations_sent == 0


class TestReadOfDirtyLineDowngrades:
    def test_owner_downgrades_and_keeps_data(self):
        mem = make_system(page_homes={0: 0})
        mem.write(2, 0, now=0)                     # cluster 1 dirty
        mem.read(0, 0, now=100)
        assert mem.caches[1].state_of(0) == SHARED
        assert mem.caches[0].state_of(0) == SHARED
        assert mem.directory.state_of(0) == DIR_SHARED
        assert mem.directory.sharer_list(0) == [0, 1]


class TestEvictions:
    def _tiny(self):
        # 1 processor per cluster, cache of exactly 16 lines (1 KB)
        return make_system(n_processors=2, cluster_size=1, cache_kb=1.0)

    def test_shared_eviction_sends_hint(self):
        mem = self._tiny()
        capacity = mem.caches[0].capacity_lines
        for line in range(capacity + 1):
            mem.read(0, line, now=line * 200)
        assert mem.directory.replacement_hints == 1
        assert mem.directory.state_of(0) == NOT_CACHED

    def test_exclusive_eviction_writes_back(self):
        mem = self._tiny()
        capacity = mem.caches[0].capacity_lines
        mem.write(0, 0, now=0)
        for line in range(1, capacity + 1):
            mem.read(0, line, now=line * 200)
        assert mem.directory.writebacks == 1
        assert mem.directory.state_of(0) == NOT_CACHED

    def test_capacity_miss_classified(self):
        mem = self._tiny()
        capacity = mem.caches[0].capacity_lines
        for line in range(capacity + 1):
            mem.read(0, line, now=line * 200)
        mem.read(0, 0, now=10**6)  # line 0 was evicted
        assert mem.counters[0].by_cause[MissCause.CAPACITY] == 1

    def test_cold_misses_classified(self):
        mem = self._tiny()
        mem.read(0, 0, now=0)
        mem.read(0, 1, now=200)
        assert mem.counters[0].by_cause[MissCause.COLD] == 2


class TestInvariants:
    def test_invariants_after_scripted_run(self):
        mem = make_system(n_processors=8, cluster_size=2, cache_kb=1.0)
        t = 0
        for i in range(300):
            proc = (i * 7) % 8
            line = (i * 13) % 64
            t += 200
            if i % 3 == 0:
                mem.write(proc, line, t)
            else:
                mem.read(proc, line, t)
        mem.check_invariants()

    def test_aggregate_counters_sum(self):
        mem = make_system()
        mem.read(0, 0, 0)
        mem.read(2, 1, 0)
        mem.write(0, 2, 0)
        total = mem.aggregate_counters()
        assert total.references == 3
        assert total.reads == 2
        assert total.writes == 1

    def test_allocator_cluster_count_checked(self):
        cfg = MachineConfig(n_processors=4, cluster_size=2)
        bad = PageAllocator(n_clusters=7)
        with pytest.raises(ValueError):
            CoherentMemorySystem(cfg, bad)

    def test_cluster_of_non_power_of_two(self):
        cfg = MachineConfig(n_processors=12, cluster_size=3)
        mem = CoherentMemorySystem(cfg)
        assert mem.cluster_of(0) == 0
        assert mem.cluster_of(2) == 0
        assert mem.cluster_of(3) == 1
        assert mem.cluster_of(11) == 3


class TestPrefetchHits:
    def test_cluster_mate_first_hit_counts_as_prefetch(self):
        mem = make_system(page_homes={0: 0})
        mem.read(0, 0, now=0)             # p0 fetches
        mem.read(1, 0, now=100)           # cluster mate: prefetch hit
        assert mem.counters[0].prefetch_hits == 1

    def test_counted_once_per_fill(self):
        mem = make_system(page_homes={0: 0})
        mem.read(0, 0, now=0)
        mem.read(1, 0, now=100)
        mem.read(1, 0, now=200)           # further hits are ordinary
        assert mem.counters[0].prefetch_hits == 1

    def test_own_reuse_is_not_a_prefetch(self):
        mem = make_system(page_homes={0: 0})
        mem.read(0, 0, now=0)
        mem.read(0, 0, now=100)
        assert mem.counters[0].prefetch_hits == 0

    def test_unclustered_machine_has_no_prefetch_hits(self):
        mem = make_system(n_processors=4, cluster_size=1)
        mem.read(0, 0, now=0)
        mem.read(0, 0, now=100)
        mem.read(1, 0, now=200)           # different CLUSTER: its own miss
        assert all(c.prefetch_hits == 0 for c in mem.counters)

    def test_prefetch_hits_grow_with_clustering(self):
        """The §2 mechanism end-to-end on a real app."""
        from repro.apps.registry import build_app
        from repro.sim.engine import Engine
        totals = {}
        for cluster in (1, 4):
            cfg = MachineConfig(n_processors=4, cluster_size=cluster,
                                cache_kb_per_processor=16)
            app = build_app("ocean", cfg, n=16, n_vcycles=1)
            app.ensure_setup()
            mem = CoherentMemorySystem(cfg, app.allocator)
            Engine(cfg, mem).run(app.program)
            totals[cluster] = mem.aggregate_counters().prefetch_hits
        assert totals[1] == 0
        assert totals[4] > 0
