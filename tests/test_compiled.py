"""Compiled-trace execution: capture, fusion, serialization, equivalence.

The acceptance property of the compiled path is **bit-identity**: replaying
a captured program must produce byte-identical canonical ``RunResult`` JSON
to driving the generators, with the heap fast path on or off, at every
cluster size.  The equivalence classes here enforce that for all nine
applications.
"""

import pytest

from repro.apps.registry import APP_NAMES, build_app
from repro.core.config import MachineConfig
from repro.memory.coherence import CoherentMemorySystem
from repro.sim.compiled import (CompiledProgram, ProgramRecorder,
                                TraceDecodeError, compile_program)
from repro.sim.engine import Engine
from repro.sim.program import (OP_BARRIER, OP_LOCK, OP_READ, OP_UNLOCK,
                               OP_WORK, OP_WRITE)

#: smallest problem instances that still exercise every op kind
TINY_SIZES = {
    "lu": dict(n=32, block=8),
    "fft": dict(n_points=256),
    "ocean": dict(n=16, n_vcycles=1),
    "barnes": dict(n_particles=64, n_steps=1),
    "fmm": dict(n_particles=64, levels=2, n_steps=1),
    "radix": dict(n_keys=512, radix=16, n_digits=2),
    "raytrace": dict(width=8, height=8, n_spheres=8),
    "volrend": dict(volume_side=8, width=8, height=8, block=2),
    "mp3d": dict(n_particles=64, n_steps=1),
}

DYNAMIC_APPS = ("barnes", "raytrace", "volrend")


def tiny_app(name, cfg):
    app = build_app(name, cfg, **TINY_SIZES[name])
    app.ensure_setup()
    return app


def engine_for(cfg, heap_fast_path=True):
    return Engine(cfg, CoherentMemorySystem(cfg),
                  heap_fast_path=heap_fast_path)


def capture(name, cfg):
    """Capture the way the executor does: drain if invariant, else record."""
    app = tiny_app(name, cfg)
    if app.stream_invariant:
        return app.compiled_program()
    recorder = ProgramRecorder(app.program, cfg.n_processors, cfg.line_size)
    engine_for(cfg).run(recorder.factory)
    return recorder.finish()


# --------------------------------------------------------------- equivalence

@pytest.mark.parametrize("name", APP_NAMES)
@pytest.mark.parametrize("cluster", [1, 4])
def test_replay_bit_identical_all_apps(name, cluster):
    """Generator and compiled replay agree byte-for-byte, fast path on/off."""
    cfg = MachineConfig(n_processors=16, cluster_size=cluster,
                        cache_kb_per_processor=4.0)
    jsons = set()
    for fast in (False, True):
        app = tiny_app(name, cfg)
        jsons.add(engine_for(cfg, fast).run(app.program).to_json())
    program = capture(name, cfg)
    for fast in (False, True):
        tiny_app(name, cfg)  # placement parity: setup runs either way
        jsons.add(engine_for(cfg, fast).run_compiled(program).to_json())
    assert len(jsons) == 1


@pytest.mark.parametrize("name", ["lu", "mp3d"])
def test_replay_bit_identical_infinite_cache(name):
    cfg = MachineConfig(n_processors=8, cluster_size=2)
    app = tiny_app(name, cfg)
    reference = engine_for(cfg).run(app.program).to_json()
    program = capture(name, cfg)
    assert engine_for(cfg).run_compiled(program).to_json() == reference


def test_stream_invariant_capture_reusable_across_clusters():
    """One drain of an invariant app replays correctly at other cluster sizes."""
    cfg1 = MachineConfig(n_processors=8, cluster_size=1,
                         cache_kb_per_processor=4.0)
    program = capture("lu", cfg1)
    for cluster in (2, 4):
        cfg = MachineConfig(n_processors=8, cluster_size=cluster,
                            cache_kb_per_processor=4.0)
        app = tiny_app("lu", cfg)
        want = engine_for(cfg).run(app.program).to_json()
        tiny_app("lu", cfg)
        got = engine_for(cfg).run_compiled(program).to_json()
        assert got == want


@pytest.mark.parametrize("name", DYNAMIC_APPS)
def test_dynamic_apps_refuse_static_drain(name):
    cfg = MachineConfig(n_processors=8, cluster_size=2)
    app = tiny_app(name, cfg)
    assert not app.stream_invariant
    with pytest.raises(ValueError, match="run_recorded"):
        app.compiled_program()


def test_run_recorded_result_matches_replay():
    """The recording run's result equals a replay of its own capture."""
    cfg = MachineConfig(n_processors=8, cluster_size=2,
                        cache_kb_per_processor=4.0)
    app = tiny_app("raytrace", cfg)
    result, program = app.run_recorded()
    # a fresh instance replays with its own (identically placed) allocator
    replayed = tiny_app("raytrace", cfg).run(program=program)
    assert replayed.to_json() == result.to_json()


# -------------------------------------------------------------- compilation

def synthetic_factory(pid):
    yield OP_WORK, 5
    yield OP_WORK, 7
    yield OP_WORK, 3
    yield OP_READ, 200
    yield OP_WORK, 2
    yield OP_WRITE, 130
    yield OP_BARRIER, 0
    yield OP_LOCK, 1
    yield OP_UNLOCK, 1


def test_work_fusion_collapses_runs():
    program = compile_program(synthetic_factory, 2, 64)
    ops = list(program.ops[0])
    args = list(program.args[0])
    assert ops == [OP_WORK, OP_READ, OP_WORK, OP_WRITE, OP_BARRIER,
                   OP_LOCK, OP_UNLOCK]
    assert args[0] == 5 + 7 + 3          # fused run
    assert args[1] == 200 // 64          # pre-divided line number
    assert args[3] == 130 // 64
    assert program.source_ops == 2 * 9   # pre-fusion count preserved
    assert program.fused_work


def test_fusion_can_be_disabled():
    program = compile_program(synthetic_factory, 1, 64, fuse_work=False)
    assert list(program.ops[0]).count(OP_WORK) == 4
    assert not program.fused_work


def test_fused_replay_still_bit_identical():
    cfg = MachineConfig(n_processors=4, cluster_size=2,
                        cache_kb_per_processor=4.0)
    app = tiny_app("ocean", cfg)
    want = engine_for(cfg).run(app.program).to_json()
    for fuse in (False, True):
        app = tiny_app("ocean", cfg)
        program = app.compiled_program(fuse_work=fuse)
        got = engine_for(cfg).run_compiled(program).to_json()
        assert got == want


def test_runtime_columns_cached_and_equal_to_arrays():
    program = compile_program(synthetic_factory, 2, 64)
    ops1, args1 = program.runtime_columns()
    ops2, args2 = program.runtime_columns()
    assert ops1 is ops2 and args1 is args2  # built once
    assert ops1 == [list(o) for o in program.ops]
    assert args1 == [list(a) for a in program.args]


def test_engine_rejects_mismatched_program():
    cfg = MachineConfig(n_processors=4, cluster_size=2)
    program = compile_program(synthetic_factory, 2, cfg.line_size)
    with pytest.raises(ValueError, match="processors"):
        engine_for(cfg).run_compiled(program)
    program = compile_program(synthetic_factory, 4, 32)
    with pytest.raises(ValueError, match="line size"):
        engine_for(cfg).run_compiled(program)


# ------------------------------------------------------------- serialization

def test_round_trip_preserves_everything():
    program = compile_program(synthetic_factory, 3, 64)
    clone = CompiledProgram.from_bytes(program.to_bytes())
    assert clone.n_processors == program.n_processors
    assert clone.line_size == program.line_size
    assert clone.source_ops == program.source_ops
    assert clone.fused_work == program.fused_work
    assert [list(o) for o in clone.ops] == [list(o) for o in program.ops]
    assert [list(a) for a in clone.args] == [list(a) for a in program.args]


@pytest.mark.parametrize("mutilate", [
    lambda b: b"XXXXXXXX" + b[8:],           # bad magic
    lambda b: b[:20],                        # truncated header
    lambda b: b[:-10],                       # truncated payload
    lambda b: b[:40] + bytes([b[40] ^ 0xFF]) + b[41:],  # flipped byte
    lambda b: b"",                           # empty
])
def test_corrupt_blobs_raise_decode_error(mutilate):
    blob = compile_program(synthetic_factory, 2, 64).to_bytes()
    with pytest.raises(TraceDecodeError):
        CompiledProgram.from_bytes(mutilate(blob))


def test_column_validation():
    from array import array
    with pytest.raises(ValueError, match="column counts"):
        CompiledProgram([array("q")], [], 64, 0, True)
    with pytest.raises(ValueError, match="unequal lengths"):
        CompiledProgram([array("q", [1])], [array("q")], 64, 0, True)
