"""Unit tests for miss counters and time breakdowns."""

import pytest

from repro.core.metrics import MissCause, MissCounters, TimeBreakdown


class TestMissCounters:
    def test_misses_excludes_upgrades_and_merges(self):
        m = MissCounters(read_misses=3, write_misses=2, upgrade_misses=7,
                         merges=5)
        assert m.misses == 5

    def test_miss_rate(self):
        m = MissCounters(reads=60, writes=40, read_misses=5, write_misses=5)
        assert m.miss_rate == pytest.approx(0.1)

    def test_miss_rate_empty(self):
        assert MissCounters().miss_rate == 0.0

    def test_record_cause(self):
        m = MissCounters()
        m.record_cause(MissCause.COLD)
        m.record_cause(MissCause.COLD)
        m.record_cause(MissCause.COHERENCE)
        assert m.by_cause[MissCause.COLD] == 2
        assert m.by_cause[MissCause.COHERENCE] == 1
        assert m.by_cause[MissCause.CAPACITY] == 0

    def test_merged_into(self):
        a = MissCounters(reads=6, writes=4,
                         read_misses=3, write_misses=2, upgrade_misses=1,
                         merges=2, merge_refetches=1)
        a.record_cause(MissCause.CAPACITY)
        total = MissCounters()
        a.merged_into(total)
        a.merged_into(total)
        assert total.references == 20
        assert total.read_misses == 6
        assert total.by_cause[MissCause.CAPACITY] == 2
        assert total.merge_refetches == 2

    def test_references_and_hits_are_derived(self):
        m = MissCounters(reads=6, writes=4, read_misses=3, write_misses=2,
                         upgrade_misses=1)
        assert m.references == 10
        assert m.hits == 4
        m.reads += 1  # a hit: one stored-counter increment, both update
        assert m.references == 11
        assert m.hits == 5

    def test_round_trip_keeps_derived_keys(self):
        m = MissCounters(reads=6, writes=4, read_misses=3, write_misses=2)
        data = m.to_dict()
        assert data["references"] == 10
        assert data["hits"] == 5
        assert MissCounters.from_dict(data) == m

    def test_from_dict_rejects_inconsistent_payload(self):
        m = MissCounters(reads=6, writes=4, read_misses=3)
        data = m.to_dict()
        data["hits"] += 1
        with pytest.raises(ValueError, match="inconsistent"):
            MissCounters.from_dict(data)


class TestTimeBreakdown:
    def test_total(self):
        bd = TimeBreakdown(cpu=10, load=20, merge=5, sync=15)
        assert bd.total == 50

    def test_add(self):
        a = TimeBreakdown(cpu=1, load=2, merge=3, sync=4)
        a.add(TimeBreakdown(cpu=10, load=20, merge=30, sync=40))
        assert (a.cpu, a.load, a.merge, a.sync) == (11, 22, 33, 44)

    def test_scaled(self):
        bd = TimeBreakdown(cpu=100, load=50, merge=0, sync=50).scaled(1.1)
        assert bd.cpu == 110
        assert bd.total == 220

    def test_fractions_sum_to_one(self):
        bd = TimeBreakdown(cpu=10, load=20, merge=5, sync=15)
        fr = bd.fractions()
        assert sum(fr.values()) == pytest.approx(1.0)
        assert fr["load"] == pytest.approx(0.4)

    def test_fractions_empty(self):
        assert TimeBreakdown().fractions() == {
            "cpu": 0.0, "load": 0.0, "merge": 0.0, "sync": 0.0}

    def test_normalized_to_baseline(self):
        bd = TimeBreakdown(cpu=50, load=25, merge=0, sync=25)
        norm = bd.normalized_to(200)
        assert norm["total"] == pytest.approx(50.0)
        assert norm["cpu"] == pytest.approx(25.0)

    def test_normalized_baseline_validation(self):
        with pytest.raises(ValueError):
            TimeBreakdown(cpu=1).normalized_to(0)
