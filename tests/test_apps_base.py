"""Tests for the application framework helpers (span emission, placement,
partitioning, barrier sequencing)."""

import pytest

from repro.apps.base import Application, PhaseBarriers, proc_grid_shape
from repro.core.config import MachineConfig
from repro.sim.program import OP_READ, OP_WORK, OP_WRITE


class _Dummy(Application):
    name = "dummy"

    def setup(self):
        self.data = self.space.allocate("dummy.data", 1024, element_size=8)
        self.wide = self.space.allocate("dummy.wide", 256, element_size=16)

    def program(self, pid):
        yield from ()


@pytest.fixture
def app():
    a = _Dummy(MachineConfig(n_processors=8, cluster_size=2))
    a.ensure_setup()
    return a


class TestReadSpan:
    def test_one_read_per_line(self, app):
        ops = list(app.read_span(app.data, 0, 16))  # 16×8B = 2 lines
        reads = [op for op in ops if op[0] == OP_READ]
        assert len(reads) == 2

    def test_work_covers_remaining_elements(self, app):
        ops = list(app.read_span(app.data, 0, 16))
        work = sum(op[1] for op in ops if op[0] == OP_WORK)
        reads = sum(1 for op in ops if op[0] == OP_READ)
        assert work + reads == 16  # every element costs exactly one cycle

    def test_unaligned_span(self, app):
        # elements 5..12 straddle the line boundary at element 8
        ops = list(app.read_span(app.data, 5, 8))
        reads = [op for op in ops if op[0] == OP_READ]
        assert len(reads) == 2
        work = sum(op[1] for op in ops if op[0] == OP_WORK)
        assert work + len(reads) == 8

    def test_single_element(self, app):
        ops = list(app.read_span(app.data, 3, 1))
        assert len(ops) == 1 and ops[0][0] == OP_READ

    def test_empty_span(self, app):
        assert list(app.read_span(app.data, 0, 0)) == []

    def test_wide_elements(self, app):
        # 16-byte elements: 4 per line
        ops = list(app.read_span(app.wide, 0, 8))
        reads = [op for op in ops if op[0] == OP_READ]
        assert len(reads) == 2

    def test_addresses_fall_in_region(self, app):
        for op in app.read_span(app.data, 100, 50):
            if op[0] == OP_READ:
                assert app.data.contains(op[1])


class TestWriteSpan:
    def test_one_write_per_line(self, app):
        ops = list(app.write_span(app.data, 0, 24))
        writes = [op for op in ops if op[0] == OP_WRITE]
        assert len(writes) == 3

    def test_cycle_conservation(self, app):
        ops = list(app.write_span(app.data, 2, 13))
        work = sum(op[1] for op in ops if op[0] == OP_WORK)
        writes = sum(1 for op in ops if op[0] == OP_WRITE)
        assert work + writes == 13


class TestPlacement:
    def test_place_partitions_by_cluster_of_owner(self, app):
        region = app.space.allocate("dummy.parts", 8 * 512)  # 4KB/proc
        app.place_partitions(region)
        # processor 2 lives in cluster 1; its partition starts at page 1
        # of the region (each partition = 1 page)
        page0 = region.base // app.config.page_size
        assert app.allocator.bound_home(page0) == 0          # procs 0,1
        assert app.allocator.bound_home(page0 + 2) == 1      # wait: see below

    def test_place_partitions_cluster_mapping(self):
        cfg = MachineConfig(n_processors=4, cluster_size=2)
        a = _Dummy(cfg)
        a.ensure_setup()
        region = a.space.allocate("dummy.parts", 4 * 512)  # 1 page per proc
        a.place_partitions(region)
        page0 = region.base // cfg.page_size
        homes = [a.allocator.bound_home(page0 + i) for i in range(4)]
        assert homes == [0, 0, 1, 1]  # procs 0,1 -> cluster 0; 2,3 -> 1

    def test_place_partitions_tiny_region(self, app):
        region = app.space.allocate("dummy.tiny", 4)
        app.place_partitions(region)  # smaller than partition count
        assert app.allocator.bound_home(region.base // 4096) == 0

    def test_place_interleaved_cycles_clusters(self, app):
        region = app.space.allocate("dummy.inter", 4096)  # 8 pages (32KB)
        app.place_interleaved(region)
        first = region.base // app.config.page_size
        homes = [app.allocator.bound_home(first + k) for k in range(8)]
        assert homes == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_place_partitions_rejects_bad_count(self, app):
        region = app.space.allocate("dummy.bad", 64)
        with pytest.raises(ValueError):
            app.place_partitions(region, n_partitions=0)


class TestPartitionSlice:
    def test_covers_everything_disjointly(self, app):
        seen = []
        for pid in range(8):
            seen.extend(app.partition_slice(100, pid))
        assert seen == list(range(100))

    def test_balanced(self, app):
        sizes = [len(app.partition_slice(100, pid)) for pid in range(8)]
        assert max(sizes) - min(sizes) <= 1


class TestPhaseBarriers:
    def test_sequential_ids(self):
        bar = PhaseBarriers()
        assert [bar() for _ in range(4)] == [0, 1, 2, 3]

    def test_instances_independent(self):
        a, b = PhaseBarriers(), PhaseBarriers()
        a()
        assert b() == 0


class TestProcGridShape:
    def test_perfect_squares(self):
        assert proc_grid_shape(64) == (8, 8)
        assert proc_grid_shape(16) == (4, 4)

    def test_non_squares(self):
        assert proc_grid_shape(8) == (2, 4)
        assert proc_grid_shape(2) == (1, 2)

    def test_rows_at_most_cols(self):
        for n in (2, 4, 6, 8, 12, 32, 64):
            r, c = proc_grid_shape(n)
            assert r * c == n
            assert r <= c


class TestRng:
    def test_deterministic_streams(self, app):
        assert app.rng(1, 2).integers(0, 100) == app.rng(1, 2).integers(0, 100)

    def test_distinct_streams(self, app):
        a = app.rng(1).integers(0, 10**9)
        b = app.rng(2).integers(0, 10**9)
        assert a != b
