"""End-to-end qualitative tests: the paper's headline shapes at small scale.

These run the actual experiment pipeline (study driver → normalization) on
reduced problems and assert the *direction* of every major claim in the
paper.  The full-scale numbers live in EXPERIMENTS.md; these tests keep the
shapes from regressing.
"""

import pytest

from repro.analysis import figure_from_cluster_sweep
from repro.core.config import MachineConfig
from repro.core.contention import SharedCacheCostModel
from repro.core.study import ClusteringStudy, normalize_sweep

CFG16 = MachineConfig(n_processors=16)


def totals(sweep):
    norm = normalize_sweep(sweep)
    return {c: norm[c]["total"] for c in sweep}


@pytest.fixture(scope="module")
def ocean_sweep():
    study = ClusteringStudy("ocean", CFG16, {"n": 32, "n_vcycles": 2})
    return study.cluster_sweep(None, (1, 2, 4, 8))


@pytest.fixture(scope="module")
def lu_sweep():
    study = ClusteringStudy("lu", CFG16, {"n": 128, "block": 16})
    return study.cluster_sweep(None, (1, 2, 4, 8))


class TestFigure2Shapes:
    def test_ocean_communication_captured(self, ocean_sweep):
        """Ocean: clustering halves inter-cluster load stall per doubling."""
        norm = normalize_sweep(ocean_sweep)
        assert norm[2]["load"] < 0.75 * norm[1]["load"]
        assert norm[4]["load"] < 0.75 * norm[2]["load"]
        assert norm[8]["load"] < 0.80 * norm[4]["load"]

    def test_ocean_execution_improves(self, ocean_sweep):
        t = totals(ocean_sweep)
        assert t[8] < t[1]

    def test_lu_nearly_flat(self, lu_sweep):
        """LU: clustering barely helps (low communication volume)."""
        t = totals(lu_sweep)
        assert t[8] > 80.0  # within ~20% of the 1p time even at small scale

    def test_lu_merge_replaces_load(self, lu_sweep):
        """Paper §4: LU's 2p load-stall savings reappear as merge stall
        (cluster mates touch the diagonal block at the same time)."""
        norm = normalize_sweep(lu_sweep)
        assert norm[2]["merge"] > norm[1]["merge"]

    def test_fft_benefit_bounded_by_topology(self):
        """FFT all-to-all: clustering removes at most (C−1)/(P−1) of the
        communication, so the 4-way bar stays close to 100."""
        study = ClusteringStudy("fft", CFG16, {"n_points": 4096})
        sweep = study.cluster_sweep(None, (1, 4))
        t = totals(sweep)
        assert t[4] > 85.0

    def test_mp3d_gains_most_of_unstructured(self):
        """MP3D: small relative communication reduction but large absolute
        gain because communication dominates."""
        study = ClusteringStudy("mp3d", CFG16,
                                {"n_particles": 4000, "n_steps": 2})
        sweep = study.cluster_sweep(None, (1, 8))
        t = totals(sweep)
        assert t[8] < 97.0


class TestFinitecapacityShapes:
    def test_barnes_overlap_at_small_caches(self):
        """Figure 6 shape: clustering helps far more at small caches than
        at infinite ones (working-set overlap)."""
        study = ClusteringStudy("barnes", CFG16,
                                {"n_particles": 512, "n_steps": 1})
        small = totals(study.cluster_sweep(1, (1, 8)))
        inf = totals(study.cluster_sweep(None, (1, 8)))
        gain_small = 100.0 - small[8]
        gain_inf = 100.0 - inf[8]
        assert gain_small > gain_inf

    def test_capacity_misses_vanish_when_overlapped_ws_fits(self):
        """Steep drop when the overlapped working set suddenly fits."""
        from repro.core.metrics import MissCause
        study = ClusteringStudy("fmm", CFG16,
                                {"n_particles": 512, "levels": 3,
                                 "n_steps": 1})
        solo = study.run_point(1, 1.0)
        clustered = study.run_point(8, 1.0)
        cap_solo = solo.result.misses.by_cause[MissCause.CAPACITY]
        cap_clust = clustered.result.misses.by_cause[MissCause.CAPACITY]
        assert cap_clust < cap_solo

    def test_disjoint_working_sets_show_no_overlap_benefit(self):
        """Paper §5: structured codes with disjoint partitions (LU) show
        virtually no working-set advantage — capacity misses per processor
        do not collapse under clustering."""
        from repro.core.metrics import MissCause
        study = ClusteringStudy("lu", CFG16, {"n": 64, "block": 16})
        solo = study.run_point(1, 0.5)
        clustered = study.run_point(4, 0.5)
        cap_solo = solo.result.misses.by_cause[MissCause.CAPACITY]
        cap_clust = clustered.result.misses.by_cause[MissCause.CAPACITY]
        # no steep collapse: clustered capacity misses stay a substantial
        # fraction (they drop a little from shared diagonal blocks)
        assert cap_clust > 0.4 * cap_solo


class TestSection6Shapes:
    def test_infinite_cache_clustering_hurts_lu(self):
        """Table 7: with infinite caches the shared-cache costs exceed
        LU's communication benefit for most cluster sizes."""
        model = SharedCacheCostModel()
        res = model.evaluate("lu", None, CFG16, (1, 2, 4),
                             app_kwargs={"n": 128, "block": 16})
        assert res.relative_time[2] > 0.97
        assert res.cost_factor[4] > res.cost_factor[2] > 1.0

    def test_small_cache_working_set_offsets_costs(self):
        """Table 6: at 4 KB caches the overlap benefit can offset the
        shared-cache cost for working-set apps (volrend-class)."""
        model = SharedCacheCostModel()
        res = model.evaluate("barnes", 1.0, CFG16, (1, 8),
                             app_kwargs={"n_particles": 512, "n_steps": 1})
        assert res.relative_time[8] < 1.1


class TestFigure3Shape:
    def test_small_problem_benefits_more(self):
        """Figure 3: the small Ocean problem gains more from clustering
        than the large one."""
        big = ClusteringStudy("ocean", CFG16, {"n": 64, "n_vcycles": 2})
        small = ClusteringStudy("ocean", CFG16, {"n": 32, "n_vcycles": 2})
        t_big = totals(big.cluster_sweep(None, (1, 4)))
        t_small = totals(small.cluster_sweep(None, (1, 4)))
        assert (100 - t_small[4]) > (100 - t_big[4]) - 2.0


class TestRenderPipeline:
    def test_cluster_figure_roundtrip(self, ocean_sweep):
        fig = figure_from_cluster_sweep("t", ocean_sweep)
        bars = fig.groups[0].bars
        assert bars[0].total == pytest.approx(100.0)
        assert bars[-1].total < bars[0].total
