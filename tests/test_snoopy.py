"""Tests for the shared-main-memory (snoopy) cluster extension (paper §2)."""

import pytest

from repro.core.config import MachineConfig
from repro.core.metrics import MissCause
from repro.memory.allocation import PageAllocator
from repro.memory.cache import EXCLUSIVE, SHARED
from repro.memory.coherence import READ_HIT, READ_MERGE, READ_MISS
from repro.memory.snoopy import (DEFAULT_C2C_LATENCY, DEFAULT_SNOOP_PENALTY,
                                 SnoopyClusterMemorySystem)


def make_system(n_processors=4, cluster_size=2, cache_kb=4.0,
                page_homes=None):
    cfg = MachineConfig(n_processors=n_processors, cluster_size=cluster_size,
                        cache_kb_per_processor=cache_kb)
    al = PageAllocator(cfg.n_clusters, cfg.page_size, cfg.line_size)
    for page, home in (page_homes or {}).items():
        al.place_page(page, home)
    return SnoopyClusterMemorySystem(cfg, al)


class TestCacheToCache:
    def test_cluster_mate_supplies_line(self):
        mem = make_system(page_homes={0: 0})
        mem.read(0, 0, now=0)                       # p0 fetches (30 + bus)
        outcome, stall = mem.read(1, 0, now=200)    # p1 snoops p0's copy
        assert outcome == READ_MISS
        assert stall == DEFAULT_C2C_LATENCY
        assert mem.c2c_transfers == 1

    def test_c2c_cheaper_than_memory(self):
        mem = make_system(page_homes={0: 0})
        _, first = mem.read(0, 0, now=0)
        _, second = mem.read(1, 0, now=200)
        assert second < first

    def test_dirty_mate_downgrades_on_c2c(self):
        mem = make_system(page_homes={0: 0})
        mem.write(0, 0, now=0)
        mem.read(1, 0, now=200)
        assert mem.caches[0].state_of(0) == SHARED
        assert mem.caches[1].state_of(0) == SHARED

    def test_own_copy_is_plain_hit(self):
        mem = make_system(page_homes={0: 0})
        mem.read(0, 0, now=0)
        outcome, stall = mem.read(0, 0, now=200)
        assert outcome == READ_HIT and stall == 0
        assert mem.c2c_transfers == 0


class TestBusPenalty:
    def test_miss_includes_snoop_penalty(self):
        mem = make_system(page_homes={0: 0})
        _, stall = mem.read(0, 0, now=0)
        assert stall == 30 + DEFAULT_SNOOP_PENALTY

    def test_remote_miss_includes_penalty(self):
        mem = make_system(page_homes={0: 1})
        _, stall = mem.read(0, 0, now=0)
        assert stall == 100 + DEFAULT_SNOOP_PENALTY


class TestSeparateCaches:
    def test_no_destructive_interference(self):
        """Processor 1 filling its own cache cannot evict processor 0's
        data (paper §2: 'destructive interference does not exist')."""
        mem = make_system(cache_kb=1.0)  # 16 lines per processor
        mem.read(0, 0, now=0)
        for i, line in enumerate(range(100, 140)):  # p1 streams 40 lines
            mem.read(1, line, now=200 * (i + 1))
        assert mem.caches[0].state_of(0) is not None

    def test_working_sets_duplicated(self):
        """Both cluster mates can hold private copies of the same line."""
        mem = make_system(page_homes={0: 0})
        mem.read(0, 0, now=0)
        mem.read(1, 0, now=200)
        assert mem.caches[0].state_of(0) == SHARED
        assert mem.caches[1].state_of(0) == SHARED


class TestCoherence:
    def test_write_invalidates_cluster_mates(self):
        mem = make_system(page_homes={0: 0})
        mem.read(0, 0, now=0)
        mem.read(1, 0, now=200)
        mem.write(1, 0, now=400)
        assert mem.caches[0].state_of(0) is None
        assert mem.caches[1].state_of(0) == EXCLUSIVE

    def test_write_invalidates_other_clusters(self):
        mem = make_system(page_homes={0: 0})
        mem.read(0, 0, now=0)
        mem.read(2, 0, now=200)    # cluster 1
        mem.write(0, 0, now=400)
        assert mem.caches[2].state_of(0) is None
        out, _ = mem.read(2, 0, now=600)
        assert out == READ_MISS
        assert mem.counters[1].by_cause[MissCause.COHERENCE] == 1

    def test_merge_on_pending_fill(self):
        mem = make_system(page_homes={0: 0})
        mem.read(0, 0, now=0)  # pending until 36
        outcome, stall = mem.read(0, 0, now=10)
        assert outcome == READ_MERGE
        assert stall == 26

    def test_eviction_keeps_sharer_bit_if_mate_holds(self):
        """Replacement hints only fire when the *cluster* drops the line —
        a mate's surviving copy keeps the sharer bit (the c2c
        opportunity)."""
        mem = make_system(cache_kb=1.0, page_homes={0: 0})
        mem.read(0, 0, now=0)
        mem.read(1, 0, now=200)
        # stream lines through p0 to evict its copy of line 0
        for i, line in enumerate(range(100, 120)):
            mem.read(0, line, now=400 + 200 * i)
        assert mem.caches[0].state_of(0) is None
        assert mem.directory.is_sharer(0, 0)  # mate still holds it
        # p0 re-reads: served cache-to-cache, not from memory
        before = mem.c2c_transfers
        _, stall = mem.read(0, 0, now=10**6)
        assert mem.c2c_transfers == before + 1
        assert stall == DEFAULT_C2C_LATENCY


class TestEngineIntegration:
    def test_runs_an_application(self):
        from repro.apps.registry import build_app
        from repro.sim.engine import Engine
        cfg = MachineConfig(n_processors=4, cluster_size=2,
                            cache_kb_per_processor=4)
        app = build_app("ocean", cfg, n=16, n_vcycles=1)
        app.ensure_setup()
        mem = SnoopyClusterMemorySystem(cfg, app.allocator)
        res = Engine(cfg, mem).run(app.program)
        assert res.execution_time > 0
        assert res.misses.references > 0

    def test_counter_aggregation(self):
        mem = make_system()
        mem.read(0, 0, 0)
        mem.write(2, 1, 0)
        total = mem.aggregate_counters()
        assert total.references == 2
