"""Determinism guarantees of the sweep executor.

The whole value of a parallel + cached sweep harness rests on one property:
for a given (app, kwargs, machine config) the simulator produces *the same
bytes* every time, in every backend.  These tests pin that down:

* serial vs process backends → byte-identical canonical JSON;
* two consecutive runs of the same point → byte-identical;
* a cache round-trip (store → load) → byte-identical (the ``==`` of the
  dataclasses and the JSON encoding agree).

The sample crosses apps with genuinely different machinery — Ocean
(regular grid SPMD), Radix (all-to-all communication), Barnes (irregular
tree walks with RNG-placed bodies) — and finite/infinite caches.
"""

import pytest

from repro.core.config import MachineConfig, NetworkConfig
from repro.core.executor import PointSpec, SweepExecutor
from repro.core.metrics import RunResult

CFG = MachineConfig(n_processors=8)

#: (app, kwargs) sample — small enough for tier-1, diverse enough to catch
#: an accidentally order-dependent or time-dependent code path
SAMPLE = [
    ("ocean", {"n": 16, "n_vcycles": 1}),
    ("radix", {"n_keys": 1024, "radix": 16, "n_digits": 2}),
    ("barnes", {"n_particles": 64, "n_steps": 1}),
]

#: (cluster_size, cache_kb) machine organisations crossed with the apps
ORGS = [(1, None), (2, 1), (4, None)]


def _specs():
    return [PointSpec.make(app, c, kb, kw)
            for app, kw in SAMPLE for c, kb in ORGS]


@pytest.fixture(scope="module")
def serial_outcomes():
    outcomes = SweepExecutor(backend="serial").run(_specs(), CFG)
    assert all(o.ok for o in outcomes)
    return outcomes


@pytest.fixture(scope="module")
def process_outcomes():
    outcomes = SweepExecutor(backend="process", max_workers=2).run(
        _specs(), CFG)
    assert all(o.ok for o in outcomes)
    return outcomes


def test_backends_agree_byte_for_byte(serial_outcomes, process_outcomes):
    """serial and process backends produce byte-identical RunResults."""
    for s, p in zip(serial_outcomes, process_outcomes):
        assert s.spec == p.spec
        assert s.result.to_json() == p.result.to_json(), \
            f"backends disagree on {s.spec.describe()}"


def test_backends_agree_structurally(serial_outcomes, process_outcomes):
    """Same via dataclass equality (counters, per-processor breakdowns)."""
    for s, p in zip(serial_outcomes, process_outcomes):
        assert s.result == p.result


def test_consecutive_runs_identical(serial_outcomes):
    """Re-running the very same points reproduces the same bytes."""
    again = SweepExecutor(backend="serial").run(_specs(), CFG)
    for first, second in zip(serial_outcomes, again):
        assert first.result.to_json() == second.result.to_json(), \
            f"rerun diverged on {first.spec.describe()}"


def test_outcomes_preserve_input_order(serial_outcomes):
    assert [o.spec for o in serial_outcomes] == _specs()


def test_cache_round_trip_is_byte_identical(tmp_path, serial_outcomes):
    """store → load through the persistent cache loses nothing."""
    from repro.core.resultcache import ResultCache

    cache = ResultCache(tmp_path)
    executor = SweepExecutor(cache=cache)
    executor.run(_specs(), CFG)           # populate
    reloaded = executor.run(_specs(), CFG)  # all hits
    assert all(o.cached for o in reloaded)
    for fresh, cached in zip(serial_outcomes, reloaded):
        assert fresh.result.to_json() == cached.result.to_json()
        assert fresh.result == cached.result


def test_process_pool_width_does_not_matter():
    """1-wide and 3-wide pools see the same bytes (no shared state)."""
    specs = [PointSpec.make("ocean", c, None, SAMPLE[0][1]) for c in (1, 2, 4)]
    narrow = SweepExecutor(backend="process", max_workers=1).run(specs, CFG)
    wide = SweepExecutor(backend="process", max_workers=3).run(specs, CFG)
    for a, b in zip(narrow, wide):
        assert a.result.to_json() == b.result.to_json()


def test_run_one_matches_batch(serial_outcomes):
    spec = _specs()[0]
    one = SweepExecutor().run_one(spec, CFG)
    assert one.ok
    assert one.result.to_json() == serial_outcomes[0].result.to_json()


def test_json_round_trip_of_live_results(serial_outcomes):
    for outcome in serial_outcomes:
        r = outcome.result
        assert RunResult.from_json(r.to_json()) == r


def test_mesh_latency_is_deterministic_across_backends(tmp_path):
    """The loaded-mesh provider (float queueing math, rounded into integer
    cycles) must be as deterministic as the flat table: serial, process,
    and cache round-trip all see the same bytes, network counters
    included."""
    from repro.core.resultcache import ResultCache

    net = NetworkConfig(provider="mesh", background_load=0.6)
    specs = [PointSpec.make("ocean", c, None, SAMPLE[0][1], network=net)
             for c in (1, 2, 4)]
    serial = SweepExecutor(backend="serial").run(specs, CFG)
    process = SweepExecutor(backend="process", max_workers=2).run(specs, CFG)
    cache = ResultCache(tmp_path)
    SweepExecutor(cache=cache).run(specs, CFG)
    cached = SweepExecutor(cache=cache).run(specs, CFG)
    assert all(o.cached for o in cached)
    for s, p, c in zip(serial, process, cached):
        assert s.result.network is not None
        assert s.result.network.queue_delay_cycles > 0
        assert s.result.to_json() == p.result.to_json()
        assert s.result.to_json() == c.result.to_json()
