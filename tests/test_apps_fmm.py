"""FMM application tests: interaction-list tiling + force accuracy."""

import numpy as np
import pytest

from repro.apps.fmm import FMMApp
from repro.core.config import MachineConfig


@pytest.fixture
def cfg():
    return MachineConfig(n_processors=8, cluster_size=2,
                         cache_kb_per_processor=16)


class TestGeometry:
    def test_box_ids_unique(self, cfg):
        app = FMMApp(cfg, n_particles=64, levels=3)
        seen = set()
        for lv in range(4):
            for i in range(1 << lv):
                for j in range(1 << lv):
                    bid = app.box_id(lv, i, j)
                    assert bid not in seen
                    seen.add(bid)
        assert len(seen) == app.n_boxes

    def test_interaction_list_well_separated(self, cfg):
        app = FMMApp(cfg, n_particles=64, levels=3)
        for (ci, cj) in app.interaction_list(3, 4, 4):
            assert max(abs(ci - 4), abs(cj - 4)) >= 2

    def test_interaction_list_inside_parent_neighbourhood(self, cfg):
        app = FMMApp(cfg, n_particles=64, levels=3)
        for (ci, cj) in app.interaction_list(3, 4, 4):
            assert abs(ci // 2 - 2) <= 1 and abs(cj // 2 - 2) <= 1

    def test_no_interaction_lists_below_level2(self, cfg):
        app = FMMApp(cfg, n_particles=64, levels=3)
        assert app.interaction_list(1, 0, 0) == []

    def test_levels_validated(self, cfg):
        with pytest.raises(ValueError):
            FMMApp(cfg, levels=1)

    def test_leaf_owner_covers_all_procs(self, cfg):
        app = FMMApp(cfg, n_particles=64, levels=3)
        owners = {app.leaf_owner(i, j) for i in range(8) for j in range(8)}
        assert owners == set(range(8))


class TestTilingCompleteness:
    def test_far_plus_near_covers_every_pair_once(self, cfg):
        """For a target particle, every other particle must contribute
        exactly once: either via exactly one interaction-list box of an
        ancestor, or via the near field."""
        app = FMMApp(cfg, n_particles=128, levels=3)
        app.ensure_setup()
        app._ensure_bins(0)
        g = 1 << app.levels
        target = 0
        ti, tj = app.leaf_of(target)
        counts = np.zeros(app.n, dtype=int)
        # near field
        for di in (-1, 0, 1):
            for dj in (-1, 0, 1):
                ni, nj = ti + di, tj + dj
                if 0 <= ni < g and 0 <= nj < g:
                    for q in app.box_particles[ni * g + nj]:
                        if q != target:
                            counts[q] += 1
        # far field: particles inside any ilist box of any ancestor level
        i, j = ti, tj
        for level in range(app.levels, 1, -1):
            scale = 1 << level
            for (ci, cj) in app.interaction_list(level, i, j):
                for q in range(app.n):
                    qi = min(int(app.pos[q, 0] * scale), scale - 1)
                    qj = min(int(app.pos[q, 1] * scale), scale - 1)
                    if (qi, qj) == (ci, cj):
                        counts[q] += 1
            i //= 2
            j //= 2
        counts[target] = 1
        assert np.all(counts == 1)


class TestForces:
    def test_against_direct_sum(self, cfg):
        app = FMMApp(cfg, n_particles=256, levels=3, n_steps=1, dt=0.0)
        app.run()
        errs = []
        for b in range(0, 256, 5):
            ref = app.direct_acceleration(b)
            errs.append(np.linalg.norm(app.acc[b] - ref)
                        / (np.linalg.norm(ref) + 1e-12))
        assert np.median(errs) < 0.08
        assert max(errs) < 0.4

    def test_moments_conserve_mass(self, cfg):
        app = FMMApp(cfg, n_particles=128, levels=3, n_steps=1, dt=0.0)
        app.run()
        root = app.box_id(0, 0, 0)
        assert app.moments[root, 2] == pytest.approx(app.mass.sum())

    def test_update_keeps_particles_inside(self, cfg):
        app = FMMApp(cfg, n_particles=128, levels=3, n_steps=3, dt=0.05)
        app.run()
        assert app.pos.min() >= 0.0
        assert app.pos.max() <= 1.0


class TestSharing:
    def test_moment_table_read_shared(self, cfg):
        app = FMMApp(cfg, n_particles=256, levels=3, n_steps=1)
        res = app.run()
        assert res.misses.read_misses > 0
        assert res.misses.references > 256 * 3

    def test_small_working_set(self):
        """Paper Table 3: FMM's working set is small/constant — with a
        reasonable per-processor cache, capacity misses nearly vanish."""
        from repro.core.metrics import MissCause
        cfg = MachineConfig(n_processors=8, cluster_size=1,
                            cache_kb_per_processor=32)
        app = FMMApp(cfg, n_particles=256, levels=3, n_steps=1)
        res = app.run()
        assert res.misses.by_cause[MissCause.CAPACITY] < \
            0.05 * max(res.misses.misses, 1)
