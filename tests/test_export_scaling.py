"""Tests for result export (CSV/JSON) and the §4 processor-scaling study."""

import csv
import io
import json

import pytest

from repro.analysis.export import (figure_to_csv, figure_to_json,
                                   figure_to_records, sweep_to_csv,
                                   sweep_to_records)
from repro.analysis.figures import figure_from_cluster_sweep
from repro.core.config import MachineConfig
from repro.core.scaling import (ScalingCurve, ScalingPoint,
                                effective_processors, pushout,
                                scaling_curve)
from repro.core.study import ClusteringStudy


@pytest.fixture(scope="module")
def sweep():
    study = ClusteringStudy("ocean", MachineConfig(n_processors=8),
                            {"n": 16, "n_vcycles": 1})
    return study.cluster_sweep(None, (1, 2, 4))


class TestFigureExport:
    def test_records_one_per_bar(self, sweep):
        fig = figure_from_cluster_sweep("t", sweep)
        records = figure_to_records(fig)
        assert len(records) == 3
        assert records[0]["bar"] == "1p"
        assert records[0]["total"] == pytest.approx(100.0)

    def test_csv_roundtrip(self, sweep):
        fig = figure_from_cluster_sweep("t", sweep)
        rows = list(csv.DictReader(io.StringIO(figure_to_csv(fig))))
        assert len(rows) == 3
        assert float(rows[0]["total"]) == pytest.approx(100.0)
        assert {"cpu", "load", "merge", "sync"} <= set(rows[0])

    def test_json_structure(self, sweep):
        fig = figure_from_cluster_sweep("my fig", sweep)
        data = json.loads(figure_to_json(fig))
        assert data["title"] == "my fig"
        assert len(data["bars"]) == 3

    def test_empty_figure_csv(self):
        from repro.analysis.figures import FigureData
        assert figure_to_csv(FigureData(title="x")) == ""


class TestSweepExport:
    def test_records_carry_raw_numbers(self, sweep):
        records = sweep_to_records(sweep)
        assert len(records) == 3
        for r in records:
            assert r["execution_time"] > 0
            assert r["references"] > 0
            assert r["cache_kb"] == "inf"
            assert 0 <= r["miss_rate"] <= 1

    def test_records_sorted_by_cluster(self, sweep):
        records = sweep_to_records(sweep)
        assert [r["cluster_size"] for r in records] == [1, 2, 4]

    def test_csv_parses(self, sweep):
        rows = list(csv.DictReader(io.StringIO(sweep_to_csv(sweep))))
        assert len(rows) == 3
        assert int(rows[0]["cluster_size"]) == 1


class TestScalingCurve:
    def test_speedups_anchored_at_smallest(self):
        c = ScalingCurve("x", 1, [ScalingPoint(4, 1000),
                                  ScalingPoint(8, 600),
                                  ScalingPoint(16, 500)])
        s = c.speedups()
        assert s[4] == 1.0
        assert s[8] == pytest.approx(1000 / 600)

    def test_speedup_over(self):
        a, b = ScalingPoint(4, 1000), ScalingPoint(8, 500)
        assert b.speedup_over(a) == 2.0

    def test_effective_processors_rollover(self):
        # 4->8 gives 1.67x (effective), 8->16 gives 1.09x (not)
        c = ScalingCurve("x", 1, [ScalingPoint(4, 1000),
                                  ScalingPoint(8, 600),
                                  ScalingPoint(16, 550)])
        assert effective_processors(c, marginal_threshold=1.15) == 8

    def test_effective_processors_all_effective(self):
        c = ScalingCurve("x", 1, [ScalingPoint(4, 1000),
                                  ScalingPoint(8, 500),
                                  ScalingPoint(16, 250)])
        assert effective_processors(c) == 16

    def test_empty_curve_rejected(self):
        with pytest.raises(ValueError):
            effective_processors(ScalingCurve("x", 1))

    def test_cluster_size_must_divide(self):
        with pytest.raises(ValueError):
            scaling_curve("ocean", [4, 6], cluster_size=4,
                          app_kwargs={"n": 16, "n_vcycles": 1})


class TestScalingMeasured:
    def test_ocean_scales_then_rolls_over(self):
        """Fixed small Ocean problem: more processors help early, then
        communication/sync rolls the curve over — the §4 setting."""
        curve = scaling_curve("ocean", [4, 16], cluster_size=1,
                              app_kwargs={"n": 32, "n_vcycles": 1})
        s = curve.speedups()
        assert s[16] > 1.2  # parallelism still pays at this size

    def test_pushout_structure(self):
        result = pushout("ocean", [4, 8, 16], cluster_size=4,
                         app_kwargs={"n": 16, "n_vcycles": 1})
        assert set(result["speedups_unclustered"]) == {4, 8, 16}
        assert result["effective_clustered"] in (4, 8, 16)
        assert result["effective_unclustered"] in (4, 8, 16)

    def test_clustering_pushes_out_ocean(self):
        """The paper's §4 claim on its own example: the clustered machine
        keeps scaling at least as far as the unclustered one."""
        result = pushout("ocean", [8, 16, 32], cluster_size=4,
                         app_kwargs={"n": 32, "n_vcycles": 1},
                         marginal_threshold=1.10)
        assert result["effective_clustered"] >= \
            result["effective_unclustered"]
